//! Umbrella crate for the PIPE-PsCG reproduction.
//!
//! Re-exports the workspace crates under one roof so examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`pipescg`] — the solver library (PCG, PIPECG, s-step and pipelined
//!   s-step methods, hybrid method, cost model);
//! * [`pscg_sparse`] — matrices, generators, block vectors;
//! * [`pscg_sim`] — the distributed-memory execution substrate;
//! * [`pscg_precond`] — preconditioners.

pub use pipescg;
pub use pscg_precond;
pub use pscg_sim;
pub use pscg_sparse;

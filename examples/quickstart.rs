//! Quickstart: solve the paper's model problem — a 3-D Poisson equation
//! discretised with a 125-point stencil — using PIPE-PsCG with a Jacobi
//! preconditioner.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pipe_pscg::pipescg::methods::MethodKind;
use pipe_pscg::pipescg::solver::SolveOptions;
use pipe_pscg::pscg_precond::Jacobi;
use pipe_pscg::pscg_sim::SimCtx;
use pipe_pscg::pscg_sparse::stencil::{poisson3d_125pt, Grid3};

fn main() {
    // The operator: 125-pt stencil on a 40^3 grid (64k unknowns).
    let grid = Grid3::cube(40);
    let a = poisson3d_125pt(grid);
    println!("operator: {} unknowns, {} nonzeros", a.nrows(), a.nnz());

    // b = A x* with x* = 1, the paper's setup (§VI-A).
    let b = a.mul_vec(&vec![1.0; a.nrows()]);

    // Solve with PIPE-PsCG, s = 3, rtol 1e-5 (the paper's defaults).
    let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
    let opts = SolveOptions::default();
    let res = MethodKind::PipePscg.solve(&mut ctx, &b, None, &opts);

    println!(
        "{}: {} CG steps, stop = {:?}, relative residual {:.2e}",
        res.method, res.iterations, res.stop, res.final_relres
    );
    println!(
        "kernels: {} SPMVs, {} PCs, {} non-blocking allreduces ({} blocking)",
        res.counters.spmv,
        res.counters.pc,
        res.counters.nonblocking_allreduce,
        res.counters.blocking_allreduce,
    );
    let true_res = res.true_relres(&a, &b);
    println!("true relative residual (recomputed): {true_res:.2e}");
    // With the default norm-matched reference (‖M⁻¹r‖ vs rtol·‖M⁻¹b‖) the
    // recomputed 2-norm residual lands close to rtol; the paper-literal
    // RefNorm::PlainB reference is looser by the diagonal scale (≈40 here).
    assert!(res.converged() && true_res < 1e-4);

    // The solution should be x* = 1 everywhere.
    let max_err = res.x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
    println!("max |x - x*| = {max_err:.2e}");
}

//! s-parameter tuning (paper §VI-C / Figure 3 and the future-work model of
//! §VII): sweep s and print the modelled time-to-solution of PIPE-PsCG at
//! several machine sizes, showing that the best s grows with the core count
//! — small s wastes fewer FLOPs at low scale, large s hides more allreduce
//! latency at high scale.
//!
//! ```sh
//! cargo run --release --example s_tuning
//! ```

use pipe_pscg::pipescg::methods::MethodKind;
use pipe_pscg::pipescg::solver::SolveOptions;
use pipe_pscg::pscg_precond::Jacobi;
use pipe_pscg::pscg_sim::{replay, Layout, Machine, MatrixProfile, SimCtx};
use pipe_pscg::pscg_sparse::stencil::{poisson3d_125pt, Grid3};

fn main() {
    let n = 32;
    let grid = Grid3::cube(n);
    let a = poisson3d_125pt(grid);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let profile = MatrixProfile::stencil3d(n, n, n, 2, a.nnz(), Layout::Box);
    let machine = Machine::sahasrat();
    let svals = [1usize, 2, 3, 4, 5, 6];
    let node_counts = [1usize, 20, 60, 120, 240];

    println!("PIPE-PsCG on 125-pt Poisson {n}^3; modelled time to rtol 1e-5 (ms)\n");
    print!("{:>6}", "nodes");
    for s in svals {
        print!("{:>9}", format!("s={s}"));
    }
    println!("{:>9}", "best");

    let runs: Vec<_> = svals
        .iter()
        .map(|&s| {
            let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), profile.clone());
            let opts = SolveOptions {
                rtol: 1e-5,
                s,
                ..Default::default()
            };
            let res = MethodKind::PipePscg.solve(&mut ctx, &b, None, &opts);
            assert!(res.converged(), "s = {s} did not converge");
            ctx.take_trace().unwrap()
        })
        .collect();

    for nodes in node_counts {
        let p = nodes * machine.cores_per_node;
        print!("{nodes:>6}");
        let times: Vec<f64> = runs
            .iter()
            .map(|t| replay(t, &machine, p).total_time)
            .collect();
        for t in &times {
            print!("{:>9.2}", t * 1e3);
        }
        let best = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| svals[i])
            .unwrap();
        println!("{:>9}", format!("s={best}"));
    }
    println!(
        "\nThe winning s shifts right as the machine grows — the automatic \
         s-selection model the paper proposes as future work would read off \
         exactly this table."
    );
}

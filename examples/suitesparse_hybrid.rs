//! The Hybrid-pipelined method on a hard matrix (paper §VI-B, Table II).
//!
//! At tight tolerances the s-step recurrences stagnate; the hybrid runs
//! PIPE-PsCG until stagnation, then finishes with PIPECG-OATI from the
//! stagnated iterate. This example shows all three behaviours on an
//! ecology2-like anisotropic 2-D problem.
//!
//! Pass a Matrix Market file to run on your own SPD matrix:
//!
//! ```sh
//! cargo run --release --example suitesparse_hybrid [matrix.mtx]
//! ```

use pipe_pscg::pipescg::methods::MethodKind;
use pipe_pscg::pipescg::solver::SolveOptions;
use pipe_pscg::pscg_precond::Jacobi;
use pipe_pscg::pscg_sim::SimCtx;
use pipe_pscg::pscg_sparse::{io, suitesparse};

fn main() {
    let a = match std::env::args().nth(1) {
        Some(path) => {
            println!("reading {path} ...");
            let file = std::fs::File::open(&path).expect("cannot open matrix file");
            io::read_matrix_market(file).expect("invalid Matrix Market file")
        }
        None => {
            println!("no matrix given; generating an ecology2-like surrogate (use --help)");
            suitesparse::ecology2_like(120, 121)
        }
    };
    assert!(
        a.is_symmetric(1e-10),
        "this example needs a symmetric matrix"
    );
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    println!("matrix: {} unknowns, {} nonzeros\n", a.nrows(), a.nnz());

    let opts = SolveOptions {
        rtol: 1e-9,
        s: 3,
        max_iters: 200_000,
        ..Default::default()
    };
    for m in [MethodKind::Pcg, MethodKind::PipePscg, MethodKind::Hybrid] {
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let res = m.solve(&mut ctx, &b, None, &opts);
        println!(
            "{:<17} stop = {:?}; {} steps; test residual {:.2e}; true residual {:.2e}",
            res.method,
            res.stop,
            res.iterations,
            res.final_relres,
            res.true_relres(&a, &b),
        );
    }
    println!(
        "\nPIPE-PsCG alone may stagnate above rtol; the hybrid detects the \
         flat residual curve and hands the iterate to PIPECG-OATI (§VI-B)."
    );
}

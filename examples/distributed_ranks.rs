//! Run PIPE-PsCG as a *genuinely distributed* SPMD program on the
//! thread-backed message-passing runtime: each rank owns a row block, SpMVs
//! exchange real halos, and the s-step dot products travel through real
//! non-blocking allreduces that make progress while ranks compute.
//!
//! ```sh
//! cargo run --release --example distributed_ranks [nranks]
//! ```

use pipe_pscg::pipescg::methods::MethodKind;
use pipe_pscg::pipescg::solver::SolveOptions;
use pipe_pscg::pscg_precond::Jacobi;
use pipe_pscg::pscg_sim::thread::{run_spmd, LocalPc, RankCtx};
use pipe_pscg::pscg_sim::{Context, SimCtx};
use pipe_pscg::pscg_sparse::stencil::{poisson3d_27pt, Grid3};

fn main() {
    let p: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let grid = Grid3::cube(20);
    let a = poisson3d_27pt(grid);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let opts = SolveOptions {
        rtol: 1e-7,
        s: 3,
        ..Default::default()
    };
    println!("27-pt Poisson 20^3, {} unknowns, {} ranks\n", a.nrows(), p);

    // Serial reference.
    let mut sctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
    let serial = MethodKind::PipePscg.solve(&mut sctx, &b, None, &opts);
    println!(
        "serial engine:      {} steps, relres {:.2e}",
        serial.iterations, serial.final_relres
    );

    // Distributed run: same solver code, per-rank data + real messages.
    let (part, plan) = RankCtx::prepare(&a, p);
    let inv_diag: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();
    let pieces = run_spmd(p, |rank, world| {
        let (lo, hi) = part.range(rank);
        let pc = LocalPc::Jacobi(inv_diag[lo..hi].to_vec());
        let mut ctx = RankCtx::new(world, rank, &a, &part, &plan, pc);
        let res = MethodKind::PipePscg.solve(&mut ctx, &b[lo..hi], None, &opts);
        (res.x, res.iterations, ctx.counters().nonblocking_allreduce)
    });

    let iters = pieces[0].1;
    let nonblocking = pieces[0].2;
    let x: Vec<f64> = pieces.into_iter().flat_map(|(x, _, _)| x).collect();
    println!("distributed engine: {iters} steps, {nonblocking} non-blocking allreduces per rank");

    let max_dev = x
        .iter()
        .zip(&serial.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |x_distributed - x_serial| = {max_dev:.2e}");
    assert!(
        max_dev < 1e-6,
        "engines must agree to roundoff-level accuracy"
    );
    println!("\nsame solver code, two engines, one answer.");
}

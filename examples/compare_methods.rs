//! Compare every CG variant of the paper on one problem: iteration counts,
//! communication counters, and modelled time-to-solution at 1 node versus
//! 120 nodes of the SahasraT machine model — a miniature of Figure 1 plus
//! the measured side of Table I.
//!
//! ```sh
//! cargo run --release --example compare_methods
//! ```

use pipe_pscg::pipescg::methods::MethodKind;
use pipe_pscg::pipescg::solver::SolveOptions;
use pipe_pscg::pscg_precond::{Jacobi, PcKind};
use pipe_pscg::pscg_sim::{replay, Layout, Machine, MatrixProfile, SimCtx};
use pipe_pscg::pscg_sparse::stencil::{poisson3d_125pt, Grid3};
use pipe_pscg::pscg_sparse::IdentityOp;

fn main() {
    let n = 32;
    let grid = Grid3::cube(n);
    let a = poisson3d_125pt(grid);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let profile = MatrixProfile::stencil3d(n, n, n, 2, a.nnz(), Layout::Box);
    let machine = Machine::sahasrat();
    let opts = SolveOptions {
        rtol: 1e-5,
        s: 3,
        ..Default::default()
    };

    println!(
        "125-pt Poisson {n}^3 ({} unknowns), rtol 1e-5, s = 3\n",
        a.nrows()
    );
    println!(
        "{:<14} {:>6} {:>7} {:>7} {:>8} {:>11} {:>11} {:>8}",
        "method", "steps", "SPMVs", "PCs", "allr", "t @ 1 node", "t @ 120 n", "speedup"
    );

    let mut t_ref = None;
    for m in [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
    ] {
        // PIPE-sCG and the plain sCG variants are unpreconditioned.
        let pc: Box<dyn pipe_pscg::pscg_sparse::Operator> = match m {
            MethodKind::Scg | MethodKind::ScgSspmv | MethodKind::PipeScg => {
                let _ = PcKind::None;
                Box::new(IdentityOp::new(a.nrows()))
            }
            _ => Box::new(Jacobi::new(&a)),
        };
        let mut ctx = SimCtx::traced(&a, pc, profile.clone());
        let res = m.solve(&mut ctx, &b, None, &opts);
        assert!(res.converged(), "{} did not converge", m.name());
        let trace = ctx.take_trace().unwrap();
        let t1 = replay(&trace, &machine, machine.cores_per_node).total_time;
        let t120 = replay(&trace, &machine, 120 * machine.cores_per_node).total_time;
        let t_ref = *t_ref.get_or_insert(t1); // PCG at one node
        println!(
            "{:<14} {:>6} {:>7} {:>7} {:>8} {:>10.1}ms {:>10.2}ms {:>7.2}x",
            res.method,
            res.iterations,
            res.counters.spmv,
            res.counters.pc,
            res.counters.allreduces(),
            t1 * 1e3,
            t120 * 1e3,
            t_ref / t120,
        );
    }
    println!("\nspeedup = PCG time at 1 node / method time at 120 nodes (the paper's metric)");
}

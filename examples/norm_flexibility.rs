//! The paper's norm-flexibility claim (§IV-C, §V): PIPE-PsCG can test
//! convergence against the unpreconditioned, preconditioned or natural
//! residual norm **without any extra PC or SPMV kernels**, because `r`, `u`
//! and their dot products all travel in the one Gram-packet allreduce.
//! (PIPELCG, by contrast, would need an extra PC + SPMV per iteration for
//! anything but the natural norm.)
//!
//! ```sh
//! cargo run --release --example norm_flexibility
//! ```

use pipe_pscg::pipescg::methods::MethodKind;
use pipe_pscg::pipescg::solver::{NormType, SolveOptions};
use pipe_pscg::pscg_precond::Ssor;
use pipe_pscg::pscg_sim::SimCtx;
use pipe_pscg::pscg_sparse::stencil::{poisson3d_27pt, Grid3};

fn main() {
    let grid = Grid3::cube(24);
    let a = poisson3d_27pt(grid);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    println!("27-pt Poisson 24^3 with SSOR preconditioning, PIPE-PsCG s = 3\n");
    println!(
        "{:<18} {:>7} {:>9} {:>7} {:>12} {:>12}",
        "norm", "steps", "SPMVs", "PCs", "SPMV/step", "final relres"
    );

    for norm in [
        NormType::Preconditioned,
        NormType::Unpreconditioned,
        NormType::Natural,
    ] {
        let mut ctx = SimCtx::serial(&a, Box::new(Ssor::new(&a, 1.0)));
        let opts = SolveOptions {
            rtol: 1e-8,
            s: 3,
            norm,
            ..Default::default()
        };
        let res = MethodKind::PipePscg.solve(&mut ctx, &b, None, &opts);
        assert!(res.converged());
        println!(
            "{:<18} {:>7} {:>9} {:>7} {:>12.3} {:>12.2e}",
            norm.name(),
            res.iterations,
            res.counters.spmv,
            res.counters.pc,
            res.counters.spmv as f64 / res.iterations as f64,
            res.final_relres,
        );
    }
    println!(
        "\nkernel counts per step are identical across norms — the convergence \
         test is free to use whichever norm the application needs."
    );
}

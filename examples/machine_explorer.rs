//! Explore how machine characteristics move the paper's crossovers.
//!
//! The whole story of the paper is a race between `G` (one allreduce) and
//! `s·(PC + SPMV)` (the overlap window). This example sweeps three machine
//! variants — the calibrated SahasraT model, a quiet (noise-free) variant,
//! and a slow-network variant — and prints, per machine: where `G` overtakes
//! one and three kernel pairs, and which s the automatic tuner (the paper's
//! §VII future-work model) would pick at several scales.
//!
//! ```sh
//! cargo run --release --example machine_explorer
//! ```

use pipe_pscg::pipescg::{autotune, costmodel};
use pipe_pscg::pscg_sim::{AllreduceModel, Layout, Machine, MatrixProfile, NoiseModel};

fn main() {
    let profile = MatrixProfile::stencil3d(100, 100, 100, 2, 124_000_000, Layout::Box);
    let machines: Vec<Machine> = vec![
        Machine::sahasrat(),
        Machine {
            name: "sahasrat-quiet".into(),
            noise: NoiseModel::none(),
            ..Machine::sahasrat()
        },
        Machine {
            name: "sahasrat-slow-net".into(),
            allreduce: AllreduceModel::RecursiveDoubling {
                alpha: 10.0e-6,
                beta: 1.0 / 2.0e9,
                gamma: 2.5e-10,
            },
            ..Machine::sahasrat()
        },
    ];

    let candidates: Vec<usize> = (1..=1024).map(|n| n * 24).collect();
    println!("125-pt Poisson, 1M unknowns, Jacobi preconditioning\n");
    for m in &machines {
        let be1 = costmodel::breakeven_ranks(m, &profile, 1, 27, 1.0, 24.0, &candidates);
        let be3 = costmodel::breakeven_ranks(m, &profile, 3, 27, 1.0, 24.0, &candidates);
        println!("machine: {}", m.name);
        println!(
            "  G overtakes   PC+SPMV  at {}",
            be1.map_or("beyond 1024 nodes".to_string(), |p| format!(
                "{} nodes",
                p / 24
            ))
        );
        println!(
            "  G overtakes 3(PC+SPMV) at {}",
            be3.map_or("beyond 1024 nodes".to_string(), |p| format!(
                "{} nodes",
                p / 24
            ))
        );
        print!("  auto-s picks:");
        for nodes in [1usize, 40, 120, 400, 1024] {
            let best = autotune::best_s_jacobi(m, &profile, nodes * 24);
            print!("  {nodes}n->s={}", best.s);
        }
        println!("\n");
    }
    println!(
        "Quiet machines postpone the crossovers (pipelining buys little);\n\
         slow networks pull them in (deep pipelines win early) — the same\n\
         trade-off the paper's Figure 3 sweeps by hand."
    );
}

//! The rank-failure resilience acceptance bar, and the chaos harness's
//! own guarantees.
//!
//! Every solve here runs under a wall-clock watchdog: a method that hangs
//! fails *fast*, with the method name and the armed plan echoed in the
//! panic — the same never-hang contract `repro --chaos` enforces at scale.
//!
//! 1. Rank death mid-solve is survived by **every** method via buddy
//!    reconstruction (recovery code 9 in the engine's deterministic log),
//!    with the accepted answer's residual re-verified.
//! 2. When the buddy is dead too, the supervisor escalates to the
//!    explicit [`SolveError::RankLost`] — never a wrong answer.
//! 3. Straggler events never change the numerics (they only stretch the
//!    modelled timeline).
//! 4. The chaos-plan generator is deterministic and respects its bounds;
//!    the shrinker preserves a violation while minimizing the plan.

use std::sync::mpsc;
use std::time::Duration;

use pipescg::methods::MethodKind;
use pipescg::solver::{SolveError, SolveOptions};
use pscg_fault::{chaos, shrink, ChaosConfig, FaultPlan, RankFault};
use pscg_precond::Jacobi;
use pscg_sim::SimCtx;
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

const RTOL: f64 = 1e-7;

/// Recovery-ladder code of a buddy rank rebuild (resilience `code` table).
const RANK_REBUILD: u64 = 9;

fn all_methods() -> [MethodKind; 11] {
    [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ]
}

fn problem() -> (pscg_sparse::CsrMatrix, Vec<f64>) {
    let g = Grid3::cube(6);
    let a = poisson3d_7pt(g, None);
    let n = a.nrows();
    let xstar: Vec<f64> = (0..n).map(|i| (0.31 * i as f64).sin()).collect();
    let b = a.mul_vec(&xstar);
    (a, b)
}

/// What one watched resilient solve produced, sent back over the channel.
struct Verdict {
    outcome: Result<(bool, f64, Vec<u64>, Vec<u64>), String>,
    recovery: Vec<u64>,
}

/// Solves `method` under `plan` on a worker thread and returns the verdict
/// within `deadline`, or panics with the method name and the plan echoed —
/// a hang must fail fast and reproducibly, not eat the suite's timeout.
fn solve_watched(method: MethodKind, plan: &FaultPlan, deadline: Duration) -> Verdict {
    let plan_text = plan.to_text();
    let plan = plan.clone();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let (a, b) = problem();
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        ctx.arm_faults(plan);
        let opts = SolveOptions::with_rtol(RTOL).with_s(3);
        let outcome = method.solve_resilient(&mut ctx, &b, None, &opts);
        let recovery = ctx.take_recovery_log();
        let outcome = match outcome {
            Ok(res) => Ok((
                res.converged(),
                res.true_relres(&a, &b),
                res.x.iter().map(|v| v.to_bits()).collect(),
                res.history.iter().map(|r| r.to_bits()).collect(),
            )),
            Err(e) => Err(match e {
                SolveError::RankLost { rank, .. } => format!("RankLost:{rank}"),
                other => format!("{other}"),
            }),
        };
        let _ = tx.send(Verdict { outcome, recovery });
    });
    match rx.recv_timeout(deadline) {
        Ok(v) => v,
        Err(mpsc::RecvTimeoutError::Timeout) => panic!(
            "{}: HANG — no verdict within {deadline:.0?} under plan:\n{plan_text}",
            method.name()
        ),
        Err(mpsc::RecvTimeoutError::Disconnected) => panic!(
            "{}: worker died without a verdict under plan:\n{plan_text}",
            method.name()
        ),
    }
}

#[test]
fn rank_death_mid_solve_is_survived_by_every_method() {
    for method in all_methods() {
        // Rank 2 dies at the 5th global collective: mid-solve for every
        // method (they all issue far more than five).
        let plan = FaultPlan::new(21).with_rank_dead(2, 4);
        let v = solve_watched(method, &plan, Duration::from_secs(60));
        match v.outcome {
            Ok((converged, t, _, _)) => {
                assert!(
                    converged,
                    "{}: did not converge after rank death",
                    method.name()
                );
                assert!(
                    t.is_finite() && t <= RTOL * 100.0,
                    "{}: silent wrong answer after rank rebuild (true relres {t:.3e})",
                    method.name()
                );
                assert!(
                    v.recovery.contains(&RANK_REBUILD),
                    "{}: converged but no RANK_REBUILD in recovery log {:?}",
                    method.name(),
                    v.recovery
                );
            }
            Err(e) => panic!(
                "{}: a single rank death with a live buddy must be survived, got {e}",
                method.name()
            ),
        }
    }
}

#[test]
fn dead_buddy_escalates_to_an_explicit_rank_lost_error() {
    // Ranks 2 and 3 die at the same collective: rank 3 is rank 2's buddy,
    // so the only in-memory checkpoint copy is gone with it.
    for method in [MethodKind::Pcg, MethodKind::PipePscg, MethodKind::Scg] {
        let plan = FaultPlan::new(22).with_rank_dead(2, 4).with_rank_dead(3, 4);
        let v = solve_watched(method, &plan, Duration::from_secs(60));
        match v.outcome {
            Err(e) if e == "RankLost:2" => {}
            Err(e) => panic!("{}: expected RankLost:2, got {e}", method.name()),
            Ok((converged, t, _, _)) => panic!(
                "{}: returned a result (converged {converged}, true relres {t:.3e}) \
                 after losing both the rank and its buddy",
                method.name()
            ),
        }
    }
}

#[test]
fn a_straggler_rank_never_changes_the_numerics() {
    // `rank_slow` only stretches the modelled timeline in replay; the
    // computed bits must match the un-faulted solve exactly.
    for method in [MethodKind::Pcg, MethodKind::PipePscg] {
        let clean = solve_watched(method, &FaultPlan::new(23), Duration::from_secs(60));
        let slow_plan = FaultPlan::new(23).with_rank_slow(5, 8.0, 2);
        let slow = solve_watched(method, &slow_plan, Duration::from_secs(60));
        let (c, s) = (clean.outcome.unwrap(), slow.outcome.unwrap());
        assert_eq!(c.2, s.2, "{}: solution bits changed", method.name());
        assert_eq!(c.3, s.3, "{}: history bits changed", method.name());
        assert!(
            slow.recovery.is_empty(),
            "{}: straggler triggered recovery",
            method.name()
        );
    }
}

#[test]
fn chaos_generator_is_deterministic_and_respects_bounds() {
    let cfg = ChaosConfig::default();
    for seed in [0u64, 7, 991] {
        let p1 = chaos::generate(seed, &cfg);
        let p2 = chaos::generate(seed, &cfg);
        assert_eq!(
            p1.to_text(),
            p2.to_text(),
            "seed {seed}: generator not deterministic"
        );
        assert!(p1.events.len() <= cfg.max_data_faults + cfg.max_completion_faults);
        assert!(p1.rank_events.len() <= cfg.max_rank_events);
        for rv in &p1.rank_events {
            assert!(
                rv.rank >= 1 && rv.rank < cfg.ranks,
                "rank 0 must never be targeted"
            );
        }
        // Round-trips through the plan text format.
        let reparsed = FaultPlan::parse(&p1.to_text()).unwrap();
        assert_eq!(reparsed.to_text(), p1.to_text());
    }
}

#[test]
fn shrinker_minimizes_a_rank_death_plan_to_its_killer_line() {
    // Oracle: the plan still kills rank 2 before collective 10. Decoys
    // (data faults, a straggler) must all be stripped.
    let plan = FaultPlan::parse(
        "seed 4\n\
         ranks 8\n\
         at spmv 5 bitflip 12\n\
         at pc 3 nan\n\
         rank_slow 4 2.0 1\n\
         rank_dead 2 6\n\
         at wait 2 delay 1\n",
    )
    .unwrap();
    let shrunk = shrink::shrink(&plan, |cand| {
        cand.rank_events
            .iter()
            .any(|rv| rv.kind == RankFault::Dead && rv.rank == 2 && rv.nth < 10)
    });
    assert!(
        shrunk.events.is_empty(),
        "decoy data faults survived: {}",
        shrunk.to_text()
    );
    assert_eq!(
        shrunk.rank_events.len(),
        1,
        "decoy rank events survived: {}",
        shrunk.to_text()
    );
    assert_eq!(shrunk.rank_events[0].kind, RankFault::Dead);
    assert_eq!(shrunk.rank_events[0].rank, 2);
    // The numeric pass drives nth toward 0 while the oracle keeps passing.
    assert_eq!(shrunk.rank_events[0].nth, 0);
}

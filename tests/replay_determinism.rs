//! Replay determinism under noise: the discrete-event replay of a traced
//! solve on a *noisy* machine model must be bitwise-reproducible — across
//! repeated replays of the same trace, and across traces captured at
//! different pool thread counts (the shared-memory engine guarantees the
//! same operation sequence, so the modelled timeline must coincide bit for
//! bit, straggler noise included).
//!
//! Separate integration-test binary on purpose: it mutates the global
//! thread pool, which must not race with other tests.

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_fault::FaultPlan;
use pscg_precond::Jacobi;
use pscg_sim::{replay, Layout, Machine, MatrixProfile, NoiseModel, SimCtx};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

/// The replay's full numeric state as raw bits, for exact comparison.
fn replay_bits(r: &pscg_sim::ReplayResult) -> Vec<u64> {
    let mut bits = vec![
        r.total_time.to_bits(),
        r.compute_time.to_bits(),
        r.halo_time.to_bits(),
        r.allreduce_exposed.to_bits(),
        r.allreduce_total.to_bits(),
    ];
    for (t, res) in &r.residual_timeline {
        bits.push(t.to_bits());
        bits.push(res.to_bits());
    }
    bits
}

fn traced_solve(method: MethodKind) -> pscg_sim::OpTrace {
    let g = Grid3::cube(8);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let prof = MatrixProfile::stencil3d(8, 8, 8, 1, a.nnz(), Layout::Box);
    let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), prof);
    let opts = SolveOptions::with_rtol(1e-6).with_s(4);
    let res = method.solve(&mut ctx, &b, None, &opts);
    assert!(res.converged(), "{} did not converge", method.name());
    ctx.take_trace().unwrap()
}

#[test]
fn noisy_replay_is_bitwise_reproducible_across_runs_and_threads() {
    // The noise model is part of the production machine; assert so, then
    // use that machine — a regression that silently zeroes the noise would
    // otherwise make this test vacuous.
    let machine = Machine::sahasrat();
    assert_ne!(machine.noise, NoiseModel::none(), "sahasrat models noise");
    assert!(machine.noise.sync_penalty(2880) > 0.0);

    pscg_par::knobs::set_spmv_chunk_nnz(256);
    pscg_par::knobs::set_gram_chunk_rows(64);

    let methods = [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Scg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
    ];
    for method in methods {
        let mut per_thread: Vec<Vec<u64>> = Vec::new();
        for threads in [1usize, 4] {
            pscg_par::set_global_threads(threads);
            let trace = traced_solve(method);
            // Same trace, repeated replays: identical to the bit.
            let r1 = replay(&trace, &machine, 2880);
            let r2 = replay(&trace, &machine, 2880);
            assert_eq!(
                replay_bits(&r1),
                replay_bits(&r2),
                "{} @{threads}t: replay is not reproducible",
                method.name()
            );
            assert!(r1.total_time > 0.0);
            per_thread.push(replay_bits(&r1));
        }
        // Traces from different thread counts: same modelled timeline.
        assert_eq!(
            per_thread[0],
            per_thread[1],
            "{}: replayed noisy schedule differs between 1 and 4 threads",
            method.name()
        );
    }
    pscg_par::set_global_threads(1);
}

#[test]
fn rank_failure_recovery_is_bitwise_deterministic_across_runs_and_threads() {
    // Same seed + same rank-failure plan ⇒ bitwise-identical outcome AND
    // the identical recovery-code sequence, across repeated runs and
    // across pool thread counts. Recovery *decisions* are part of the
    // deterministic observable, not a side effect of scheduling.
    pscg_par::knobs::set_spmv_chunk_nnz(256);
    pscg_par::knobs::set_gram_chunk_rows(64);

    for method in [MethodKind::Pcg, MethodKind::Scg, MethodKind::PipePscg] {
        let mut seen: Option<(Vec<u64>, Vec<u64>, Vec<u64>)> = None;
        for threads in [1usize, 4] {
            pscg_par::set_global_threads(threads);
            for run in 0..2 {
                let g = Grid3::cube(8);
                let a = poisson3d_7pt(g, None);
                let b = a.mul_vec(&vec![1.0; a.nrows()]);
                let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
                ctx.arm_faults(FaultPlan::new(31).with_rank_dead(2, 5));
                let opts = SolveOptions::with_rtol(1e-6).with_s(4);
                let res = method
                    .solve_resilient(&mut ctx, &b, None, &opts)
                    .unwrap_or_else(|e| panic!("{} @{threads}t run {run}: {e}", method.name()));
                let got = (
                    res.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    res.history.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
                    ctx.take_recovery_log(),
                );
                assert!(
                    got.2.contains(&9),
                    "{} @{threads}t run {run}: no rank rebuild in {:?}",
                    method.name(),
                    got.2
                );
                match &seen {
                    None => seen = Some(got),
                    Some(first) => {
                        assert_eq!(
                            first.0,
                            got.0,
                            "{} @{threads}t run {run}: solution bits diverged",
                            method.name()
                        );
                        assert_eq!(
                            first.1,
                            got.1,
                            "{} @{threads}t run {run}: history bits diverged",
                            method.name()
                        );
                        assert_eq!(
                            first.2,
                            got.2,
                            "{} @{threads}t run {run}: recovery-code sequence diverged",
                            method.name()
                        );
                    }
                }
            }
        }
    }
    pscg_par::set_global_threads(1);
}

#[test]
fn noise_penalty_shows_up_in_the_replayed_allreduce_cost() {
    // A noiseless copy of the same machine must strictly undercut the noisy
    // one on any trace with a collective — pinning that the noise model is
    // actually exercised by the replay path this file locks down.
    let trace = traced_solve(MethodKind::Pcg);
    let noisy = Machine::sahasrat();
    let mut quiet = Machine::sahasrat();
    quiet.noise = NoiseModel::none();
    let rn = replay(&trace, &noisy, 2880);
    let rq = replay(&trace, &quiet, 2880);
    assert!(
        rn.allreduce_total > rq.allreduce_total,
        "noise penalty missing: {} vs {}",
        rn.allreduce_total,
        rq.allreduce_total
    );
    assert!(rn.total_time > rq.total_time);
}

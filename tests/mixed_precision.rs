//! Mixed-precision preconditioning policy (DESIGN.md §12): with
//! `SolveOptions::pc_fp32` the recovery-ladder supervisor demotes the
//! preconditioner apply to fp32 (half the diagonal/factor traffic) inside
//! the fp64 outer loop. The existing acceptance machinery — the in-loop
//! drift probe plus the supervisor's recomputed-true-residual check —
//! guards the reduced precision: a demoted apply may cost a restart, but
//! it can never produce a silently wrong answer, because any failed or
//! lying attempt promotes back to fp64 before the ladder retries.
//!
//! Two halves: (1) attainable accuracy — on the seed Poisson problem the
//! fp32 apply converges to the same fp64 tolerance as the full-precision
//! run; (2) clean fallback — on a symmetrically rescaled problem whose
//! inverse diagonal overflows f32, the demoted apply breaks down
//! immediately and the ladder must still return a *verified* fp64 answer,
//! recording the demote/promote recovery spans.

use pipescg::methods::MethodKind;
use pipescg::resilience::code;
use pipescg::solver::{NormType, SolveOptions};
use pscg_obs::span::SpanKind;
use pscg_precond::{BlockJacobi, PcKind};
use pscg_sim::{Context, SimCtx};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
use pscg_sparse::CsrMatrix;
use pscg_sparse::Operator;

fn opts_fp32() -> SolveOptions {
    SolveOptions {
        rtol: 1e-6,
        s: 3,
        max_iters: 10_000,
        pc_fp32: true,
        norm: NormType::Unpreconditioned,
        ..Default::default()
    }
}

/// Recomputed true relative residual `‖b − A x‖₂ / ‖b‖₂`, from scratch.
fn true_relres(a: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    let ax = a.mul_vec(x);
    let num: f64 = b
        .iter()
        .zip(&ax)
        .map(|(bi, yi)| (bi - yi) * (bi - yi))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    num / den
}

/// Attainable accuracy: the fp32 apply must reach the *fp64* tolerance on
/// the seed Poisson problem, for both fp32-capable preconditioners, and
/// the recomputed residual must honour it (spans are checked in the
/// supervisor test below, which is this binary's only span drainer).
#[test]
fn fp32_preconditioner_reaches_fp64_tolerance_on_seed_poisson() {
    let a = poisson3d_7pt(Grid3::cube(8), None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    for (pc_name, block) in [("Jacobi", false), ("BlockJacobi", true)] {
        for method in [MethodKind::Pcg, MethodKind::PipePscg] {
            let pc: Box<dyn Operator> = if block {
                Box::new(BlockJacobi::new(&a, 16))
            } else {
                PcKind::Jacobi.build(&a, None)
            };
            let mut ctx = SimCtx::serial(&a, pc);
            let res = method
                .solve_resilient(&mut ctx, &b, None, &opts_fp32())
                .unwrap_or_else(|e| panic!("{} + fp32 {pc_name}: {e:?}", method.name()));
            assert!(res.converged(), "{} + fp32 {pc_name}", method.name());
            let t = true_relres(&a, &b, &res.x);
            assert!(
                t <= 1e-5,
                "{} + fp32 {pc_name}: recomputed residual {t:.3e} misses the fp64 tolerance",
                method.name()
            );
        }
    }
}

/// Clean fallback: diagonal entries near 1e-60 invert to ~1e59 — finite in
/// f64, **infinite** in f32 — so the demoted Jacobi apply produces
/// non-finite iterates at once. The breakdown guard fails the attempt, the
/// ladder promotes back to fp64, and the retry must converge with an
/// honest recomputed residual. Both the demotion and the promotion must
/// appear as recovery spans. This is the binary's only test that enables
/// telemetry and drains spans, so the global ring is single-reader.
#[test]
fn fp32_overflow_falls_back_to_fp64_cleanly() {
    // Symmetric rescaling D·A·D of the Poisson operator with d = 1e-30 on
    // the first rows: SPD, solvable in fp64 (Jacobi undoes the scaling),
    // but inv(diag) ≈ 1.7e59 overflows f32 on the scaled block.
    let mut a = poisson3d_7pt(Grid3::cube(6), None);
    let n = a.nrows();
    let d: Vec<f64> = (0..n).map(|i| if i < 8 { 1e-30 } else { 1.0 }).collect();
    let (rp, ci): (Vec<usize>, Vec<usize>) = (a.row_ptr().to_vec(), a.col_idx().to_vec());
    let vals = a.vals_mut();
    for r in 0..n {
        for k in rp[r]..rp[r + 1] {
            vals[k] *= d[r] * d[ci[k]];
        }
    }
    let b = a.mul_vec(&vec![1.0; n]);

    pscg_obs::set_enabled(true);
    pscg_obs::span::drain(); // discard anything recorded before this test
    let mut ctx = SimCtx::serial(&a, PcKind::Jacobi.build(&a, None));
    let res = MethodKind::Pcg
        .solve_resilient(&mut ctx, &b, None, &opts_fp32())
        .expect("ladder must recover from the fp32 overflow");
    let spans = pscg_obs::span::drain();
    pscg_obs::set_enabled(false);

    assert!(res.converged(), "fallback solve did not converge");
    assert!(res.x.iter().all(|v| v.is_finite()));
    let t = true_relres(&a, &b, &res.x);
    assert!(t <= 1e-5, "recomputed residual {t:.3e} contradicts success");

    let recoveries: Vec<u64> = spans
        .records
        .iter()
        .filter(|s| s.kind == SpanKind::Recovery)
        .map(|s| s.arg)
        .collect();
    assert!(
        recoveries.contains(&code::PC_DEMOTE),
        "demotion was not recorded: {recoveries:?}"
    );
    assert!(
        recoveries.contains(&code::PC_PROMOTE),
        "fp64 promotion was not recorded: {recoveries:?}"
    );
    assert!(
        !ctx.pc_demoted(),
        "the context must end the solve back at fp64"
    );
}

/// The knob is inert by default: with `pc_fp32` left false the resilient
/// path never demotes, and its solution is bitwise identical to a plain
/// armed-resilience solve (mixed precision is strictly opt-in).
#[test]
fn pc_fp32_defaults_off_and_changes_nothing() {
    let a = poisson3d_7pt(Grid3::cube(7), None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let opts = SolveOptions {
        pc_fp32: false,
        ..opts_fp32()
    };
    let mut c1 = SimCtx::serial(&a, PcKind::Jacobi.build(&a, None));
    let r1 = MethodKind::Pcg
        .solve_resilient(&mut c1, &b, None, &opts)
        .unwrap();
    assert!(!c1.pc_demoted());
    let mut c2 = SimCtx::serial(&a, PcKind::Jacobi.build(&a, None));
    let r2 = MethodKind::Pcg
        .solve_resilient(&mut c2, &b, None, &opts)
        .unwrap();
    assert_eq!(
        r1.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        r2.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "fp64 solves must stay bitwise reproducible"
    );
}

//! Analyzer regression: turning the kernel engine's parallelism on must be
//! invisible to everything above it. For every shipped method, a traced
//! solve at 4 pool threads (with the chunk knobs forced small so every
//! kernel really splits) must produce the **same** operation sequence, the
//! same hazard report, the same structure verdicts, and bitwise-identical
//! residual history and solution as the 1-thread run.
//!
//! Operation sequences are compared with the interned `BufId`s masked
//! (`ANON` kept): interning is storage-address based, and whether a *dead*
//! buffer's address gets reused for a later allocation is an allocator
//! coincidence that legitimately differs once the 4-thread pool's own
//! (pre-solve) allocations shift the heap. Everything the analyzers
//! consume — op kinds, costs, packet sizes, communication structure — is
//! compared exactly, and the analyzer verdicts themselves are asserted
//! equal on the *unmasked* traces.
//!
//! This file is a separate integration-test binary on purpose: it mutates
//! the process-global pool and chunk knobs, which must not race with other
//! tests. The single `#[test]` keeps the global settings single-writer.

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_analysis::{analyze, verify};
use pscg_precond::Jacobi;
use pscg_sim::{Layout, MatrixProfile, SimCtx};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

const S: usize = 4;

fn all_methods() -> [MethodKind; 11] {
    [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ]
}

/// Debug renderings of a trace's ops with interned buffer ids masked
/// (`BufId(0)` = `ANON` is kept — anonymous vs tracked is structural).
fn op_shapes(trace: &pscg_sim::OpTrace) -> Vec<String> {
    trace
        .ops
        .iter()
        .map(|op| {
            let s = format!("{op:?}");
            let mut out = String::new();
            let mut rest = s.as_str();
            while let Some(pos) = rest.find("BufId(") {
                out.push_str(&rest[..pos + 6]);
                rest = &rest[pos + 6..];
                let end = rest.find(')').expect("BufId debug form");
                if &rest[..end] == "0" {
                    out.push('0');
                } else {
                    out.push('_');
                }
                rest = &rest[end..];
            }
            out.push_str(rest);
            out
        })
        .collect()
}

/// One traced solve; returns (residual history bits, solution bits, trace).
fn run(method: MethodKind) -> (Vec<u64>, Vec<u64>, pscg_sim::OpTrace) {
    let g = Grid3::cube(8);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let prof = MatrixProfile::stencil3d(8, 8, 8, 1, a.nnz(), Layout::Box);
    let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), prof);
    let opts = SolveOptions::with_rtol(1e-6).with_s(S);
    let res = method.solve(&mut ctx, &b, None, &opts);
    assert!(res.converged(), "{} did not converge", method.name());
    let hist = res.history.iter().map(|r| r.to_bits()).collect();
    let x = res.x.iter().map(|v| v.to_bits()).collect();
    (hist, x, ctx.take_trace().unwrap())
}

#[test]
fn parallel_engine_is_invisible_to_the_analyzers() {
    // Force real chunking: the 8³ problem has 512 rows / 3200 nnz, so these
    // knobs split every SpMV and every Gram/update sweep into many chunks.
    pscg_par::knobs::set_spmv_chunk_nnz(256);
    pscg_par::knobs::set_gram_chunk_rows(64);

    for method in all_methods() {
        pscg_par::set_global_threads(1);
        let (hist1, x1, trace1) = run(method);
        pscg_par::set_global_threads(4);
        let (hist4, x4, trace4) = run(method);

        assert_eq!(
            hist1,
            hist4,
            "{}: residual history changed with thread count",
            method.name()
        );
        assert_eq!(
            x1,
            x4,
            "{}: solution changed with thread count",
            method.name()
        );
        assert_eq!(
            op_shapes(&trace1),
            op_shapes(&trace4),
            "{}: operation sequence changed with thread count",
            method.name()
        );

        let (rep1, rep4) = (analyze(&trace1), analyze(&trace4));
        assert!(
            rep1.is_clean() && rep4.is_clean(),
            "{}: schedule hazards appeared: {:?} / {:?}",
            method.name(),
            rep1.hazards,
            rep4.hazards
        );
        assert_eq!(
            rep1.windows.len(),
            rep4.windows.len(),
            "{}: overlap-window count changed with thread count",
            method.name()
        );
        let (v1, v4) = (verify(&trace1, method, S), verify(&trace4, method, S));
        assert_eq!(
            format!("{v1:?}"),
            format!("{v4:?}"),
            "{}: structure verdicts changed with thread count",
            method.name()
        );
        assert!(
            v1.is_empty(),
            "{}: structure violations: {v1:?}",
            method.name()
        );
    }
    pscg_par::set_global_threads(1);
}

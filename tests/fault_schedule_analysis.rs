//! Satellite of the concurrency-verification layer: schedules that the
//! *fault injector* perturbed must still pass static analysis. A delayed
//! completion retries, a duplicated completion is absorbed, a dropped
//! completion triggers the recovery ladder — and in every case the
//! resulting operation trace must be free of collective/overlap hazards
//! (including the fault-aware classes: use-after-wait, double-wait,
//! abandoned timeouts) and must verify against the method's Table I
//! structure up to the point the fault tore the schedule.
//!
//! `verify_faulted` is the structural contract here: retriable timeouts
//! (delays) are shape-transparent and the whole trace is checked;
//! a non-retriable timeout (drop) truncates verification to the
//! pre-fault prefix, with the recovery suffix policed by the hazard
//! pass alone.

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_analysis::{analyze, verify_faulted};
use pscg_fault::{FaultAction, FaultPlan, FaultSite};
use pscg_precond::Jacobi;
use pscg_sim::{Layout, MatrixProfile, OpTrace, SimCtx};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

const S: usize = 3;
const N: usize = 8;

fn all_methods() -> [MethodKind; 11] {
    [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ]
}

/// Runs `method` under `plan` through the resilient supervisor on a
/// traced context and returns the trace plus how many faults fired.
fn perturbed_trace(method: MethodKind, plan: FaultPlan) -> (OpTrace, usize) {
    let g = Grid3::cube(N);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let prof = MatrixProfile::stencil3d(N, N, N, 1, a.nnz(), Layout::Box);
    let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), prof);
    ctx.arm_faults(plan);
    let opts = SolveOptions::with_rtol(1e-6).with_s(S);
    let _ = method.solve_resilient(&mut ctx, &b, None, &opts);
    let hits = ctx.fault_log().len();
    (
        ctx.take_trace().expect("traced context yields a trace"),
        hits,
    )
}

fn assert_schedule_clean(method: MethodKind, trace: &OpTrace, label: &str) {
    let report = analyze(trace);
    assert!(
        report.is_clean(),
        "{} under {label}: hazard analysis flagged the perturbed schedule: {report:?}",
        method.name()
    );
    let violations = verify_faulted(trace, method, S);
    assert!(
        violations.is_empty(),
        "{} under {label}: structure violations: {violations:?}",
        method.name()
    );
}

/// A delayed completion makes the solver spin on retriable timeouts
/// before the wait lands. That must neither create a hazard nor change
/// the verified schedule shape, for every method.
#[test]
fn delayed_completions_leave_schedules_hazard_free_and_verified() {
    let mut fired = 0;
    for method in all_methods() {
        let plan = FaultPlan::new(21).with(FaultSite::Wait, 1, FaultAction::Delay { ticks: 2 });
        let (trace, hits) = perturbed_trace(method, plan);
        fired += hits;
        assert_schedule_clean(method, &trace, "delay(2)");
    }
    // Blocking-only methods have no overlapped wait to delay; the
    // pipelined families must have been hit or the campaign is vacuous.
    assert!(fired > 0, "no delay fault ever fired across the sweep");
}

/// A duplicated completion delivers a *stale* payload — a silent data
/// fault with no timeout marker in the trace. The drift probe catches it
/// and the ladder restarts, which legitimately reshapes the schedule, so
/// structure verification applies only to methods the fault never hit;
/// the hazard pass (no double-wait, no overlap violations) must hold for
/// every method, recovery included.
#[test]
fn duplicated_completions_are_absorbed_without_hazards() {
    let mut fired = 0;
    for method in all_methods() {
        let plan = FaultPlan::new(22).with(FaultSite::Wait, 1, FaultAction::Duplicate);
        let (trace, hits) = perturbed_trace(method, plan);
        fired += hits;
        let report = analyze(&trace);
        assert!(
            report.is_clean(),
            "{} under duplicate: hazards: {report:?}",
            method.name()
        );
        if hits == 0 {
            let violations = verify_faulted(&trace, method, S);
            assert!(
                violations.is_empty(),
                "{} unhit by duplicate yet structurally off: {violations:?}",
                method.name()
            );
        }
    }
    assert!(fired > 0, "no duplicate fault ever fired across the sweep");
}

/// A dropped completion surfaces as a non-retriable timeout; recovery
/// re-posts and the pre-fault prefix must still verify strictly while the
/// whole trace (recovery included) stays hazard-free.
#[test]
fn dropped_completions_recover_with_clean_prefix_verification() {
    let mut fired = 0;
    for method in all_methods() {
        let plan = FaultPlan::new(23).with(FaultSite::Wait, 1, FaultAction::Drop);
        let (trace, hits) = perturbed_trace(method, plan);
        fired += hits;
        assert_schedule_clean(method, &trace, "drop");
    }
    assert!(fired > 0, "no drop fault ever fired across the sweep");
}

/// The pipelined s-step flagship under a compound plan — a delayed wait
/// (within the retry budget) *and* a perturbed reduction — stays clean
/// end to end.
#[test]
fn compound_fault_plan_on_pipescg_is_clean() {
    let plan = FaultPlan::new(24)
        .with(FaultSite::Wait, 1, FaultAction::Delay { ticks: 2 })
        .with(FaultSite::Reduce, 2, FaultAction::Perturb { eps: 1e-13 });
    let (trace, hits) = perturbed_trace(MethodKind::PipeScg, plan);
    assert!(hits > 0, "compound plan never fired");
    assert_schedule_clean(MethodKind::PipeScg, &trace, "delay+perturb");
}

/// A delay longer than the retry budget forces the supervisor to give up
/// on the handle and restart. It must *drain* the still-pending
/// reduction first — abandoning it would leave a collective in flight
/// under the restart's new posts, which the fault-aware hazard classes
/// (`AbandonedTimeout`, concurrent-on-comm) exist to catch. The restart
/// legitimately reshapes the schedule, so only the hazard pass applies.
#[test]
fn exhausted_retry_budget_drains_the_handle_instead_of_abandoning_it() {
    for method in [
        MethodKind::Pipecg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
    ] {
        let plan = FaultPlan::new(25).with(FaultSite::Wait, 1, FaultAction::Delay { ticks: 5 });
        let (trace, hits) = perturbed_trace(method, plan);
        assert!(hits > 0, "{}: over-budget delay never fired", method.name());
        let report = analyze(&trace);
        assert!(
            report.is_clean(),
            "{} abandoned a reduction across its restart: {report:?}",
            method.name()
        );
    }
}

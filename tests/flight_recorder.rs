//! Flight-recorder post-mortem contract (DESIGN.md §13).
//!
//! Arms the bounded flight recorder, drives a resilient solve through a
//! fault flood no recovery rung can survive (every allreduce returns NaN,
//! which also forces the supervisor's own true-residual verification to
//! reject every attempt), and checks that:
//!
//!   * the supervisor reports `SolveError::RecoveryExhausted` rather than
//!     hanging or claiming convergence, and
//!   * the dump it leaves behind is schema-valid, carries the
//!     `RecoveryExhausted` reason, and respects the configured frame bound.
//!
//! One `#[test]` only: the recorder is process-global state.

use pipescg::{MethodKind, SolveError, SolveOptions};
use pscg_fault::{FaultAction, FaultPlan, FaultSite};
use pscg_precond::Jacobi;
use pscg_sim::SimCtx;
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

#[test]
fn exhausted_recovery_leaves_a_valid_flight_dump() {
    let g = Grid3::cube(6);
    let a = poisson3d_7pt(g, None);
    let n = a.nrows();
    let xstar: Vec<f64> = (0..n).map(|i| (0.31 * i as f64).sin()).collect();
    let b = a.mul_vec(&xstar);

    let dump = std::env::temp_dir().join(format!("pscg-flight-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&dump);

    const FRAMES: usize = 12;
    pscg_obs::set_enabled(true);
    pscg_obs::flight::configure(FRAMES, Some(dump.clone()));

    // Every reduction in the solve — including the supervisor's
    // verification norms — comes back NaN, so no attempt can be accepted.
    let mut plan = FaultPlan::new(29);
    for nth in 0..20_000 {
        plan = plan.with(FaultSite::Reduce, nth, FaultAction::Nan);
    }

    let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
    ctx.arm_faults(plan);
    let opts = SolveOptions::with_rtol(1e-8).with_s(3);
    let outcome = MethodKind::PipePscg.solve_resilient(&mut ctx, &b, None, &opts);

    pscg_obs::flight::configure(0, None);
    pscg_obs::set_enabled(false);

    match outcome {
        Err(SolveError::RecoveryExhausted { .. }) => {}
        other => panic!("expected RecoveryExhausted, got {other:?}"),
    }

    let check = pscg_obs::flight::validate_flight_file(&dump)
        .unwrap_or_else(|e| panic!("flight dump invalid: {e}"));
    assert_eq!(check.reason, "RecoveryExhausted");
    // The ladder's final rung is a PCG restart, so the post-mortem frames
    // cover that last attempt, not the method the caller asked for.
    assert_eq!(check.method, MethodKind::Pcg.name());
    assert!(
        check.iters >= 1 && check.iters <= FRAMES,
        "iteration frames {} outside bound 1..={FRAMES}",
        check.iters
    );
    assert!(check.spans >= 1, "dump carries no kernel spans");

    let _ = std::fs::remove_file(&dump);
}

//! Observatory inertness contract (DESIGN.md §13): the streaming
//! aggregation mode and the flight recorder must be invisible to the
//! numerics — both when enabled and when configured-but-disabled.
//!
//! For every shipped method, at pool thread counts 1 and 4:
//!
//!   * a solve with telemetry enabled in `TelemetryMode::Aggregate` and the
//!     flight recorder armed produces bitwise-identical residual history,
//!     solution and operation sequence as the all-off baseline;
//!   * in that run the aggregation layer holds non-empty histograms, the
//!     raw span ring stays empty (O(1) memory is the whole point), and the
//!     flight ring retains iteration frames;
//!   * with the recorder still armed and the mode still `Aggregate` but the
//!     master telemetry switch off, nothing is captured anywhere.
//!
//! Separate integration-test binary on purpose: it mutates process-global
//! observability state (enable flag, mode, flight ring, thread pool), which
//! must not race with other tests. One `#[test]` keeps it single-writer.

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_obs::TelemetryMode;
use pscg_precond::Jacobi;
use pscg_sim::{Layout, MatrixProfile, SimCtx};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

const S: usize = 4;

fn all_methods() -> [MethodKind; 11] {
    [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ]
}

/// Debug renderings of a trace's ops with interned buffer ids masked
/// (`BufId(0)` = `ANON` is kept — anonymous vs tracked is structural).
fn op_shapes(trace: &pscg_sim::OpTrace) -> Vec<String> {
    trace
        .ops
        .iter()
        .map(|op| {
            let s = format!("{op:?}");
            let mut out = String::new();
            let mut rest = s.as_str();
            while let Some(pos) = rest.find("BufId(") {
                out.push_str(&rest[..pos + 6]);
                rest = &rest[pos + 6..];
                let end = rest.find(')').expect("BufId debug form");
                if &rest[..end] == "0" {
                    out.push('0');
                } else {
                    out.push('_');
                }
                rest = &rest[end..];
            }
            out.push_str(rest);
            out
        })
        .collect()
}

struct Run {
    hist_bits: Vec<u64>,
    x_bits: Vec<u64>,
    shapes: Vec<String>,
}

/// One traced solve at the current observatory settings.
fn run(method: MethodKind) -> Run {
    pscg_obs::metrics::take_last();
    pscg_obs::span::drain();
    pscg_obs::agg::drain();
    let g = Grid3::cube(8);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let prof = MatrixProfile::stencil3d(8, 8, 8, 1, a.nnz(), Layout::Box);
    let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), prof);
    let opts = SolveOptions::with_rtol(1e-6).with_s(S);
    let res = method.solve(&mut ctx, &b, None, &opts);
    assert!(res.converged(), "{} did not converge", method.name());
    Run {
        hist_bits: res.history.iter().map(|r| r.to_bits()).collect(),
        x_bits: res.x.iter().map(|v| v.to_bits()).collect(),
        shapes: op_shapes(&ctx.take_trace().unwrap()),
    }
}

#[test]
fn aggregate_mode_and_flight_recorder_are_inert() {
    // Force real chunking so the kernels genuinely split at 4 threads.
    pscg_par::knobs::set_spmv_chunk_nnz(256);
    pscg_par::knobs::set_gram_chunk_rows(64);

    for threads in [1usize, 4] {
        pscg_par::set_global_threads(threads);
        for method in all_methods() {
            // Baseline: everything off, nothing armed.
            pscg_obs::set_enabled(false);
            pscg_obs::set_mode(TelemetryMode::Full);
            pscg_obs::flight::configure(0, None);
            let off = run(method);

            // Observatory on: Aggregate mode + flight ring armed (no dump
            // path — the ring alone must stay invisible).
            pscg_obs::set_enabled(true);
            pscg_obs::set_mode(TelemetryMode::Aggregate);
            pscg_obs::flight::configure(8, None);
            let on = run(method);

            let agg = pscg_obs::agg::drain();
            let raw = pscg_obs::span::drain();
            let flight = pscg_obs::flight::dump("test");

            // Disabled-but-configured: the armed ring and the Aggregate
            // mode must capture nothing while the master switch is off.
            // (Re-arm to clear the enabled run's retained frames — the
            // ring deliberately keeps the last armed solve's post-mortem.)
            pscg_obs::flight::configure(0, None);
            pscg_obs::flight::configure(8, None);
            pscg_obs::set_enabled(false);
            let dark = run(method);
            let dark_agg = pscg_obs::agg::drain();
            let dark_flight = pscg_obs::flight::dump("test");

            pscg_obs::flight::configure(0, None);
            pscg_obs::set_mode(TelemetryMode::Full);

            for (label, other) in [("aggregate+flight", &on), ("dark", &dark)] {
                assert_eq!(
                    off.hist_bits,
                    other.hist_bits,
                    "{} @{threads}t [{label}]: residual history changed",
                    method.name()
                );
                assert_eq!(
                    off.x_bits,
                    other.x_bits,
                    "{} @{threads}t [{label}]: solution changed",
                    method.name()
                );
                assert_eq!(
                    off.shapes,
                    other.shapes,
                    "{} @{threads}t [{label}]: operation sequence changed",
                    method.name()
                );
            }

            // The enabled run fed the observatory...
            assert!(
                !agg.kinds.is_empty(),
                "{} @{threads}t: Aggregate mode recorded no histograms",
                method.name()
            );
            assert!(
                raw.records.is_empty(),
                "{} @{threads}t: Aggregate mode retained {} raw spans",
                method.name(),
                raw.records.len()
            );
            let dump = flight.unwrap_or_else(|| {
                panic!("{} @{threads}t: armed flight ring is empty", method.name())
            });
            let check = pscg_obs::flight::validate_flight_json(&dump)
                .unwrap_or_else(|e| panic!("{} @{threads}t: bad flight dump: {e}", method.name()));
            assert_eq!(check.method, method.name());
            assert!(check.iters >= 1 && check.iters <= 8, "{}", check.iters);

            // ...and the dark run fed nothing.
            assert!(
                dark_agg.kinds.is_empty(),
                "{} @{threads}t: disabled telemetry aggregated spans",
                method.name()
            );
            assert!(
                dark_flight.is_none(),
                "{} @{threads}t: disabled telemetry left flight frames",
                method.name()
            );
        }
    }
    pscg_par::set_global_threads(1);
}

//! The telemetry inertness contract: enabling runtime telemetry must be
//! invisible to everything except the telemetry outputs themselves.
//!
//! For every shipped method, at pool thread counts 1 and 4, a traced solve
//! with telemetry **on** must produce bitwise-identical residual history
//! and solution, and the identical operation sequence (`BufId`s masked as
//! in `par_engine_invariance`), as the telemetry-**off** run. On top of
//! that, the captured telemetry stream's per-iteration relative residuals
//! must equal the solver's reported convergence history bit for bit.
//!
//! This file is a separate integration-test binary on purpose: it mutates
//! the process-global telemetry flag, metrics collector and thread pool,
//! which must not race with other tests. The single `#[test]` keeps the
//! global settings single-writer.

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_precond::Jacobi;
use pscg_sim::{Layout, MatrixProfile, SimCtx};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

const S: usize = 4;

fn all_methods() -> [MethodKind; 11] {
    [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ]
}

/// Debug renderings of a trace's ops with interned buffer ids masked
/// (`BufId(0)` = `ANON` is kept — anonymous vs tracked is structural).
fn op_shapes(trace: &pscg_sim::OpTrace) -> Vec<String> {
    trace
        .ops
        .iter()
        .map(|op| {
            let s = format!("{op:?}");
            let mut out = String::new();
            let mut rest = s.as_str();
            while let Some(pos) = rest.find("BufId(") {
                out.push_str(&rest[..pos + 6]);
                rest = &rest[pos + 6..];
                let end = rest.find(')').expect("BufId debug form");
                if &rest[..end] == "0" {
                    out.push('0');
                } else {
                    out.push('_');
                }
                rest = &rest[end..];
            }
            out.push_str(rest);
            out
        })
        .collect()
}

struct Run {
    hist_bits: Vec<u64>,
    x_bits: Vec<u64>,
    shapes: Vec<String>,
    telemetry: Option<pscg_obs::metrics::SolveTelemetry>,
}

/// One traced solve at the current telemetry/thread settings.
fn run(method: MethodKind) -> Run {
    // Start from a clean collector and span rings so each capture is
    // attributable to this solve alone.
    pscg_obs::metrics::take_last();
    pscg_obs::span::drain();
    let g = Grid3::cube(8);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let prof = MatrixProfile::stencil3d(8, 8, 8, 1, a.nnz(), Layout::Box);
    let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), prof);
    let opts = SolveOptions::with_rtol(1e-6).with_s(S);
    let res = method.solve(&mut ctx, &b, None, &opts);
    assert!(res.converged(), "{} did not converge", method.name());
    Run {
        hist_bits: res.history.iter().map(|r| r.to_bits()).collect(),
        x_bits: res.x.iter().map(|v| v.to_bits()).collect(),
        shapes: op_shapes(&ctx.take_trace().unwrap()),
        telemetry: pscg_obs::metrics::take_last(),
    }
}

#[test]
fn telemetry_is_inert_and_streams_match_history() {
    // Force real chunking so the kernels genuinely split at 4 threads.
    pscg_par::knobs::set_spmv_chunk_nnz(256);
    pscg_par::knobs::set_gram_chunk_rows(64);

    for threads in [1usize, 4] {
        pscg_par::set_global_threads(threads);
        for method in all_methods() {
            pscg_obs::set_enabled(false);
            let off = run(method);
            assert!(
                off.telemetry.is_none(),
                "{}: disabled telemetry captured a stream",
                method.name()
            );
            pscg_obs::set_enabled(true);
            let on = run(method);
            pscg_obs::set_enabled(false);

            assert_eq!(
                off.hist_bits,
                on.hist_bits,
                "{} @{threads}t: residual history changed with telemetry on",
                method.name()
            );
            assert_eq!(
                off.x_bits,
                on.x_bits,
                "{} @{threads}t: solution changed with telemetry on",
                method.name()
            );
            assert_eq!(
                off.shapes,
                on.shapes,
                "{} @{threads}t: operation sequence changed with telemetry on",
                method.name()
            );

            let tel = on
                .telemetry
                .unwrap_or_else(|| panic!("{}: enabled telemetry captured nothing", method.name()));
            assert_eq!(tel.meta.method, method.name());
            assert_eq!(tel.meta.threads, threads);
            let stream_bits: Vec<u64> = tel.relres_stream().iter().map(|r| r.to_bits()).collect();
            assert_eq!(
                stream_bits,
                on.hist_bits,
                "{} @{threads}t: telemetry residual stream diverges from history",
                method.name()
            );
            assert_eq!(tel.finish.iterations, tel.iters.last().unwrap().iter);
            // The stagnation rule is recorded exactly for the one method
            // that arms it.
            if method == MethodKind::Hybrid {
                let st = tel.meta.stagnation.expect("hybrid arms stagnation");
                assert_eq!(st, pipescg::methods::hybrid::STAGNATION);
            } else {
                assert!(tel.meta.stagnation.is_none(), "{}", method.name());
            }
        }
    }
    pscg_par::set_global_threads(1);
}

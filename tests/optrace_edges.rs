//! Edge cases of the logical-trace layer: traces with no iteration loop,
//! and the marginal-rate subtraction trick the Table I validation relies
//! on (two runs of different tightness share an identical setup prefix, so
//! count differences isolate exact per-pass rates).

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_analysis::{analyze, verify};
use pscg_precond::Jacobi;
use pscg_sim::{Layout, MatrixProfile, Op, OpTrace, SimCtx};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

#[test]
fn empty_trace_is_clean_and_countless() {
    let t = OpTrace::new(32);
    assert_eq!(t.comm_counts(), (0, 0, 0, 0));
    assert!(t.completion_edges().is_empty());
    let report = analyze(&t);
    assert!(report.is_clean());
    assert!(report.windows.is_empty());
    assert!(report.probes.is_empty());
    // Structure verification has nothing to check without a single
    // convergence pass — every method accepts the empty schedule.
    assert!(verify(&t, MethodKind::Pcg, 4).is_empty());
    assert!(verify(&t, MethodKind::PipePscg, 4).is_empty());
}

#[test]
fn setup_only_trace_passes_structure_checks() {
    // A solve that converges at iteration zero records only setup work:
    // reference norm (pc + dots + blocking allreduce) and the initial
    // residual SPMV, but no loop pass.
    let mut t = OpTrace::new(32);
    t.push(Op::pc(0, 1.0, 8.0, 0));
    t.push(Op::spmv(0));
    t.push(Op::blocking(3));
    assert_eq!(t.comm_counts(), (1, 1, 1, 0));
    assert!(analyze(&t).is_clean());
    // No passes → the setup allowance covers everything, blocking or not.
    for kind in [MethodKind::Pcg, MethodKind::Pipecg, MethodKind::PipeScg] {
        assert!(verify(&t, kind, 4).is_empty(), "{}", kind.name());
    }
}

#[test]
fn exact_initial_guess_converges_in_setup_and_traces_clean() {
    // End-to-end version of the setup-only case: starting from the exact
    // solution converges at the first check for every method; the recorded
    // trace must still be hazard-free and structurally valid.
    let g = Grid3::cube(5);
    let a = poisson3d_7pt(g, None);
    let xstar = vec![1.0; a.nrows()];
    let b = a.mul_vec(&xstar);
    let prof = MatrixProfile::stencil3d(5, 5, 5, 1, a.nnz(), Layout::Box);
    for kind in [MethodKind::Pcg, MethodKind::Pipecg, MethodKind::PipePscg] {
        let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), prof.clone());
        let res = kind.solve(
            &mut ctx,
            &b,
            Some(&xstar),
            &SolveOptions::with_rtol(1e-6).with_s(3),
        );
        assert!(res.converged(), "{}", kind.name());
        let trace = ctx.take_trace().unwrap();
        assert!(analyze(&trace).is_clean(), "{}", kind.name());
        assert!(verify(&trace, kind, 3).is_empty(), "{}", kind.name());
    }
}

#[test]
fn marginal_rates_subtract_setup_exactly() {
    // The loose and tight runs share a bit-identical setup prefix, so
    // subtracting their counts yields the exact per-pass communication
    // rate with no setup contamination — here for PIPECG: one
    // non-blocking allreduce and one SPMV per extra pass, and not a
    // single extra blocking allreduce.
    let g = Grid3::cube(6);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let prof = MatrixProfile::stencil3d(6, 6, 6, 1, a.nnz(), Layout::Box);
    let run = |rtol: f64| {
        let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), prof.clone());
        let res = MethodKind::Pipecg.solve(&mut ctx, &b, None, &SolveOptions::with_rtol(rtol));
        (res.history.len(), ctx.take_trace().unwrap())
    };
    let (passes_loose, loose) = run(1e-2);
    let (passes_tight, tight) = run(1e-9);
    assert!(passes_tight > passes_loose, "runs must differ to subtract");
    let d_passes = passes_tight - passes_loose;
    let (spmv_l, _, blk_l, nb_l) = loose.comm_counts();
    let (spmv_t, _, blk_t, nb_t) = tight.comm_counts();
    assert_eq!(nb_t - nb_l, d_passes);
    assert_eq!(spmv_t - spmv_l, d_passes);
    assert_eq!(blk_t, blk_l);
}

//! Determinism contract of the shared-memory kernel engine: every parallel
//! kernel must be **bitwise** identical to its serial evaluation at every
//! thread count, because chunk boundaries are functions of the shape and
//! the chunk knobs only — never of the pool width.
//!
//! The sweeps run on seeded random inputs ([`pscg_sparse::SplitMix64`]) over
//! ragged lengths chosen to straddle the chunk boundaries (the knobs are
//! pinned small here so even tiny inputs split into many chunks). Every
//! test function installs the *same* knob values, so the process-global
//! settings are race-free under the parallel test runner.

use pscg_par::{knobs, Pool};
use pscg_sparse::dense::DenseMatrix;
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
use pscg_sparse::{CooMatrix, CsrMatrix, MultiVector, SplitMix64};

/// Thread counts the contract is checked at (including a prime, and more
/// lanes than the CI runner has cores).
const THREADS: [usize; 4] = [1, 2, 4, 7];

/// Row counts straddling the pinned chunk sizes below.
const LENGTHS: [usize; 13] = [1, 2, 3, 5, 17, 63, 64, 65, 129, 1000, 4095, 4096, 4097];

/// Pins the chunk knobs small enough that even the shortest sweeps split
/// into several chunks. Idempotent — every test installs the same values.
fn pin_knobs() {
    knobs::set_spmv_chunk_nnz(64);
    knobs::set_gram_chunk_rows(32);
}

fn random_vec(rng: &mut SplitMix64, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

fn random_multivec(rng: &mut SplitMix64, n: usize, ncols: usize) -> MultiVector {
    let cols: Vec<Vec<f64>> = (0..ncols).map(|_| random_vec(rng, n)).collect();
    MultiVector::from_columns(&cols.iter().map(|c| c.as_slice()).collect::<Vec<_>>())
}

fn random_dense(rng: &mut SplitMix64, nrows: usize, ncols: usize) -> DenseMatrix {
    let mut b = DenseMatrix::zeros(nrows, ncols);
    for i in 0..nrows {
        for j in 0..ncols {
            // Leave some exact zeros so the coef == 0.0 skip path is hit.
            let v = if rng.below(5) == 0 {
                0.0
            } else {
                rng.uniform(-1.0, 1.0)
            };
            b.set(i, j, v);
        }
    }
    b
}

/// A random square sparse matrix with a guaranteed diagonal (so no row is
/// empty-by-construction, though duplicates may still cancel structure).
fn random_csr(rng: &mut SplitMix64, n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for _ in 0..rng.below(6 * n.max(1)) {
        let r = rng.below(n);
        let c = rng.below(n);
        coo.push(r, c, rng.uniform(-1.0, 1.0)).unwrap();
    }
    for i in 0..n {
        coo.push(i, i, 2.0).unwrap();
    }
    coo.to_csr()
}

#[test]
fn spmv_is_bitwise_identical_across_thread_counts() {
    pin_knobs();
    let mut rng = SplitMix64::new(0x5157_0001);
    for &n in &LENGTHS {
        let a = random_csr(&mut rng, n);
        let x = random_vec(&mut rng, n);
        let mut reference = vec![0.0; n];
        a.spmv_with(&Pool::new(1), &x, &mut reference);
        for &t in &THREADS[1..] {
            let mut y = vec![f64::NAN; n];
            a.spmv_with(&Pool::new(t), &x, &mut y);
            assert_eq!(
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "spmv diverged at n = {n}, {t} threads"
            );
        }
    }
}

#[test]
fn windowed_spmv_matches_full_spmv_rows_bitwise() {
    pin_knobs();
    // The stencil matrix has enough nnz per row that the windowed kernel
    // takes its parallel path even for mid-size windows.
    let a = poisson3d_7pt(Grid3::cube(9), None);
    let n = a.nrows();
    let mut rng = SplitMix64::new(0x5157_0002);
    let x = random_vec(&mut rng, n);
    for (lo, hi) in [(0, n), (1, n - 1), (17, 203), (n / 2, n / 2), (5, 6)] {
        let mut reference = vec![0.0; hi - lo];
        a.spmv_rows_with(&Pool::new(1), lo, hi, &x, &mut reference);
        for &t in &THREADS[1..] {
            let mut y = vec![f64::NAN; hi - lo];
            a.spmv_rows_with(&Pool::new(t), lo, hi, &x, &mut y);
            assert_eq!(
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "spmv_rows diverged on window [{lo}, {hi}) at {t} threads"
            );
        }
    }
}

#[test]
fn gram_and_dot_sweeps_are_bitwise_identical_across_thread_counts() {
    pin_knobs();
    let mut rng = SplitMix64::new(0x5157_0003);
    let s = 3;
    for &n in &LENGTHS {
        let x = random_multivec(&mut rng, n, s + 1);
        let y = random_multivec(&mut rng, n, s + 1);
        let v = random_vec(&mut rng, n);
        // Full range plus an offset row window (when it fits) so the
        // chunk grid never aligns with the window start.
        let windows = if n >= 2 {
            [(0, n), (1, n - 1)]
        } else {
            [(0, n); 2]
        };
        for &(lo, hi) in &windows {
            let g1 = x.gram_window_with(&Pool::new(1), &y, lo, hi);
            let d1 = x.dot_vec_window_with(&Pool::new(1), &v, lo, hi);
            let r1 = x.gram_range_with(&Pool::new(1), 0..s, &y, 1..s + 1);
            for &t in &THREADS[1..] {
                let pool = Pool::new(t);
                let gt = x.gram_window_with(&pool, &y, lo, hi);
                let dt = x.dot_vec_window_with(&pool, &v, lo, hi);
                let rt = x.gram_range_with(&pool, 0..s, &y, 1..s + 1);
                for i in 0..s + 1 {
                    for j in 0..s + 1 {
                        assert_eq!(
                            g1.get(i, j).to_bits(),
                            gt.get(i, j).to_bits(),
                            "gram_window diverged at n = {n}, rows [{lo}, {hi}), {t} threads"
                        );
                    }
                }
                for i in 0..s {
                    for j in 0..s {
                        assert_eq!(
                            r1.get(i, j).to_bits(),
                            rt.get(i, j).to_bits(),
                            "gram_range diverged at n = {n}, {t} threads"
                        );
                    }
                }
                assert!(
                    d1.iter().zip(&dt).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "dot_vec_window diverged at n = {n}, rows [{lo}, {hi}), {t} threads"
                );
            }
        }
    }
}

#[test]
fn fused_update_sweeps_are_bitwise_identical_across_thread_counts() {
    pin_knobs();
    let mut rng = SplitMix64::new(0x5157_0004);
    let s = 4;
    for &n in &LENGTHS {
        let src = random_multivec(&mut rng, n, s + 1);
        let prev = random_multivec(&mut rng, n, s);
        let b = random_dense(&mut rng, s, s);
        let alpha = random_vec(&mut rng, s);
        let shift_src = random_vec(&mut rng, n);

        let mut dst1 = MultiVector::zeros(n, s);
        dst1.combine_window_with(&Pool::new(1), &src, 1, &prev, &b);
        let mut shift1 = vec![f64::NAN; n];
        prev.gemv_sub_into_with(&Pool::new(1), &alpha, &shift_src, &mut shift1);
        let mut acc1 = random_multivec(&mut rng, n, s);
        let acc_seed = acc1.clone();
        acc1.add_mul_with(&Pool::new(1), &prev, &b);

        for &t in &THREADS[1..] {
            let pool = Pool::new(t);
            let mut dst = MultiVector::zeros(n, s);
            dst.combine_window_with(&pool, &src, 1, &prev, &b);
            let mut shift = vec![f64::NAN; n];
            prev.gemv_sub_into_with(&pool, &alpha, &shift_src, &mut shift);
            let mut acc = acc_seed.clone();
            acc.add_mul_with(&pool, &prev, &b);
            for j in 0..s {
                assert!(
                    dst1.col(j)
                        .iter()
                        .zip(dst.col(j))
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "combine_window diverged at n = {n}, col {j}, {t} threads"
                );
                assert!(
                    acc1.col(j)
                        .iter()
                        .zip(acc.col(j))
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "add_mul diverged at n = {n}, col {j}, {t} threads"
                );
            }
            assert!(
                shift1
                    .iter()
                    .zip(&shift)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "gemv_sub_into diverged at n = {n}, {t} threads"
            );
        }
    }
}

#[test]
fn single_chunk_gram_reproduces_the_unchunked_dot() {
    pin_knobs();
    // For n within one chunk the engine must reproduce the plain kernel
    // dot bitwise — the anchor tying the chunked fold to the legacy values.
    let mut rng = SplitMix64::new(0x5157_0005);
    let n = 31; // < gram_chunk_rows = 32
    let x = random_multivec(&mut rng, n, 2);
    let y = random_multivec(&mut rng, n, 2);
    let g = x.gram_with(&Pool::new(7), &y);
    for i in 0..2 {
        for j in 0..2 {
            let expect = pscg_sparse::kernels::dot(x.col(i), y.col(j));
            assert_eq!(g.get(i, j).to_bits(), expect.to_bits());
        }
    }
}

//! The robustness acceptance bar: for every shipped method, a mid-solve
//! bitflip, a NaN'd preconditioner output, and a dropped reduction
//! completion must each end in one of exactly two outcomes —
//!
//! 1. convergence whose *recomputed* residual `‖b − A x‖ / ‖b‖` confirms
//!    the tolerance (possibly after residual replacement / restart), or
//! 2. an explicit [`SolveError`].
//!
//! Never a hang (the test completing at all covers that: a dropped
//! completion surfaces as a timeout in the simulator, not a blocked wait),
//! and never a silent wrong answer (claimed convergence contradicted by
//! the recomputed residual).

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_fault::{FaultAction, FaultPlan, FaultSite};
use pscg_precond::Jacobi;
use pscg_sim::SimCtx;
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

const RTOL: f64 = 1e-7;

fn all_methods() -> [MethodKind; 11] {
    [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ]
}

fn problem() -> (pscg_sparse::CsrMatrix, Vec<f64>) {
    let g = Grid3::cube(6);
    let a = poisson3d_7pt(g, None);
    let n = a.nrows();
    let xstar: Vec<f64> = (0..n).map(|i| (0.31 * i as f64).sin()).collect();
    let b = a.mul_vec(&xstar);
    (a, b)
}

/// Solves `method` under `plan` through the resilient supervisor and
/// enforces the recover-or-report contract. Returns how many faults the
/// injector actually applied.
fn assert_recovers_or_reports(method: MethodKind, plan: FaultPlan, label: &str) -> usize {
    let (a, b) = problem();
    let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
    ctx.arm_faults(plan);
    let opts = SolveOptions::with_rtol(RTOL).with_s(3);
    let outcome = method.solve_resilient(&mut ctx, &b, None, &opts);
    let hits = ctx.fault_log().len();
    match outcome {
        Ok(res) => {
            let t = res.true_relres(&a, &b);
            if res.converged() {
                assert!(
                    t.is_finite() && t <= RTOL * 100.0,
                    "{} [{label}]: silent wrong answer — reported {:?} at relres \
                     {:.3e} but true relres is {t:.3e}",
                    method.name(),
                    res.stop,
                    res.final_relres
                );
            }
        }
        Err(e) => {
            // An explicit error is an acceptable outcome — the solver
            // refused to vouch for a solution it could not verify.
            eprintln!("{} [{label}]: explicit error: {e}", method.name());
        }
    }
    hits
}

#[test]
fn every_method_survives_a_mid_solve_bitflip() {
    for method in all_methods() {
        // A high-mantissa flip in the 4th SpMV output: a large silent data
        // corruption well after the solve is under way.
        let plan = FaultPlan::new(11).with(FaultSite::Spmv, 3, FaultAction::BitFlip { bit: 51 });
        let hits = assert_recovers_or_reports(method, plan, "spmv bitflip");
        assert!(hits >= 1, "{}: the bitflip never fired", method.name());
    }
}

#[test]
fn every_method_survives_a_nan_preconditioner_output() {
    for method in all_methods() {
        let plan = FaultPlan::new(12).with(FaultSite::Pc, 1, FaultAction::Nan);
        // Unpreconditioned methods apply the PC only once (the reference
        // norm), so the 2nd-invocation fault may simply never fire — that
        // is a clean solve, which trivially satisfies the contract.
        assert_recovers_or_reports(method, plan, "pc nan");
    }
}

#[test]
fn every_method_survives_a_dropped_reduction_completion() {
    for method in all_methods() {
        // Drop the completion of the 2nd non-blocking reduction wait. In
        // the simulator this retires the handle and reports a timeout —
        // the solver must turn it into recovery or an explicit error, not
        // a hang. Methods with only blocking reductions never wait, so the
        // fault stays dormant and the solve is clean.
        let plan = FaultPlan::new(13).with(FaultSite::Wait, 1, FaultAction::Drop);
        assert_recovers_or_reports(method, plan, "dropped completion");
    }
}

#[test]
fn combined_campaign_still_ends_in_a_verdict() {
    // All three fault classes in one plan, plus a perturbed reduction: the
    // worst case the CI fault-matrix job exercises.
    for method in all_methods() {
        let plan = FaultPlan::new(14)
            .with(FaultSite::Spmv, 2, FaultAction::BitFlip { bit: 50 })
            .with(FaultSite::Reduce, 3, FaultAction::Perturb { eps: 1e-3 })
            .with(FaultSite::Wait, 2, FaultAction::Drop);
        let hits = assert_recovers_or_reports(method, plan, "combined");
        assert!(hits >= 1, "{}: no fault fired", method.name());
    }
}

//! The robustness acceptance bar: for every shipped method, a mid-solve
//! bitflip, a NaN'd preconditioner output, and a dropped reduction
//! completion must each end in one of exactly two outcomes —
//!
//! 1. convergence whose *recomputed* residual `‖b − A x‖ / ‖b‖` confirms
//!    the tolerance (possibly after residual replacement / restart), or
//! 2. an explicit [`SolveError`].
//!
//! Never a hang — every solve runs on a worker thread under a wall-clock
//! watchdog, so a method that blocks fails *fast* with its name and the
//! armed plan echoed instead of eating the suite's timeout — and never a
//! silent wrong answer (claimed convergence contradicted by the
//! recomputed residual).

use std::sync::mpsc;
use std::time::Duration;

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_fault::{FaultAction, FaultPlan, FaultSite};
use pscg_precond::Jacobi;
use pscg_sim::SimCtx;
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

const RTOL: f64 = 1e-7;

fn all_methods() -> [MethodKind; 11] {
    [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ]
}

fn problem() -> (pscg_sparse::CsrMatrix, Vec<f64>) {
    let g = Grid3::cube(6);
    let a = poisson3d_7pt(g, None);
    let n = a.nrows();
    let xstar: Vec<f64> = (0..n).map(|i| (0.31 * i as f64).sin()).collect();
    let b = a.mul_vec(&xstar);
    (a, b)
}

/// What the worker thread observed, sent back for the watchdog to judge.
struct CampaignVerdict {
    hits: usize,
    /// `Some((stop, final_relres, true_relres))` for an accepted result,
    /// `None` for an explicit error (also an acceptable outcome).
    accepted: Option<(String, f64, f64)>,
    error: Option<String>,
}

/// Solves `method` under `plan` through the resilient supervisor and
/// enforces the recover-or-report contract, with a wall-clock watchdog: a
/// solve that produces no verdict within 60 s fails fast with the method
/// name and the plan echoed. Returns how many faults the injector applied.
fn assert_recovers_or_reports(method: MethodKind, plan: FaultPlan, label: &str) -> usize {
    let plan_text = plan.to_text();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let (a, b) = problem();
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        ctx.arm_faults(plan);
        let opts = SolveOptions::with_rtol(RTOL).with_s(3);
        let outcome = method.solve_resilient(&mut ctx, &b, None, &opts);
        let hits = ctx.fault_log().len();
        let v = match outcome {
            Ok(res) => CampaignVerdict {
                hits,
                accepted: res.converged().then(|| {
                    (
                        format!("{:?}", res.stop),
                        res.final_relres,
                        res.true_relres(&a, &b),
                    )
                }),
                error: None,
            },
            Err(e) => CampaignVerdict {
                hits,
                accepted: None,
                error: Some(e.to_string()),
            },
        };
        let _ = tx.send(v);
    });
    let v = match rx.recv_timeout(Duration::from_secs(60)) {
        Ok(v) => v,
        Err(mpsc::RecvTimeoutError::Timeout) => panic!(
            "{} [{label}]: HANG — no verdict within 60s under plan:\n{plan_text}",
            method.name()
        ),
        Err(mpsc::RecvTimeoutError::Disconnected) => panic!(
            "{} [{label}]: worker died without a verdict under plan:\n{plan_text}",
            method.name()
        ),
    };
    if let Some((stop, relres, t)) = &v.accepted {
        assert!(
            t.is_finite() && *t <= RTOL * 100.0,
            "{} [{label}]: silent wrong answer — reported {stop} at relres \
             {relres:.3e} but true relres is {t:.3e}",
            method.name(),
        );
    }
    if let Some(e) = &v.error {
        // An explicit error is an acceptable outcome — the solver refused
        // to vouch for a solution it could not verify.
        eprintln!("{} [{label}]: explicit error: {e}", method.name());
    }
    v.hits
}

#[test]
fn every_method_survives_a_mid_solve_bitflip() {
    for method in all_methods() {
        // A high-mantissa flip in the 4th SpMV output: a large silent data
        // corruption well after the solve is under way.
        let plan = FaultPlan::new(11).with(FaultSite::Spmv, 3, FaultAction::BitFlip { bit: 51 });
        let hits = assert_recovers_or_reports(method, plan, "spmv bitflip");
        assert!(hits >= 1, "{}: the bitflip never fired", method.name());
    }
}

#[test]
fn every_method_survives_a_nan_preconditioner_output() {
    for method in all_methods() {
        let plan = FaultPlan::new(12).with(FaultSite::Pc, 1, FaultAction::Nan);
        // Unpreconditioned methods apply the PC only once (the reference
        // norm), so the 2nd-invocation fault may simply never fire — that
        // is a clean solve, which trivially satisfies the contract.
        assert_recovers_or_reports(method, plan, "pc nan");
    }
}

#[test]
fn every_method_survives_a_dropped_reduction_completion() {
    for method in all_methods() {
        // Drop the completion of the 2nd non-blocking reduction wait. In
        // the simulator this retires the handle and reports a timeout —
        // the solver must turn it into recovery or an explicit error, not
        // a hang. Methods with only blocking reductions never wait, so the
        // fault stays dormant and the solve is clean.
        let plan = FaultPlan::new(13).with(FaultSite::Wait, 1, FaultAction::Drop);
        assert_recovers_or_reports(method, plan, "dropped completion");
    }
}

#[test]
fn combined_campaign_still_ends_in_a_verdict() {
    // All three fault classes in one plan, plus a perturbed reduction: the
    // worst case the CI fault-matrix job exercises.
    for method in all_methods() {
        let plan = FaultPlan::new(14)
            .with(FaultSite::Spmv, 2, FaultAction::BitFlip { bit: 50 })
            .with(FaultSite::Reduce, 3, FaultAction::Perturb { eps: 1e-3 })
            .with(FaultSite::Wait, 2, FaultAction::Drop);
        let hits = assert_recovers_or_reports(method, plan, "combined");
        assert!(hits >= 1, "{}: no fault fired", method.name());
    }
}

#[test]
fn data_faults_composed_with_a_rank_death_still_end_in_a_verdict() {
    // The chaos generator mixes data corruption with rank failure; the
    // recover-or-report contract must hold for the composition too.
    for method in all_methods() {
        let plan = FaultPlan::new(15)
            .with(FaultSite::Spmv, 4, FaultAction::BitFlip { bit: 48 })
            .with(FaultSite::Wait, 1, FaultAction::Delay { ticks: 2 })
            .with_rank_dead(3, 6)
            .with_rank_slow(5, 4.0, 2);
        assert_recovers_or_reports(method, plan, "data + rank death");
    }
}

//! Validates the paper's Table I against *measured* operation counters:
//! every method's implementation must exhibit exactly the allreduce cadence,
//! SPMV/PC counts and overlap structure the cost model claims for it.
//!
//! Per-step rates are measured *marginally* — as the difference between a
//! loose-tolerance and a tight-tolerance run — so one-off setup work cancels
//! exactly.

use pipescg::costmodel;
use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_precond::Jacobi;
use pscg_sim::{Layout, MatrixProfile, Op, OpTrace, SimCtx};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

struct Measured {
    iterations: usize,
    trace: OpTrace,
}

fn run(method: MethodKind, s: usize, rtol: f64) -> Measured {
    let g = Grid3::cube(10);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let nnz = a.nnz();
    let prof = MatrixProfile::stencil3d(10, 10, 10, 1, nnz, Layout::Box);
    let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), prof);
    let opts = SolveOptions {
        rtol,
        s,
        max_iters: 5000,
        ..Default::default()
    };
    let res = method.solve(&mut ctx, &b, None, &opts);
    assert!(
        res.converged(),
        "{} did not converge at rtol {rtol}",
        method.name()
    );
    Measured {
        iterations: res.iterations,
        trace: ctx.take_trace().unwrap(),
    }
}

/// Marginal `(spmv, pc, allreduce)` rates per CG step between a loose and a
/// tight run.
fn marginal_rates(method: MethodKind, s: usize) -> (f64, f64, f64) {
    let loose = run(method, s, 1e-2);
    let tight = run(method, s, 1e-8);
    let steps = (tight.iterations - loose.iterations) as f64;
    assert!(
        steps >= 10.0,
        "{}: need a usable step delta, got {steps}",
        method.name()
    );
    let (s1, p1, b1, n1) = loose.trace.comm_counts();
    let (s2, p2, b2, n2) = tight.trace.comm_counts();
    (
        (s2 - s1) as f64 / steps,
        (p2 - p1) as f64 / steps,
        ((b2 + n2) - (b1 + n1)) as f64 / steps,
    )
}

#[test]
fn pcg_measures_three_allreduces_and_one_spmv_per_step() {
    let (spmv, pc, allr) = marginal_rates(MethodKind::Pcg, 3);
    let row = &costmodel::table1()[0];
    assert_eq!(row.method, "PCG");
    let expect = (row.allreduces)(3) as f64 / 3.0;
    assert!(
        (allr - expect).abs() < 0.05,
        "allreduce rate {allr}, Table I {expect}"
    );
    assert!((spmv - 1.0).abs() < 0.05, "spmv rate {spmv}");
    assert!((pc - 1.0).abs() < 0.05, "pc rate {pc}");
}

#[test]
fn pipecg_measures_one_allreduce_per_step() {
    let (spmv, pc, allr) = marginal_rates(MethodKind::Pipecg, 3);
    assert!((allr - 1.0).abs() < 0.05, "allreduce rate {allr}");
    assert!((spmv - 1.0).abs() < 0.05, "spmv rate {spmv}");
    assert!((pc - 1.0).abs() < 0.05, "pc rate {pc}");
}

#[test]
fn half_step_methods_measure_one_allreduce_per_two_steps() {
    for method in [MethodKind::Pipecg3, MethodKind::PipecgOati] {
        let (spmv, _, allr) = marginal_rates(method, 3);
        assert!(
            (allr - 0.5).abs() < 0.05,
            "{}: allreduce rate {allr}",
            method.name()
        );
        // OATI's periodic replacement adds a small SPMV surcharge; PIPECG3
        // stays at exactly one per step.
        assert!(spmv < 1.25, "{}: spmv rate {spmv}", method.name());
    }
}

#[test]
fn s_step_methods_measure_one_allreduce_per_s_steps() {
    for (method, s) in [
        (MethodKind::Pscg, 3),
        (MethodKind::PipeScg, 3),
        (MethodKind::PipePscg, 3),
        (MethodKind::PipePscg, 5),
    ] {
        let (_, _, allr) = marginal_rates(method, s);
        let expect = 1.0 / s as f64;
        assert!(
            (allr - expect).abs() < 0.02,
            "{} s={s}: allreduce rate {allr}, expected {expect}",
            method.name()
        );
    }
}

#[test]
fn pscg_pays_extra_kernels_but_pipe_pscg_does_not() {
    let s = 3;
    let (spmv_pscg, pc_pscg, _) = marginal_rates(MethodKind::Pscg, s);
    let (spmv_pipe, pc_pipe, _) = marginal_rates(MethodKind::PipePscg, s);
    // PsCG: (s+1)/s per step; PIPE-PsCG: exactly 1 per step.
    let extra = (s as f64 + 1.0) / s as f64;
    assert!(
        (spmv_pscg - extra).abs() < 0.05,
        "PsCG spmv rate {spmv_pscg}"
    );
    assert!((pc_pscg - extra).abs() < 0.05, "PsCG pc rate {pc_pscg}");
    assert!(
        (spmv_pipe - 1.0).abs() < 0.05,
        "PIPE-PsCG spmv rate {spmv_pipe}"
    );
    assert!((pc_pipe - 1.0).abs() < 0.05, "PIPE-PsCG pc rate {pc_pipe}");
}

#[test]
fn scg_sspmv_removes_exactly_the_extra_spmv() {
    let (spmv_scg, _, _) = marginal_rates(MethodKind::Scg, 3);
    let (spmv_fixed, _, _) = marginal_rates(MethodKind::ScgSspmv, 3);
    assert!(
        (spmv_scg - 4.0 / 3.0).abs() < 0.05,
        "sCG spmv rate {spmv_scg}"
    );
    assert!(
        (spmv_fixed - 1.0).abs() < 0.05,
        "sCG-sSPMV spmv rate {spmv_fixed}"
    );
}

#[test]
fn pipelined_methods_overlap_their_allreduces_with_kernels() {
    // In the trace, every ArPost..ArWait window of the pipelined methods
    // must contain the advertised kernel work.
    for (method, s, min_kernels) in [
        (MethodKind::Pipecg, 3, 2),   // 1 PC + 1 SPMV
        (MethodKind::PipePscg, 3, 6), // s PCs + s SPMVs
    ] {
        let m = run(method, s, 1e-6);
        let mut kernels_in_window = 0usize;
        let mut in_window = false;
        let mut checked = 0;
        for op in &m.trace.ops {
            match op {
                Op::ArPost { .. } => {
                    in_window = true;
                    kernels_in_window = 0;
                }
                Op::ArWait { .. } => {
                    if checked > 0 {
                        assert!(
                            kernels_in_window >= min_kernels,
                            "{}: window held {kernels_in_window} kernels, need {min_kernels}",
                            method.name()
                        );
                    }
                    checked += 1;
                    in_window = false;
                }
                Op::Spmv { .. } | Op::Pc { .. } if in_window => kernels_in_window += 1,
                _ => {}
            }
        }
        assert!(checked > 2, "{}: too few windows", method.name());
    }
}

#[test]
fn memory_footprint_ordering_matches_table1() {
    // Measured vector allocations must preserve Table I's ordering:
    // PCG < PIPECG < depth-2 < PIPE-PsCG.
    fn vectors(method: MethodKind, s: usize) -> usize {
        let g = Grid3::cube(5);
        let a = poisson3d_7pt(g, None);
        let b = a.mul_vec(&vec![1.0; a.nrows()]);
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let opts = SolveOptions {
            rtol: 1e-4,
            s,
            ..Default::default()
        };
        let res = method.solve(&mut ctx, &b, None, &opts);
        assert!(res.converged());
        res.counters.vectors_allocated
    }
    let pcg = vectors(MethodKind::Pcg, 3);
    let pipecg = vectors(MethodKind::Pipecg, 3);
    let oati = vectors(MethodKind::PipecgOati, 3);
    let pipe_pscg = vectors(MethodKind::PipePscg, 3);
    assert!(pcg < pipecg, "PCG {pcg} vs PIPECG {pipecg}");
    assert!(pipecg < oati, "PIPECG {pipecg} vs OATI {oati}");
    assert!(oati < pipe_pscg, "OATI {oati} vs PIPE-PsCG {pipe_pscg}");
}

#[test]
fn analytic_time_model_agrees_with_replay_ordering() {
    // The Table I expressions and the discrete-event replay must agree on
    // who wins at scale.
    let machine = pscg_sim::Machine::sahasrat();
    let profile = MatrixProfile::stencil3d(100, 100, 100, 2, 124_000_000, Layout::Box);
    let s = 3;
    let (g, pc, spmv) = costmodel::kernel_times(&machine, &profile, 2880, 27, 1.0, 24.0);
    let rows = costmodel::table1();
    let t_pcg = rows[0].time.evaluate(s, g, pc, spmv);
    let t_pipecg = rows[1].time.evaluate(s, g, pc, spmv);
    let t_pipe_pscg = rows[6].time.evaluate(s, g, pc, spmv);
    assert!(
        t_pipe_pscg < t_pipecg,
        "PIPE-PsCG must beat PIPECG at 120 nodes"
    );
    assert!(t_pipecg < t_pcg, "PIPECG must beat PCG at 120 nodes");
}

//! Cross-engine equivalence: the same solver code must produce the same
//! solution whether it runs on the single-rank sim engine or as a genuine
//! SPMD program on the thread-backed message-passing runtime.
//!
//! This is the test that certifies the pipelined methods are *actually
//! distributed* — every dot product goes through a real (non-)blocking
//! allreduce, every SpMV through a real halo exchange — and not artifacts of
//! a shared address space.

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_precond::Jacobi;
use pscg_sim::thread::{run_spmd, LocalPc, RankCtx};
use pscg_sim::SimCtx;
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
use pscg_sparse::CsrMatrix;

fn problem() -> (CsrMatrix, Vec<f64>) {
    let g = Grid3::new(5, 5, 8);
    let a = poisson3d_7pt(g, None);
    let n = a.nrows();
    let xstar: Vec<f64> = (0..n).map(|i| (0.17 * i as f64).sin()).collect();
    let b = a.mul_vec(&xstar);
    (a, b)
}

/// Runs `method` distributed over `p` ranks and returns the gathered
/// solution with the iteration count.
fn solve_distributed(
    a: &CsrMatrix,
    b: &[f64],
    method: MethodKind,
    p: usize,
    opts: &SolveOptions,
    jacobi: bool,
) -> (Vec<f64>, usize) {
    let (part, plan) = RankCtx::prepare(a, p);
    let inv_diag: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();
    let pieces = run_spmd(p, |rank, world| {
        let (lo, hi) = part.range(rank);
        let pc = if jacobi {
            LocalPc::Jacobi(inv_diag[lo..hi].to_vec())
        } else {
            LocalPc::None
        };
        let mut ctx = RankCtx::new(world, rank, a, &part, &plan, pc);
        let res = method.solve(&mut ctx, &b[lo..hi], None, opts);
        (res.x, res.iterations)
    });
    let iters = pieces[0].1;
    for (_, it) in &pieces {
        assert_eq!(*it, iters, "ranks disagreed on iteration count");
    }
    (pieces.into_iter().flat_map(|(x, _)| x).collect(), iters)
}

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    let max = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    assert!(max < tol, "{what}: max deviation {max}");
}

#[test]
fn pcg_distributed_matches_serial_across_rank_counts() {
    let (a, b) = problem();
    let opts = SolveOptions::with_rtol(1e-8);
    let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
    let serial = MethodKind::Pcg.solve(&mut ctx, &b, None, &opts);
    assert!(serial.converged());
    for p in [1usize, 2, 4, 7] {
        let (x, iters) = solve_distributed(&a, &b, MethodKind::Pcg, p, &opts, true);
        // Reduction orders differ between engines, so iterates drift at
        // roundoff level; iteration counts may differ by a step.
        assert!(
            (iters as i64 - serial.iterations as i64).abs() <= 1,
            "p={p}"
        );
        assert_close(&x, &serial.x, 1e-6, &format!("PCG p={p}"));
    }
}

#[test]
fn pipecg_distributed_matches_serial() {
    let (a, b) = problem();
    let opts = SolveOptions::with_rtol(1e-8);
    let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
    let serial = MethodKind::Pipecg.solve(&mut ctx, &b, None, &opts);
    for p in [2usize, 5] {
        let (x, _) = solve_distributed(&a, &b, MethodKind::Pipecg, p, &opts, true);
        assert_close(&x, &serial.x, 1e-6, &format!("PIPECG p={p}"));
    }
}

#[test]
fn pipe_scg_distributed_matches_serial() {
    let (a, b) = problem();
    let opts = SolveOptions {
        rtol: 1e-7,
        s: 3,
        ..Default::default()
    };
    let mut ctx = SimCtx::serial(&a, Box::new(pscg_sparse::IdentityOp::new(a.nrows())));
    let serial = MethodKind::PipeScg.solve(&mut ctx, &b, None, &opts);
    assert!(serial.converged());
    for p in [2usize, 4] {
        let (x, _) = solve_distributed(&a, &b, MethodKind::PipeScg, p, &opts, false);
        assert_close(&x, &serial.x, 1e-5, &format!("PIPE-sCG p={p}"));
    }
}

#[test]
fn pipe_pscg_distributed_matches_serial() {
    let (a, b) = problem();
    let opts = SolveOptions {
        rtol: 1e-7,
        s: 3,
        ..Default::default()
    };
    let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
    let serial = MethodKind::PipePscg.solve(&mut ctx, &b, None, &opts);
    assert!(serial.converged());
    for p in [2usize, 3, 6] {
        let (x, _) = solve_distributed(&a, &b, MethodKind::PipePscg, p, &opts, true);
        assert_close(&x, &serial.x, 1e-5, &format!("PIPE-PsCG p={p}"));
    }
}

#[test]
fn distributed_solution_actually_solves_the_system() {
    let (a, b) = problem();
    let opts = SolveOptions {
        rtol: 1e-8,
        s: 2,
        ..Default::default()
    };
    let (x, _) = solve_distributed(&a, &b, MethodKind::PipecgOati, 3, &opts, true);
    let ax = a.mul_vec(&x);
    let resid: f64 = ax
        .iter()
        .zip(&b)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt();
    let bnorm = pscg_sparse::kernels::norm2(&b);
    assert!(resid / bnorm < 1e-6, "true residual {}", resid / bnorm);
}

#[test]
fn single_rank_thread_engine_is_bit_identical_to_serial() {
    // With p = 1 both engines perform the same arithmetic in the same
    // order, so the results must agree exactly.
    let (a, b) = problem();
    let opts = SolveOptions::with_rtol(1e-8);
    let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
    let serial = MethodKind::Pcg.solve(&mut ctx, &b, None, &opts);
    let (x, iters) = solve_distributed(&a, &b, MethodKind::Pcg, 1, &opts, true);
    assert_eq!(iters, serial.iterations);
    assert_eq!(x, serial.x);
}

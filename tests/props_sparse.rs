//! Property-based tests (proptest) on the sparse substrate: CSR structure,
//! SpMV algebra, transposition, sparse products, dense LU and the block
//! kernels the s-step recurrences are built from.

use proptest::prelude::*;
use pscg_sparse::dense::DenseMatrix;
use pscg_sparse::{kernels, CooMatrix, CsrMatrix, MultiVector};

/// Strategy: a random sparse SPD-ish matrix built as `B + BT + n·I` from a
/// random sparse B — symmetric and strictly diagonally dominant.
fn spd_matrix(max_n: usize) -> impl Strategy<Value = CsrMatrix> {
    (2usize..max_n)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), 0..4 * n),
            )
        })
        .prop_map(|(n, trips)| {
            let mut coo = CooMatrix::new(n, n);
            for (r, c, v) in trips {
                coo.push_sym(r, c, v).unwrap();
            }
            for i in 0..n {
                // Dominant diagonal: each row has at most ~8 entries of |v|<=1
                // from the random triples (duplicates sum, so bound by count).
                coo.push(i, i, 4.0 * n as f64).unwrap();
            }
            coo.to_csr()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_roundtrips_through_matrix_market(a in spd_matrix(12)) {
        let mut buf = Vec::new();
        pscg_sparse::io::write_matrix_market(&a, &mut buf).unwrap();
        let b = pscg_sparse::io::read_matrix_market(buf.as_slice()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn spmv_is_linear(a in spd_matrix(12), s1 in -3.0f64..3.0, s2 in -3.0f64..3.0) {
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
        // A(s1 x + s2 y) == s1 Ax + s2 Ay
        let mut combo = vec![0.0; n];
        for i in 0..n {
            combo[i] = s1 * x[i] + s2 * y[i];
        }
        let lhs = a.mul_vec(&combo);
        let ax = a.mul_vec(&x);
        let ay = a.mul_vec(&y);
        for i in 0..n {
            let rhs = s1 * ax[i] + s2 * ay[i];
            prop_assert!((lhs[i] - rhs).abs() <= 1e-9 * (1.0 + rhs.abs()));
        }
    }

    #[test]
    fn transpose_preserves_spmv_adjoint(a in spd_matrix(12)) {
        // (Ax, y) == (x, AT y)
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| 2.0 - (i % 3) as f64).collect();
        let at = a.transpose();
        let lhs = kernels::dot(&a.mul_vec(&x), &y);
        let rhs = kernels::dot(&x, &at.mul_vec(&y));
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn matmul_agrees_with_composition(a in spd_matrix(10)) {
        // (A*A)x == A(Ax)
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let a2 = a.matmul(&a);
        let lhs = a2.mul_vec(&x);
        let rhs = a.mul_vec(&a.mul_vec(&x));
        for i in 0..n {
            prop_assert!((lhs[i] - rhs[i]).abs() <= 1e-6 * (1.0 + rhs[i].abs()));
        }
    }

    #[test]
    fn generated_matrices_are_spd_certified(a in spd_matrix(14)) {
        prop_assert!(a.is_symmetric(1e-12));
        prop_assert!(a.is_diagonally_dominant());
        // Gershgorin upper bound dominates the Rayleigh quotient of any x.
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.5).collect();
        let rayleigh = kernels::dot(&x, &a.mul_vec(&x)) / kernels::dot(&x, &x);
        prop_assert!(rayleigh <= a.gershgorin_upper() * (1.0 + 1e-12));
        prop_assert!(rayleigh > 0.0, "SPD matrices have positive Rayleigh quotients");
    }

    #[test]
    fn lu_solves_what_it_factors(a in spd_matrix(10), seed in 0u64..1000) {
        let n = a.nrows();
        // Dense copy of the sparse SPD matrix.
        let mut d = DenseMatrix::zeros(n, n);
        for r in 0..n {
            for (k, &c) in a.row_cols(r).iter().enumerate() {
                d.set(r, c, a.row_vals(r)[k]);
            }
        }
        let xstar: Vec<f64> = (0..n).map(|i| ((i as u64 * 31 + seed) % 17) as f64 - 8.0).collect();
        let b = d.matvec(&xstar);
        let x = d.solve(&b).unwrap();
        for i in 0..n {
            prop_assert!((x[i] - xstar[i]).abs() <= 1e-7 * (1.0 + xstar[i].abs()));
        }
    }

    #[test]
    fn block_addmul_matches_columnwise_axpys(ncols in 1usize..4, n in 4usize..40) {
        let cols: Vec<Vec<f64>> = (0..ncols)
            .map(|j| (0..n).map(|i| ((i + 3 * j) as f64 * 0.31).sin()).collect())
            .collect();
        let y = MultiVector::from_columns(&cols.iter().map(|c| c.as_slice()).collect::<Vec<_>>());
        let mut x1 = MultiVector::zeros(n, ncols);
        let mut b = DenseMatrix::zeros(ncols, ncols);
        for i in 0..ncols {
            for j in 0..ncols {
                b.set(i, j, ((i * ncols + j) as f64) * 0.25 - 0.3);
            }
        }
        x1.add_mul(&y, &b);
        // Reference: column-by-column axpys.
        let mut x2 = MultiVector::zeros(n, ncols);
        for j in 0..ncols {
            for k in 0..ncols {
                kernels::axpy(b.get(k, j), y.col(k), x2.col_mut(j));
            }
        }
        for j in 0..ncols {
            for i in 0..n {
                prop_assert!((x1.col(j)[i] - x2.col(j)[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gram_is_transpose_symmetric(n in 4usize..30, k in 1usize..4) {
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|j| (0..n).map(|i| ((i * (j + 2)) as f64 * 0.17).cos()).collect())
            .collect();
        let x = MultiVector::from_columns(&cols.iter().map(|c| c.as_slice()).collect::<Vec<_>>());
        let g = x.gram(&x);
        for i in 0..k {
            for j in 0..k {
                prop_assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-12);
            }
            prop_assert!(g.get(i, i) >= 0.0);
        }
    }

    #[test]
    fn partition_covers_and_balances(n in 1usize..5000, p in 1usize..64) {
        let part = pscg_sparse::RowBlockPartition::balanced(n, p);
        prop_assert_eq!(part.nrows(), n);
        let mut total = 0;
        for r in 0..p {
            let len = part.local_len(r);
            total += len;
            // Balanced: lengths differ by at most 1.
            prop_assert!(len + 1 >= n / p && len <= n / p + 1);
        }
        prop_assert_eq!(total, n);
    }
}

//! Property-style tests on the sparse substrate: CSR structure, SpMV
//! algebra, transposition, sparse products, dense LU and the block kernels
//! the s-step recurrences are built from.
//!
//! The environment is offline, so instead of proptest these run each
//! property over a deterministic sweep of seeded random inputs drawn from
//! [`pscg_sparse::SplitMix64`]; failures report the seed so a case can be
//! replayed exactly.

use pscg_sparse::dense::DenseMatrix;
use pscg_sparse::{kernels, CooMatrix, CsrMatrix, MultiVector, SplitMix64};

/// A random sparse SPD-ish matrix built as `B + Bᵀ + c·I` from a random
/// sparse B — symmetric and strictly diagonally dominant.
fn spd_matrix(rng: &mut SplitMix64, max_n: usize) -> CsrMatrix {
    let n = 2 + rng.below(max_n.saturating_sub(2).max(1));
    let ntrips = rng.below(4 * n);
    let mut coo = CooMatrix::new(n, n);
    for _ in 0..ntrips {
        let r = rng.below(n);
        let c = rng.below(n);
        let v = rng.uniform(-1.0, 1.0);
        coo.push_sym(r, c, v).unwrap();
    }
    for i in 0..n {
        // Dominant diagonal: each row has at most ~8 entries of |v|<=1 from
        // the random triples (duplicates sum, so bound by count).
        coo.push(i, i, 4.0 * n as f64).unwrap();
    }
    coo.to_csr()
}

#[test]
fn csr_roundtrips_through_matrix_market() {
    for seed in 0..48u64 {
        let a = spd_matrix(&mut SplitMix64::new(seed), 12);
        let mut buf = Vec::new();
        pscg_sparse::io::write_matrix_market(&a, &mut buf).unwrap();
        let b = pscg_sparse::io::read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn spmv_is_linear() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed);
        let a = spd_matrix(&mut rng, 12);
        let (s1, s2) = (rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0));
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
        // A(s1 x + s2 y) == s1 Ax + s2 Ay
        let mut combo = vec![0.0; n];
        for i in 0..n {
            combo[i] = s1 * x[i] + s2 * y[i];
        }
        let lhs = a.mul_vec(&combo);
        let ax = a.mul_vec(&x);
        let ay = a.mul_vec(&y);
        for i in 0..n {
            let rhs = s1 * ax[i] + s2 * ay[i];
            assert!(
                (lhs[i] - rhs).abs() <= 1e-9 * (1.0 + rhs.abs()),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn transpose_preserves_spmv_adjoint() {
    for seed in 0..48u64 {
        let a = spd_matrix(&mut SplitMix64::new(seed), 12);
        // (Ax, y) == (x, AT y)
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| 2.0 - (i % 3) as f64).collect();
        let at = a.transpose();
        let lhs = kernels::dot(&a.mul_vec(&x), &y);
        let rhs = kernels::dot(&x, &at.mul_vec(&y));
        assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()), "seed {seed}");
    }
}

#[test]
fn matmul_agrees_with_composition() {
    for seed in 0..32u64 {
        let a = spd_matrix(&mut SplitMix64::new(seed), 10);
        // (A*A)x == A(Ax)
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let a2 = a.matmul(&a);
        let lhs = a2.mul_vec(&x);
        let rhs = a.mul_vec(&a.mul_vec(&x));
        for i in 0..n {
            assert!(
                (lhs[i] - rhs[i]).abs() <= 1e-6 * (1.0 + rhs[i].abs()),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn generated_matrices_are_spd_certified() {
    for seed in 0..48u64 {
        let a = spd_matrix(&mut SplitMix64::new(seed), 14);
        assert!(a.is_symmetric(1e-12), "seed {seed}");
        assert!(a.is_diagonally_dominant(), "seed {seed}");
        // Gershgorin upper bound dominates the Rayleigh quotient of any x.
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.5).collect();
        let rayleigh = kernels::dot(&x, &a.mul_vec(&x)) / kernels::dot(&x, &x);
        assert!(
            rayleigh <= a.gershgorin_upper() * (1.0 + 1e-12),
            "seed {seed}"
        );
        assert!(
            rayleigh > 0.0,
            "SPD matrices have positive Rayleigh quotients (seed {seed})"
        );
    }
}

#[test]
fn lu_solves_what_it_factors() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed);
        let a = spd_matrix(&mut rng, 10);
        let n = a.nrows();
        // Dense copy of the sparse SPD matrix.
        let mut d = DenseMatrix::zeros(n, n);
        for r in 0..n {
            for (k, &c) in a.row_cols(r).iter().enumerate() {
                d.set(r, c, a.row_vals(r)[k]);
            }
        }
        let xstar: Vec<f64> = (0..n)
            .map(|i| ((i as u64 * 31 + seed) % 17) as f64 - 8.0)
            .collect();
        let b = d.matvec(&xstar);
        let x = d.solve(&b).unwrap();
        for i in 0..n {
            assert!(
                (x[i] - xstar[i]).abs() <= 1e-7 * (1.0 + xstar[i].abs()),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn block_addmul_matches_columnwise_axpys() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(seed);
        let ncols = 1 + rng.below(3);
        let n = 4 + rng.below(36);
        let cols: Vec<Vec<f64>> = (0..ncols)
            .map(|j| (0..n).map(|i| ((i + 3 * j) as f64 * 0.31).sin()).collect())
            .collect();
        let y = MultiVector::from_columns(&cols.iter().map(|c| c.as_slice()).collect::<Vec<_>>());
        let mut x1 = MultiVector::zeros(n, ncols);
        let mut b = DenseMatrix::zeros(ncols, ncols);
        for i in 0..ncols {
            for j in 0..ncols {
                b.set(i, j, ((i * ncols + j) as f64) * 0.25 - 0.3);
            }
        }
        x1.add_mul(&y, &b);
        // Reference: column-by-column axpys.
        let mut x2 = MultiVector::zeros(n, ncols);
        for j in 0..ncols {
            for k in 0..ncols {
                kernels::axpy(b.get(k, j), y.col(k), x2.col_mut(j));
            }
        }
        for j in 0..ncols {
            for i in 0..n {
                assert!((x1.col(j)[i] - x2.col(j)[i]).abs() < 1e-12, "seed {seed}");
            }
        }
    }
}

#[test]
fn gram_is_transpose_symmetric() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(seed);
        let n = 4 + rng.below(26);
        let k = 1 + rng.below(3);
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                (0..n)
                    .map(|i| ((i * (j + 2)) as f64 * 0.17).cos())
                    .collect()
            })
            .collect();
        let x = MultiVector::from_columns(&cols.iter().map(|c| c.as_slice()).collect::<Vec<_>>());
        let g = x.gram(&x);
        for i in 0..k {
            for j in 0..k {
                assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-12, "seed {seed}");
            }
            assert!(g.get(i, i) >= 0.0, "seed {seed}");
        }
    }
}

#[test]
fn partition_covers_and_balances() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for _ in 0..64 {
        let n = 1 + rng.below(4999);
        let p = 1 + rng.below(63);
        let part = pscg_sparse::RowBlockPartition::balanced(n, p);
        assert_eq!(part.nrows(), n);
        let mut total = 0;
        for r in 0..p {
            let len = part.local_len(r);
            total += len;
            // Balanced: lengths differ by at most 1.
            assert!(len + 1 >= n / p && len <= n / p + 1, "n={n} p={p}");
        }
        assert_eq!(total, n);
    }
}

//! Determinism contract of the SpMV storage formats (DESIGN.md §12): the
//! format knob is a pure performance dial. Every format must produce
//! **bitwise** the same solves as the scalar CSR reference, at every
//! thread count, for every shipped method — because each format keeps the
//! per-row ascending-column accumulation order and derives its chunk
//! boundaries from structure + knobs only, never from the pool width.
//!
//! The chunk knobs are pinned small here so the 8³ test problem really
//! splits: the SELL-C-σ scatter path, the symmetric two-phase reduction
//! and the register-blocked row kernels all run multi-chunk at 4 threads.
//! Every test function installs the *same* knob values, so the
//! process-global settings are race-free under the parallel test runner;
//! the one test that sweeps the *format* knob is the knob's only writer
//! in this binary (the symmetric property tests below call
//! [`SymCsrMatrix`] directly and compare against a hand-rolled scalar
//! CSR reference, so they never read the format knob at all).

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_par::{knobs, Pool};
use pscg_precond::PcKind;
use pscg_sim::SimCtx;
use pscg_sparse::stencil::{poisson3d_27pt, poisson3d_7pt, Grid3};
use pscg_sparse::{
    set_spmv_format, CooMatrix, CsrMatrix, SparseError, SplitMix64, SpmvFormat, SymCsrMatrix,
};

/// Pins the chunk knobs small enough that the 512-row problems below split
/// into many chunks (and the symmetric kernel takes its two-phase scatter
/// path). Idempotent — every test installs the same values.
fn pin_knobs() {
    knobs::set_spmv_chunk_nnz(256);
    knobs::set_gram_chunk_rows(64);
    knobs::set_sym_chunk_nnz(512);
    knobs::set_sell_sigma(32);
}

fn all_methods() -> [MethodKind; 11] {
    [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ]
}

/// One solve on the 8³ Poisson problem; returns (history bits, x bits).
/// The format/thread choice is whatever is currently installed globally.
fn run(method: MethodKind, a: &CsrMatrix, b: &[f64]) -> (Vec<u64>, Vec<u64>) {
    let mut ctx = SimCtx::serial(a, PcKind::Jacobi.build(a, None));
    let opts = SolveOptions {
        rtol: 1e-6,
        s: 3,
        max_iters: 10_000,
        ..Default::default()
    };
    let res = method.solve(&mut ctx, b, None, &opts);
    assert!(res.converged(), "{} did not converge", method.name());
    (
        res.history.iter().map(|r| r.to_bits()).collect(),
        res.x.iter().map(|v| v.to_bits()).collect(),
    )
}

/// Every method × every format × {1, 4} threads: all bitwise equal to the
/// scalar-CSR 1-thread reference. A single `#[test]` keeps the global
/// format/thread settings single-writer.
#[test]
fn every_method_is_bitwise_invariant_across_formats_and_threads() {
    pin_knobs();
    let a = poisson3d_7pt(Grid3::cube(8), None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);

    for method in all_methods() {
        set_spmv_format(SpmvFormat::Csr);
        pscg_par::set_global_threads(1);
        let (hist_ref, x_ref) = run(method, &a, &b);

        for fmt in SpmvFormat::ALL {
            for threads in [1usize, 4] {
                if fmt == SpmvFormat::Csr && threads == 1 {
                    continue; // the reference itself
                }
                set_spmv_format(fmt);
                pscg_par::set_global_threads(threads);
                let (hist, x) = run(method, &a, &b);
                assert_eq!(
                    hist_ref,
                    hist,
                    "{}: residual history diverged under {fmt} at {threads} threads",
                    method.name()
                );
                assert_eq!(
                    x_ref,
                    x,
                    "{}: solution diverged under {fmt} at {threads} threads",
                    method.name()
                );
            }
        }
    }
    set_spmv_format(SpmvFormat::Csr);
    pscg_par::set_global_threads(1);
}

/// Hand-rolled scalar CSR SpMV: the knob-free bitwise reference (same
/// ascending-column per-row accumulation as `CsrMatrix::spmv` under the
/// default format).
fn scalar_spmv(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    let (rp, ci, vs) = (a.row_ptr(), a.col_idx(), a.vals());
    (0..a.nrows())
        .map(|r| {
            let mut acc = 0.0;
            for k in rp[r]..rp[r + 1] {
                acc += vs[k] * x[ci[k]];
            }
            acc
        })
        .collect()
}

/// Seeded SPD stencil variants: the 7-pt and 27-pt Poisson operators with
/// random symmetric value perturbations (mirror entries get the *same*
/// bits, so the matrices stay exactly symmetric).
fn spd_stencils(rng: &mut SplitMix64) -> Vec<CsrMatrix> {
    let mut out = vec![
        poisson3d_7pt(Grid3::cube(8), None),
        poisson3d_27pt(Grid3::new(7, 6, 5)),
    ];
    for a in &mut out {
        // Symmetric scaling D·A·D with a random positive diagonal keeps the
        // matrix SPD while de-structuring the constant stencil values. The
        // factors are multiplied in index-sorted order so the (r,c) and
        // (c,r) entries evaluate the *same* rounded expression — exact
        // (bitwise) symmetry is what `try_from_csr` demands.
        let d: Vec<f64> = (0..a.nrows()).map(|_| rng.uniform(0.5, 2.0)).collect();
        let (rp, ci): (Vec<usize>, Vec<usize>) = (a.row_ptr().to_vec(), a.col_idx().to_vec());
        let vals = a.vals_mut();
        for r in 0..rp.len() - 1 {
            for k in rp[r]..rp[r + 1] {
                let (lo, hi) = (r.min(ci[k]), r.max(ci[k]));
                vals[k] = d[lo] * vals[k] * d[hi];
            }
        }
    }
    out
}

/// Property: `sym_spmv(A, x) == spmv(A, x)` **bitwise**, at 1 and 4
/// threads, on seeded SPD stencils. The symmetric kernel stores only the
/// upper triangle and reduces the scatter contributions through the
/// slot-ordered two-phase path (forced multi-chunk by `pin_knobs`), yet
/// must reproduce the scalar gather sum exactly.
#[test]
fn symmetric_spmv_matches_csr_bitwise_on_spd_stencils() {
    pin_knobs();
    let mut rng = SplitMix64::new(0x5e11_c516);
    for a in spd_stencils(&mut rng) {
        let sym = SymCsrMatrix::try_from_csr(&a).expect("stencil is exactly symmetric");
        assert_eq!(sym.logical_nnz(), a.nnz());
        assert!(sym.stored_nnz() < a.nnz(), "triangle must halve storage");
        let x: Vec<f64> = (0..a.nrows()).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let reference = scalar_spmv(&a, &x);
        for threads in [1usize, 4] {
            let mut y = vec![f64::NAN; a.nrows()];
            sym.spmv_with(&Pool::new(threads), &x, &mut y);
            assert_eq!(
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "sym spmv diverged from CSR at {threads} threads on n = {}",
                a.nrows()
            );
        }
    }
}

/// Negative: a structurally or numerically asymmetric matrix is rejected
/// with the typed [`SparseError::NotSymmetric`] naming a witness entry.
#[test]
fn non_symmetric_input_is_rejected_with_a_typed_error() {
    pin_knobs();
    // Structural asymmetry: (0,2) stored, (2,0) absent.
    let mut coo = CooMatrix::new(3, 3);
    for i in 0..3 {
        coo.push(i, i, 2.0).unwrap();
    }
    coo.push(0, 2, 1.0).unwrap();
    let a = coo.to_csr();
    match SymCsrMatrix::try_from_csr(&a) {
        Err(SparseError::NotSymmetric { row: 0, col: 2 }) => {}
        other => panic!("expected NotSymmetric {{0, 2}}, got {other:?}"),
    }

    // Numerical asymmetry: mirror entries present but with different bits.
    let mut coo = CooMatrix::new(2, 2);
    coo.push(0, 0, 2.0).unwrap();
    coo.push(1, 1, 2.0).unwrap();
    coo.push(0, 1, 1.0).unwrap();
    coo.push(1, 0, f64::from_bits(1.0f64.to_bits() + 1))
        .unwrap();
    let a = coo.to_csr();
    assert!(
        matches!(
            SymCsrMatrix::try_from_csr(&a),
            Err(SparseError::NotSymmetric { .. })
        ),
        "bitwise-unequal mirrors must be rejected"
    );

    // A rectangular matrix is a different typed error.
    let mut coo = CooMatrix::new(2, 3);
    coo.push(0, 0, 1.0).unwrap();
    let a = coo.to_csr();
    assert!(matches!(
        SymCsrMatrix::try_from_csr(&a),
        Err(SparseError::NotSquare { nrows: 2, ncols: 3 })
    ));
}

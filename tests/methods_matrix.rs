//! Method × problem × preconditioner matrix: every solver must converge on
//! every (reasonable) combination and produce a solution whose *recomputed*
//! residual honours the tolerance within the drift allowance of its class.

use pipescg::methods::MethodKind;
use pipescg::solver::{SolveOptions, StopReason};
use pscg_precond::PcKind;
use pscg_sim::SimCtx;
use pscg_sparse::stencil::{poisson2d_5pt, poisson3d_125pt, poisson3d_27pt, poisson3d_7pt, Grid3};
use pscg_sparse::suitesparse;
use pscg_sparse::CsrMatrix;

fn problems() -> Vec<(String, CsrMatrix, Option<Grid3>)> {
    let g7 = Grid3::cube(7);
    let g27 = Grid3::new(6, 5, 7);
    let g125 = Grid3::cube(6);
    vec![
        ("poisson7".into(), poisson3d_7pt(g7, None), Some(g7)),
        ("poisson27".into(), poisson3d_27pt(g27), Some(g27)),
        ("poisson125".into(), poisson3d_125pt(g125), Some(g125)),
        ("aniso2d".into(), poisson2d_5pt(18, 15, 1.0, 0.25), None),
        (
            "thermal-like".into(),
            suitesparse::thermal2_like(Grid3::cube(6), 3),
            None,
        ),
    ]
}

fn all_methods() -> Vec<MethodKind> {
    vec![
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
    ]
}

#[test]
fn every_method_solves_every_problem_with_jacobi() {
    for (name, a, _) in problems() {
        let b = a.mul_vec(&vec![1.0; a.nrows()]);
        for m in all_methods() {
            // The *unpreconditioned* pipelined s-step recurrences are not
            // expected to survive a kappa ~ 1e5 heterogeneous operator —
            // the paper only runs PIPE-sCG on the Poisson problem — but
            // they must fail gracefully (defined stop reason, finite x).
            let may_break = name == "thermal-like"
                && matches!(
                    m,
                    MethodKind::PipeScg | MethodKind::ScgSspmv | MethodKind::Scg
                );
            let mut ctx = SimCtx::serial(&a, PcKind::Jacobi.build(&a, None));
            let opts = SolveOptions {
                rtol: 1e-6,
                s: 3,
                max_iters: 30_000,
                ..Default::default()
            };
            let res = m.solve(&mut ctx, &b, None, &opts);
            if may_break && !res.converged() {
                assert!(
                    matches!(res.stop, StopReason::Breakdown | StopReason::Stagnated),
                    "{} on {name}: {:?}",
                    m.name(),
                    res.stop
                );
                assert!(
                    res.x.iter().all(|v| v.is_finite()),
                    "{} on {name}",
                    m.name()
                );
                continue;
            }
            assert!(
                res.converged(),
                "{} on {name}: {:?} at relres {:.2e}",
                m.name(),
                res.stop,
                res.final_relres
            );
            let true_res = res.true_relres(&a, &b);
            assert!(
                true_res < 1e-4,
                "{} on {name}: true residual {true_res:.2e} drifted too far",
                m.name()
            );
        }
    }
}

#[test]
fn preconditioned_methods_work_with_every_preconditioner() {
    let g = Grid3::cube(8);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    for pc in [
        PcKind::None,
        PcKind::Jacobi,
        PcKind::Sor,
        PcKind::Mg,
        PcKind::Gamg,
    ] {
        for m in [
            MethodKind::Pcg,
            MethodKind::Pipecg,
            MethodKind::Pscg,
            MethodKind::PipePscg,
        ] {
            let mut ctx = SimCtx::serial(&a, pc.build(&a, Some(g)));
            let opts = SolveOptions {
                rtol: 1e-7,
                s: 3,
                max_iters: 20_000,
                ..Default::default()
            };
            let res = m.solve(&mut ctx, &b, None, &opts);
            assert!(
                res.converged(),
                "{} with {}: {:?} at {:.2e}",
                m.name(),
                pc.name(),
                res.stop,
                res.final_relres
            );
            assert!(
                res.true_relres(&a, &b) < 1e-5,
                "{} with {}",
                m.name(),
                pc.name()
            );
        }
    }
}

#[test]
fn stronger_preconditioners_cut_iteration_counts() {
    let g = Grid3::cube(12);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let mut iters = Vec::new();
    for pc in [PcKind::None, PcKind::Jacobi, PcKind::Sor, PcKind::Mg] {
        let mut ctx = SimCtx::serial(&a, pc.build(&a, Some(g)));
        let opts = SolveOptions {
            rtol: 1e-8,
            ..Default::default()
        };
        let res = MethodKind::Pcg.solve(&mut ctx, &b, None, &opts);
        assert!(res.converged());
        iters.push((pc.name(), res.iterations));
    }
    // None >= Jacobi >= SOR > MG (Jacobi == None for this operator only up
    // to scaling, so allow equality there).
    assert!(iters[0].1 >= iters[1].1, "{iters:?}");
    assert!(iters[1].1 >= iters[2].1, "{iters:?}");
    assert!(iters[2].1 > iters[3].1, "{iters:?}");
    assert!(
        iters[3].1 < 15,
        "MG-CG should converge in a handful of steps: {iters:?}"
    );
}

#[test]
fn methods_agree_on_the_solution() {
    // All methods implement the same Krylov process: solutions must agree
    // to roughly the convergence tolerance.
    let g = Grid3::new(6, 7, 5);
    let a = poisson3d_27pt(g);
    let n = a.nrows();
    let xstar: Vec<f64> = (0..n).map(|i| (0.13 * i as f64).sin()).collect();
    let b = a.mul_vec(&xstar);
    let opts = SolveOptions {
        rtol: 1e-9,
        s: 3,
        ..Default::default()
    };
    for m in all_methods() {
        let mut ctx = SimCtx::serial(&a, PcKind::Jacobi.build(&a, None));
        let res = m.solve(&mut ctx, &b, None, &opts);
        assert!(res.converged(), "{}", m.name());
        let err = res
            .x
            .iter()
            .zip(&xstar)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-6, "{}: max error {err}", m.name());
    }
}

#[test]
fn tiny_and_degenerate_systems_are_handled() {
    // 1x1 system.
    let a = CsrMatrix::from_raw_parts(1, 1, vec![0, 1], vec![0], vec![4.0]).unwrap();
    let b = vec![8.0];
    let mut ctx = SimCtx::serial(&a, PcKind::Jacobi.build(&a, None));
    let res = MethodKind::PipePscg.solve(&mut ctx, &b, None, &SolveOptions::default());
    assert!(res.converged());
    assert!((res.x[0] - 2.0).abs() < 1e-10);

    // Zero right-hand side: immediate convergence, x stays 0.
    let g = Grid3::cube(4);
    let a = poisson3d_7pt(g, None);
    let b = vec![0.0; a.nrows()];
    for m in [MethodKind::Pcg, MethodKind::PipePscg] {
        let mut ctx = SimCtx::serial(&a, PcKind::Jacobi.build(&a, None));
        let res = m.solve(&mut ctx, &b, None, &SolveOptions::default());
        assert!(
            res.stop == StopReason::Converged || res.final_relres.is_nan(),
            "{}: {:?}",
            m.name(),
            res.stop
        );
        assert!(res.x.iter().all(|&v| v.abs() < 1e-12), "{}", m.name());
    }
}

#[test]
fn s_equals_one_pipelined_methods_still_work() {
    let g = Grid3::cube(6);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    for m in [
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Pscg,
        MethodKind::Scg,
    ] {
        let mut ctx = SimCtx::serial(&a, PcKind::Jacobi.build(&a, None));
        let opts = SolveOptions {
            rtol: 1e-7,
            s: 1,
            ..Default::default()
        };
        let res = m.solve(&mut ctx, &b, None, &opts);
        assert!(res.converged(), "{} at s=1", m.name());
    }
}

#[test]
fn large_s_eventually_breaks_down_gracefully() {
    // A monomial basis of degree ~20 on an ill-conditioned operator is
    // numerically rank deficient; the solver must stop with a defined
    // reason, not panic or return garbage silently.
    let a = poisson2d_5pt(40, 40, 1.0, 0.01);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let mut ctx = SimCtx::serial(&a, PcKind::Jacobi.build(&a, None));
    let opts = SolveOptions {
        rtol: 1e-12,
        s: 20,
        max_iters: 4000,
        ..Default::default()
    };
    let res = MethodKind::PipePscg.solve(&mut ctx, &b, None, &opts);
    assert!(
        matches!(
            res.stop,
            StopReason::Breakdown
                | StopReason::Stagnated
                | StopReason::MaxIterations
                | StopReason::Converged
        ),
        "{:?}",
        res.stop
    );
    // Whatever happened, the reported x must be finite.
    assert!(res.x.iter().all(|v| v.is_finite()));
}

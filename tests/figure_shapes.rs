//! Shape assertions for the paper's figures, run at CI scale: the
//! reproduction is only credible if the *qualitative* claims of §VI hold —
//! who wins, where curves bend — independent of absolute numbers. These
//! tests pin those shapes so a regression in the solvers, the cost model or
//! the machine calibration cannot silently flip a conclusion.

use pipescg::methods::MethodKind;
use pipescg::solver::{RefNorm, SolveOptions};
use pscg_bench::experiments::{self, default_pc, time_at, traced_solve};
use pscg_bench::{problems, Scale};
use pscg_precond::PcKind;
use pscg_sim::{replay, Machine};

fn scale() -> Scale {
    Scale::ci()
}

fn paper_opts(rtol: f64) -> SolveOptions {
    SolveOptions {
        rtol,
        s: 3,
        ref_norm: RefNorm::PlainB,
        max_iters: 50_000,
        ..Default::default()
    }
}

#[test]
fn fig1_shape_pipelined_s_step_wins_at_scale() {
    let machine = Machine::sahasrat();
    let problem = problems::poisson125(&scale());
    let opts = paper_opts(problem.rtol);
    let pcg = traced_solve(&problem, MethodKind::Pcg, PcKind::Jacobi, &opts);
    let pipecg = traced_solve(&problem, MethodKind::Pipecg, PcKind::Jacobi, &opts);
    let pipe_pscg = traced_solve(&problem, MethodKind::PipePscg, PcKind::Jacobi, &opts);
    assert!(pcg.converged && pipecg.converged && pipe_pscg.converged);

    let p = 120 * machine.cores_per_node;
    let t_pcg = time_at(&pcg, &machine, p);
    let t_pipecg = time_at(&pipecg, &machine, p);
    let t_pipe = time_at(&pipe_pscg, &machine, p);
    // The paper's headline ordering at high node counts.
    assert!(
        t_pipe < t_pipecg,
        "PIPE-PsCG {t_pipe} must beat PIPECG {t_pipecg} at 120 nodes"
    );
    assert!(
        t_pipecg < t_pcg,
        "PIPECG {t_pipecg} must beat PCG {t_pcg} at 120 nodes"
    );
    assert!(
        t_pcg / t_pipe > 1.5,
        "PIPE-PsCG should win clearly, got {}",
        t_pcg / t_pipe
    );

    // (The one-node ordering reversal of the paper's Figure 1 needs a
    // problem large enough that kernels dominate allreduces at 24 ranks; at
    // CI scale even one node is latency-bound. The `small`/`paper` scale
    // harness runs show it — see EXPERIMENTS.md.)
}

#[test]
fn fig1_shape_pcg_speedup_saturates() {
    let machine = Machine::sahasrat();
    let problem = problems::poisson125(&scale());
    let opts = paper_opts(problem.rtol);
    let pcg = traced_solve(&problem, MethodKind::Pcg, PcKind::Jacobi, &opts);
    // Doubling nodes from 60 to 120 must NOT halve PCG's time (allreduce
    // saturation — the paper's premise).
    let t60 = time_at(&pcg, &machine, 60 * machine.cores_per_node);
    let t120 = time_at(&pcg, &machine, 120 * machine.cores_per_node);
    assert!(t120 > 0.7 * t60, "PCG kept scaling: {t60} -> {t120}");
}

#[test]
fn fig1_shape_pscg_pays_its_extra_kernels_vs_pipe_pscg() {
    let machine = Machine::sahasrat();
    let problem = problems::poisson125(&scale());
    let opts = paper_opts(problem.rtol);
    let pscg = traced_solve(&problem, MethodKind::Pscg, PcKind::Jacobi, &opts);
    let pipe = traced_solve(&problem, MethodKind::PipePscg, PcKind::Jacobi, &opts);
    // "The 2x speedup of our PIPE-PsCG over PsCG ... shows that true
    // performance benefits can be obtained ... only by reducing the number
    // of SPMVs per iteration and by efficiently overlapping" (§VI-B).
    for nodes in [40usize, 80, 120] {
        let p = nodes * machine.cores_per_node;
        let t_pscg = time_at(&pscg, &machine, p);
        let t_pipe = time_at(&pipe, &machine, p);
        assert!(
            t_pipe < t_pscg,
            "PIPE-PsCG must beat PsCG at {nodes} nodes: {t_pipe} vs {t_pscg}"
        );
    }
}

#[test]
fn fig3_shape_larger_s_gains_relative_ground_with_scale() {
    let machine = Machine::sahasrat();
    let problem = problems::poisson125(&scale());
    let runs: Vec<_> = [3usize, 5]
        .iter()
        .map(|&s| {
            let opts = SolveOptions {
                s,
                ..paper_opts(problem.rtol)
            };
            traced_solve(&problem, MethodKind::PipePscg, PcKind::Jacobi, &opts)
        })
        .collect();
    // s=5 relative to s=3 must improve as the machine grows (Figure 3's
    // crossover direction), even if the absolute winner depends on scale.
    let ratio_at = |p: usize| time_at(&runs[1], &machine, p) / time_at(&runs[0], &machine, p);
    let small = ratio_at(machine.cores_per_node);
    let large = ratio_at(140 * machine.cores_per_node);
    assert!(
        large < small,
        "s=5/s=3 time ratio must shrink with scale: {small} -> {large}"
    );
}

#[test]
fn fig5_shape_pipe_pscg_reaches_the_threshold_first() {
    let machine = Machine::sahasrat();
    let problem = problems::poisson125(&scale());
    let opts = paper_opts(problem.rtol);
    let p = 80 * machine.cores_per_node;
    // Time at which each method's residual trajectory crosses rtol.
    let crossing = |m: MethodKind| -> f64 {
        let run = traced_solve(&problem, m, default_pc(m), &opts);
        assert!(run.converged, "{}", m.name());
        let r = replay(&run.trace, &machine, p);
        r.residual_timeline
            .iter()
            .find(|(_, res)| *res < problem.rtol)
            .map(|(t, _)| *t)
            .expect("converged run must cross the threshold")
    };
    let t_pcg = crossing(MethodKind::Pcg);
    let t_pipe = crossing(MethodKind::PipePscg);
    assert!(
        t_pipe < t_pcg,
        "PIPE-PsCG must reach rtol*||b|| first at 80 nodes: {t_pipe} vs {t_pcg}"
    );
}

#[test]
fn ablation_async_progress_is_required_for_the_overlap() {
    let problem = problems::poisson125(&scale());
    let opts = paper_opts(problem.rtol);
    let run = traced_solve(&problem, MethodKind::PipePscg, PcKind::Jacobi, &opts);
    let on = Machine::sahasrat();
    let off = Machine::sahasrat_no_async_progress();
    let p = 120 * on.cores_per_node;
    let r_on = replay(&run.trace, &on, p);
    let r_off = replay(&run.trace, &off, p);
    assert!(
        r_off.total_time > r_on.total_time * 1.1,
        "async progress must matter at scale"
    );
    assert_eq!(r_off.overlap_fraction(), 0.0);
    // Meaningful hiding needs an overlap window that is not starved of
    // work: check at 2 nodes, where this CI-scale problem still has
    // kernel time comparable to G.
    let r_on_2 = replay(&run.trace, &on, 2 * on.cores_per_node);
    assert!(
        r_on_2.overlap_fraction() > 0.5,
        "overlap at 2 nodes = {}",
        r_on_2.overlap_fraction()
    );
}

#[test]
fn fig2_shape_holds_on_the_ecology2_surrogate() {
    let machine = Machine::sahasrat();
    let (rep, runs) = experiments::fig2(&scale(), &machine);
    assert!(!rep.rows.is_empty());
    // Every figure method converged at rtol 1e-2.
    for run in &runs {
        assert!(run.converged, "{} on ecology2", run.method.name());
    }
    // PIPE-PsCG beats PCG at 120 nodes on the speedup scale (last row).
    let last = rep.rows.last().unwrap();
    let pcg: f64 = last[2].parse().unwrap();
    let pipe_pscg: f64 = last[8].parse().unwrap();
    assert!(
        pipe_pscg > 2.0 * pcg,
        "PIPE-PsCG {pipe_pscg} vs PCG {pcg} at 120 nodes"
    );
}

#[test]
fn autotune_agrees_with_replayed_s_ordering_at_scale() {
    // The §VII future-work model must point the same way as the replay:
    // at 240 nodes the model's best s is at least as large as at 1 node.
    let machine = Machine::sahasrat();
    let problem = problems::poisson125(&scale());
    let s1 = pipescg::autotune::best_s_jacobi(&machine, &problem.profile, 24).s;
    let s240 = pipescg::autotune::best_s_jacobi(&machine, &problem.profile, 240 * 24).s;
    assert!(s240 >= s1);
}

//! The fault-machinery inertness contract: with no fault plan armed — or
//! with an *armed but empty* plan — the injection hooks and the in-loop
//! resilience guards must be invisible.
//!
//! For every shipped method, at pool thread counts 1 and 4, a traced solve
//! with an empty `FaultPlan` armed must produce bitwise-identical residual
//! history and solution, and the identical operation sequence (`BufId`s
//! masked as in `par_engine_invariance`), as the plain un-armed run. The
//! injector must also report zero applied faults.
//!
//! Separate integration-test binary on purpose: it mutates the global
//! thread pool, which must not race with other tests.

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_fault::{chaos, ChaosConfig, FaultPlan};
use pscg_precond::Jacobi;
use pscg_sim::{Layout, MatrixProfile, SimCtx};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

const S: usize = 4;

fn all_methods() -> [MethodKind; 11] {
    [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ]
}

/// Debug renderings of a trace's ops with interned buffer ids masked
/// (`BufId(0)` = `ANON` is kept — anonymous vs tracked is structural).
fn op_shapes(trace: &pscg_sim::OpTrace) -> Vec<String> {
    trace
        .ops
        .iter()
        .map(|op| {
            let s = format!("{op:?}");
            let mut out = String::new();
            let mut rest = s.as_str();
            while let Some(pos) = rest.find("BufId(") {
                out.push_str(&rest[..pos + 6]);
                rest = &rest[pos + 6..];
                let end = rest.find(')').expect("BufId debug form");
                if &rest[..end] == "0" {
                    out.push('0');
                } else {
                    out.push('_');
                }
                rest = &rest[end..];
            }
            out.push_str(rest);
            out
        })
        .collect()
}

struct Run {
    hist_bits: Vec<u64>,
    x_bits: Vec<u64>,
    shapes: Vec<String>,
}

/// One traced solve, optionally with an (empty) fault plan armed.
fn run(method: MethodKind, plan: Option<FaultPlan>) -> Run {
    let g = Grid3::cube(8);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let prof = MatrixProfile::stencil3d(8, 8, 8, 1, a.nnz(), Layout::Box);
    let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), prof);
    let armed = plan.is_some();
    if let Some(p) = plan {
        ctx.arm_faults(p);
    }
    let opts = SolveOptions::with_rtol(1e-6).with_s(S);
    let res = method.solve(&mut ctx, &b, None, &opts);
    assert!(res.converged(), "{} did not converge", method.name());
    if armed {
        assert!(
            ctx.fault_log().is_empty(),
            "{}: empty plan applied faults",
            method.name()
        );
    }
    Run {
        hist_bits: res.history.iter().map(|r| r.to_bits()).collect(),
        x_bits: res.x.iter().map(|v| v.to_bits()).collect(),
        shapes: op_shapes(&ctx.take_trace().unwrap()),
    }
}

#[test]
fn empty_fault_plan_is_bitwise_inert() {
    // Force real chunking so the kernels genuinely split at 4 threads.
    pscg_par::knobs::set_spmv_chunk_nnz(256);
    pscg_par::knobs::set_gram_chunk_rows(64);

    // A zero-bound chaos plan must come out empty — the generated
    // equivalent of an inert hand-written plan.
    let zero_chaos = chaos::generate(
        0xDEAD_BEEF,
        &ChaosConfig {
            max_data_faults: 0,
            max_completion_faults: 0,
            max_rank_events: 0,
            ..Default::default()
        },
    );
    assert!(zero_chaos.events.is_empty() && zero_chaos.rank_events.is_empty());

    for threads in [1usize, 4] {
        pscg_par::set_global_threads(threads);
        for method in all_methods() {
            let plain = run(method, None);
            // Three armed-but-empty shapes: a bare plan, a plan that sets
            // the modeled rank count without any rank events (the chaos
            // machinery armed yet idle), and a zero-bound generated plan.
            let variants: [(&str, FaultPlan); 3] = [
                ("empty plan", FaultPlan::new(0xDEAD_BEEF)),
                ("ranks-only plan", FaultPlan::new(0xDEAD_BEEF).with_ranks(8)),
                ("zero-bound chaos plan", zero_chaos.clone()),
            ];
            for (label, plan) in variants {
                let armed = run(method, Some(plan));
                assert_eq!(
                    plain.hist_bits,
                    armed.hist_bits,
                    "{} @{threads}t: residual history changed with {label} armed",
                    method.name()
                );
                assert_eq!(
                    plain.x_bits,
                    armed.x_bits,
                    "{} @{threads}t: solution changed with {label} armed",
                    method.name()
                );
                assert_eq!(
                    plain.shapes,
                    armed.shapes,
                    "{} @{threads}t: operation sequence changed with {label} armed",
                    method.name()
                );
            }
        }
    }
    pscg_par::set_global_threads(1);
}

//! Counter-drift reconciliation: the telemetry stream's per-interval
//! kernel-count deltas must telescope exactly to the solver's final
//! `OpCounters` — no kernel is double-counted and none escapes the stream.
//!
//! Checked for a blocking one-step method (PCG), a blocking s-step method
//! (PsCG) and the pipelined contribution (PIPE-PsCG), so both allreduce
//! flavours and the MPK-free and MPK-full code paths are covered.
//!
//! Separate integration-test binary: it toggles the process-global
//! telemetry flag and collector, which must not race with other tests.

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_obs::metrics::KernelCounts;
use pscg_precond::Jacobi;
use pscg_sim::SimCtx;
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

#[test]
fn telemetry_kernel_deltas_telescope_to_op_counters() {
    let g = Grid3::cube(8);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);

    pscg_obs::set_enabled(true);
    for method in [MethodKind::Pcg, MethodKind::Pscg, MethodKind::PipePscg] {
        pscg_obs::metrics::take_last();
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let opts = SolveOptions::with_rtol(1e-6).with_s(4);
        let res = method.solve(&mut ctx, &b, None, &opts);
        assert!(res.converged(), "{}", method.name());
        let tel = pscg_obs::metrics::take_last()
            .unwrap_or_else(|| panic!("{}: no telemetry stream", method.name()));

        let summed = tel
            .iters
            .iter()
            .fold(KernelCounts::default(), |acc, r| acc.add(&r.d_kernels))
            .add(&tel.finish.d_kernels);
        let finals = KernelCounts {
            spmv: res.counters.spmv,
            pc: res.counters.pc,
            allreduce: res.counters.allreduces(),
        };
        assert_eq!(
            summed,
            finals,
            "{}: telemetry deltas do not telescope to OpCounters",
            method.name()
        );
        assert_eq!(
            tel.finish.kernels,
            finals,
            "{}: final cumulative snapshot disagrees with OpCounters",
            method.name()
        );
        // Sanity on the flavours: PCG is allreduce-heavy and blocking-only;
        // the pipelined method must have recorded overlap windows... only
        // wall-clock-dependent quantities are avoided here, so just check
        // the counts are non-trivial.
        assert!(summed.spmv > 0 && summed.pc > 0 && summed.allreduce > 0);
    }
    pscg_obs::set_enabled(false);
}

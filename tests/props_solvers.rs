//! Property-style tests on the solver family: on *random* SPD systems every
//! method must converge, agree with direct solution, and respect its
//! communication contract; the simulator must respect basic sanity
//! properties (monotonicity, overlap bounds).
//!
//! The environment is offline, so instead of proptest these sweep seeded
//! random inputs from [`pscg_sparse::SplitMix64`]; failures report the seed.

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_precond::Jacobi;
use pscg_sim::{replay, Layout, Machine, MatrixProfile, Op, OpTrace, SimCtx};
use pscg_sparse::{CooMatrix, CsrMatrix, SplitMix64};

/// Random symmetric strictly diagonally dominant (hence SPD) matrix.
fn spd_matrix(rng: &mut SplitMix64, max_n: usize) -> CsrMatrix {
    let n = 4 + rng.below(max_n.saturating_sub(4).max(1));
    let ntrips = n + rng.below(2 * n);
    let diag_scale = rng.uniform(1.0, 100.0);
    let mut coo = CooMatrix::new(n, n);
    for _ in 0..ntrips {
        let r = rng.below(n);
        let c = rng.below(n);
        if r != c {
            coo.push_sym(r, c, rng.uniform(-1.0, 1.0)).unwrap();
        }
    }
    for i in 0..n {
        coo.push(i, i, diag_scale * (6.0 + n as f64)).unwrap();
    }
    coo.to_csr()
}

#[test]
fn all_methods_solve_random_spd_systems() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(seed);
        let a = spd_matrix(&mut rng, 40);
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n)
            .map(|i| (((i as u64 * 131 + seed * 17) % 23) as f64 - 11.0) / 11.0)
            .collect();
        let b = a.mul_vec(&xstar);
        if pscg_sparse::kernels::norm2(&b) == 0.0 {
            continue;
        }
        for m in [
            MethodKind::Pcg,
            MethodKind::Pipecg,
            MethodKind::PipecgOati,
            MethodKind::Pscg,
            MethodKind::PipeScg,
            MethodKind::PipePscg,
            MethodKind::Hybrid,
        ] {
            let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
            let opts = SolveOptions {
                rtol: 1e-9,
                s: 3,
                max_iters: 2000,
                ..Default::default()
            };
            let res = m.solve(&mut ctx, &b, None, &opts);
            // The unpreconditioned pipelined recurrences are allowed to
            // break down gracefully on degenerate random systems (near-
            // identity operators give a rank-deficient monomial basis); the
            // published methods behave the same way — that is what the
            // hybrid exists for (§VI-B).
            if m == MethodKind::PipeScg && !res.converged() {
                assert!(
                    res.x.iter().all(|v| v.is_finite()),
                    "PIPE-sCG left garbage (seed {seed})"
                );
                continue;
            }
            assert!(
                res.converged(),
                "{} failed (seed {seed}): {:?}",
                m.name(),
                res.stop
            );
            let err = res
                .x
                .iter()
                .zip(&xstar)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0f64, f64::max);
            assert!(err < 1e-5, "{}: max error {err} (seed {seed})", m.name());
        }
    }
}

#[test]
fn histories_are_finite_and_mostly_decreasing() {
    for seed in 0..24u64 {
        let a = spd_matrix(&mut SplitMix64::new(seed), 30);
        let b = a.mul_vec(&vec![1.0; a.nrows()]);
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let opts = SolveOptions {
            rtol: 1e-8,
            s: 3,
            ..Default::default()
        };
        let res = MethodKind::PipePscg.solve(&mut ctx, &b, None, &opts);
        assert!(res.converged(), "seed {seed}");
        for w in res.history.windows(2) {
            assert!(w[1].is_finite(), "seed {seed}");
            // CG residuals are not monotone, but they never explode on a
            // well-conditioned system.
            assert!(
                w[1] < w[0] * 100.0,
                "history spike (seed {seed}): {} -> {}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn replay_time_is_monotone_in_trace_length() {
    let mut rng = SplitMix64::new(0xAB);
    for _ in 0..12 {
        let n_ops = 1 + rng.below(39);
        let p = [1usize, 24, 240, 2880][rng.below(4)];
        // Appending operations never decreases total time.
        let mut trace = OpTrace::new(1_000_000);
        trace.register_matrix(MatrixProfile::stencil3d(
            100,
            100,
            100,
            2,
            124_000_000,
            Layout::Box,
        ));
        let machine = Machine::sahasrat();
        let mut last = 0.0;
        for i in 0..n_ops {
            trace.push(Op::spmv(0));
            if i % 3 == 0 {
                trace.push(Op::blocking(8));
            }
            let t = replay(&trace, &machine, p).total_time;
            assert!(t >= last, "p={p} n_ops={n_ops}");
            last = t;
        }
    }
}

#[test]
fn overlap_never_exceeds_total_allreduce() {
    for kernels_between in 0usize..8 {
        for p in [24usize, 480, 2880] {
            let mut trace = OpTrace::new(262_144);
            trace.register_matrix(MatrixProfile::stencil3d(
                64,
                64,
                64,
                2,
                32_000_000,
                Layout::Box,
            ));
            for i in 0..10u64 {
                trace.push(Op::post(i, 27));
                for _ in 0..kernels_between {
                    trace.push(Op::spmv(0));
                }
                trace.push(Op::wait(i));
            }
            let r = replay(&trace, &Machine::sahasrat(), p);
            assert!(r.allreduce_exposed >= 0.0);
            assert!(r.allreduce_exposed <= r.allreduce_total * (1.0 + 1e-12));
            let f = r.overlap_fraction();
            assert!((0.0..=1.0 + 1e-12).contains(&f));
            // More kernels inside the window can only hide more (weakly).
            if kernels_between > 0 {
                let mut empty = OpTrace::new(262_144);
                empty.register_matrix(MatrixProfile::stencil3d(
                    64,
                    64,
                    64,
                    2,
                    32_000_000,
                    Layout::Box,
                ));
                for i in 0..10u64 {
                    empty.push(Op::post(i, 27));
                    empty.push(Op::wait(i));
                }
                let r0 = replay(&empty, &Machine::sahasrat(), p);
                assert!(r.allreduce_exposed <= r0.allreduce_exposed + 1e-12);
            }
        }
    }
}

#[test]
fn allreduce_model_is_monotone() {
    let m = Machine::sahasrat();
    let mut rng = SplitMix64::new(0xCD);
    for _ in 0..64 {
        let p1 = 2 + rng.below(1998);
        let dp = 1 + rng.below(1999);
        let doubles = 1 + rng.below(511);
        let t1 = m.allreduce_time(p1, doubles);
        let t2 = m.allreduce_time(p1 + dp, doubles);
        assert!(
            t2 >= t1,
            "allreduce time decreased with ranks: {t1} -> {t2} (p1={p1} dp={dp})"
        );
        let t3 = m.allreduce_time(p1, doubles * 2);
        assert!(
            t3 >= t1,
            "allreduce time decreased with payload (p1={p1} doubles={doubles})"
        );
    }
}

#[test]
fn spmv_work_shrinks_with_ranks() {
    for nexp in [5usize, 6] {
        for p_small in [1usize, 8, 27] {
            let n = 1 << nexp; // 32 or 64 cube edge
            let prof = MatrixProfile::stencil3d(n, n, n, 2, n * n * n * 100, Layout::Box);
            let w1 = prof.work_at(p_small);
            let w2 = prof.work_at(p_small * 8);
            assert!(w2.local_rows <= w1.local_rows, "n={n} p={p_small}");
            assert!(w2.local_nnz <= w1.local_nnz, "n={n} p={p_small}");
        }
    }
}

//! Property-based tests on the solver family: on *random* SPD systems every
//! method must converge, agree with direct solution, and respect its
//! communication contract; the simulator must respect basic sanity
//! properties (monotonicity, overlap bounds).

use proptest::prelude::*;

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_precond::Jacobi;
use pscg_sim::{replay, Layout, Machine, MatrixProfile, Op, OpTrace, SimCtx};
use pscg_sparse::{CooMatrix, CsrMatrix};

/// Random symmetric strictly diagonally dominant (hence SPD) matrix.
fn spd_matrix(max_n: usize) -> impl Strategy<Value = CsrMatrix> {
    (4usize..max_n)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), n..3 * n),
                1.0f64..100.0,
            )
        })
        .prop_map(|(n, trips, diag_scale)| {
            let mut coo = CooMatrix::new(n, n);
            for (r, c, v) in trips {
                if r != c {
                    coo.push_sym(r, c, v).unwrap();
                }
            }
            for i in 0..n {
                coo.push(i, i, diag_scale * (6.0 + n as f64)).unwrap();
            }
            coo.to_csr()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_methods_solve_random_spd_systems(a in spd_matrix(40), seed in 0u64..100) {
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n)
            .map(|i| (((i as u64 * 131 + seed * 17) % 23) as f64 - 11.0) / 11.0)
            .collect();
        let b = a.mul_vec(&xstar);
        if pscg_sparse::kernels::norm2(&b) == 0.0 {
            return Ok(());
        }
        for m in [
            MethodKind::Pcg,
            MethodKind::Pipecg,
            MethodKind::PipecgOati,
            MethodKind::Pscg,
            MethodKind::PipeScg,
            MethodKind::PipePscg,
            MethodKind::Hybrid,
        ] {
            let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
            let opts = SolveOptions { rtol: 1e-9, s: 3, max_iters: 2000, ..Default::default() };
            let res = m.solve(&mut ctx, &b, None, &opts);
            // The unpreconditioned pipelined recurrences are allowed to
            // break down gracefully on degenerate random systems (near-
            // identity operators give a rank-deficient monomial basis); the
            // published methods behave the same way — that is what the
            // hybrid exists for (§VI-B).
            if m == MethodKind::PipeScg && !res.converged() {
                prop_assert!(res.x.iter().all(|v| v.is_finite()), "PIPE-sCG left garbage");
                continue;
            }
            prop_assert!(res.converged(), "{} failed: {:?}", m.name(), res.stop);
            let err = res
                .x
                .iter()
                .zip(&xstar)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0f64, f64::max);
            prop_assert!(err < 1e-5, "{}: max error {err}", m.name());
        }
    }

    #[test]
    fn histories_are_finite_and_mostly_decreasing(a in spd_matrix(30)) {
        let b = a.mul_vec(&vec![1.0; a.nrows()]);
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let opts = SolveOptions { rtol: 1e-8, s: 3, ..Default::default() };
        let res = MethodKind::PipePscg.solve(&mut ctx, &b, None, &opts);
        prop_assert!(res.converged());
        for w in res.history.windows(2) {
            prop_assert!(w[1].is_finite());
            // CG residuals are not monotone, but they never explode on a
            // well-conditioned system.
            prop_assert!(w[1] < w[0] * 100.0, "history spike: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn replay_time_is_monotone_in_trace_length(
        n_ops in 1usize..40,
        p in prop::sample::select(vec![1usize, 24, 240, 2880]),
    ) {
        // Appending operations never decreases total time.
        let mut trace = OpTrace::new(1_000_000);
        trace.register_matrix(MatrixProfile::stencil3d(100, 100, 100, 2, 124_000_000, Layout::Box));
        let machine = Machine::sahasrat();
        let mut last = 0.0;
        for i in 0..n_ops {
            trace.push(Op::Spmv { matrix: 0 });
            if i % 3 == 0 {
                trace.push(Op::ArBlocking { doubles: 8 });
            }
            let t = replay(&trace, &machine, p).total_time;
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn overlap_never_exceeds_total_allreduce(
        kernels_between in 0usize..8,
        p in prop::sample::select(vec![24usize, 480, 2880]),
    ) {
        let mut trace = OpTrace::new(262_144);
        trace.register_matrix(MatrixProfile::stencil3d(64, 64, 64, 2, 32_000_000, Layout::Box));
        for i in 0..10u64 {
            trace.push(Op::ArPost { id: i, doubles: 27 });
            for _ in 0..kernels_between {
                trace.push(Op::Spmv { matrix: 0 });
            }
            trace.push(Op::ArWait { id: i });
        }
        let r = replay(&trace, &Machine::sahasrat(), p);
        prop_assert!(r.allreduce_exposed >= 0.0);
        prop_assert!(r.allreduce_exposed <= r.allreduce_total * (1.0 + 1e-12));
        let f = r.overlap_fraction();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
        // More kernels inside the window can only hide more (weakly).
        if kernels_between > 0 {
            let mut empty = OpTrace::new(262_144);
            empty.register_matrix(
                MatrixProfile::stencil3d(64, 64, 64, 2, 32_000_000, Layout::Box),
            );
            for i in 0..10u64 {
                empty.push(Op::ArPost { id: i, doubles: 27 });
                empty.push(Op::ArWait { id: i });
            }
            let r0 = replay(&empty, &Machine::sahasrat(), p);
            prop_assert!(r.allreduce_exposed <= r0.allreduce_exposed + 1e-12);
        }
    }

    #[test]
    fn allreduce_model_is_monotone(
        p1 in 2usize..2000,
        dp in 1usize..2000,
        doubles in 1usize..512,
    ) {
        let m = Machine::sahasrat();
        let t1 = m.allreduce_time(p1, doubles);
        let t2 = m.allreduce_time(p1 + dp, doubles);
        prop_assert!(t2 >= t1, "allreduce time decreased with ranks: {t1} -> {t2}");
        let t3 = m.allreduce_time(p1, doubles * 2);
        prop_assert!(t3 >= t1, "allreduce time decreased with payload");
    }

    #[test]
    fn spmv_work_shrinks_with_ranks(
        nexp in 5usize..7,
        p_small in prop::sample::select(vec![1usize, 8, 27]),
    ) {
        let n = 1 << nexp; // 32 or 64 cube edge
        let prof = MatrixProfile::stencil3d(n, n, n, 2, n * n * n * 100, Layout::Box);
        let w1 = prof.work_at(p_small);
        let w2 = prof.work_at(p_small * 8);
        prop_assert!(w2.local_rows <= w1.local_rows);
        prop_assert!(w2.local_nnz <= w1.local_nnz);
    }
}

//! Acceptance bar for the vector-clock race detector (`pscg-check`): every
//! shipped method's kernel schedule must be race-free as observed through
//! the par engine's sync traces, at one thread and at four — and the
//! detector must not be vacuous: a hand-built unsynchronized trace and an
//! overlapping-`DisjointMut` schedule must both be flagged.
//!
//! The recording log, the chunk knobs, and the global pool are
//! process-global, so the solver sweep lives in **one** test function
//! (this file is its own test binary; other test files run in separate
//! processes). The synthetic-trace tests construct `SyncTrace` values
//! directly and touch no global state.

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_check::detect_races;
use pscg_par::sync_trace::{self, SyncEvent, SyncRecord, SyncTrace};
use pscg_par::{knobs, set_global_threads};
use pscg_precond::Jacobi;
use pscg_sim::SimCtx;
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

const S: usize = 4;

fn all_methods() -> [MethodKind; 11] {
    [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ]
}

/// Every method × {1, 4} kernel threads: zero races, and at four threads
/// the pool protocol must actually appear in the trace (otherwise the
/// sweep silently degenerated to the inline path and verified nothing).
#[test]
fn every_method_is_race_free_at_one_and_four_threads() {
    // Small chunks so a 1000-row problem splits into many parallel jobs.
    // Pinned before the first SpMV: the CSR partition caches on first use.
    knobs::set_spmv_chunk_nnz(512);
    knobs::set_gram_chunk_rows(128);
    let g = Grid3::cube(10);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    // A few passes exercise every kernel; the detector's pair scan is
    // quadratic per buffer, so the window stays short.
    let mut opts = SolveOptions::with_rtol(1e-10).with_s(S);
    opts.max_iters = 4 * S;

    for threads in [1usize, 4] {
        set_global_threads(threads);
        for method in all_methods() {
            sync_trace::drain();
            sync_trace::set_enabled(true);
            let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
            method.solve(&mut ctx, &b, None, &opts);
            sync_trace::set_enabled(false);
            let trace = sync_trace::drain();
            assert!(
                !trace.records.is_empty(),
                "{} @{threads}t: instrumentation recorded nothing",
                method.name()
            );
            if threads > 1 {
                assert!(
                    trace
                        .records
                        .iter()
                        .any(|r| matches!(r.event, SyncEvent::EpochPublish { .. })),
                    "{} @{threads}t: no parallel dispatch observed",
                    method.name()
                );
            }
            let report = detect_races(&trace);
            assert!(
                !report.cyclic,
                "{} @{threads}t: cyclic sync trace",
                method.name()
            );
            assert!(
                report.races.is_empty(),
                "{} @{threads}t: {} race(s), first: {}",
                method.name(),
                report.races.len(),
                report.races[0]
            );
        }
    }
    set_global_threads(1);
}

/// Negative control: two threads writing overlapping ranges with no
/// synchronization events at all must be reported.
#[test]
fn unsynchronized_trace_is_flagged() {
    let trace = SyncTrace {
        records: vec![
            SyncRecord {
                thread: 0,
                event: SyncEvent::BufWrite {
                    buf: 0xdead,
                    lo: 0,
                    hi: 16,
                },
            },
            SyncRecord {
                thread: 1,
                event: SyncEvent::BufWrite {
                    buf: 0xdead,
                    lo: 8,
                    hi: 24,
                },
            },
        ],
    };
    let report = detect_races(&trace);
    assert!(
        !report.races.is_empty(),
        "detector missed a textbook unsynchronized write/write pair"
    );
}

/// Negative control with full protocol context: a properly dispatched job
/// whose two chunk closures violate the `DisjointMut` contract (their
/// ranges overlap) must still be flagged — claims order the claim events,
/// not the closure bodies.
#[test]
fn overlapping_disjoint_mut_ranges_are_flagged_despite_the_protocol() {
    let rec = |thread, event| SyncRecord { thread, event };
    let trace = SyncTrace {
        records: vec![
            rec(
                0,
                SyncEvent::EpochPublish {
                    pool: 1,
                    epoch: 1,
                    njobs: 2,
                },
            ),
            rec(
                0,
                SyncEvent::ClaimAcquire {
                    pool: 1,
                    epoch: 1,
                    index: 0,
                },
            ),
            rec(
                0,
                SyncEvent::BufWrite {
                    buf: 0xbeef,
                    lo: 0,
                    hi: 10,
                },
            ),
            rec(
                0,
                SyncEvent::FinishIndex {
                    pool: 1,
                    epoch: 1,
                    done_after: 1,
                },
            ),
            rec(
                1,
                SyncEvent::ClaimAcquire {
                    pool: 1,
                    epoch: 1,
                    index: 1,
                },
            ),
            rec(
                1,
                SyncEvent::BufWrite {
                    buf: 0xbeef,
                    lo: 9,
                    hi: 20,
                },
            ),
            rec(
                1,
                SyncEvent::FinishIndex {
                    pool: 1,
                    epoch: 1,
                    done_after: 2,
                },
            ),
            rec(0, SyncEvent::PoolJoin { pool: 1, epoch: 1 }),
        ],
    };
    let report = detect_races(&trace);
    assert_eq!(
        report.races.len(),
        1,
        "expected exactly the overlapping-chunk race, got {:?}",
        report.races
    );
    assert!(report.races[0].first.write && report.races[0].second.write);
}

/// The exhaustive model checker also runs here so tier-1 covers it
/// without the `--verify-concurrency` driver: the shipped protocol must
/// verify at every bounded configuration.
#[test]
fn dispatch_protocol_model_checks_clean() {
    for report in pscg_check::check_all(pscg_check::Variant::Correct) {
        assert!(
            report.ok(),
            "{}: {:?} ({} states)",
            report.scenario,
            report.findings,
            report.states
        );
    }
}

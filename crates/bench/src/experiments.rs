//! Runners for every table and figure of the paper's evaluation (§VI).
//!
//! Methodology: each method's numerics run **once** per problem under the
//! tracing engine (`SimCtx::traced`); the recorded operation trace is then
//! replayed against the SahasraT machine model at every rank count of the
//! sweep. Speedups are reported the paper's way — relative to PCG on one
//! node (24 cores).

use pipescg::methods::MethodKind;
use pipescg::solver::{RefNorm, SolveOptions};
use pscg_precond::PcKind;
use pscg_sim::{replay, Machine, OpTrace, SimCtx};

use crate::problems::{self, Problem};
use crate::report::Report;
use crate::scale::Scale;
use pscg_sparse::suitesparse::Surrogate;

/// A traced solve: the solver result plus its replayable trace.
pub struct TracedRun {
    /// Method that ran.
    pub method: MethodKind,
    /// CG steps to convergence.
    pub iterations: usize,
    /// Whether it converged (methods that stagnate at tight tolerances
    /// legitimately do not).
    pub converged: bool,
    /// Final relative residual seen by the convergence test.
    pub final_relres: f64,
    /// The operation trace.
    pub trace: OpTrace,
}

/// Runs `method` on `problem` with preconditioner `pc`, tracing.
pub fn traced_solve(
    problem: &Problem,
    method: MethodKind,
    pc: PcKind,
    opts: &SolveOptions,
) -> TracedRun {
    let b = problem.rhs();
    let pc_op = pc.build(&problem.a, problem.grid);
    let mut ctx = SimCtx::traced(&problem.a, pc_op, problem.profile.clone());
    let res = method.solve(&mut ctx, &b, None, opts);
    TracedRun {
        method,
        iterations: res.iterations,
        converged: res.converged(),
        final_relres: res.final_relres,
        trace: ctx.take_trace().expect("tracing was enabled"),
    }
}

/// Preconditioner each method uses in the Figure 1/2 sweeps: Jacobi for the
/// preconditioned methods, none for PIPE-sCG (the unpreconditioned variant).
pub fn default_pc(method: MethodKind) -> PcKind {
    match method {
        MethodKind::PipeScg | MethodKind::Scg | MethodKind::ScgSspmv => PcKind::None,
        _ => PcKind::Jacobi,
    }
}

/// The time-to-solution of a traced run at `p` ranks.
pub fn time_at(run: &TracedRun, machine: &Machine, p: usize) -> f64 {
    replay(&run.trace, machine, p).total_time
}

// ---------------------------------------------------------------------------
// E1 — Table I
// ---------------------------------------------------------------------------

/// Regenerates Table I (the analytic cost comparison) at a given `s`.
pub fn table1(s: usize) -> Report {
    let mut rep = Report::new(
        "table1",
        &format!("Differences between various PCG methods for s = {s} iterations"),
        &[
            "Method",
            "#Allr",
            "Time per s iterations",
            "FLOPS (xN)",
            "Memory",
        ],
    );
    for row in pipescg::costmodel::table1() {
        let time = match row.time {
            pipescg::costmodel::TimeExpr::Pcg => format!("{s}(3G+PC+SPMV)"),
            pipescg::costmodel::TimeExpr::Pipecg => format!("{s}(max(G, PC+SPMV))"),
            pipescg::costmodel::TimeExpr::Pipelcg | pipescg::costmodel::TimeExpr::PipePscg => {
                format!("max(G, {s}(PC+SPMV))")
            }
            pipescg::costmodel::TimeExpr::HalfStep => {
                format!("{}(max(G, 2(PC+SPMV)))", s.div_ceil(2))
            }
            pipescg::costmodel::TimeExpr::Pscg => format!("G+{}(PC+SPMV)", s + 1),
        };
        rep.push_row(vec![
            row.method.to_string(),
            (row.allreduces)(s).to_string(),
            time,
            format!("{:.0}", (row.flops)(s)),
            format!("{:.0}", (row.memory)(s)),
        ]);
    }
    rep
}

// ---------------------------------------------------------------------------
// E2/E3 — Figures 1 and 2 (strong scaling)
// ---------------------------------------------------------------------------

/// Strong-scaling sweep: every figure method, replayed over the node sweep;
/// speedups relative to PCG on one node. Returns the report and the traced
/// runs (Figure 5 reuses them).
pub fn strong_scaling(
    id: &str,
    problem: &Problem,
    machine: &Machine,
    scale: &Scale,
    max_nodes: usize,
    s: usize,
) -> (Report, Vec<TracedRun>) {
    // The figures use the paper's literal threshold `rtol * ||b||` (§VI-E).
    let opts = SolveOptions {
        rtol: problem.rtol,
        s,
        max_iters: scale.max_iters,
        ref_norm: RefNorm::PlainB,
        ..Default::default()
    };
    let methods = MethodKind::figure_set();
    let runs: Vec<TracedRun> = methods
        .iter()
        .map(|&m| traced_solve(problem, m, default_pc(m), &opts))
        .collect();

    let nodes = Scale::node_sweep(max_nodes);
    let t_ref = time_at(&runs[0], machine, machine.cores_per_node); // PCG @ 1 node

    let mut headers: Vec<String> = vec!["nodes".into(), "cores".into()];
    headers.extend(runs.iter().map(|r| format!("{} speedup", r.method.name())));
    let mut rep = Report::new(
        id,
        &format!(
            "Strong scaling on {} (rtol {:.0e}, s = {s}); speedup wrt PCG on 1 node",
            problem.name, problem.rtol
        ),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for &n in &nodes {
        let p = n * machine.cores_per_node;
        let mut row = vec![n.to_string(), p.to_string()];
        for run in &runs {
            let t = time_at(run, machine, p);
            row.push(format!("{:.2}", t_ref / t));
        }
        rep.push_row(row);
    }
    (rep, runs)
}

/// Figure 1: 125-pt Poisson, rtol 1e-5, s = 3, up to 120 nodes.
pub fn fig1(scale: &Scale, machine: &Machine) -> (Report, Vec<TracedRun>) {
    let problem = problems::poisson125(scale);
    strong_scaling("fig1", &problem, machine, scale, 120, 3)
}

/// Figure 2: ecology2 (surrogate), rtol 1e-2, s = 3, up to 120 nodes.
pub fn fig2(scale: &Scale, machine: &Machine) -> (Report, Vec<TracedRun>) {
    let mut problem = problems::surrogate(Surrogate::Ecology2, scale);
    problem.rtol = 1e-2; // the paper's tolerance for this matrix (§VI-B)
    strong_scaling("fig2", &problem, machine, scale, 120, 3)
}

// ---------------------------------------------------------------------------
// E4 — Table II (SuiteSparse matrices, hybrid method)
// ---------------------------------------------------------------------------

/// Table II: ecology2/thermal2/Serena at 120 nodes, rtol 1e-5; speedups wrt
/// PCG on one node for PCG, PIPECG, PIPECG-OATI and Hybrid-pipelined.
pub fn table2(scale: &Scale, machine: &Machine) -> Report {
    let methods = [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::PipecgOati,
        MethodKind::Hybrid,
    ];
    let mut rep = Report::new(
        "table2",
        "SuiteSparse matrices (surrogates) on 120 nodes, rtol 1e-5; speedups wrt PCG on 1 node",
        &[
            "Matrix",
            "N",
            "nnz",
            "PCG",
            "PIPECG",
            "PIPECG-OATI",
            "Hybrid-pipelined",
        ],
    );
    let p_big = 120 * machine.cores_per_node;
    for which in [Surrogate::Ecology2, Surrogate::Thermal2, Surrogate::Serena] {
        let problem = problems::surrogate(which, scale);
        // Table II keeps the norm-matched reference (the stricter PETSc
        // convention): the synthetic surrogates are better conditioned than
        // the real SuiteSparse matrices, and the matched reference restores
        // a comparable effective difficulty at rtol 1e-5 (see
        // EXPERIMENTS.md).
        let opts = SolveOptions {
            rtol: 1e-5,
            s: 3,
            max_iters: scale.max_iters,
            ..Default::default()
        };
        let mut row = vec![
            problem.name.clone(),
            problem.a.nrows().to_string(),
            problem.a.nnz().to_string(),
        ];
        let mut t_ref = None;
        for m in methods {
            let run = traced_solve(&problem, m, default_pc(m), &opts);
            if !run.converged {
                eprintln!(
                    "warning: {} on {} stopped unconverged at {:.2e}",
                    m.name(),
                    problem.name,
                    run.final_relres
                );
            }
            let t_ref = *t_ref.get_or_insert_with(|| {
                // The reference must be PCG at one node (the paper's metric).
                assert_eq!(run.method, MethodKind::Pcg, "reference run must be PCG");
                time_at(&run, machine, machine.cores_per_node)
            });
            row.push(format!("{:.2}", t_ref / time_at(&run, machine, p_big)));
        }
        rep.push_row(row);
    }
    rep
}

// ---------------------------------------------------------------------------
// E5 — Figure 3 (s sensitivity)
// ---------------------------------------------------------------------------

/// Figure 3: PIPE-PsCG at s = 3, 4, 5 on the 125-pt problem, up to 140
/// nodes; speedups wrt PCG on one node.
pub fn fig3(scale: &Scale, machine: &Machine) -> Report {
    let problem = problems::poisson125(scale);
    let svals = [3usize, 4, 5];
    let base_opts = SolveOptions {
        rtol: problem.rtol,
        max_iters: scale.max_iters,
        ref_norm: RefNorm::PlainB,
        ..Default::default()
    };
    let pcg_run = traced_solve(&problem, MethodKind::Pcg, PcKind::Jacobi, &base_opts);
    let runs: Vec<(usize, TracedRun)> = svals
        .iter()
        .map(|&s| {
            let opts = SolveOptions { s, ..base_opts };
            (
                s,
                traced_solve(&problem, MethodKind::PipePscg, PcKind::Jacobi, &opts),
            )
        })
        .collect();

    let t_ref = time_at(&pcg_run, machine, machine.cores_per_node);
    let mut rep = Report::new(
        "fig3",
        &format!(
            "s sensitivity of PIPE-PsCG on {}; speedup wrt PCG on 1 node",
            problem.name
        ),
        &["nodes", "cores", "s=3", "s=4", "s=5"],
    );
    for n in Scale::node_sweep(140) {
        let p = n * machine.cores_per_node;
        let mut row = vec![n.to_string(), p.to_string()];
        for (_, run) in &runs {
            row.push(format!("{:.2}", t_ref / time_at(run, machine, p)));
        }
        rep.push_row(row);
    }
    rep
}

// ---------------------------------------------------------------------------
// E6 — Figure 4 (preconditioners)
// ---------------------------------------------------------------------------

/// Figure 4: SOR / MG / GAMG with each CG variant on the 125-pt problem at
/// 120 nodes; speedup wrt PCG (same preconditioner) on one node.
pub fn fig4(scale: &Scale, machine: &Machine) -> Report {
    let problem = problems::poisson125(scale);
    let methods = [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Pscg,
        MethodKind::PipePscg,
    ];
    let pcs = [PcKind::Sor, PcKind::Mg, PcKind::Gamg];
    let p_big = 120 * machine.cores_per_node;
    let opts = SolveOptions {
        rtol: problem.rtol,
        s: 3,
        max_iters: scale.max_iters,
        ref_norm: RefNorm::PlainB,
        ..Default::default()
    };
    let mut headers = vec!["preconditioner".to_string()];
    headers.extend(methods.iter().map(|m| m.name().to_string()));
    let mut rep = Report::new(
        "fig4",
        &format!(
            "Preconditioner study on {} at 120 nodes; speedup wrt PCG on 1 node",
            problem.name
        ),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for pc in pcs {
        let mut row = vec![pc.name().to_string()];
        let mut t_ref = None;
        for m in methods {
            let run = traced_solve(&problem, m, pc, &opts);
            let t_ref = *t_ref.get_or_insert_with(|| {
                // The reference must be PCG at one node (the paper's metric).
                assert_eq!(run.method, MethodKind::Pcg, "reference run must be PCG");
                time_at(&run, machine, machine.cores_per_node)
            });
            row.push(format!("{:.2}", t_ref / time_at(&run, machine, p_big)));
        }
        rep.push_row(row);
    }
    rep
}

// ---------------------------------------------------------------------------
// E7 — Figure 5 (accuracy/performance trajectories)
// ---------------------------------------------------------------------------

/// Figure 5: relative residual as a function of time at 80 nodes, reusing
/// the Figure 1 traces. Each row is `(method, time, relres)`.
pub fn fig5(runs: &[TracedRun], machine: &Machine) -> Report {
    let p = 80 * machine.cores_per_node;
    let mut rep = Report::new(
        "fig5",
        "Relative residual vs time at 80 nodes (125-pt Poisson)",
        &["method", "time_s", "relres"],
    );
    for run in runs {
        let r = replay(&run.trace, machine, p);
        for &(t, res) in &r.residual_timeline {
            rep.push_row(vec![
                run.method.name().to_string(),
                format!("{t:.6}"),
                format!("{res:.3e}"),
            ]);
        }
    }
    rep
}

// ---------------------------------------------------------------------------
// E8 — async-progress ablation
// ---------------------------------------------------------------------------

/// §VI-A ablation: PIPE-PsCG with and without asynchronous progress of the
/// non-blocking allreduce (DMAPP / MPICH_NEMESIS_ASYNC_PROGRESS).
pub fn ablation_progress(scale: &Scale) -> Report {
    let problem = problems::poisson125(scale);
    let opts = SolveOptions {
        rtol: problem.rtol,
        s: 3,
        max_iters: scale.max_iters,
        ref_norm: RefNorm::PlainB,
        ..Default::default()
    };
    let run = traced_solve(&problem, MethodKind::PipePscg, PcKind::Jacobi, &opts);
    let on = Machine::sahasrat();
    let off = Machine::sahasrat_no_async_progress();
    let mut rep = Report::new(
        "ablation-progress",
        "PIPE-PsCG with vs without asynchronous allreduce progress",
        &[
            "nodes",
            "time async-on",
            "time async-off",
            "slowdown",
            "overlap hidden (on)",
        ],
    );
    for n in Scale::node_sweep(120) {
        let p = n * on.cores_per_node;
        let r_on = replay(&run.trace, &on, p);
        let r_off = replay(&run.trace, &off, p);
        rep.push_row(vec![
            n.to_string(),
            crate::report::fmt_time(r_on.total_time),
            crate::report::fmt_time(r_off.total_time),
            format!("{:.2}x", r_off.total_time / r_on.total_time),
            format!("{:.0}%", 100.0 * r_on.overlap_fraction()),
        ]);
    }
    rep
}

// ---------------------------------------------------------------------------
// E10 — matrix-powers-kernel extension (§II discussion)
// ---------------------------------------------------------------------------

/// §II discusses Hoemmen's matrix-powers kernel and why the paper avoids it
/// (it constrains preconditioning). This extension quantifies the trade-off
/// for the unpreconditioned PIPE-sCG: identical numerics, batched halo.
pub fn mpk(scale: &Scale, machine: &Machine) -> Report {
    let problem = problems::poisson125(scale);
    let opts = SolveOptions {
        rtol: problem.rtol,
        s: 3,
        max_iters: scale.max_iters,
        ref_norm: RefNorm::PlainB,
        ..Default::default()
    };
    let b = problem.rhs();
    let run_variant = |use_mpk: bool| {
        let mut ctx = pscg_sim::SimCtx::traced(
            &problem.a,
            PcKind::None.build(&problem.a, problem.grid),
            problem.profile.clone(),
        );
        let res = if use_mpk {
            pipescg::methods::pipe_scg::solve_mpk(&mut ctx, &b, None, &opts)
        } else {
            pipescg::methods::pipe_scg::solve(&mut ctx, &b, None, &opts)
        };
        assert!(res.converged(), "PIPE-sCG mpk={use_mpk} did not converge");
        ctx.take_trace().expect("traced")
    };
    let plain = run_variant(false);
    let ca = run_variant(true);
    let mut rep = Report::new(
        "mpk",
        "PIPE-sCG with vs without the matrix-powers kernel (halo batching)",
        &[
            "nodes",
            "time plain",
            "time MPK",
            "speedup",
            "halo plain",
            "halo MPK",
        ],
    );
    for n in Scale::node_sweep(120) {
        let p = n * machine.cores_per_node;
        let r1 = replay(&plain, machine, p);
        let r2 = replay(&ca, machine, p);
        rep.push_row(vec![
            n.to_string(),
            crate::report::fmt_time(r1.total_time),
            crate::report::fmt_time(r2.total_time),
            format!("{:.2}x", r1.total_time / r2.total_time),
            crate::report::fmt_time(r1.halo_time),
            crate::report::fmt_time(r2.halo_time),
        ]);
    }
    rep
}

// ---------------------------------------------------------------------------
// E9 — §V break-even analysis
// ---------------------------------------------------------------------------

/// §V: where does G overtake s·(PC+SPMV)? Prints the kernel times per node
/// count and the break-even points for s = 1, 3, 4, 5.
pub fn crossover(scale: &Scale, machine: &Machine) -> Report {
    let problem = problems::poisson125(scale);
    let mut rep = Report::new(
        "crossover",
        &format!("Allreduce vs overlap budget on {} (Jacobi)", problem.name),
        &[
            "nodes",
            "G",
            "PC+SPMV",
            "G/(PC+SPMV)",
            "hides s=1",
            "hides s=3",
            "hides s=5",
        ],
    );
    for n in Scale::node_sweep(140) {
        let p = n * machine.cores_per_node;
        let (g, pc, spmv) = pipescg::costmodel::kernel_times(
            machine,
            &problem.profile,
            p,
            pipescg::sstep::GramPacket::len(3),
            1.0,
            24.0,
        );
        let k = pc + spmv;
        rep.push_row(vec![
            n.to_string(),
            crate::report::fmt_time(g),
            crate::report::fmt_time(k),
            format!("{:.2}", g / k),
            (g <= k).to_string(),
            (g <= 3.0 * k).to_string(),
            (g <= 5.0 * k).to_string(),
        ]);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci() -> Scale {
        Scale::ci()
    }

    #[test]
    fn traced_solve_produces_replayable_trace() {
        let problem = problems::poisson125(&ci());
        let opts = SolveOptions {
            rtol: 1e-5,
            s: 3,
            ..Default::default()
        };
        let run = traced_solve(&problem, MethodKind::PipePscg, PcKind::Jacobi, &opts);
        assert!(run.converged);
        let m = Machine::sahasrat();
        let t24 = time_at(&run, &m, 24);
        let t960 = time_at(&run, &m, 960);
        assert!(t24 > t960, "strong scaling must help at these sizes");
    }

    #[test]
    fn table1_report_has_seven_rows() {
        let rep = table1(3);
        assert_eq!(rep.rows.len(), 7);
        assert_eq!(rep.rows[6][0], "PIPE-PsCG");
        assert_eq!(rep.rows[6][1], "1");
    }

    #[test]
    fn crossover_report_covers_sweep() {
        let rep = crossover(&ci(), &Machine::sahasrat());
        assert_eq!(rep.rows.len(), Scale::node_sweep(140).len());
    }
}

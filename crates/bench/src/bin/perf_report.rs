//! Offline perf-report analyzer (DESIGN.md §13).
//!
//! ```text
//! perf-report [--telemetry DIR] [--report FILE] [--kernels FILE]
//!             [--out DIR] [--baseline FILE] [--check] [--tolerance T]
//!             [--validate-flight FILE]
//! ```
//!
//! Ingests a telemetry directory (`<method>.trace.json` +
//! `<method>.metrics.jsonl`, as written by `repro --telemetry`) — or a
//! previously rendered `perf_report.json` via `--report` — and writes
//! `OUT/perf_report.json` + `OUT/perf_report.md` with per-kernel achieved
//! GFLOP/s / GB/s against the cost model and per-method achieved overlap
//! against the IR's static capacity report.
//!
//! `--kernels FILE` additionally prints measured vs modelled SpMV
//! bytes-per-nnz for every format in a kernelbench JSON artifact.
//!
//! `--check` compares the report against `--baseline FILE` (default
//! `BENCH_perf_report.json`) and exits 17 when any method's SpMV/MPK
//! achieved bandwidth or achieved overlap regressed by more than
//! `--tolerance` (default 0.20, i.e. 20% relative).
//!
//! `--validate-flight FILE` schema-validates a flight-recorder dump (as
//! left by a failed resilient solve) and exits 1 when it is malformed.

use std::path::PathBuf;

use pscg_bench::perf_report::{self, PerfReport};
use pscg_obs::json::{parse as parse_json, Json};
use pscg_sparse::SpmvFormat;

/// Exit code for a `--check` regression (distinct from the verifier
/// families' 10–16).
const EXIT_PERF_REGRESSION: i32 = 17;

fn fail(msg: &str) -> ! {
    eprintln!("[perf-report] {msg}");
    std::process::exit(1);
}

/// Prints measured vs modelled SpMV bytes-per-nnz for every `spmv` result
/// in a kernelbench JSON artifact.
fn report_kernels(path: &PathBuf) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(&format!("read {}: {e}", path.display())),
    };
    let doc = match parse_json(&text) {
        Ok(d) => d,
        Err(e) => fail(&format!("{}: {e}", path.display())),
    };
    let problem = doc.get("problem");
    let nnz = problem
        .and_then(|p| p.get("nnz"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let nrows = problem
        .and_then(|p| p.get("nrows"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let Some(results) = doc.get("results").and_then(Json::as_arr) else {
        fail(&format!("{}: no results array", path.display()));
    };
    println!(
        "\n## Kernelbench SpMV traffic vs model ({})\n",
        path.display()
    );
    println!("| format | threads | measured B/nnz | model B/nnz | ratio |");
    println!("|---|---|---|---|---|");
    for r in results {
        if r.get("kernel").and_then(Json::as_str) != Some("spmv") {
            continue;
        }
        let Some(fmt_name) = r.get("format").and_then(Json::as_str) else {
            continue;
        };
        let Some(measured) = r.get("bytes_per_nnz").and_then(Json::as_f64) else {
            continue;
        };
        let threads = r.get("threads").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let model = SpmvFormat::parse(fmt_name)
            .map(|f| perf_report::spmv_model_bytes_per_nnz(f, nnz, nrows))
            .unwrap_or(f64::NAN);
        println!(
            "| {fmt_name} | {threads} | {measured:.2} | {model:.2} | {:.2} |",
            measured / model
        );
    }
}

fn main() {
    let mut telemetry = PathBuf::from("telemetry");
    let mut report_file: Option<PathBuf> = None;
    let mut kernels: Option<PathBuf> = None;
    let mut out = PathBuf::from("results");
    let mut baseline = PathBuf::from("BENCH_perf_report.json");
    let mut do_check = false;
    let mut tolerance = 0.20_f64;
    let mut validate_flight: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_arg = |flag: &str| -> PathBuf {
            match args.next() {
                Some(v) => PathBuf::from(v),
                None => fail(&format!("{flag} needs a value")),
            }
        };
        match arg.as_str() {
            "--telemetry" => telemetry = path_arg("--telemetry"),
            "--report" => report_file = Some(path_arg("--report")),
            "--kernels" => kernels = Some(path_arg("--kernels")),
            "--out" => out = path_arg("--out"),
            "--baseline" => baseline = path_arg("--baseline"),
            "--check" => do_check = true,
            "--tolerance" => {
                let v = args.next().unwrap_or_default();
                tolerance = match v.parse::<f64>() {
                    Ok(t) if t > 0.0 && t < 1.0 => t,
                    _ => fail(&format!("--tolerance must be in (0, 1), got '{v}'")),
                };
            }
            "--validate-flight" => validate_flight = Some(path_arg("--validate-flight")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: perf-report [--telemetry DIR] [--report FILE] \
                     [--kernels FILE] [--out DIR] [--baseline FILE] [--check] \
                     [--tolerance T] [--validate-flight FILE]"
                );
                return;
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
    }

    if let Some(path) = &validate_flight {
        match pscg_obs::flight::validate_flight_file(path) {
            Ok(check) => println!(
                "[perf-report] flight dump {} is valid: reason {}, method {}, \
                 {} iteration frame(s), {} span(s)",
                path.display(),
                check.reason,
                check.method,
                check.iters,
                check.spans
            ),
            Err(e) => fail(&format!("invalid flight dump {}: {e}", path.display())),
        }
    }

    if let Some(path) = &kernels {
        report_kernels(path);
    }

    // With only a flight validation or kernels join requested, stop here.
    let wants_report =
        report_file.is_some() || (validate_flight.is_none() && kernels.is_none()) || do_check;
    if !wants_report {
        return;
    }

    let report: PerfReport = match &report_file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("read {}: {e}", path.display())));
            perf_report::parse_report(&text)
                .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())))
        }
        None => perf_report::from_dir(&telemetry).unwrap_or_else(|e| fail(&e)),
    };

    if let Err(e) = std::fs::create_dir_all(&out) {
        fail(&format!("create {}: {e}", out.display()));
    }
    let json_path = out.join("perf_report.json");
    let md_path = out.join("perf_report.md");
    if let Err(e) = std::fs::write(&json_path, perf_report::render_json(&report)) {
        fail(&format!("write {}: {e}", json_path.display()));
    }
    if let Err(e) = std::fs::write(&md_path, perf_report::render_md(&report)) {
        fail(&format!("write {}: {e}", md_path.display()));
    }
    println!(
        "[perf-report] {} method(s) → {} + {}",
        report.methods.len(),
        json_path.display(),
        md_path.display()
    );

    if do_check {
        let text = std::fs::read_to_string(&baseline)
            .unwrap_or_else(|e| fail(&format!("read baseline {}: {e}", baseline.display())));
        let base = perf_report::parse_report(&text)
            .unwrap_or_else(|e| fail(&format!("baseline {}: {e}", baseline.display())));
        let failures = perf_report::check(&report, &base, tolerance);
        if failures.is_empty() {
            println!(
                "[perf-report] check OK against {} ({:.0}% tolerance)",
                baseline.display(),
                tolerance * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("[perf-report] REGRESSION: {f}");
            }
            std::process::exit(EXIT_PERF_REGRESSION);
        }
    }
}

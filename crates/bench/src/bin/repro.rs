//! Paper-reproduction driver.
//!
//! ```text
//! repro [--scale ci|small|paper] [--verify-schedule] [--verify-concurrency]
//!       [--strict-probes] [--telemetry DIR] <experiment>...
//! experiments: table1 fig1 fig2 table2 fig3 fig4 fig5 ablation-progress crossover mpk all
//! ```
//!
//! Results are printed as markdown and written to `results/<id>.csv`.
//! `fig5` implies running `fig1`'s solves first (it replays the same
//! traces at 80 nodes).
//!
//! `--verify-schedule` runs the static communication-schedule analyzer
//! (`pscg-analysis`) over every method's trace before the experiments.
//! Verification failures exit with the finding-class codes of
//! [`pscg_analysis::exit_codes`]: 10 for overlap hazards, 11 for Table I
//! structure violations. Numerical probe findings are printed as advisory
//! unless `--strict-probes` is given, which makes them exit 12. With no
//! experiments named, the flag runs the verification alone.
//!
//! `--verify-concurrency` runs the `pscg-check` concurrency layer: the
//! exhaustive model checker over the pool dispatch protocol's bounded
//! configurations (findings exit 14) and the vector-clock race detector
//! over sync traces of instrumented solves at 1 and 4 kernel threads
//! (findings exit 15). With no experiments named, the flag runs the
//! verification alone.
//!
//! `--verify-ir` runs the declarative-IR verifier (`pscg-ir`): the static
//! passes — buffer dataflow (read-before-wait, writes into open overlap
//! windows), Table I structure derivation cross-checked against the
//! analyzer and the cost model, overlap-capacity reporting — over every
//! method's IR *without executing a solve*, then one traced solve per
//! method whose recorded schedule is replayed op-for-op against the IR.
//! Any static finding or conformance divergence exits 16. With no
//! experiments named, the flag runs the verification alone.
//! `--ir-broken MODE|all` (requires building with `--features broken-ir`)
//! instead runs the verifier against the deliberately broken specs and
//! exits 16 when every planted bug is rejected — the non-vacuousness gate.
//!
//! `--telemetry DIR` (or `PSCG_TELEMETRY=DIR`) runs every method once on
//! the scale's Poisson problem with runtime telemetry enabled and writes
//! per-method Chrome trace-event files (`DIR/<method>.trace.json`, open in
//! <https://ui.perfetto.dev>) plus per-iteration metrics streams
//! (`DIR/<method>.metrics.jsonl`). Both outputs are schema-validated, the
//! telemetry residual stream is checked bit-for-bit against the solver's
//! convergence history, and the achieved-overlap ratios are recorded in
//! `results/overlap.csv`; any mismatch aborts with exit 1. With no
//! experiments named, the flag runs the telemetry pass alone.
//!
//! `--telemetry-mode full|aggregate` selects how `--telemetry` retains
//! spans: `full` (default) keeps every span for the Chrome trace;
//! `aggregate` folds spans into O(1)-memory log-binned histograms as they
//! retire and writes `DIR/<method>.agg.json` instead of a trace
//! (the metrics stream and its bitwise residual check are unchanged).
//!
//! `--perf-report` runs every method once with telemetry enabled and joins
//! the recorded spans with the cost model and the IR's static schedule
//! (DESIGN.md §13), writing `results/perf_report.json` +
//! `results/perf_report.md` — the input to `perf-report --check`.
//!
//! `--fault-plan FILE` (or `PSCG_FAULTS=FILE`) runs a fault-injection
//! campaign instead: the plan (see `pscg-fault` for the text format) is
//! armed in a fresh simulator for every method and the solve goes through
//! the resilient supervisor. The flight recorder is armed for the
//! campaign, so any non-recovered fault leaves a post-mortem ring dump at
//! `results/flight.json`. A method passes when it either converges with
//! a recomputed residual that confirms the tolerance, or reports an
//! explicit error — a *silent* wrong answer (claimed convergence
//! contradicted by `‖b − A x‖`) aborts with exit 1. With no experiments
//! named, the flag runs the campaign alone.
//!
//! `--chaos N [--chaos-seed S]` runs N seeded chaos campaigns: each
//! campaign generates a random fault plan (data faults, completion faults
//! and rank death/straggler events — `pscg_fault::chaos`) and runs it
//! through the resilient supervisor for all 11 methods under a wall-clock
//! watchdog. The contract is *recover or error explicitly, never hang,
//! never lie*: every accepted answer's true residual is recomputed, a
//! solve that produces nothing within the deadline counts as a hang, and
//! either violation is minimized with the automatic plan shrinker
//! (`pscg_fault::shrink`), dumped next to a flight-recorder post-mortem,
//! and exits with code 18. The outcome histogram is written to
//! `results/chaos.json`.
//!
//! `--chaos-plant` (requires building with `--features broken-resilience`)
//! runs the chaos classifier against a known-bad plan on a deliberately
//! sabotaged supervisor and exits 18 only when the harness both catches
//! the planted silent-wrong answer *and* shrinks the plan to its killer
//! line — the non-vacuousness gate for the chaos machinery itself.
//!
//! `--lint-source` runs the `pscg-lint` source scanner (DESIGN.md §14)
//! over the whole workspace before anything else: every pass, inline
//! `pscg-lint: allow(…)` suppression honored, findings printed in
//! `path:line [pass] message` form. Any finding exits 19
//! ([`FindingClass::Lint`]). With no experiments named, the flag runs
//! the scan alone.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use pipescg::methods::MethodKind;
use pipescg::solver::{SolveError, SolveOptions};
use pscg_analysis::FindingClass;
use pscg_bench::problems;
use pscg_bench::{experiments, Scale};
use pscg_fault::{chaos, shrink, ChaosConfig, FaultPlan};
use pscg_precond::Jacobi;
use pscg_sim::{Machine, SimCtx};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
use pscg_sparse::CsrMatrix;

/// Every method the drivers sweep, in the paper's presentation order.
const ALL_METHODS: [MethodKind; 11] = [
    MethodKind::Pcg,
    MethodKind::Pipecg,
    MethodKind::Pipecg3,
    MethodKind::PipecgOati,
    MethodKind::Scg,
    MethodKind::ScgSspmv,
    MethodKind::Pscg,
    MethodKind::PipeScg,
    MethodKind::PipePscg,
    MethodKind::Hybrid,
    MethodKind::Cg3,
];

/// Runs the static analyzer over every method's trace on the scale's
/// Poisson problem. Returns the finding classes observed: hazards and
/// structure violations always count; probe findings only under
/// `strict_probes` (they are printed as advisory either way).
fn verify_schedules(scale: &Scale, strict_probes: bool) -> Vec<FindingClass> {
    let p = problems::poisson125(scale);
    let b = p.rhs();
    let s = 4;
    println!("\n## Schedule verification ({}, s = {s})\n", p.name);
    println!("| method | ops | windows | hazards | structure | probes |");
    println!("|---|---|---|---|---|---|");
    let mut classes = Vec::new();
    for method in ALL_METHODS {
        let mut ctx = SimCtx::traced(&p.a, Box::new(Jacobi::new(&p.a)), p.profile.clone());
        let opts = SolveOptions {
            rtol: p.rtol,
            s,
            max_iters: scale.max_iters,
            ..Default::default()
        };
        method.solve(&mut ctx, &b, None, &opts);
        let trace = ctx.take_trace().expect("tracing was enabled");
        let report = pscg_analysis::analyze(&trace);
        let violations = pscg_analysis::verify(&trace, method, s);
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            method.name(),
            trace.ops.len(),
            report.windows.len(),
            report.hazards.len(),
            violations.len(),
            report.probes.len()
        );
        for h in &report.hazards {
            eprintln!("[verify-schedule] {}: {h}", method.name());
        }
        for v in &violations {
            eprintln!("[verify-schedule] {}: {v}", method.name());
        }
        for pf in &report.probes {
            let tag = if strict_probes { "" } else { " (advisory)" };
            eprintln!("[verify-schedule] {}: probe{tag}: {pf}", method.name());
        }
        if !report.hazards.is_empty() {
            classes.push(FindingClass::Hazard);
        }
        if !violations.is_empty() {
            classes.push(FindingClass::Structure);
        }
        if strict_probes && !report.probes.is_empty() {
            classes.push(FindingClass::Probe);
        }
    }
    classes
}

/// Runs the declarative-IR verifier over every method: the static passes
/// (dataflow, structure derivation, overlap capacity — no solve executed),
/// then one traced solve whose schedule is replayed against the IR. Any
/// static finding or conformance divergence contributes
/// [`FindingClass::Ir`].
fn verify_ir(scale: &Scale) -> Vec<FindingClass> {
    let p = problems::poisson125(scale);
    let b = p.rhs();
    let s = 4;
    println!("\n## IR verification ({}, s = {s})\n", p.name);
    println!("| method | IR nodes | static | overlap capacity | conformance |");
    println!("|---|---|---|---|---|");
    let mut classes = Vec::new();
    for method in ALL_METHODS {
        let ir = pscg_ir::method_ir(method, s);
        let findings = pscg_ir::verify_static(&ir);
        let caps = pscg_ir::overlap::report(&ir);
        let capacity = if caps.is_empty() {
            "—".to_string()
        } else {
            caps.iter()
                .map(|c| {
                    format!(
                        "[{}] {} SpMV + {} PC + {} local",
                        c.tag, c.spmvs, c.pcs, c.locals
                    )
                })
                .collect::<Vec<_>>()
                .join("; ")
        };
        let mut ctx = SimCtx::traced(&p.a, Box::new(Jacobi::new(&p.a)), p.profile.clone());
        let opts = SolveOptions {
            rtol: p.rtol,
            s,
            max_iters: scale.max_iters,
            ..Default::default()
        };
        method.solve(&mut ctx, &b, None, &opts);
        let trace = ctx.take_trace().expect("tracing was enabled");
        let conformance = pscg_ir::conform(&ir, &trace);
        println!(
            "| {} | {} | {} | {capacity} | {} |",
            method.name(),
            ir.node_count(),
            if findings.is_empty() { "clean" } else { "FAIL" },
            if conformance.is_ok() {
                "ok"
            } else {
                "DIVERGED"
            },
        );
        for f in &findings {
            eprintln!("[verify-ir] {}: {f}", method.name());
        }
        if let Err(d) = &conformance {
            eprintln!("[verify-ir] {}: {d}", method.name());
        }
        if !findings.is_empty() || conformance.is_err() {
            classes.push(FindingClass::Ir);
        }
    }
    classes
}

/// Runs the IR verifier against the planted broken specs (the
/// non-vacuousness gate): exits with the IR finding code when *every*
/// planted bug is rejected by its designated layer, 1 when any slips
/// through.
#[cfg(feature = "broken-ir")]
fn run_ir_broken(scale: &Scale, mode: &str) -> ! {
    let bugs = if mode == "all" {
        pscg_ir::broken::all()
    } else {
        match pscg_ir::broken::by_name(mode) {
            Some(b) => vec![b],
            None => {
                let known: Vec<&str> = pscg_ir::broken::all().iter().map(|b| b.name).collect();
                eprintln!(
                    "unknown --ir-broken mode '{mode}'; known: {} all",
                    known.join(" ")
                );
                std::process::exit(2);
            }
        }
    };
    let p = problems::poisson125(scale);
    let b = p.rhs();
    let mut all_rejected = true;
    for bug in bugs {
        let findings = pscg_ir::verify_static(&bug.ir);
        let caught = if findings.is_empty() {
            // Statically clean by design — the trace replay must catch it.
            let mut ctx = SimCtx::traced(&p.a, Box::new(Jacobi::new(&p.a)), p.profile.clone());
            let opts = SolveOptions {
                rtol: p.rtol,
                s: bug.ir.steps,
                max_iters: scale.max_iters,
                ..Default::default()
            };
            bug.ir.kind.solve(&mut ctx, &b, None, &opts);
            let trace = ctx.take_trace().expect("tracing was enabled");
            match pscg_ir::conform(&bug.ir, &trace) {
                Err(d) => {
                    eprintln!("[ir-broken] {}: rejected by conformance: {d}", bug.name);
                    true
                }
                Ok(()) => false,
            }
        } else {
            for f in &findings {
                eprintln!("[ir-broken] {}: rejected statically: {f}", bug.name);
            }
            true
        };
        if !caught {
            all_rejected = false;
            eprintln!(
                "[ir-broken] {}: NOT rejected — the verifier is vacuous for: {}",
                bug.name, bug.detail
            );
        }
    }
    if all_rejected {
        std::process::exit(FindingClass::Ir.exit_code());
    }
    std::process::exit(1);
}

/// Methods whose kernel schedules the race detector observes: one
/// classic, one s-step, and the two pipelined s-step variants cover every
/// kernel family the par engine dispatches.
const RACE_METHODS: [MethodKind; 4] = [
    MethodKind::Pipecg,
    MethodKind::ScgSspmv,
    MethodKind::PipeScg,
    MethodKind::PipePscg,
];

/// Runs the `pscg-check` concurrency layer: the exhaustive model checker
/// over every bounded pool-protocol configuration, then the vector-clock
/// race detector over sync traces of short instrumented solves at 1 and 4
/// kernel threads. Returns the finding classes observed.
fn verify_concurrency(scale: &Scale) -> Vec<FindingClass> {
    let mut classes = Vec::new();

    println!("\n## Concurrency verification: dispatch-protocol model checking\n");
    println!("| scenario | states | findings |");
    println!("|---|---|---|");
    for report in pscg_check::check_all(pscg_check::Variant::Correct) {
        println!(
            "| {} | {} | {} |",
            report.scenario,
            report.states,
            report.findings.len()
        );
        for f in &report.findings {
            eprintln!("[verify-concurrency] model: {}: {f}", report.scenario);
        }
        if !report.ok() {
            classes.push(FindingClass::Model);
        }
    }

    let p = problems::poisson125(scale);
    let b = p.rhs();
    let s = 4;
    // A few passes give every kernel a turn; the detector's pair scan is
    // quadratic per buffer, so the window is kept deliberately short.
    let opts = SolveOptions {
        rtol: p.rtol,
        s,
        max_iters: 4 * s,
        ..Default::default()
    };
    println!(
        "\n## Concurrency verification: sync-trace race detection ({})\n",
        p.name
    );
    println!("| method | threads | events | races |");
    println!("|---|---|---|---|");
    let prev_threads = pscg_par::global_threads();
    for threads in [1usize, 4] {
        pscg_par::set_global_threads(threads);
        for method in RACE_METHODS {
            pscg_par::sync_trace::drain();
            pscg_par::sync_trace::set_enabled(true);
            let mut ctx = SimCtx::serial(&p.a, Box::new(Jacobi::new(&p.a)));
            method.solve(&mut ctx, &b, None, &opts);
            pscg_par::sync_trace::set_enabled(false);
            let trace = pscg_par::sync_trace::drain();
            let report = pscg_check::detect_races(&trace);
            println!(
                "| {} | {threads} | {} | {} |",
                method.name(),
                report.events,
                report.races.len()
            );
            for r in &report.races {
                eprintln!("[verify-concurrency] {} @{threads}t: {r}", method.name());
            }
            if report.cyclic {
                eprintln!(
                    "[verify-concurrency] {} @{threads}t: cyclic sync trace",
                    method.name()
                );
            }
            if !report.ok() {
                classes.push(FindingClass::Race);
            }
        }
    }
    pscg_par::set_global_threads(prev_threads);
    classes
}

/// Lower-case file stem for a method's telemetry artifacts.
fn method_slug(method: MethodKind) -> String {
    method.name().to_ascii_lowercase().replace(' ', "-")
}

/// Runs every method once on the scale's Poisson problem with telemetry
/// enabled, writes `DIR/<method>.trace.json` + `DIR/<method>.metrics.jsonl`
/// (in aggregate mode, `DIR/<method>.agg.json` instead of the trace),
/// validates both outputs, cross-checks the telemetry residual stream
/// bit-for-bit against the solver history, and records the achieved-overlap
/// ratios in `results/overlap.csv`. Returns false on any failure.
fn run_telemetry(scale: &Scale, dir: &Path, results: &Path, aggregate: bool) -> bool {
    let p = problems::poisson125(scale);
    let b = p.rhs();
    let s = 4;
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("[telemetry] cannot create {}: {e}", dir.display());
        return false;
    }
    println!("\n## Telemetry capture ({}, s = {s})\n", p.name);
    println!("| method | iters | final relres | achieved overlap | spans | stop |");
    println!("|---|---|---|---|---|---|");
    let mut csv = String::from(
        "method,iterations,final_relres,achieved_overlap,window_ns,kernel_in_window_ns,stagnation_fired\n",
    );
    let mut ok = true;
    pscg_obs::set_enabled(true);
    if aggregate {
        pscg_obs::set_mode(pscg_obs::TelemetryMode::Aggregate);
    }
    for method in ALL_METHODS {
        // Clear spans/aggregates left over from a previous method (or a
        // failed run).
        pscg_obs::span::drain();
        pscg_obs::agg::drain();
        let mut ctx = SimCtx::serial(&p.a, Box::new(Jacobi::new(&p.a)));
        let opts = SolveOptions {
            rtol: p.rtol,
            s,
            max_iters: scale.max_iters,
            ..Default::default()
        };
        let res = method.solve(&mut ctx, &b, None, &opts);
        let spans = pscg_obs::span::drain();
        let agg = pscg_obs::agg::drain();
        let Some(tel) = pscg_obs::metrics::take_last() else {
            eprintln!("[telemetry] {}: no stream collected", method.name());
            ok = false;
            continue;
        };

        // The acceptance bar: the per-iteration residual stream must match
        // the solver's reported convergence history exactly (same floats,
        // same order, same length).
        let stream = tel.relres_stream();
        let bits_equal = stream.len() == res.history.len()
            && stream
                .iter()
                .zip(&res.history)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !bits_equal {
            eprintln!(
                "[telemetry] {}: residual stream diverges from solver history \
                 ({} vs {} entries)",
                method.name(),
                stream.len(),
                res.history.len()
            );
            ok = false;
        }

        let slug = method_slug(method);
        let jsonl = pscg_obs::export::metrics_jsonl(&tel);
        let jsonl_path = dir.join(format!("{slug}.metrics.jsonl"));
        if let Err(e) = std::fs::write(&jsonl_path, &jsonl) {
            eprintln!("[telemetry] write {}: {e}", jsonl_path.display());
            ok = false;
        }
        let span_count;
        if aggregate {
            // Aggregate mode retains no raw spans: the histograms are the
            // artifact. The span recorder must have stayed empty.
            span_count = agg.kinds.iter().map(|k| k.hist.count as usize).sum();
            if !spans.records.is_empty() {
                eprintln!(
                    "[telemetry] {}: {} raw spans retained in aggregate mode",
                    method.name(),
                    spans.records.len()
                );
                ok = false;
            }
            let agg_text = pscg_obs::export::aggregate_json(&agg);
            let agg_path = dir.join(format!("{slug}.agg.json"));
            if let Err(e) = std::fs::write(&agg_path, &agg_text) {
                eprintln!("[telemetry] write {}: {e}", agg_path.display());
                ok = false;
            }
            match pscg_obs::export::validate_aggregate_json(&agg_text) {
                Ok(check) => {
                    if check.spans == 0 {
                        eprintln!("[telemetry] {}: empty aggregate", method.name());
                        ok = false;
                    }
                }
                Err(e) => {
                    eprintln!("[telemetry] {}: invalid aggregate: {e}", method.name());
                    ok = false;
                }
            }
        } else {
            span_count = spans.records.len();
            let trace = pscg_obs::export::chrome_trace(&spans);
            let trace_path = dir.join(format!("{slug}.trace.json"));
            if let Err(e) = std::fs::write(&trace_path, &trace) {
                eprintln!("[telemetry] write {}: {e}", trace_path.display());
                ok = false;
            }
            match pscg_obs::export::validate_chrome_trace(&trace) {
                Ok(check) => {
                    if check.events == 0 {
                        eprintln!("[telemetry] {}: empty trace", method.name());
                        ok = false;
                    }
                }
                Err(e) => {
                    eprintln!("[telemetry] {}: invalid Chrome trace: {e}", method.name());
                    ok = false;
                }
            }
        }
        match pscg_obs::export::validate_metrics_jsonl(&jsonl) {
            Ok(check) => {
                let reparsed_equal = check.relres.len() == res.history.len()
                    && check
                        .relres
                        .iter()
                        .zip(&res.history)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                if !reparsed_equal {
                    eprintln!(
                        "[telemetry] {}: JSONL residuals do not round-trip the \
                         solver history bit-for-bit",
                        method.name()
                    );
                    ok = false;
                }
            }
            Err(e) => {
                eprintln!("[telemetry] {}: invalid metrics JSONL: {e}", method.name());
                ok = false;
            }
        }

        let overlap = tel.finish.achieved_overlap();
        let overlap_str = if overlap.is_nan() {
            "—".to_string()
        } else {
            format!("{:.3}", overlap)
        };
        println!(
            "| {} | {} | {:.3e} | {} | {} | {} |",
            method.name(),
            res.iterations,
            res.final_relres,
            overlap_str,
            span_count,
            tel.finish.stop
        );
        csv.push_str(&format!(
            "{},{},{:e},{},{},{},{}\n",
            method.name(),
            res.iterations,
            res.final_relres,
            if overlap.is_nan() {
                "".to_string()
            } else {
                format!("{overlap:.6}")
            },
            tel.finish.window_ns,
            tel.finish.kernel_in_window_ns,
            tel.finish.stagnation_fired
        ));
    }
    pscg_obs::set_enabled(false);
    pscg_obs::set_mode(pscg_obs::TelemetryMode::Full);
    let _ = std::fs::create_dir_all(results);
    let csv_path = results.join("overlap.csv");
    if let Err(e) = std::fs::write(&csv_path, &csv) {
        eprintln!("[telemetry] write {}: {e}", csv_path.display());
        ok = false;
    } else {
        println!(
            "\nwrote {} and {}/*.{}",
            csv_path.display(),
            dir.display(),
            if aggregate { "agg.json" } else { "trace.json" }
        );
    }
    ok
}

/// Runs every method once with telemetry enabled and joins the recorded
/// spans with the cost model and the IR's static schedule (DESIGN.md §13):
/// per-kernel achieved GFLOP/s / GB/s under the model's traffic
/// assumption, plus achieved overlap against the IR's capacity report.
/// Writes `results/perf_report.json` + `results/perf_report.md`. Returns
/// false on any failure.
fn run_perf_report(scale: &Scale, results: &Path) -> bool {
    let p = problems::poisson125(scale);
    let b = p.rhs();
    let s = 4;
    println!("\n## Perf report ({}, s = {s})\n", p.name);
    let mut report = pscg_bench::perf_report::PerfReport::default();
    let mut ok = true;
    pscg_obs::set_enabled(true);
    for method in ALL_METHODS {
        pscg_obs::span::drain();
        let mut ctx = SimCtx::serial(&p.a, Box::new(Jacobi::new(&p.a)));
        let opts = SolveOptions {
            rtol: p.rtol,
            s,
            max_iters: scale.max_iters,
            ..Default::default()
        };
        method.solve(&mut ctx, &b, None, &opts);
        let spans = pscg_obs::span::drain();
        let Some(tel) = pscg_obs::metrics::take_last() else {
            eprintln!("[perf-report] {}: no stream collected", method.name());
            ok = false;
            continue;
        };
        report
            .methods
            .push(pscg_bench::perf_report::method_perf(method, &spans, &tel));
    }
    pscg_obs::set_enabled(false);
    if report.methods.is_empty() {
        return false;
    }
    print!("{}", pscg_bench::perf_report::render_md(&report));
    let _ = std::fs::create_dir_all(results);
    let json_path = results.join("perf_report.json");
    let md_path = results.join("perf_report.md");
    let json = pscg_bench::perf_report::render_json(&report);
    if let Err(e) = pscg_bench::perf_report::parse_report(&json) {
        eprintln!("[perf-report] rendered report does not reparse: {e}");
        ok = false;
    }
    for (path, text) in [
        (&json_path, json),
        (&md_path, pscg_bench::perf_report::render_md(&report)),
    ] {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("[perf-report] write {}: {e}", path.display());
            ok = false;
        }
    }
    println!("\nwrote {} and {}", json_path.display(), md_path.display());
    ok
}

/// Arms `plan` in a fresh simulator for every method and solves through the
/// resilient supervisor. Returns false when any method produces a *silent*
/// wrong answer — claimed convergence whose recomputed residual `‖b − A x‖`
/// contradicts the tolerance. Clean convergence (possibly after recovery)
/// and explicit errors both pass: the contract is "never hang, never lie".
///
/// The flight recorder is armed for the whole campaign with its dump bound
/// to `results/flight.json`: the resilient supervisor dumps the final
/// iterations' ring there whenever an attempt breaks down or the recovery
/// ladder is exhausted, so a non-recovered fault always leaves a
/// post-mortem artifact.
fn run_fault_campaign(scale: &Scale, plan: &FaultPlan, results: &Path) -> bool {
    let p = problems::poisson125(scale);
    let b = p.rhs();
    let s = 4;
    println!(
        "\n## Fault campaign ({}, s = {s}, seed {}, {} event(s))\n",
        p.name,
        plan.seed,
        plan.events.len()
    );
    println!("| method | outcome | iters | true relres | faults hit |");
    println!("|---|---|---|---|---|");
    let mut ok = true;
    let flight_path = results.join("flight.json");
    pscg_obs::set_enabled(true);
    pscg_obs::flight::configure(16, Some(flight_path.clone()));
    for method in ALL_METHODS {
        let mut ctx = SimCtx::serial(&p.a, Box::new(Jacobi::new(&p.a)));
        ctx.arm_faults(plan.clone());
        let opts = SolveOptions {
            rtol: p.rtol,
            s,
            max_iters: scale.max_iters,
            ..Default::default()
        };
        let outcome = method.solve_resilient(&mut ctx, &b, None, &opts);
        let hits = ctx.fault_log().len();
        match outcome {
            Ok(res) => {
                let t = res.true_relres(&p.a, &b);
                let lied = res.converged() && !(t.is_finite() && t <= p.rtol * 100.0);
                if lied {
                    eprintln!(
                        "[fault-plan] {}: SILENT WRONG ANSWER — reported {:?} \
                         at relres {:.3e} but true relres is {:.3e}",
                        method.name(),
                        res.stop,
                        res.final_relres,
                        t
                    );
                    ok = false;
                }
                println!(
                    "| {} | {:?} | {} | {:.3e} | {} |",
                    method.name(),
                    res.stop,
                    res.iterations,
                    t,
                    hits
                );
            }
            Err(e) => {
                // An explicit error is an acceptable outcome: the solver
                // refused to report a solution it could not vouch for. The
                // supervisor left a flight dump for the failure.
                println!("| {} | {e} | — | — | {hits} |", method.name());
                match pscg_obs::flight::validate_flight_file(&flight_path) {
                    Ok(check) => eprintln!(
                        "[fault-plan] {}: flight dump at {} ({}, {} frame(s), {} span(s))",
                        method.name(),
                        flight_path.display(),
                        check.reason,
                        check.iters,
                        check.spans
                    ),
                    Err(err) => {
                        eprintln!(
                            "[fault-plan] {}: missing/invalid flight dump at {}: {err}",
                            method.name(),
                            flight_path.display()
                        );
                        ok = false;
                    }
                }
            }
        }
    }
    pscg_obs::flight::configure(0, None);
    pscg_obs::set_enabled(false);
    ok
}

/// The fixed small Poisson problem every chaos solve runs on: large enough
/// for the s-step methods to take several outer iterations, small enough
/// that hundreds of campaigns finish in CI time.
fn chaos_problem() -> (CsrMatrix, Vec<f64>) {
    let g = Grid3::cube(6);
    let a = poisson3d_7pt(g, None);
    let n = a.nrows();
    let xstar: Vec<f64> = (0..n).map(|i| (0.31 * i as f64).sin()).collect();
    let b = a.mul_vec(&xstar);
    (a, b)
}

/// Tolerance of every chaos solve; an accepted answer must verify to
/// within 100x of it on the recomputed residual.
const CHAOS_RTOL: f64 = 1e-6;

/// What one (method, plan) chaos solve did, classified against the
/// resilience contract.
struct ChaosOutcome {
    /// Histogram key: `clean`, `recovered`, `explicit-error`, `rank-lost`,
    /// `silent-wrong` or `hang`.
    class: &'static str,
    /// True for the contract violations (`silent-wrong`, `hang`).
    violation: bool,
    /// Human-readable context for the campaign log.
    detail: String,
    /// The engine's deterministic recovery-code log for the solve.
    recovery: Vec<u64>,
}

/// Arms `plan` in a fresh simulator, solves through the resilient
/// supervisor and classifies the outcome. Hang detection is the caller's
/// job ([`chaos_solve_watched`]).
fn chaos_classify(a: &CsrMatrix, b: &[f64], method: MethodKind, plan: &FaultPlan) -> ChaosOutcome {
    let mut ctx = SimCtx::serial(a, Box::new(Jacobi::new(a)));
    ctx.arm_faults(plan.clone());
    let opts = SolveOptions {
        rtol: CHAOS_RTOL,
        s: 3,
        max_iters: 400,
        ..Default::default()
    };
    let outcome = method.solve_resilient(&mut ctx, b, None, &opts);
    let recovery = ctx.take_recovery_log();
    match outcome {
        Ok(res) if res.converged() => {
            let t = res.true_relres(a, b);
            if t.is_finite() && t <= CHAOS_RTOL * 100.0 {
                let (class, detail) = if recovery.is_empty() {
                    ("clean", String::new())
                } else {
                    ("recovered", format!("codes {recovery:?}"))
                };
                ChaosOutcome {
                    class,
                    violation: false,
                    detail,
                    recovery,
                }
            } else {
                ChaosOutcome {
                    class: "silent-wrong",
                    violation: true,
                    detail: format!(
                        "reported {:?} at relres {:.3e} but true relres is {:.3e}",
                        res.stop, res.final_relres, t
                    ),
                    recovery,
                }
            }
        }
        Ok(res) => ChaosOutcome {
            class: "explicit-error",
            violation: false,
            detail: format!("{:?} after {} iter(s)", res.stop, res.iterations),
            recovery,
        },
        Err(SolveError::RankLost { rank, iterations }) => ChaosOutcome {
            class: "rank-lost",
            violation: false,
            detail: format!("rank {rank} unrecoverable after {iterations} step(s)"),
            recovery,
        },
        Err(e) => ChaosOutcome {
            class: "explicit-error",
            violation: false,
            detail: e.to_string(),
            recovery,
        },
    }
}

/// Runs [`chaos_classify`] on a worker thread under a wall-clock deadline.
/// A solve that neither returns nor errors within `deadline` is the
/// contract violation `hang`; the stuck worker is abandoned (the process
/// exits with the campaign).
fn chaos_solve_watched(
    a: &CsrMatrix,
    b: &[f64],
    method: MethodKind,
    plan: &FaultPlan,
    deadline: Duration,
) -> ChaosOutcome {
    let (tx, rx) = std::sync::mpsc::channel();
    let (a2, b2, plan2) = (a.clone(), b.to_vec(), plan.clone());
    std::thread::spawn(move || {
        let _ = tx.send(chaos_classify(&a2, &b2, method, &plan2));
    });
    match rx.recv_timeout(deadline) {
        Ok(out) => out,
        Err(_) => ChaosOutcome {
            class: "hang",
            violation: true,
            detail: format!("no outcome within {deadline:.0?}"),
            recovery: Vec::new(),
        },
    }
}

/// Minimal JSON string escaping for the hand-rolled `chaos.json`.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Shrinks the plan behind a contract violation to a 1-minimal
/// reproduction (same method, same outcome class), writes it next to a
/// flight-recorder post-mortem, and returns the shrunk plan.
fn chaos_shrink_violation(
    a: &CsrMatrix,
    b: &[f64],
    method: MethodKind,
    plan: &FaultPlan,
    class: &'static str,
    results: &Path,
    tag: &str,
) -> FaultPlan {
    // Re-running a hang costs the full deadline per probe, so the shrinker
    // gets a shorter one; outcome classes are deterministic per plan.
    let deadline = Duration::from_secs(if class == "hang" { 10 } else { 30 });
    let shrunk = shrink::shrink(plan, |cand| {
        chaos_solve_watched(a, b, method, cand, deadline).class == class
    });
    let plan_path = results.join(format!("chaos_{tag}_{}.plan", method_slug(method)));
    if let Err(e) = std::fs::write(&plan_path, shrunk.to_text()) {
        eprintln!("[chaos] write {}: {e}", plan_path.display());
    } else {
        eprintln!(
            "[chaos] {}: shrunk {class} reproduction written to {}:\n{}",
            method.name(),
            plan_path.display(),
            shrunk.to_text()
        );
    }
    if let Some(p) = pscg_obs::flight::dump_to_path(&format!("chaos:{class}")) {
        eprintln!("[chaos] flight post-mortem at {}", p.display());
    }
    shrunk
}

/// Runs `n` seeded chaos campaigns across every method and enforces the
/// resilience contract: *recover or error explicitly, never hang, never
/// lie*. Writes the outcome histogram to `results/chaos.json`; every
/// violation is shrunk to a minimal plan and contributes
/// [`FindingClass::Chaos`].
fn run_chaos(n: usize, seed: u64, results: &Path) -> Vec<FindingClass> {
    let (a, b) = chaos_problem();
    println!(
        "\n## Chaos campaign ({n} plan(s), base seed {seed}, {} rows, rtol {CHAOS_RTOL:.0e})\n",
        a.nrows()
    );
    println!("| campaign | plan | outcomes |");
    println!("|---|---|---|");
    let mut hist: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut code_hist: BTreeMap<u64, usize> = BTreeMap::new();
    let mut violations: Vec<(usize, MethodKind, &'static str, String, FaultPlan)> = Vec::new();
    let _ = std::fs::create_dir_all(results);
    pscg_obs::set_enabled(true);
    pscg_obs::flight::configure(16, Some(results.join("flight.json")));
    for k in 0..n {
        let plan = chaos::generate(seed.wrapping_add(k as u64), &ChaosConfig::default());
        let mut classes: BTreeMap<&'static str, usize> = BTreeMap::new();
        for method in ALL_METHODS {
            let out = chaos_solve_watched(&a, &b, method, &plan, Duration::from_secs(30));
            *hist.entry(out.class).or_insert(0) += 1;
            *classes.entry(out.class).or_insert(0) += 1;
            for &c in &out.recovery {
                *code_hist.entry(c).or_insert(0) += 1;
            }
            if out.violation {
                eprintln!(
                    "[chaos] campaign {k}: {}: {} — {}\nplan:\n{}",
                    method.name(),
                    out.class.to_ascii_uppercase(),
                    out.detail,
                    plan.to_text()
                );
                violations.push((k, method, out.class, out.detail, plan.clone()));
            }
        }
        let summary = classes
            .iter()
            .map(|(c, cnt)| format!("{c} x{cnt}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "| {k} | {} event(s), {} rank event(s) | {summary} |",
            plan.events.len(),
            plan.rank_events.len()
        );
    }
    for (k, method, class, _, plan) in &violations {
        chaos_shrink_violation(&a, &b, *method, plan, class, results, &format!("c{k}"));
    }
    pscg_obs::flight::configure(0, None);
    pscg_obs::set_enabled(false);

    let mut json = format!(
        "{{\n  \"seed\": {seed},\n  \"campaigns\": {n},\n  \"methods\": {},\n  \"solves\": {},\n",
        ALL_METHODS.len(),
        n * ALL_METHODS.len()
    );
    json.push_str("  \"outcomes\": {");
    json.push_str(
        &hist
            .iter()
            .map(|(c, cnt)| format!("\"{c}\": {cnt}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("},\n  \"recovery_codes\": {");
    json.push_str(
        &code_hist
            .iter()
            .map(|(c, cnt)| format!("\"{c}\": {cnt}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("},\n  \"violations\": [");
    json.push_str(
        &violations
            .iter()
            .map(|(k, m, class, detail, plan)| {
                format!(
                    "{{\"campaign\": {k}, \"method\": \"{}\", \"class\": \"{class}\", \
                     \"detail\": \"{}\", \"plan\": \"{}\"}}",
                    m.name(),
                    json_escape(detail),
                    json_escape(&plan.to_text())
                )
            })
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("]\n}\n");
    let json_path = results.join("chaos.json");
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("[chaos] write {}: {e}", json_path.display());
    } else {
        println!("\nwrote {}", json_path.display());
    }

    let total: usize = hist.values().sum();
    println!(
        "\n{} solve(s): {}",
        total,
        hist.iter()
            .map(|(c, cnt)| format!("{cnt} {c}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    if violations.is_empty() {
        Vec::new()
    } else {
        vec![FindingClass::Chaos]
    }
}

/// The chaos-harness non-vacuousness gate: classifies a known-bad plan on
/// the deliberately sabotaged supervisor (`broken-resilience`), requiring
/// the harness to flag the silent-wrong answer and shrink the plan to its
/// single killer line. Exits 18 when both happen, 1 otherwise.
#[cfg(feature = "broken-resilience")]
fn run_chaos_plant(results: &Path) -> ! {
    // One killer (an early large SpMV bit flip the sabotaged supervisor
    // accepts) buried under three decoys the shrinker must strip.
    let text = "seed 99\n\
                at spmv 1 bitflip 51\n\
                at pc 7 perturb 1e-12\n\
                at wait 9 delay 1\n\
                rank_slow 3 2.0 5\n";
    let plan = FaultPlan::parse(text).expect("plant plan parses");
    let (a, b) = chaos_problem();
    let _ = std::fs::create_dir_all(results);
    pscg_obs::set_enabled(true);
    pscg_obs::flight::configure(16, Some(results.join("flight.json")));
    let mut caught = None;
    for method in ALL_METHODS {
        let out = chaos_solve_watched(&a, &b, method, &plan, Duration::from_secs(30));
        eprintln!(
            "[chaos-plant] {}: {} {}",
            method.name(),
            out.class,
            out.detail
        );
        if out.violation {
            caught = Some((method, out.class));
            break;
        }
    }
    let Some((method, class)) = caught else {
        eprintln!(
            "[chaos-plant] NOT caught — the chaos harness is vacuous for the \
             sabotaged supervisor"
        );
        std::process::exit(1);
    };
    let shrunk = chaos_shrink_violation(&a, &b, method, &plan, class, results, "plant");
    pscg_obs::flight::configure(0, None);
    pscg_obs::set_enabled(false);
    let lines = shrunk.events.len() + shrunk.rank_events.len();
    if lines > 3 {
        eprintln!("[chaos-plant] shrinker left {lines} line(s) (expected <= 3)");
        std::process::exit(1);
    }
    eprintln!(
        "[chaos-plant] caught as {class} on {} and shrunk to {lines} line(s)",
        method.name()
    );
    std::process::exit(FindingClass::Chaos.exit_code());
}

fn main() {
    let mut scale = Scale::from_env();
    let mut wanted: Vec<String> = Vec::new();
    let mut verify_schedule = false;
    let mut verify_conc = false;
    let mut verify_ir_flag = false;
    let mut lint_source = false;
    let mut ir_broken: Option<String> = None;
    let mut strict_probes = false;
    let mut telemetry: Option<PathBuf> = std::env::var_os("PSCG_TELEMETRY").map(PathBuf::from);
    let mut fault_plan: Option<PathBuf> = std::env::var_os("PSCG_FAULTS").map(PathBuf::from);
    let mut aggregate = false;
    let mut perf_report = false;
    let mut chaos_n: Option<usize> = None;
    let mut chaos_seed: u64 = 2024;
    let mut chaos_plant = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--verify-schedule" => verify_schedule = true,
            "--verify-concurrency" => verify_conc = true,
            "--verify-ir" => verify_ir_flag = true,
            "--lint-source" => lint_source = true,
            "--ir-broken" => {
                let Some(mode) = args.next() else {
                    eprintln!("--ir-broken needs a mode name or 'all'");
                    std::process::exit(2);
                };
                ir_broken = Some(mode);
            }
            "--strict-probes" => strict_probes = true,
            "--telemetry" => {
                let Some(dir) = args.next() else {
                    eprintln!("--telemetry needs a directory");
                    std::process::exit(2);
                };
                telemetry = Some(PathBuf::from(dir));
            }
            "--telemetry-mode" => {
                let mode = args.next().unwrap_or_default();
                aggregate = match mode.as_str() {
                    "full" => false,
                    "aggregate" => true,
                    other => {
                        eprintln!("unknown telemetry mode '{other}' (full|aggregate)");
                        std::process::exit(2);
                    }
                };
            }
            "--perf-report" => perf_report = true,
            "--fault-plan" => {
                let Some(file) = args.next() else {
                    eprintln!("--fault-plan needs a file");
                    std::process::exit(2);
                };
                fault_plan = Some(PathBuf::from(file));
            }
            "--chaos" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--chaos needs a campaign count");
                    std::process::exit(2);
                };
                chaos_n = Some(n);
            }
            "--chaos-seed" => {
                let Some(s) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--chaos-seed needs an integer seed");
                    std::process::exit(2);
                };
                chaos_seed = s;
            }
            "--chaos-plant" => chaos_plant = true,
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "ci" => Scale::ci(),
                    "small" => Scale::small(),
                    "paper" => Scale::paper(),
                    other => {
                        eprintln!("unknown scale '{other}' (ci|small|paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale ci|small|paper] [--verify-schedule] \
                     [--verify-concurrency] [--verify-ir] [--ir-broken MODE|all] \
                     [--lint-source] [--strict-probes] \
                     [--telemetry DIR] [--telemetry-mode full|aggregate] \
                     [--perf-report] [--fault-plan FILE] \
                     [--chaos N] [--chaos-seed S] [--chaos-plant] <experiment>...\n\
                     experiments: table1 fig1 fig2 table2 fig3 fig4 fig5 \
                     ablation-progress crossover mpk all"
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty()
        && !verify_schedule
        && !verify_conc
        && !verify_ir_flag
        && !lint_source
        && !perf_report
        && ir_broken.is_none()
        && telemetry.is_none()
        && fault_plan.is_none()
        && chaos_n.is_none()
        && !chaos_plant
    {
        wanted.push("all".to_string());
    }
    const KNOWN: [&str; 11] = [
        "all",
        "table1",
        "fig1",
        "fig2",
        "table2",
        "fig3",
        "fig4",
        "fig5",
        "ablation-progress",
        "crossover",
        "mpk",
    ];
    for w in &wanted {
        if !KNOWN.contains(&w.as_str()) {
            eprintln!("unknown experiment '{w}'; known: {}", KNOWN.join(" "));
            std::process::exit(2);
        }
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    let machine = Machine::sahasrat();
    let results = PathBuf::from("results");
    println!(
        "# PIPE-PsCG reproduction — scale '{}' (125-pt grid {}^3), machine '{}'",
        scale.name, scale.poisson_n, machine.name
    );

    let t0 = Instant::now();
    if let Some(mode) = &ir_broken {
        #[cfg(feature = "broken-ir")]
        run_ir_broken(&scale, mode);
        #[cfg(not(feature = "broken-ir"))]
        {
            eprintln!(
                "--ir-broken {mode} requires building with --features broken-ir \
                 (the planted specs are gated out of normal builds)"
            );
            std::process::exit(2);
        }
    }
    if lint_source {
        // The workspace root relative to this crate, resolved at compile
        // time; matches the lint-source binary's default.
        let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
        match pscg_lint::scan_workspace(root) {
            Ok(report) => {
                eprint!("{}", pscg_lint::render_text(&report));
                if !report.findings.is_empty() {
                    eprintln!("[repro] source lint FAILED (lint)");
                    std::process::exit(FindingClass::Lint.exit_code());
                }
            }
            Err(e) => {
                eprintln!("[repro] lint-source: cannot scan the workspace: {e}");
                std::process::exit(2);
            }
        }
    }
    if verify_schedule {
        let found = verify_schedules(&scale, strict_probes);
        if let Some(worst) = pscg_analysis::exit_codes::most_severe(&found) {
            eprintln!("[repro] schedule verification FAILED ({worst})");
            std::process::exit(worst.exit_code());
        }
    }
    if verify_conc {
        let found = verify_concurrency(&scale);
        if let Some(worst) = pscg_analysis::exit_codes::most_severe(&found) {
            eprintln!("[repro] concurrency verification FAILED ({worst})");
            std::process::exit(worst.exit_code());
        }
    }
    if verify_ir_flag {
        let found = verify_ir(&scale);
        if let Some(worst) = pscg_analysis::exit_codes::most_severe(&found) {
            eprintln!("[repro] IR verification FAILED ({worst})");
            std::process::exit(worst.exit_code());
        }
    }
    if let Some(dir) = &telemetry {
        if !run_telemetry(&scale, dir, &results, aggregate) {
            eprintln!("[repro] telemetry capture FAILED");
            std::process::exit(1);
        }
    }
    if perf_report && !run_perf_report(&scale, &results) {
        eprintln!("[repro] perf report FAILED");
        std::process::exit(1);
    }
    if let Some(file) = &fault_plan {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("[fault-plan] cannot read {}: {e}", file.display());
                std::process::exit(2);
            }
        };
        let plan = match FaultPlan::parse(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("[fault-plan] {}: {e}", file.display());
                std::process::exit(2);
            }
        };
        if !run_fault_campaign(&scale, &plan, &results) {
            eprintln!("[repro] fault campaign FAILED");
            std::process::exit(1);
        }
    }
    if chaos_plant {
        #[cfg(feature = "broken-resilience")]
        run_chaos_plant(&results);
        #[cfg(not(feature = "broken-resilience"))]
        {
            eprintln!(
                "--chaos-plant requires building with --features broken-resilience \
                 (the sabotaged supervisor is gated out of normal builds)"
            );
            std::process::exit(2);
        }
    }
    if let Some(n) = chaos_n {
        let found = run_chaos(n, chaos_seed, &results);
        if let Some(worst) = pscg_analysis::exit_codes::most_severe(&found) {
            eprintln!("[repro] chaos campaign FAILED ({worst})");
            std::process::exit(worst.exit_code());
        }
    }
    if want("table1") {
        experiments::table1(3).emit(&results);
        experiments::table1(5).emit(&results);
    }
    let mut fig1_runs = None;
    if want("fig1") || want("fig5") {
        let (rep, runs) = experiments::fig1(&scale, &machine);
        if want("fig1") {
            rep.emit(&results);
        }
        fig1_runs = Some(runs);
    }
    if want("fig2") {
        let (rep, _) = experiments::fig2(&scale, &machine);
        rep.emit(&results);
    }
    if want("table2") {
        experiments::table2(&scale, &machine).emit(&results);
    }
    if want("fig3") {
        experiments::fig3(&scale, &machine).emit(&results);
    }
    if want("fig4") {
        experiments::fig4(&scale, &machine).emit(&results);
    }
    if want("fig5") {
        let runs = fig1_runs.as_ref().expect("fig1 runs present");
        experiments::fig5(runs, &machine).emit(&results);
    }
    if want("ablation-progress") {
        experiments::ablation_progress(&scale).emit(&results);
    }
    if want("crossover") {
        experiments::crossover(&scale, &machine).emit(&results);
    }
    if want("mpk") {
        experiments::mpk(&scale, &machine).emit(&results);
    }
    eprintln!("\n[repro] done in {:.1}s", t0.elapsed().as_secs_f64());
}

//! Paper-reproduction driver.
//!
//! ```text
//! repro [--scale ci|small|paper] [--verify-schedule] [--verify-concurrency]
//!       [--strict-probes] [--telemetry DIR] <experiment>...
//! experiments: table1 fig1 fig2 table2 fig3 fig4 fig5 ablation-progress crossover mpk all
//! ```
//!
//! Results are printed as markdown and written to `results/<id>.csv`.
//! `fig5` implies running `fig1`'s solves first (it replays the same
//! traces at 80 nodes).
//!
//! `--verify-schedule` runs the static communication-schedule analyzer
//! (`pscg-analysis`) over every method's trace before the experiments.
//! Verification failures exit with the finding-class codes of
//! [`pscg_analysis::exit_codes`]: 10 for overlap hazards, 11 for Table I
//! structure violations. Numerical probe findings are printed as advisory
//! unless `--strict-probes` is given, which makes them exit 12. With no
//! experiments named, the flag runs the verification alone.
//!
//! `--verify-concurrency` runs the `pscg-check` concurrency layer: the
//! exhaustive model checker over the pool dispatch protocol's bounded
//! configurations (findings exit 14) and the vector-clock race detector
//! over sync traces of instrumented solves at 1 and 4 kernel threads
//! (findings exit 15). With no experiments named, the flag runs the
//! verification alone.
//!
//! `--verify-ir` runs the declarative-IR verifier (`pscg-ir`): the static
//! passes — buffer dataflow (read-before-wait, writes into open overlap
//! windows), Table I structure derivation cross-checked against the
//! analyzer and the cost model, overlap-capacity reporting — over every
//! method's IR *without executing a solve*, then one traced solve per
//! method whose recorded schedule is replayed op-for-op against the IR.
//! Any static finding or conformance divergence exits 16. With no
//! experiments named, the flag runs the verification alone.
//! `--ir-broken MODE|all` (requires building with `--features broken-ir`)
//! instead runs the verifier against the deliberately broken specs and
//! exits 16 when every planted bug is rejected — the non-vacuousness gate.
//!
//! `--telemetry DIR` (or `PSCG_TELEMETRY=DIR`) runs every method once on
//! the scale's Poisson problem with runtime telemetry enabled and writes
//! per-method Chrome trace-event files (`DIR/<method>.trace.json`, open in
//! <https://ui.perfetto.dev>) plus per-iteration metrics streams
//! (`DIR/<method>.metrics.jsonl`). Both outputs are schema-validated, the
//! telemetry residual stream is checked bit-for-bit against the solver's
//! convergence history, and the achieved-overlap ratios are recorded in
//! `results/overlap.csv`; any mismatch aborts with exit 1. With no
//! experiments named, the flag runs the telemetry pass alone.
//!
//! `--telemetry-mode full|aggregate` selects how `--telemetry` retains
//! spans: `full` (default) keeps every span for the Chrome trace;
//! `aggregate` folds spans into O(1)-memory log-binned histograms as they
//! retire and writes `DIR/<method>.agg.json` instead of a trace
//! (the metrics stream and its bitwise residual check are unchanged).
//!
//! `--perf-report` runs every method once with telemetry enabled and joins
//! the recorded spans with the cost model and the IR's static schedule
//! (DESIGN.md §13), writing `results/perf_report.json` +
//! `results/perf_report.md` — the input to `perf-report --check`.
//!
//! `--fault-plan FILE` (or `PSCG_FAULTS=FILE`) runs a fault-injection
//! campaign instead: the plan (see `pscg-fault` for the text format) is
//! armed in a fresh simulator for every method and the solve goes through
//! the resilient supervisor. The flight recorder is armed for the
//! campaign, so any non-recovered fault leaves a post-mortem ring dump at
//! `results/flight.json`. A method passes when it either converges with
//! a recomputed residual that confirms the tolerance, or reports an
//! explicit error — a *silent* wrong answer (claimed convergence
//! contradicted by `‖b − A x‖`) aborts with exit 1. With no experiments
//! named, the flag runs the campaign alone.

use std::path::{Path, PathBuf};
use std::time::Instant;

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_analysis::FindingClass;
use pscg_bench::problems;
use pscg_bench::{experiments, Scale};
use pscg_fault::FaultPlan;
use pscg_precond::Jacobi;
use pscg_sim::{Machine, SimCtx};

/// Every method the drivers sweep, in the paper's presentation order.
const ALL_METHODS: [MethodKind; 11] = [
    MethodKind::Pcg,
    MethodKind::Pipecg,
    MethodKind::Pipecg3,
    MethodKind::PipecgOati,
    MethodKind::Scg,
    MethodKind::ScgSspmv,
    MethodKind::Pscg,
    MethodKind::PipeScg,
    MethodKind::PipePscg,
    MethodKind::Hybrid,
    MethodKind::Cg3,
];

/// Runs the static analyzer over every method's trace on the scale's
/// Poisson problem. Returns the finding classes observed: hazards and
/// structure violations always count; probe findings only under
/// `strict_probes` (they are printed as advisory either way).
fn verify_schedules(scale: &Scale, strict_probes: bool) -> Vec<FindingClass> {
    let p = problems::poisson125(scale);
    let b = p.rhs();
    let s = 4;
    println!("\n## Schedule verification ({}, s = {s})\n", p.name);
    println!("| method | ops | windows | hazards | structure | probes |");
    println!("|---|---|---|---|---|---|");
    let mut classes = Vec::new();
    for method in ALL_METHODS {
        let mut ctx = SimCtx::traced(&p.a, Box::new(Jacobi::new(&p.a)), p.profile.clone());
        let opts = SolveOptions {
            rtol: p.rtol,
            s,
            max_iters: scale.max_iters,
            ..Default::default()
        };
        method.solve(&mut ctx, &b, None, &opts);
        let trace = ctx.take_trace().expect("tracing was enabled");
        let report = pscg_analysis::analyze(&trace);
        let violations = pscg_analysis::verify(&trace, method, s);
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            method.name(),
            trace.ops.len(),
            report.windows.len(),
            report.hazards.len(),
            violations.len(),
            report.probes.len()
        );
        for h in &report.hazards {
            eprintln!("[verify-schedule] {}: {h}", method.name());
        }
        for v in &violations {
            eprintln!("[verify-schedule] {}: {v}", method.name());
        }
        for pf in &report.probes {
            let tag = if strict_probes { "" } else { " (advisory)" };
            eprintln!("[verify-schedule] {}: probe{tag}: {pf}", method.name());
        }
        if !report.hazards.is_empty() {
            classes.push(FindingClass::Hazard);
        }
        if !violations.is_empty() {
            classes.push(FindingClass::Structure);
        }
        if strict_probes && !report.probes.is_empty() {
            classes.push(FindingClass::Probe);
        }
    }
    classes
}

/// Runs the declarative-IR verifier over every method: the static passes
/// (dataflow, structure derivation, overlap capacity — no solve executed),
/// then one traced solve whose schedule is replayed against the IR. Any
/// static finding or conformance divergence contributes
/// [`FindingClass::Ir`].
fn verify_ir(scale: &Scale) -> Vec<FindingClass> {
    let p = problems::poisson125(scale);
    let b = p.rhs();
    let s = 4;
    println!("\n## IR verification ({}, s = {s})\n", p.name);
    println!("| method | IR nodes | static | overlap capacity | conformance |");
    println!("|---|---|---|---|---|");
    let mut classes = Vec::new();
    for method in ALL_METHODS {
        let ir = pscg_ir::method_ir(method, s);
        let findings = pscg_ir::verify_static(&ir);
        let caps = pscg_ir::overlap::report(&ir);
        let capacity = if caps.is_empty() {
            "—".to_string()
        } else {
            caps.iter()
                .map(|c| {
                    format!(
                        "[{}] {} SpMV + {} PC + {} local",
                        c.tag, c.spmvs, c.pcs, c.locals
                    )
                })
                .collect::<Vec<_>>()
                .join("; ")
        };
        let mut ctx = SimCtx::traced(&p.a, Box::new(Jacobi::new(&p.a)), p.profile.clone());
        let opts = SolveOptions {
            rtol: p.rtol,
            s,
            max_iters: scale.max_iters,
            ..Default::default()
        };
        method.solve(&mut ctx, &b, None, &opts);
        let trace = ctx.take_trace().expect("tracing was enabled");
        let conformance = pscg_ir::conform(&ir, &trace);
        println!(
            "| {} | {} | {} | {capacity} | {} |",
            method.name(),
            ir.node_count(),
            if findings.is_empty() { "clean" } else { "FAIL" },
            if conformance.is_ok() {
                "ok"
            } else {
                "DIVERGED"
            },
        );
        for f in &findings {
            eprintln!("[verify-ir] {}: {f}", method.name());
        }
        if let Err(d) = &conformance {
            eprintln!("[verify-ir] {}: {d}", method.name());
        }
        if !findings.is_empty() || conformance.is_err() {
            classes.push(FindingClass::Ir);
        }
    }
    classes
}

/// Runs the IR verifier against the planted broken specs (the
/// non-vacuousness gate): exits with the IR finding code when *every*
/// planted bug is rejected by its designated layer, 1 when any slips
/// through.
#[cfg(feature = "broken-ir")]
fn run_ir_broken(scale: &Scale, mode: &str) -> ! {
    let bugs = if mode == "all" {
        pscg_ir::broken::all()
    } else {
        match pscg_ir::broken::by_name(mode) {
            Some(b) => vec![b],
            None => {
                let known: Vec<&str> = pscg_ir::broken::all().iter().map(|b| b.name).collect();
                eprintln!(
                    "unknown --ir-broken mode '{mode}'; known: {} all",
                    known.join(" ")
                );
                std::process::exit(2);
            }
        }
    };
    let p = problems::poisson125(scale);
    let b = p.rhs();
    let mut all_rejected = true;
    for bug in bugs {
        let findings = pscg_ir::verify_static(&bug.ir);
        let caught = if findings.is_empty() {
            // Statically clean by design — the trace replay must catch it.
            let mut ctx = SimCtx::traced(&p.a, Box::new(Jacobi::new(&p.a)), p.profile.clone());
            let opts = SolveOptions {
                rtol: p.rtol,
                s: bug.ir.steps,
                max_iters: scale.max_iters,
                ..Default::default()
            };
            bug.ir.kind.solve(&mut ctx, &b, None, &opts);
            let trace = ctx.take_trace().expect("tracing was enabled");
            match pscg_ir::conform(&bug.ir, &trace) {
                Err(d) => {
                    eprintln!("[ir-broken] {}: rejected by conformance: {d}", bug.name);
                    true
                }
                Ok(()) => false,
            }
        } else {
            for f in &findings {
                eprintln!("[ir-broken] {}: rejected statically: {f}", bug.name);
            }
            true
        };
        if !caught {
            all_rejected = false;
            eprintln!(
                "[ir-broken] {}: NOT rejected — the verifier is vacuous for: {}",
                bug.name, bug.detail
            );
        }
    }
    if all_rejected {
        std::process::exit(FindingClass::Ir.exit_code());
    }
    std::process::exit(1);
}

/// Methods whose kernel schedules the race detector observes: one
/// classic, one s-step, and the two pipelined s-step variants cover every
/// kernel family the par engine dispatches.
const RACE_METHODS: [MethodKind; 4] = [
    MethodKind::Pipecg,
    MethodKind::ScgSspmv,
    MethodKind::PipeScg,
    MethodKind::PipePscg,
];

/// Runs the `pscg-check` concurrency layer: the exhaustive model checker
/// over every bounded pool-protocol configuration, then the vector-clock
/// race detector over sync traces of short instrumented solves at 1 and 4
/// kernel threads. Returns the finding classes observed.
fn verify_concurrency(scale: &Scale) -> Vec<FindingClass> {
    let mut classes = Vec::new();

    println!("\n## Concurrency verification: dispatch-protocol model checking\n");
    println!("| scenario | states | findings |");
    println!("|---|---|---|");
    for report in pscg_check::check_all(pscg_check::Variant::Correct) {
        println!(
            "| {} | {} | {} |",
            report.scenario,
            report.states,
            report.findings.len()
        );
        for f in &report.findings {
            eprintln!("[verify-concurrency] model: {}: {f}", report.scenario);
        }
        if !report.ok() {
            classes.push(FindingClass::Model);
        }
    }

    let p = problems::poisson125(scale);
    let b = p.rhs();
    let s = 4;
    // A few passes give every kernel a turn; the detector's pair scan is
    // quadratic per buffer, so the window is kept deliberately short.
    let opts = SolveOptions {
        rtol: p.rtol,
        s,
        max_iters: 4 * s,
        ..Default::default()
    };
    println!(
        "\n## Concurrency verification: sync-trace race detection ({})\n",
        p.name
    );
    println!("| method | threads | events | races |");
    println!("|---|---|---|---|");
    let prev_threads = pscg_par::global_threads();
    for threads in [1usize, 4] {
        pscg_par::set_global_threads(threads);
        for method in RACE_METHODS {
            pscg_par::sync_trace::drain();
            pscg_par::sync_trace::set_enabled(true);
            let mut ctx = SimCtx::serial(&p.a, Box::new(Jacobi::new(&p.a)));
            method.solve(&mut ctx, &b, None, &opts);
            pscg_par::sync_trace::set_enabled(false);
            let trace = pscg_par::sync_trace::drain();
            let report = pscg_check::detect_races(&trace);
            println!(
                "| {} | {threads} | {} | {} |",
                method.name(),
                report.events,
                report.races.len()
            );
            for r in &report.races {
                eprintln!("[verify-concurrency] {} @{threads}t: {r}", method.name());
            }
            if report.cyclic {
                eprintln!(
                    "[verify-concurrency] {} @{threads}t: cyclic sync trace",
                    method.name()
                );
            }
            if !report.ok() {
                classes.push(FindingClass::Race);
            }
        }
    }
    pscg_par::set_global_threads(prev_threads);
    classes
}

/// Lower-case file stem for a method's telemetry artifacts.
fn method_slug(method: MethodKind) -> String {
    method.name().to_ascii_lowercase().replace(' ', "-")
}

/// Runs every method once on the scale's Poisson problem with telemetry
/// enabled, writes `DIR/<method>.trace.json` + `DIR/<method>.metrics.jsonl`
/// (in aggregate mode, `DIR/<method>.agg.json` instead of the trace),
/// validates both outputs, cross-checks the telemetry residual stream
/// bit-for-bit against the solver history, and records the achieved-overlap
/// ratios in `results/overlap.csv`. Returns false on any failure.
fn run_telemetry(scale: &Scale, dir: &Path, results: &Path, aggregate: bool) -> bool {
    let p = problems::poisson125(scale);
    let b = p.rhs();
    let s = 4;
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("[telemetry] cannot create {}: {e}", dir.display());
        return false;
    }
    println!("\n## Telemetry capture ({}, s = {s})\n", p.name);
    println!("| method | iters | final relres | achieved overlap | spans | stop |");
    println!("|---|---|---|---|---|---|");
    let mut csv = String::from(
        "method,iterations,final_relres,achieved_overlap,window_ns,kernel_in_window_ns,stagnation_fired\n",
    );
    let mut ok = true;
    pscg_obs::set_enabled(true);
    if aggregate {
        pscg_obs::set_mode(pscg_obs::TelemetryMode::Aggregate);
    }
    for method in ALL_METHODS {
        // Clear spans/aggregates left over from a previous method (or a
        // failed run).
        pscg_obs::span::drain();
        pscg_obs::agg::drain();
        let mut ctx = SimCtx::serial(&p.a, Box::new(Jacobi::new(&p.a)));
        let opts = SolveOptions {
            rtol: p.rtol,
            s,
            max_iters: scale.max_iters,
            ..Default::default()
        };
        let res = method.solve(&mut ctx, &b, None, &opts);
        let spans = pscg_obs::span::drain();
        let agg = pscg_obs::agg::drain();
        let Some(tel) = pscg_obs::metrics::take_last() else {
            eprintln!("[telemetry] {}: no stream collected", method.name());
            ok = false;
            continue;
        };

        // The acceptance bar: the per-iteration residual stream must match
        // the solver's reported convergence history exactly (same floats,
        // same order, same length).
        let stream = tel.relres_stream();
        let bits_equal = stream.len() == res.history.len()
            && stream
                .iter()
                .zip(&res.history)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !bits_equal {
            eprintln!(
                "[telemetry] {}: residual stream diverges from solver history \
                 ({} vs {} entries)",
                method.name(),
                stream.len(),
                res.history.len()
            );
            ok = false;
        }

        let slug = method_slug(method);
        let jsonl = pscg_obs::export::metrics_jsonl(&tel);
        let jsonl_path = dir.join(format!("{slug}.metrics.jsonl"));
        if let Err(e) = std::fs::write(&jsonl_path, &jsonl) {
            eprintln!("[telemetry] write {}: {e}", jsonl_path.display());
            ok = false;
        }
        let span_count;
        if aggregate {
            // Aggregate mode retains no raw spans: the histograms are the
            // artifact. The span recorder must have stayed empty.
            span_count = agg.kinds.iter().map(|k| k.hist.count as usize).sum();
            if !spans.records.is_empty() {
                eprintln!(
                    "[telemetry] {}: {} raw spans retained in aggregate mode",
                    method.name(),
                    spans.records.len()
                );
                ok = false;
            }
            let agg_text = pscg_obs::export::aggregate_json(&agg);
            let agg_path = dir.join(format!("{slug}.agg.json"));
            if let Err(e) = std::fs::write(&agg_path, &agg_text) {
                eprintln!("[telemetry] write {}: {e}", agg_path.display());
                ok = false;
            }
            match pscg_obs::export::validate_aggregate_json(&agg_text) {
                Ok(check) => {
                    if check.spans == 0 {
                        eprintln!("[telemetry] {}: empty aggregate", method.name());
                        ok = false;
                    }
                }
                Err(e) => {
                    eprintln!("[telemetry] {}: invalid aggregate: {e}", method.name());
                    ok = false;
                }
            }
        } else {
            span_count = spans.records.len();
            let trace = pscg_obs::export::chrome_trace(&spans);
            let trace_path = dir.join(format!("{slug}.trace.json"));
            if let Err(e) = std::fs::write(&trace_path, &trace) {
                eprintln!("[telemetry] write {}: {e}", trace_path.display());
                ok = false;
            }
            match pscg_obs::export::validate_chrome_trace(&trace) {
                Ok(check) => {
                    if check.events == 0 {
                        eprintln!("[telemetry] {}: empty trace", method.name());
                        ok = false;
                    }
                }
                Err(e) => {
                    eprintln!("[telemetry] {}: invalid Chrome trace: {e}", method.name());
                    ok = false;
                }
            }
        }
        match pscg_obs::export::validate_metrics_jsonl(&jsonl) {
            Ok(check) => {
                let reparsed_equal = check.relres.len() == res.history.len()
                    && check
                        .relres
                        .iter()
                        .zip(&res.history)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                if !reparsed_equal {
                    eprintln!(
                        "[telemetry] {}: JSONL residuals do not round-trip the \
                         solver history bit-for-bit",
                        method.name()
                    );
                    ok = false;
                }
            }
            Err(e) => {
                eprintln!("[telemetry] {}: invalid metrics JSONL: {e}", method.name());
                ok = false;
            }
        }

        let overlap = tel.finish.achieved_overlap();
        let overlap_str = if overlap.is_nan() {
            "—".to_string()
        } else {
            format!("{:.3}", overlap)
        };
        println!(
            "| {} | {} | {:.3e} | {} | {} | {} |",
            method.name(),
            res.iterations,
            res.final_relres,
            overlap_str,
            span_count,
            tel.finish.stop
        );
        csv.push_str(&format!(
            "{},{},{:e},{},{},{},{}\n",
            method.name(),
            res.iterations,
            res.final_relres,
            if overlap.is_nan() {
                "".to_string()
            } else {
                format!("{overlap:.6}")
            },
            tel.finish.window_ns,
            tel.finish.kernel_in_window_ns,
            tel.finish.stagnation_fired
        ));
    }
    pscg_obs::set_enabled(false);
    pscg_obs::set_mode(pscg_obs::TelemetryMode::Full);
    let _ = std::fs::create_dir_all(results);
    let csv_path = results.join("overlap.csv");
    if let Err(e) = std::fs::write(&csv_path, &csv) {
        eprintln!("[telemetry] write {}: {e}", csv_path.display());
        ok = false;
    } else {
        println!(
            "\nwrote {} and {}/*.{}",
            csv_path.display(),
            dir.display(),
            if aggregate { "agg.json" } else { "trace.json" }
        );
    }
    ok
}

/// Runs every method once with telemetry enabled and joins the recorded
/// spans with the cost model and the IR's static schedule (DESIGN.md §13):
/// per-kernel achieved GFLOP/s / GB/s under the model's traffic
/// assumption, plus achieved overlap against the IR's capacity report.
/// Writes `results/perf_report.json` + `results/perf_report.md`. Returns
/// false on any failure.
fn run_perf_report(scale: &Scale, results: &Path) -> bool {
    let p = problems::poisson125(scale);
    let b = p.rhs();
    let s = 4;
    println!("\n## Perf report ({}, s = {s})\n", p.name);
    let mut report = pscg_bench::perf_report::PerfReport::default();
    let mut ok = true;
    pscg_obs::set_enabled(true);
    for method in ALL_METHODS {
        pscg_obs::span::drain();
        let mut ctx = SimCtx::serial(&p.a, Box::new(Jacobi::new(&p.a)));
        let opts = SolveOptions {
            rtol: p.rtol,
            s,
            max_iters: scale.max_iters,
            ..Default::default()
        };
        method.solve(&mut ctx, &b, None, &opts);
        let spans = pscg_obs::span::drain();
        let Some(tel) = pscg_obs::metrics::take_last() else {
            eprintln!("[perf-report] {}: no stream collected", method.name());
            ok = false;
            continue;
        };
        report
            .methods
            .push(pscg_bench::perf_report::method_perf(method, &spans, &tel));
    }
    pscg_obs::set_enabled(false);
    if report.methods.is_empty() {
        return false;
    }
    print!("{}", pscg_bench::perf_report::render_md(&report));
    let _ = std::fs::create_dir_all(results);
    let json_path = results.join("perf_report.json");
    let md_path = results.join("perf_report.md");
    let json = pscg_bench::perf_report::render_json(&report);
    if let Err(e) = pscg_bench::perf_report::parse_report(&json) {
        eprintln!("[perf-report] rendered report does not reparse: {e}");
        ok = false;
    }
    for (path, text) in [
        (&json_path, json),
        (&md_path, pscg_bench::perf_report::render_md(&report)),
    ] {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("[perf-report] write {}: {e}", path.display());
            ok = false;
        }
    }
    println!(
        "\nwrote {} and {}",
        json_path.display(),
        md_path.display()
    );
    ok
}

/// Arms `plan` in a fresh simulator for every method and solves through the
/// resilient supervisor. Returns false when any method produces a *silent*
/// wrong answer — claimed convergence whose recomputed residual `‖b − A x‖`
/// contradicts the tolerance. Clean convergence (possibly after recovery)
/// and explicit errors both pass: the contract is "never hang, never lie".
///
/// The flight recorder is armed for the whole campaign with its dump bound
/// to `results/flight.json`: the resilient supervisor dumps the final
/// iterations' ring there whenever an attempt breaks down or the recovery
/// ladder is exhausted, so a non-recovered fault always leaves a
/// post-mortem artifact.
fn run_fault_campaign(scale: &Scale, plan: &FaultPlan, results: &Path) -> bool {
    let p = problems::poisson125(scale);
    let b = p.rhs();
    let s = 4;
    println!(
        "\n## Fault campaign ({}, s = {s}, seed {}, {} event(s))\n",
        p.name,
        plan.seed,
        plan.events.len()
    );
    println!("| method | outcome | iters | true relres | faults hit |");
    println!("|---|---|---|---|---|");
    let mut ok = true;
    let flight_path = results.join("flight.json");
    pscg_obs::set_enabled(true);
    pscg_obs::flight::configure(16, Some(flight_path.clone()));
    for method in ALL_METHODS {
        let mut ctx = SimCtx::serial(&p.a, Box::new(Jacobi::new(&p.a)));
        ctx.arm_faults(plan.clone());
        let opts = SolveOptions {
            rtol: p.rtol,
            s,
            max_iters: scale.max_iters,
            ..Default::default()
        };
        let outcome = method.solve_resilient(&mut ctx, &b, None, &opts);
        let hits = ctx.fault_log().len();
        match outcome {
            Ok(res) => {
                let t = res.true_relres(&p.a, &b);
                let lied = res.converged() && !(t.is_finite() && t <= p.rtol * 100.0);
                if lied {
                    eprintln!(
                        "[fault-plan] {}: SILENT WRONG ANSWER — reported {:?} \
                         at relres {:.3e} but true relres is {:.3e}",
                        method.name(),
                        res.stop,
                        res.final_relres,
                        t
                    );
                    ok = false;
                }
                println!(
                    "| {} | {:?} | {} | {:.3e} | {} |",
                    method.name(),
                    res.stop,
                    res.iterations,
                    t,
                    hits
                );
            }
            Err(e) => {
                // An explicit error is an acceptable outcome: the solver
                // refused to report a solution it could not vouch for. The
                // supervisor left a flight dump for the failure.
                println!("| {} | {e} | — | — | {hits} |", method.name());
                match pscg_obs::flight::validate_flight_file(&flight_path) {
                    Ok(check) => eprintln!(
                        "[fault-plan] {}: flight dump at {} ({}, {} frame(s), {} span(s))",
                        method.name(),
                        flight_path.display(),
                        check.reason,
                        check.iters,
                        check.spans
                    ),
                    Err(err) => {
                        eprintln!(
                            "[fault-plan] {}: missing/invalid flight dump at {}: {err}",
                            method.name(),
                            flight_path.display()
                        );
                        ok = false;
                    }
                }
            }
        }
    }
    pscg_obs::flight::configure(0, None);
    pscg_obs::set_enabled(false);
    ok
}

fn main() {
    let mut scale = Scale::from_env();
    let mut wanted: Vec<String> = Vec::new();
    let mut verify_schedule = false;
    let mut verify_conc = false;
    let mut verify_ir_flag = false;
    let mut ir_broken: Option<String> = None;
    let mut strict_probes = false;
    let mut telemetry: Option<PathBuf> = std::env::var_os("PSCG_TELEMETRY").map(PathBuf::from);
    let mut fault_plan: Option<PathBuf> = std::env::var_os("PSCG_FAULTS").map(PathBuf::from);
    let mut aggregate = false;
    let mut perf_report = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--verify-schedule" => verify_schedule = true,
            "--verify-concurrency" => verify_conc = true,
            "--verify-ir" => verify_ir_flag = true,
            "--ir-broken" => {
                let Some(mode) = args.next() else {
                    eprintln!("--ir-broken needs a mode name or 'all'");
                    std::process::exit(2);
                };
                ir_broken = Some(mode);
            }
            "--strict-probes" => strict_probes = true,
            "--telemetry" => {
                let Some(dir) = args.next() else {
                    eprintln!("--telemetry needs a directory");
                    std::process::exit(2);
                };
                telemetry = Some(PathBuf::from(dir));
            }
            "--telemetry-mode" => {
                let mode = args.next().unwrap_or_default();
                aggregate = match mode.as_str() {
                    "full" => false,
                    "aggregate" => true,
                    other => {
                        eprintln!("unknown telemetry mode '{other}' (full|aggregate)");
                        std::process::exit(2);
                    }
                };
            }
            "--perf-report" => perf_report = true,
            "--fault-plan" => {
                let Some(file) = args.next() else {
                    eprintln!("--fault-plan needs a file");
                    std::process::exit(2);
                };
                fault_plan = Some(PathBuf::from(file));
            }
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "ci" => Scale::ci(),
                    "small" => Scale::small(),
                    "paper" => Scale::paper(),
                    other => {
                        eprintln!("unknown scale '{other}' (ci|small|paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale ci|small|paper] [--verify-schedule] \
                     [--verify-concurrency] [--verify-ir] [--ir-broken MODE|all] \
                     [--strict-probes] \
                     [--telemetry DIR] [--telemetry-mode full|aggregate] \
                     [--perf-report] [--fault-plan FILE] <experiment>...\n\
                     experiments: table1 fig1 fig2 table2 fig3 fig4 fig5 \
                     ablation-progress crossover mpk all"
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty()
        && !verify_schedule
        && !verify_conc
        && !verify_ir_flag
        && !perf_report
        && ir_broken.is_none()
        && telemetry.is_none()
        && fault_plan.is_none()
    {
        wanted.push("all".to_string());
    }
    const KNOWN: [&str; 11] = [
        "all",
        "table1",
        "fig1",
        "fig2",
        "table2",
        "fig3",
        "fig4",
        "fig5",
        "ablation-progress",
        "crossover",
        "mpk",
    ];
    for w in &wanted {
        if !KNOWN.contains(&w.as_str()) {
            eprintln!("unknown experiment '{w}'; known: {}", KNOWN.join(" "));
            std::process::exit(2);
        }
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    let machine = Machine::sahasrat();
    let results = PathBuf::from("results");
    println!(
        "# PIPE-PsCG reproduction — scale '{}' (125-pt grid {}^3), machine '{}'",
        scale.name, scale.poisson_n, machine.name
    );

    let t0 = Instant::now();
    if let Some(mode) = &ir_broken {
        #[cfg(feature = "broken-ir")]
        run_ir_broken(&scale, mode);
        #[cfg(not(feature = "broken-ir"))]
        {
            eprintln!(
                "--ir-broken {mode} requires building with --features broken-ir \
                 (the planted specs are gated out of normal builds)"
            );
            std::process::exit(2);
        }
    }
    if verify_schedule {
        let found = verify_schedules(&scale, strict_probes);
        if let Some(worst) = pscg_analysis::exit_codes::most_severe(&found) {
            eprintln!("[repro] schedule verification FAILED ({worst})");
            std::process::exit(worst.exit_code());
        }
    }
    if verify_conc {
        let found = verify_concurrency(&scale);
        if let Some(worst) = pscg_analysis::exit_codes::most_severe(&found) {
            eprintln!("[repro] concurrency verification FAILED ({worst})");
            std::process::exit(worst.exit_code());
        }
    }
    if verify_ir_flag {
        let found = verify_ir(&scale);
        if let Some(worst) = pscg_analysis::exit_codes::most_severe(&found) {
            eprintln!("[repro] IR verification FAILED ({worst})");
            std::process::exit(worst.exit_code());
        }
    }
    if let Some(dir) = &telemetry {
        if !run_telemetry(&scale, dir, &results, aggregate) {
            eprintln!("[repro] telemetry capture FAILED");
            std::process::exit(1);
        }
    }
    if perf_report {
        if !run_perf_report(&scale, &results) {
            eprintln!("[repro] perf report FAILED");
            std::process::exit(1);
        }
    }
    if let Some(file) = &fault_plan {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("[fault-plan] cannot read {}: {e}", file.display());
                std::process::exit(2);
            }
        };
        let plan = match FaultPlan::parse(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("[fault-plan] {}: {e}", file.display());
                std::process::exit(2);
            }
        };
        if !run_fault_campaign(&scale, &plan, &results) {
            eprintln!("[repro] fault campaign FAILED");
            std::process::exit(1);
        }
    }
    if want("table1") {
        experiments::table1(3).emit(&results);
        experiments::table1(5).emit(&results);
    }
    let mut fig1_runs = None;
    if want("fig1") || want("fig5") {
        let (rep, runs) = experiments::fig1(&scale, &machine);
        if want("fig1") {
            rep.emit(&results);
        }
        fig1_runs = Some(runs);
    }
    if want("fig2") {
        let (rep, _) = experiments::fig2(&scale, &machine);
        rep.emit(&results);
    }
    if want("table2") {
        experiments::table2(&scale, &machine).emit(&results);
    }
    if want("fig3") {
        experiments::fig3(&scale, &machine).emit(&results);
    }
    if want("fig4") {
        experiments::fig4(&scale, &machine).emit(&results);
    }
    if want("fig5") {
        let runs = fig1_runs.as_ref().expect("fig1 runs present");
        experiments::fig5(runs, &machine).emit(&results);
    }
    if want("ablation-progress") {
        experiments::ablation_progress(&scale).emit(&results);
    }
    if want("crossover") {
        experiments::crossover(&scale, &machine).emit(&results);
    }
    if want("mpk") {
        experiments::mpk(&scale, &machine).emit(&results);
    }
    eprintln!("\n[repro] done in {:.1}s", t0.elapsed().as_secs_f64());
}

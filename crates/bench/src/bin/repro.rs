//! Paper-reproduction driver.
//!
//! ```text
//! repro [--scale ci|small|paper] [--verify-schedule] <experiment>...
//! experiments: table1 fig1 fig2 table2 fig3 fig4 fig5 ablation-progress crossover mpk all
//! ```
//!
//! Results are printed as markdown and written to `results/<id>.csv`.
//! `fig5` implies running `fig1`'s solves first (it replays the same
//! traces at 80 nodes).
//!
//! `--verify-schedule` runs the static communication-schedule analyzer
//! (`pscg-analysis`) over every method's trace before the experiments:
//! overlap hazards or Table I structure violations abort with exit 1.
//! With no experiments named, the flag runs the verification alone.

use std::path::PathBuf;
use std::time::Instant;

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_bench::problems;
use pscg_bench::{experiments, Scale};
use pscg_precond::Jacobi;
use pscg_sim::{Machine, SimCtx};

/// Runs the static analyzer over every method's trace on the scale's
/// Poisson problem. Returns false when any hazard or structure violation
/// is found.
fn verify_schedules(scale: &Scale) -> bool {
    let p = problems::poisson125(scale);
    let b = p.rhs();
    let s = 4;
    println!("\n## Schedule verification ({}, s = {s})\n", p.name);
    println!("| method | ops | windows | hazards | structure |");
    println!("|---|---|---|---|---|");
    let mut clean = true;
    for method in [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ] {
        let mut ctx = SimCtx::traced(&p.a, Box::new(Jacobi::new(&p.a)), p.profile.clone());
        let opts = SolveOptions {
            rtol: p.rtol,
            s,
            max_iters: scale.max_iters,
            ..Default::default()
        };
        method.solve(&mut ctx, &b, None, &opts);
        let trace = ctx.take_trace().expect("tracing was enabled");
        let report = pscg_analysis::analyze(&trace);
        let violations = pscg_analysis::verify(&trace, method, s);
        println!(
            "| {} | {} | {} | {} | {} |",
            method.name(),
            trace.ops.len(),
            report.windows.len(),
            report.hazards.len(),
            violations.len()
        );
        for h in &report.hazards {
            eprintln!("[verify-schedule] {}: {h}", method.name());
        }
        for v in &violations {
            eprintln!("[verify-schedule] {}: {v}", method.name());
        }
        clean &= report.is_clean() && violations.is_empty();
    }
    clean
}

fn main() {
    let mut scale = Scale::from_env();
    let mut wanted: Vec<String> = Vec::new();
    let mut verify_schedule = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--verify-schedule" => verify_schedule = true,
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "ci" => Scale::ci(),
                    "small" => Scale::small(),
                    "paper" => Scale::paper(),
                    other => {
                        eprintln!("unknown scale '{other}' (ci|small|paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale ci|small|paper] [--verify-schedule] <experiment>...\n\
                     experiments: table1 fig1 fig2 table2 fig3 fig4 fig5 \
                     ablation-progress crossover mpk all"
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() && !verify_schedule {
        wanted.push("all".to_string());
    }
    const KNOWN: [&str; 11] = [
        "all",
        "table1",
        "fig1",
        "fig2",
        "table2",
        "fig3",
        "fig4",
        "fig5",
        "ablation-progress",
        "crossover",
        "mpk",
    ];
    for w in &wanted {
        if !KNOWN.contains(&w.as_str()) {
            eprintln!("unknown experiment '{w}'; known: {}", KNOWN.join(" "));
            std::process::exit(2);
        }
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    let machine = Machine::sahasrat();
    let results = PathBuf::from("results");
    println!(
        "# PIPE-PsCG reproduction — scale '{}' (125-pt grid {}^3), machine '{}'",
        scale.name, scale.poisson_n, machine.name
    );

    let t0 = Instant::now();
    if verify_schedule && !verify_schedules(&scale) {
        eprintln!("[repro] schedule verification FAILED");
        std::process::exit(1);
    }
    if want("table1") {
        experiments::table1(3).emit(&results);
        experiments::table1(5).emit(&results);
    }
    let mut fig1_runs = None;
    if want("fig1") || want("fig5") {
        let (rep, runs) = experiments::fig1(&scale, &machine);
        if want("fig1") {
            rep.emit(&results);
        }
        fig1_runs = Some(runs);
    }
    if want("fig2") {
        let (rep, _) = experiments::fig2(&scale, &machine);
        rep.emit(&results);
    }
    if want("table2") {
        experiments::table2(&scale, &machine).emit(&results);
    }
    if want("fig3") {
        experiments::fig3(&scale, &machine).emit(&results);
    }
    if want("fig4") {
        experiments::fig4(&scale, &machine).emit(&results);
    }
    if want("fig5") {
        let runs = fig1_runs.as_ref().expect("fig1 runs present");
        experiments::fig5(runs, &machine).emit(&results);
    }
    if want("ablation-progress") {
        experiments::ablation_progress(&scale).emit(&results);
    }
    if want("crossover") {
        experiments::crossover(&scale, &machine).emit(&results);
    }
    if want("mpk") {
        experiments::mpk(&scale, &machine).emit(&results);
    }
    eprintln!("\n[repro] done in {:.1}s", t0.elapsed().as_secs_f64());
}

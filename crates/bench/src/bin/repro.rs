//! Paper-reproduction driver.
//!
//! ```text
//! repro [--scale ci|small|paper] <experiment>...
//! experiments: table1 fig1 fig2 table2 fig3 fig4 fig5 ablation-progress crossover mpk all
//! ```
//!
//! Results are printed as markdown and written to `results/<id>.csv`.
//! `fig5` implies running `fig1`'s solves first (it replays the same
//! traces at 80 nodes).

use std::path::PathBuf;
use std::time::Instant;

use pscg_bench::experiments;
use pscg_bench::Scale;
use pscg_sim::Machine;

fn main() {
    let mut scale = Scale::from_env();
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "ci" => Scale::ci(),
                    "small" => Scale::small(),
                    "paper" => Scale::paper(),
                    other => {
                        eprintln!("unknown scale '{other}' (ci|small|paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale ci|small|paper] <experiment>...\n\
                     experiments: table1 fig1 fig2 table2 fig3 fig4 fig5 \
                     ablation-progress crossover mpk all"
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    const KNOWN: [&str; 11] = [
        "all",
        "table1",
        "fig1",
        "fig2",
        "table2",
        "fig3",
        "fig4",
        "fig5",
        "ablation-progress",
        "crossover",
        "mpk",
    ];
    for w in &wanted {
        if !KNOWN.contains(&w.as_str()) {
            eprintln!("unknown experiment '{w}'; known: {}", KNOWN.join(" "));
            std::process::exit(2);
        }
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    let machine = Machine::sahasrat();
    let results = PathBuf::from("results");
    println!(
        "# PIPE-PsCG reproduction — scale '{}' (125-pt grid {}^3), machine '{}'",
        scale.name, scale.poisson_n, machine.name
    );

    let t0 = Instant::now();
    if want("table1") {
        experiments::table1(3).emit(&results);
        experiments::table1(5).emit(&results);
    }
    let mut fig1_runs = None;
    if want("fig1") || want("fig5") {
        let (rep, runs) = experiments::fig1(&scale, &machine);
        if want("fig1") {
            rep.emit(&results);
        }
        fig1_runs = Some(runs);
    }
    if want("fig2") {
        let (rep, _) = experiments::fig2(&scale, &machine);
        rep.emit(&results);
    }
    if want("table2") {
        experiments::table2(&scale, &machine).emit(&results);
    }
    if want("fig3") {
        experiments::fig3(&scale, &machine).emit(&results);
    }
    if want("fig4") {
        experiments::fig4(&scale, &machine).emit(&results);
    }
    if want("fig5") {
        let runs = fig1_runs.as_ref().expect("fig1 runs present");
        experiments::fig5(runs, &machine).emit(&results);
    }
    if want("ablation-progress") {
        experiments::ablation_progress(&scale).emit(&results);
    }
    if want("crossover") {
        experiments::crossover(&scale, &machine).emit(&results);
    }
    if want("mpk") {
        experiments::mpk(&scale, &machine).emit(&results);
    }
    eprintln!("\n[repro] done in {:.1}s", t0.elapsed().as_secs_f64());
}

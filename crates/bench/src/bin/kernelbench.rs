//! Kernel-engine benchmark: per-kernel GFLOP/s at several thread counts.
//!
//! ```text
//! kernelbench [--grid N] [--threads LIST] [--s S] [--out PATH] [--check]
//!             [--telemetry PATH] [tune]
//! ```
//!
//! Measures the three hot paths of the s-step overlap window — SpMV, the
//! blocked Gram product and the fused recurrence update sweep — on the 7-pt
//! Poisson stencil at `N³` (default 256³, the CI perf-smoke problem), each
//! at every thread count in `--threads` (default `1,4`). Writes a JSON
//! baseline (`--out`, default `BENCH_kernels.json`) recording medians,
//! GFLOP/s and speedups vs the serial run.
//!
//! `--check` enforces the perf-smoke gate: parallel SpMV at the highest
//! thread count must not be slower than serial. The gate only binds when
//! the host actually has that many cores — on a smaller machine the result
//! is recorded as skipped (a 4-thread pool on one core measures oversubscription,
//! not the engine).
//!
//! `tune` sweeps the chunk-size knobs around the model defaults
//! ([`pipescg::autotune::KernelTuning`]) and prints the best setting.
//!
//! `--telemetry PATH` records one `bench` span per measured
//! (kernel, thread-count) cell and writes a Chrome trace-event file
//! loadable in <https://ui.perfetto.dev>. The thread-pool submission
//! counters (`pscg_par::stats`) are printed after every run regardless.

use std::fmt::Write as _;

use pipescg::autotune::KernelTuning;
use pscg_bench::microbench::{gflops_per_sec, Group};
use pscg_obs::SpanKind;
use pscg_par::{knobs, stats::PoolStats, Pool};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
use pscg_sparse::{CsrMatrix, MultiVector};

/// One measured (kernel, thread-count) cell.
struct Cell {
    kernel: &'static str,
    threads: usize,
    median_secs: f64,
    gflops: f64,
}

struct Config {
    grid: usize,
    threads: Vec<usize>,
    s: usize,
    out: String,
    check: bool,
    tune: bool,
    telemetry: Option<String>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        grid: 256,
        threads: vec![1, 4],
        s: 4,
        out: "BENCH_kernels.json".to_string(),
        check: false,
        tune: false,
        telemetry: std::env::var("PSCG_TELEMETRY").ok(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--grid" => cfg.grid = val("--grid").parse().expect("--grid: integer"),
            "--threads" => {
                cfg.threads = val("--threads")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads: integers"))
                    .collect();
            }
            "--s" => cfg.s = val("--s").parse().expect("--s: integer"),
            "--out" => cfg.out = val("--out"),
            "--check" => cfg.check = true,
            "--telemetry" => cfg.telemetry = Some(val("--telemetry")),
            "tune" => cfg.tune = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: kernelbench [--grid N] [--threads LIST] [--s S] \
                     [--out PATH] [--check] [--telemetry PATH] [tune]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(
        !cfg.threads.is_empty(),
        "--threads: need at least one count"
    );
    cfg
}

/// Workload of one fused update sweep: `dst = src[:, 1..s+1] + prev·B`
/// followed by one `dst_col = src_col − X·a` basis shift.
fn fused_flops(n: usize, s: usize) -> u64 {
    (2 * s * s * n + 2 * s * n) as u64
}

fn bench_all(cfg: &Config, a: &CsrMatrix) -> Vec<Cell> {
    let n = a.nrows();
    let s = cfg.s;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
    let mut y = vec![0.0; n];
    let cols: Vec<Vec<f64>> = (0..s + 1)
        .map(|j| {
            (0..n)
                .map(|i| ((i * (j + 1)) as f64 * 0.01).cos())
                .collect()
        })
        .collect();
    let src = MultiVector::from_columns(&cols.iter().map(|c| c.as_slice()).collect::<Vec<_>>());
    let prev = {
        let pc: Vec<&[f64]> = cols[..s].iter().map(|c| c.as_slice()).collect();
        MultiVector::from_columns(&pc)
    };
    let mut dst = MultiVector::zeros(n, s);
    let bmat = {
        let mut b = pscg_sparse::dense::DenseMatrix::zeros(s, s);
        for i in 0..s {
            for j in 0..s {
                b.set(i, j, 0.01 * (1 + i + 2 * j) as f64);
            }
        }
        b
    };
    let alpha: Vec<f64> = (0..s).map(|k| 0.1 + 0.05 * k as f64).collect();
    let mut shift = vec![0.0; n];

    let mut cells = Vec::new();
    for &t in &cfg.threads {
        let pool = Pool::new(t);
        let group = Group::new(&format!("kernels_{}cube_t{t}", cfg.grid));
        // One `bench` span per measured cell (arg = thread count); inert
        // unless --telemetry enabled recording.
        let spmv_fl = 2 * a.nnz() as u64;
        let m = {
            let _sp = pscg_obs::span_arg(SpanKind::Bench, t as u64);
            group.bench_flops("spmv", a.nnz() as u64, spmv_fl, || {
                a.spmv_with(
                    &pool,
                    std::hint::black_box(&x),
                    std::hint::black_box(&mut y),
                )
            })
        };
        cells.push(Cell {
            kernel: "spmv",
            threads: t,
            median_secs: m,
            gflops: gflops_per_sec(spmv_fl, m),
        });

        let gram_fl = (2 * s * s * n) as u64;
        let m = {
            let _sp = pscg_obs::span_arg(SpanKind::Bench, t as u64);
            group.bench_flops("gram", (s * s * n) as u64, gram_fl, || {
                std::hint::black_box(prev.gram_with(&pool, std::hint::black_box(&prev)));
            })
        };
        cells.push(Cell {
            kernel: "gram",
            threads: t,
            median_secs: m,
            gflops: gflops_per_sec(gram_fl, m),
        });

        let fu_fl = fused_flops(n, s);
        let m = {
            let _sp = pscg_obs::span_arg(SpanKind::Bench, t as u64);
            group.bench_flops("fused_update", (s * n) as u64, fu_fl, || {
                dst.combine_window_with(&pool, std::hint::black_box(&src), 1, &prev, &bmat);
                prev.gemv_sub_into_with(
                    &pool,
                    &alpha,
                    src.col(0),
                    std::hint::black_box(&mut shift),
                );
            })
        };
        cells.push(Cell {
            kernel: "fused_update",
            threads: t,
            median_secs: m,
            gflops: gflops_per_sec(fu_fl, m),
        });
    }
    cells
}

/// Serial-baseline speedup of `kernel` at `threads`, if both were measured.
fn speedup(cells: &[Cell], kernel: &str, threads: usize) -> Option<f64> {
    let serial = cells
        .iter()
        .find(|c| c.kernel == kernel && c.threads == 1)?;
    let par = cells
        .iter()
        .find(|c| c.kernel == kernel && c.threads == threads)?;
    Some(serial.median_secs / par.median_secs)
}

fn write_json(cfg: &Config, a: &CsrMatrix, cells: &[Cell], gate: &GateResult) -> String {
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"kernels\",");
    let _ = writeln!(
        out,
        "  \"problem\": {{ \"stencil\": \"poisson3d_7pt\", \"grid\": {}, \"nrows\": {}, \"nnz\": {} }},",
        cfg.grid,
        a.nrows(),
        a.nnz()
    );
    let _ = writeln!(out, "  \"s\": {},", cfg.s);
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(
        out,
        "  \"knobs\": {{ \"spmv_chunk_nnz\": {}, \"gram_chunk_rows\": {} }},",
        knobs::spmv_chunk_nnz(),
        knobs::gram_chunk_rows()
    );
    let _ = writeln!(out, "  \"results\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"kernel\": \"{}\", \"threads\": {}, \"median_secs\": {:.6e}, \"gflops\": {:.4} }}{comma}",
            c.kernel, c.threads, c.median_secs, c.gflops
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"speedup_vs_serial\": {{");
    let tmax = *cfg.threads.iter().max().unwrap();
    let kernels = ["spmv", "gram", "fused_update"];
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        match speedup(cells, k, tmax) {
            Some(sp) => {
                let _ = writeln!(out, "    \"{k}@{tmax}\": {sp:.3}{comma}");
            }
            None => {
                let _ = writeln!(out, "    \"{k}@{tmax}\": null{comma}");
            }
        }
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(
        out,
        "  \"check\": {{ \"enforced\": {}, \"passed\": {}, \"detail\": \"{}\" }}",
        gate.enforced,
        gate.passed.map_or("null".to_string(), |p| p.to_string()),
        gate.detail
    );
    let _ = writeln!(out, "}}");
    out
}

struct GateResult {
    enforced: bool,
    passed: Option<bool>,
    detail: String,
}

/// The perf-smoke gate: SpMV at the top thread count must not lose to
/// serial — enforced only when the host can actually run that many lanes.
fn evaluate_gate(cfg: &Config, cells: &[Cell]) -> GateResult {
    let tmax = *cfg.threads.iter().max().unwrap();
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if tmax <= 1 {
        return GateResult {
            enforced: false,
            passed: None,
            detail: "single-threaded run, nothing to compare".into(),
        };
    }
    let Some(sp) = speedup(cells, "spmv", tmax) else {
        return GateResult {
            enforced: false,
            passed: None,
            detail: "no serial baseline measured".into(),
        };
    };
    if host_cores < tmax {
        return GateResult {
            enforced: false,
            passed: None,
            detail: format!(
                "host has {host_cores} core(s) < {tmax} threads; speedup {sp:.3} recorded, gate skipped"
            ),
        };
    }
    GateResult {
        enforced: true,
        passed: Some(sp >= 1.0),
        detail: format!("spmv speedup at {tmax} threads: {sp:.3} (required >= 1.0)"),
    }
}

/// Sweeps the chunk knobs around the model suggestion, serially re-timing
/// SpMV and Gram, and prints the empirical best.
fn tune(cfg: &Config, a: &mut CsrMatrix) {
    let n = a.nrows();
    let suggested = KernelTuning::for_problem(a.nnz(), cfg.s);
    println!(
        "\nmodel suggestion: threads = {}, spmv_chunk_nnz = {}, gram_chunk_rows = {}",
        suggested.threads, suggested.spmv_chunk_nnz, suggested.gram_chunk_rows
    );
    let pool = Pool::new(*cfg.threads.iter().max().unwrap());
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
    let mut y = vec![0.0; n];

    let group = Group::new("tune_spmv_chunk_nnz");
    let mut best = (f64::INFINITY, 0usize);
    for shift in [14u32, 15, 16, 17] {
        let chunk = 1usize << shift;
        knobs::set_spmv_chunk_nnz(chunk);
        a.reset_par_rows();
        let m = group.bench_flops(
            &format!("nnz={chunk}"),
            a.nnz() as u64,
            2 * a.nnz() as u64,
            || {
                a.spmv_with(
                    &pool,
                    std::hint::black_box(&x),
                    std::hint::black_box(&mut y),
                )
            },
        );
        if m < best.0 {
            best = (m, chunk);
        }
    }
    println!("\nbest spmv_chunk_nnz: {}", best.1);
    knobs::set_spmv_chunk_nnz(best.1);

    let s = cfg.s;
    let cols: Vec<Vec<f64>> = (0..s)
        .map(|j| {
            (0..n)
                .map(|i| ((i * (j + 1)) as f64 * 0.01).cos())
                .collect()
        })
        .collect();
    let mv = MultiVector::from_columns(&cols.iter().map(|c| c.as_slice()).collect::<Vec<_>>());
    let group = Group::new("tune_gram_chunk_rows");
    let mut best = (f64::INFINITY, 0usize);
    for rows in [1024usize, 4096, 16384] {
        knobs::set_gram_chunk_rows(rows);
        let m = group.bench_flops(
            &format!("rows={rows}"),
            (s * s * n) as u64,
            (2 * s * s * n) as u64,
            || {
                std::hint::black_box(mv.gram_with(&pool, std::hint::black_box(&mv)));
            },
        );
        if m < best.0 {
            best = (m, rows);
        }
    }
    println!("\nbest gram_chunk_rows: {}", best.1);
    knobs::set_gram_chunk_rows(best.1);
}

fn main() {
    let cfg = parse_args();
    println!(
        "# kernelbench — 7pt Poisson {0}³ ({1} threads), s = {2}",
        cfg.grid,
        cfg.threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join("/"),
        cfg.s
    );
    let mut a = poisson3d_7pt(Grid3::cube(cfg.grid), None);
    println!("nrows = {}, nnz = {}", a.nrows(), a.nnz());

    if cfg.tune {
        tune(&cfg, &mut a);
    }

    if cfg.telemetry.is_some() {
        pscg_obs::set_enabled(true);
        pscg_obs::span::drain();
    }
    let pool_base = PoolStats::snapshot();
    let cells = bench_all(&cfg, &a);
    let pool_delta = PoolStats::snapshot().delta_since(&pool_base);
    if let Some(path) = &cfg.telemetry {
        pscg_obs::set_enabled(false);
        let spans = pscg_obs::span::drain();
        let trace = pscg_obs::export::chrome_trace(&spans);
        if let Err(e) = pscg_obs::export::validate_chrome_trace(&trace) {
            eprintln!("internal error: invalid Chrome trace: {e}");
            std::process::exit(1);
        }
        std::fs::write(path, &trace).expect("write telemetry trace");
        println!(
            "\nwrote {path} ({} spans; load in https://ui.perfetto.dev)",
            spans.records.len()
        );
    }
    let gate = evaluate_gate(&cfg, &cells);
    let json = write_json(&cfg, &a, &cells, &gate);
    std::fs::write(&cfg.out, &json).expect("write bench report");
    println!("\nwrote {}", cfg.out);
    println!("pool: {pool_delta}");
    println!("gate: {}", gate.detail);

    if cfg.check && gate.enforced && gate.passed == Some(false) {
        eprintln!("FAIL: {}", gate.detail);
        std::process::exit(1);
    }
}

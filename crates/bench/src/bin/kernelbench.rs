//! Kernel-engine benchmark: per-kernel, per-format GFLOP/s at several
//! thread counts.
//!
//! ```text
//! kernelbench [--grid N] [--threads LIST] [--s S] [--formats LIST]
//!             [--out PATH] [--check] [--min-speedup X] [--baseline PATH]
//!             [--telemetry PATH] [tune]
//! ```
//!
//! Measures the three hot paths of the s-step overlap window — SpMV, the
//! blocked Gram product and the fused recurrence update sweep — on the 7-pt
//! Poisson stencil at `N³` (default 256³, the CI perf-smoke problem), each
//! at every thread count in `--threads` (default `1,4`). SpMV is measured
//! once per storage format in `--formats` (default: all of
//! [`SpmvFormat::ALL`] — see DESIGN.md §12); every format cell records its
//! effective bytes/nnz so the traffic trajectory is tracked alongside
//! GFLOP/s. Writes a JSON baseline (`--out`, default `BENCH_kernels.json`).
//!
//! `--check` enforces the perf-smoke gate: parallel SpMV at the highest
//! thread count must reach `--min-speedup` (default 1.0) over serial *for
//! every measured format*. The gate only binds when the host actually has
//! that many cores — on a smaller machine the result is recorded and an
//! explicit `gate: SKIPPED` line is printed (a 4-thread pool on one core
//! measures oversubscription, not the engine).
//!
//! `--baseline PATH` compares this run against a previously committed
//! report: every (kernel, format, threads) cell present in both is
//! compared, a >20% GFLOP/s drop is a regression and fails the run with
//! exit 1. Cells whose thread count exceeds the host's cores are skipped
//! with an explicit log line, as is the whole comparison on a host too
//! small to enforce anything meaningful.
//!
//! `tune` sweeps the chunk-size knobs around the model defaults
//! ([`pipescg::autotune::KernelTuning`]) plus the SpMV format over every
//! requested thread count, and prints/installs the empirical best.
//!
//! `--telemetry PATH` records one `bench` span per measured
//! (kernel, thread-count) cell and writes a Chrome trace-event file
//! loadable in <https://ui.perfetto.dev>. The thread-pool submission
//! counters (`pscg_par::stats`) are printed after every run regardless.

use std::fmt::Write as _;

use pipescg::autotune::KernelTuning;
use pscg_bench::microbench::{gflops_per_sec, Group};
use pscg_bench::perf_report::spmv_model_bytes_per_nnz;
use pscg_obs::SpanKind;
use pscg_par::{knobs, stats::PoolStats, Pool};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
use pscg_sparse::{set_spmv_format, CsrMatrix, MultiVector, SpmvFormat};

/// One measured (kernel, format, thread-count) cell. `format`,
/// `bytes_per_nnz` and `model_bytes_per_nnz` are populated for SpMV cells
/// only — the Gram and fused sweeps are format-independent.
struct Cell {
    kernel: &'static str,
    format: Option<SpmvFormat>,
    threads: usize,
    median_secs: f64,
    gflops: f64,
    bytes_per_nnz: Option<f64>,
    /// Cost-model traffic for this format (DESIGN.md §13): what the
    /// roofline attribution will assume per nonzero.
    model_bytes_per_nnz: Option<f64>,
}

struct Config {
    grid: usize,
    threads: Vec<usize>,
    s: usize,
    formats: Vec<SpmvFormat>,
    out: String,
    check: bool,
    min_speedup: f64,
    baseline: Option<String>,
    tune: bool,
    telemetry: Option<String>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        grid: 256,
        threads: vec![1, 4],
        s: 4,
        formats: SpmvFormat::ALL.to_vec(),
        out: "BENCH_kernels.json".to_string(),
        check: false,
        min_speedup: 1.0,
        baseline: None,
        tune: false,
        telemetry: std::env::var("PSCG_TELEMETRY").ok(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--grid" => cfg.grid = val("--grid").parse().expect("--grid: integer"),
            "--threads" => {
                cfg.threads = val("--threads")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads: integers"))
                    .collect();
            }
            "--s" => cfg.s = val("--s").parse().expect("--s: integer"),
            "--formats" => {
                cfg.formats = val("--formats")
                    .split(',')
                    .map(|f| {
                        SpmvFormat::parse(f)
                            .unwrap_or_else(|| panic!("--formats: unknown format {f:?}"))
                    })
                    .collect();
            }
            "--out" => cfg.out = val("--out"),
            "--check" => cfg.check = true,
            "--min-speedup" => {
                cfg.min_speedup = val("--min-speedup").parse().expect("--min-speedup: number");
            }
            "--baseline" => cfg.baseline = Some(val("--baseline")),
            "--telemetry" => cfg.telemetry = Some(val("--telemetry")),
            "tune" => cfg.tune = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: kernelbench [--grid N] [--threads LIST] [--s S] \
                     [--formats LIST] [--out PATH] [--check] [--min-speedup X] \
                     [--baseline PATH] [--telemetry PATH] [tune]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(
        !cfg.threads.is_empty(),
        "--threads: need at least one count"
    );
    assert!(
        !cfg.formats.is_empty(),
        "--formats: need at least one format"
    );
    cfg
}

/// Workload of one fused update sweep: `dst = src[:, 1..s+1] + prev·B`
/// followed by one `dst_col = src_col − X·a` basis shift.
fn fused_flops(n: usize, s: usize) -> u64 {
    (2 * s * s * n + 2 * s * n) as u64
}

fn bench_all(cfg: &Config, a: &CsrMatrix) -> Vec<Cell> {
    let n = a.nrows();
    let s = cfg.s;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
    let mut y = vec![0.0; n];
    let cols: Vec<Vec<f64>> = (0..s + 1)
        .map(|j| {
            (0..n)
                .map(|i| ((i * (j + 1)) as f64 * 0.01).cos())
                .collect()
        })
        .collect();
    let src = MultiVector::from_columns(&cols.iter().map(|c| c.as_slice()).collect::<Vec<_>>());
    let prev = {
        let pc: Vec<&[f64]> = cols[..s].iter().map(|c| c.as_slice()).collect();
        MultiVector::from_columns(&pc)
    };
    let mut dst = MultiVector::zeros(n, s);
    let bmat = {
        let mut b = pscg_sparse::dense::DenseMatrix::zeros(s, s);
        for i in 0..s {
            for j in 0..s {
                b.set(i, j, 0.01 * (1 + i + 2 * j) as f64);
            }
        }
        b
    };
    let alpha: Vec<f64> = (0..s).map(|k| 0.1 + 0.05 * k as f64).collect();
    let mut shift = vec![0.0; n];

    let entry_format = pscg_sparse::spmv_format();
    let mut cells = Vec::new();
    for &t in &cfg.threads {
        let pool = Pool::new(t);
        let group = Group::new(&format!("kernels_{}cube_t{t}", cfg.grid));
        // One `bench` span per measured cell (arg = thread count); inert
        // unless --telemetry enabled recording.
        let spmv_fl = 2 * a.nnz() as u64;
        for &fmt in &cfg.formats {
            set_spmv_format(fmt);
            let m = {
                let _sp = pscg_obs::span_arg(SpanKind::Bench, t as u64);
                group.bench_flops(&format!("spmv[{fmt}]"), a.nnz() as u64, spmv_fl, || {
                    a.spmv_with(
                        &pool,
                        std::hint::black_box(&x),
                        std::hint::black_box(&mut y),
                    )
                })
            };
            cells.push(Cell {
                kernel: "spmv",
                format: Some(fmt),
                threads: t,
                median_secs: m,
                gflops: gflops_per_sec(spmv_fl, m),
                bytes_per_nnz: Some(a.spmv_traffic_bytes(fmt) / a.nnz() as f64),
                model_bytes_per_nnz: Some(spmv_model_bytes_per_nnz(fmt, a.nnz() as f64, n as f64)),
            });
        }
        set_spmv_format(entry_format);

        let gram_fl = (2 * s * s * n) as u64;
        let m = {
            let _sp = pscg_obs::span_arg(SpanKind::Bench, t as u64);
            group.bench_flops("gram", (s * s * n) as u64, gram_fl, || {
                std::hint::black_box(prev.gram_with(&pool, std::hint::black_box(&prev)));
            })
        };
        cells.push(Cell {
            kernel: "gram",
            format: None,
            threads: t,
            median_secs: m,
            gflops: gflops_per_sec(gram_fl, m),
            bytes_per_nnz: None,
            model_bytes_per_nnz: None,
        });

        let fu_fl = fused_flops(n, s);
        let m = {
            let _sp = pscg_obs::span_arg(SpanKind::Bench, t as u64);
            group.bench_flops("fused_update", (s * n) as u64, fu_fl, || {
                dst.combine_window_with(&pool, std::hint::black_box(&src), 1, &prev, &bmat);
                prev.gemv_sub_into_with(
                    &pool,
                    &alpha,
                    src.col(0),
                    std::hint::black_box(&mut shift),
                );
            })
        };
        cells.push(Cell {
            kernel: "fused_update",
            format: None,
            threads: t,
            median_secs: m,
            gflops: gflops_per_sec(fu_fl, m),
            bytes_per_nnz: None,
            model_bytes_per_nnz: None,
        });
    }
    cells
}

/// Serial-baseline speedup of `(kernel, format)` at `threads`, if both the
/// serial and parallel cells were measured.
fn speedup(
    cells: &[Cell],
    kernel: &str,
    format: Option<SpmvFormat>,
    threads: usize,
) -> Option<f64> {
    let serial = cells
        .iter()
        .find(|c| c.kernel == kernel && c.format == format && c.threads == 1)?;
    let par = cells
        .iter()
        .find(|c| c.kernel == kernel && c.format == format && c.threads == threads)?;
    Some(serial.median_secs / par.median_secs)
}

/// JSON cell key used in the `speedup_vs_serial` map and in log lines.
fn cell_key(kernel: &str, format: Option<SpmvFormat>, threads: usize) -> String {
    match format {
        Some(f) => format!("{kernel}[{f}]@{threads}"),
        None => format!("{kernel}@{threads}"),
    }
}

fn write_json(
    cfg: &Config,
    a: &CsrMatrix,
    cells: &[Cell],
    gate: &GateResult,
    baseline: Option<&BaselineCmp>,
) -> String {
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"kernels\",");
    let _ = writeln!(
        out,
        "  \"problem\": {{ \"stencil\": \"poisson3d_7pt\", \"grid\": {}, \"nrows\": {}, \"nnz\": {} }},",
        cfg.grid,
        a.nrows(),
        a.nnz()
    );
    let _ = writeln!(out, "  \"s\": {},", cfg.s);
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(
        out,
        "  \"formats\": [{}],",
        cfg.formats
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "  \"knobs\": {{ \"spmv_chunk_nnz\": {}, \"gram_chunk_rows\": {}, \"sell_sigma\": {}, \"sym_chunk_nnz\": {} }},",
        knobs::spmv_chunk_nnz(),
        knobs::gram_chunk_rows(),
        knobs::sell_sigma(),
        knobs::sym_chunk_nnz()
    );
    let _ = writeln!(out, "  \"results\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let fmt_field = match c.format {
            Some(f) => format!("\"format\": \"{f}\", "),
            None => String::new(),
        };
        let traffic = match (c.bytes_per_nnz, c.model_bytes_per_nnz) {
            (Some(b), Some(m)) => {
                format!(", \"bytes_per_nnz\": {b:.2}, \"model_bytes_per_nnz\": {m:.2}")
            }
            (Some(b), None) => format!(", \"bytes_per_nnz\": {b:.2}"),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "    {{ \"kernel\": \"{}\", {}\"threads\": {}, \"median_secs\": {:.6e}, \"gflops\": {:.4}{} }}{comma}",
            c.kernel, fmt_field, c.threads, c.median_secs, c.gflops, traffic
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"speedup_vs_serial\": {{");
    let tmax = *cfg.threads.iter().max().unwrap();
    let mut keys: Vec<(String, Option<f64>)> = Vec::new();
    for &f in &cfg.formats {
        keys.push((
            cell_key("spmv", Some(f), tmax),
            speedup(cells, "spmv", Some(f), tmax),
        ));
    }
    for k in ["gram", "fused_update"] {
        keys.push((cell_key(k, None, tmax), speedup(cells, k, None, tmax)));
    }
    for (i, (key, sp)) in keys.iter().enumerate() {
        let comma = if i + 1 < keys.len() { "," } else { "" };
        match sp {
            Some(sp) => {
                let _ = writeln!(out, "    \"{key}\": {sp:.3}{comma}");
            }
            None => {
                let _ = writeln!(out, "    \"{key}\": null{comma}");
            }
        }
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(
        out,
        "  \"check\": {{ \"enforced\": {}, \"passed\": {}, \"min_speedup\": {}, \"detail\": \"{}\" }}{}",
        gate.enforced,
        gate.passed.map_or("null".to_string(), |p| p.to_string()),
        cfg.min_speedup,
        gate.detail,
        if baseline.is_some() { "," } else { "" }
    );
    if let Some(b) = baseline {
        let _ = writeln!(out, "  \"baseline\": {{");
        let _ = writeln!(out, "    \"path\": \"{}\",", b.path);
        let _ = writeln!(out, "    \"compared\": {},", b.compared);
        let _ = writeln!(out, "    \"skipped\": {},", b.skipped);
        let _ = writeln!(out, "    \"deltas_pct\": {{");
        for (i, (key, pct)) in b.deltas.iter().enumerate() {
            let comma = if i + 1 < b.deltas.len() { "," } else { "" };
            let _ = writeln!(out, "      \"{key}\": {pct:.1}{comma}");
        }
        let _ = writeln!(out, "    }},");
        let _ = writeln!(
            out,
            "    \"regressions\": [{}],",
            b.regressions
                .iter()
                .map(|r| format!("\"{r}\""))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(out, "    \"passed\": {}", b.regressions.is_empty());
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

struct GateResult {
    enforced: bool,
    passed: Option<bool>,
    detail: String,
}

/// The perf-smoke gate: SpMV at the top thread count must reach the
/// required speedup over serial for *every* measured format — enforced
/// only when the host can actually run that many lanes.
fn evaluate_gate(cfg: &Config, cells: &[Cell]) -> GateResult {
    let tmax = *cfg.threads.iter().max().unwrap();
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if tmax <= 1 {
        return GateResult {
            enforced: false,
            passed: None,
            detail: "single-threaded run, nothing to compare".into(),
        };
    }
    let mut report = Vec::new();
    let mut worst = f64::INFINITY;
    for &f in &cfg.formats {
        let Some(sp) = speedup(cells, "spmv", Some(f), tmax) else {
            return GateResult {
                enforced: false,
                passed: None,
                detail: format!("no serial baseline measured for spmv[{f}]"),
            };
        };
        worst = worst.min(sp);
        report.push(format!("{f} {sp:.3}"));
    }
    let detail = format!(
        "spmv speedups at {tmax} threads: {} (required >= {})",
        report.join(", "),
        cfg.min_speedup
    );
    if host_cores < tmax {
        return GateResult {
            enforced: false,
            passed: None,
            detail: format!("SKIPPED — host has {host_cores} core(s) < {tmax} threads; {detail}"),
        };
    }
    GateResult {
        enforced: true,
        passed: Some(worst >= cfg.min_speedup),
        detail,
    }
}

/// Outcome of the committed-baseline comparison (`--baseline`).
struct BaselineCmp {
    path: String,
    compared: usize,
    skipped: usize,
    /// `(cell key, GFLOP/s delta in percent vs the baseline)`.
    deltas: Vec<(String, f64)>,
    /// Human-readable lines for cells that dropped more than 20%.
    regressions: Vec<String>,
}

/// Extracts the value of `"key": ...` from a single-line JSON object as the
/// raw token (quotes stripped for strings). Robust only for the flat
/// one-object-per-line cells this tool itself writes — which is exactly
/// what the committed baseline is.
fn json_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next().map(str::to_string)
    } else {
        rest.split([',', '}']).next().map(|t| t.trim().to_string())
    }
}

/// Compares this run's cells against a committed baseline report: any
/// (kernel, format, threads) cell present in both whose GFLOP/s dropped
/// more than 20% is a regression. Baseline cells without a `format` field
/// (the pre-format schema) are matched against the plain-CSR cell. Cells
/// the host cannot genuinely run (threads > cores) are skipped with a log
/// line rather than compared against oversubscribed numbers.
fn compare_baseline(path: &str, cells: &[Cell]) -> BaselineCmp {
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--baseline {path}: {e}"));
    let mut cmp = BaselineCmp {
        path: path.to_string(),
        compared: 0,
        skipped: 0,
        deltas: Vec::new(),
        regressions: Vec::new(),
    };
    let Some(results_at) = text.find("\"results\"") else {
        println!("baseline: {path} has no results section; nothing to compare");
        return cmp;
    };
    for line in text[results_at..].lines() {
        if line.trim_start().starts_with(']') {
            break;
        }
        let Some(kernel) = json_field(line, "kernel") else {
            continue;
        };
        let Some(threads) = json_field(line, "threads").and_then(|t| t.parse::<usize>().ok())
        else {
            continue;
        };
        let Some(old_gflops) = json_field(line, "gflops").and_then(|g| g.parse::<f64>().ok())
        else {
            continue;
        };
        // Pre-format baselines carry no format field: their spmv cells
        // were plain CSR.
        let format = match json_field(line, "format") {
            Some(f) => SpmvFormat::parse(&f),
            None if kernel == "spmv" => Some(SpmvFormat::Csr),
            None => None,
        };
        let key = cell_key(&kernel, format, threads);
        let Some(new) = cells
            .iter()
            .find(|c| c.kernel == kernel && c.format == format && c.threads == threads)
        else {
            continue; // cell not measured in this run
        };
        if threads > host_cores {
            println!("baseline: SKIPPED {key} — host has {host_cores} core(s) < {threads} threads");
            cmp.skipped += 1;
            continue;
        }
        let pct = (new.gflops - old_gflops) / old_gflops * 100.0;
        cmp.deltas.push((key.clone(), pct));
        cmp.compared += 1;
        if new.gflops < 0.8 * old_gflops {
            cmp.regressions.push(format!(
                "{key}: {:.3} -> {:.3} GFLOP/s ({pct:.1}%)",
                old_gflops, new.gflops
            ));
        }
    }
    cmp
}

/// Sweeps the chunk knobs around the model suggestion plus the SpMV format
/// over every requested thread count, re-timing SpMV and Gram, and
/// prints/installs the empirical best.
fn tune(cfg: &Config, a: &mut CsrMatrix) {
    let n = a.nrows();
    let suggested = KernelTuning::for_problem(a.nnz(), cfg.s);
    println!(
        "\nmodel suggestion: threads = {}, spmv_chunk_nnz = {}, gram_chunk_rows = {}, format = {}",
        suggested.threads, suggested.spmv_chunk_nnz, suggested.gram_chunk_rows, suggested.format
    );
    let tmax = *cfg.threads.iter().max().unwrap();
    let pool = Pool::new(tmax);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
    let mut y = vec![0.0; n];

    let group = Group::new("tune_spmv_chunk_nnz");
    let mut best = (f64::INFINITY, 0usize);
    for shift in [14u32, 15, 16, 17] {
        let chunk = 1usize << shift;
        knobs::set_spmv_chunk_nnz(chunk);
        a.reset_par_rows();
        let m = group.bench_flops(
            &format!("nnz={chunk}"),
            a.nnz() as u64,
            2 * a.nnz() as u64,
            || {
                a.spmv_with(
                    &pool,
                    std::hint::black_box(&x),
                    std::hint::black_box(&mut y),
                )
            },
        );
        if m < best.0 {
            best = (m, chunk);
        }
    }
    println!("\nbest spmv_chunk_nnz: {}", best.1);
    knobs::set_spmv_chunk_nnz(best.1);
    a.reset_par_rows();

    // Format sweep: every requested format at every requested thread
    // count; the winner at the top thread count is installed.
    let mut best = (f64::INFINITY, SpmvFormat::Csr);
    for &t in &cfg.threads {
        let tpool = Pool::new(t);
        let group = Group::new(&format!("tune_spmv_format_t{t}"));
        for &fmt in &cfg.formats {
            set_spmv_format(fmt);
            let m = group.bench_flops(
                &format!("format={fmt}"),
                a.nnz() as u64,
                2 * a.nnz() as u64,
                || {
                    a.spmv_with(
                        &tpool,
                        std::hint::black_box(&x),
                        std::hint::black_box(&mut y),
                    )
                },
            );
            if t == tmax && m < best.0 {
                best = (m, fmt);
            }
        }
    }
    println!("\nbest spmv format at {tmax} thread(s): {}", best.1);
    set_spmv_format(best.1);

    let s = cfg.s;
    let cols: Vec<Vec<f64>> = (0..s)
        .map(|j| {
            (0..n)
                .map(|i| ((i * (j + 1)) as f64 * 0.01).cos())
                .collect()
        })
        .collect();
    let mv = MultiVector::from_columns(&cols.iter().map(|c| c.as_slice()).collect::<Vec<_>>());
    let group = Group::new("tune_gram_chunk_rows");
    let mut best = (f64::INFINITY, 0usize);
    for rows in [1024usize, 4096, 16384] {
        knobs::set_gram_chunk_rows(rows);
        let m = group.bench_flops(
            &format!("rows={rows}"),
            (s * s * n) as u64,
            (2 * s * s * n) as u64,
            || {
                std::hint::black_box(mv.gram_with(&pool, std::hint::black_box(&mv)));
            },
        );
        if m < best.0 {
            best = (m, rows);
        }
    }
    println!("\nbest gram_chunk_rows: {}", best.1);
    knobs::set_gram_chunk_rows(best.1);
    println!("\ninstalled tuning: {:?}", KernelTuning::current());
}

fn main() {
    let cfg = parse_args();
    println!(
        "# kernelbench — 7pt Poisson {0}³ ({1} threads), s = {2}, formats: {3}",
        cfg.grid,
        cfg.threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join("/"),
        cfg.s,
        cfg.formats
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("/")
    );
    let mut a = poisson3d_7pt(Grid3::cube(cfg.grid), None);
    println!("nrows = {}, nnz = {}", a.nrows(), a.nnz());

    if cfg.tune {
        tune(&cfg, &mut a);
    }

    if cfg.telemetry.is_some() {
        pscg_obs::set_enabled(true);
        pscg_obs::span::drain();
    }
    let pool_base = PoolStats::snapshot();
    let cells = bench_all(&cfg, &a);
    let pool_delta = PoolStats::snapshot().delta_since(&pool_base);
    if let Some(path) = &cfg.telemetry {
        pscg_obs::set_enabled(false);
        let spans = pscg_obs::span::drain();
        let trace = pscg_obs::export::chrome_trace(&spans);
        if let Err(e) = pscg_obs::export::validate_chrome_trace(&trace) {
            eprintln!("internal error: invalid Chrome trace: {e}");
            std::process::exit(1);
        }
        std::fs::write(path, &trace).expect("write telemetry trace");
        println!(
            "\nwrote {path} ({} spans; load in https://ui.perfetto.dev)",
            spans.records.len()
        );
    }
    // Measured vs cost-model SpMV traffic per format (traffic is
    // thread-count independent, so one row per format suffices).
    println!("\n| spmv format | measured B/nnz | model B/nnz | ratio |");
    println!("|---|---|---|---|");
    let t0 = cfg.threads[0];
    for c in cells
        .iter()
        .filter(|c| c.kernel == "spmv" && c.threads == t0)
    {
        let (Some(f), Some(b), Some(m)) = (c.format, c.bytes_per_nnz, c.model_bytes_per_nnz) else {
            continue;
        };
        println!("| {f} | {b:.2} | {m:.2} | {:.2} |", b / m);
    }

    let gate = evaluate_gate(&cfg, &cells);
    let baseline = cfg.baseline.as_deref().map(|p| compare_baseline(p, &cells));
    let json = write_json(&cfg, &a, &cells, &gate, baseline.as_ref());
    std::fs::write(&cfg.out, &json).expect("write bench report");
    println!("\nwrote {}", cfg.out);
    println!("pool: {pool_delta}");
    println!("gate: {}", gate.detail);
    if let Some(b) = &baseline {
        println!(
            "baseline: {} cell(s) compared, {} skipped, {} regression(s)",
            b.compared,
            b.skipped,
            b.regressions.len()
        );
        for r in &b.regressions {
            eprintln!("REGRESSION: {r}");
        }
    }

    let mut fail = false;
    if cfg.check && gate.enforced && gate.passed == Some(false) {
        eprintln!("FAIL: {}", gate.detail);
        fail = true;
    }
    if let Some(b) = &baseline {
        if !b.regressions.is_empty() {
            eprintln!(
                "FAIL: {} cell(s) regressed more than 20% vs {}",
                b.regressions.len(),
                b.path
            );
            fail = true;
        }
    }
    if fail {
        std::process::exit(1);
    }
}

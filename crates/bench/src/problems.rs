//! Problem construction for the reproduction experiments: matrices together
//! with their machine-model workload profiles.

use pscg_sim::{Layout, MatrixProfile};
use pscg_sparse::stencil::{poisson3d_125pt, Grid3};
use pscg_sparse::suitesparse::Surrogate;
use pscg_sparse::CsrMatrix;

use crate::scale::Scale;

/// A matrix, its profile and the metadata the reports need.
pub struct Problem {
    /// Display name.
    pub name: String,
    /// The operator.
    pub a: CsrMatrix,
    /// Workload profile for the replay engine.
    pub profile: MatrixProfile,
    /// The structured grid, when the problem has one (enables GMG).
    pub grid: Option<Grid3>,
    /// Relative tolerance the paper uses for this problem.
    pub rtol: f64,
}

impl Problem {
    /// The paper's b = A·x* with x* = 1 (§VI-A).
    pub fn rhs(&self) -> Vec<f64> {
        self.a.mul_vec(&vec![1.0; self.a.nrows()])
    }
}

/// The 125-pt 3-D Poisson problem (Figures 1, 3, 4, 5), DMDA box layout.
pub fn poisson125(scale: &Scale) -> Problem {
    let g = Grid3::cube(scale.poisson_n);
    let a = poisson3d_125pt(g);
    let nnz = a.nnz();
    Problem {
        name: format!("125-pt Poisson {}^3", scale.poisson_n),
        profile: MatrixProfile::stencil3d(g.nx, g.ny, g.nz, 2, nnz, Layout::Box),
        a,
        grid: Some(g),
        rtol: 1e-5,
    }
}

/// A SuiteSparse surrogate with its (MatAIJ row-block) profile.
pub fn surrogate(which: Surrogate, scale: &Scale) -> Problem {
    let a = which
        .generate_scaled(scale.surrogate_scale)
        .expect("Scale presets keep the surrogate scale in (0, 1]");
    let nnz = a.nnz();
    let n = a.nrows();
    // All three surrogates are grid-based generators; their slab profiles
    // follow the generating grid (see pscg_sparse::suitesparse).
    let profile = match which {
        Surrogate::Ecology2 => {
            // 2-D grid: rows are y-lines of length nx.
            let f = scale.surrogate_scale.sqrt();
            let nx = ((999.0 * f).round() as usize).max(3);
            let ny = n / nx;
            MatrixProfile::stencil2d(nx, ny, 1, nnz, Layout::Slab)
        }
        Surrogate::Thermal2 => {
            let c = (n as f64).cbrt().round() as usize;
            MatrixProfile::stencil3d(c, c, c, 1, nnz, Layout::Slab)
        }
        Surrogate::Serena => {
            let f = scale.surrogate_scale.cbrt();
            let nx = ((112.0 * f).round() as usize).max(5);
            let nz = n / (nx * nx);
            MatrixProfile::stencil3d(nx, nx, nz, 2, nnz, Layout::Slab)
        }
    };
    Problem {
        name: which.name().to_string(),
        a,
        profile,
        grid: None,
        rtol: 1e-5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_profile_matches_matrix() {
        let scale = Scale::ci();
        let p = poisson125(&scale);
        assert_eq!(p.a.nrows(), p.profile.nrows());
        assert_eq!(p.a.nnz(), p.profile.nnz());
        assert!(p.grid.is_some());
    }

    #[test]
    fn surrogate_profiles_match_matrices() {
        let scale = Scale::ci();
        for which in [Surrogate::Ecology2, Surrogate::Thermal2, Surrogate::Serena] {
            let p = surrogate(which, &scale);
            assert_eq!(p.a.nrows(), p.profile.nrows(), "{}", p.name);
            assert_eq!(p.a.nnz(), p.profile.nnz(), "{}", p.name);
        }
    }

    #[test]
    fn rhs_is_row_sums() {
        let p = poisson125(&Scale::ci());
        let b = p.rhs();
        assert_eq!(b.len(), p.a.nrows());
        // Dirichlet Laplacian: row sums are >= 0, positive on the boundary.
        assert!(b.iter().all(|&v| v > -1e-12));
        assert!(b.iter().any(|&v| v > 0.0));
    }
}

//! The perf-report analyzer: joins recorded telemetry with the cost model
//! and the declarative IR (DESIGN.md §13).
//!
//! `pscg-obs`'s `attribution` module is deliberately numeric — it joins
//! span kinds with plain per-call FLOP/byte figures. This module is the
//! glue it cannot be (the dependency DAG puts the cost model upstream of
//! the telemetry crate): [`models_for`] derives those per-call figures for
//! one method from `pscg_ir::costs::body_cost` node metadata and
//! `pipescg::costmodel::spmv_model_bytes`, [`method_perf`] runs the join
//! over one solve's spans + metrics, and [`PerfReport`] carries the
//! per-method results through JSON/markdown rendering, reparsing, and the
//! [`check`] regression gate the CI job runs against a committed baseline.

use std::fmt::Write as _;
use std::path::Path;

use pipescg::costmodel;
use pipescg::methods::MethodKind;
use pscg_obs::attribution::{attribute, window_stats, KernelModel};
use pscg_obs::json::{parse as parse_json, Json};
use pscg_obs::metrics::SolveTelemetry;
use pscg_obs::span::{SpanKind, SpanRecord, SpanSet};
use pscg_sparse::SpmvFormat;

/// Modelled SpMV traffic per stored entry, for reporting next to a
/// measured `bytes_per_nnz` (kernelbench prints both).
pub fn spmv_model_bytes_per_nnz(format: SpmvFormat, nnz: f64, rows: f64) -> f64 {
    if nnz <= 0.0 {
        return 0.0;
    }
    costmodel::spmv_model_bytes(format, nnz, rows) / nnz
}

/// Resolves a method name as printed by `MethodKind::name` (the spelling
/// used in every telemetry artifact) back to its kind.
pub fn method_by_name(name: &str) -> Option<MethodKind> {
    const ALL: [MethodKind; 11] = [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ];
    ALL.into_iter().find(|m| m.name() == name)
}

/// Derives per-invocation kernel models for one method from its IR body
/// cost and the SpMV/preconditioner cost models.
///
/// The IR's `Dot` nodes price both the recorded `dot` spans (classic
/// methods) and the `gram` spans (s-step methods) — the solvers label the
/// same `LocalKind::Dot` work differently, so both span kinds get the
/// body-average dot cost. Per-call figures are body-pass averages: total
/// modelled work of that kind in one pass divided by its node count.
pub fn models_for(
    method: MethodKind,
    s: usize,
    format: SpmvFormat,
    nrows: usize,
    nnz: usize,
    pc_flops_per_row: f64,
    pc_bytes_per_row: f64,
) -> Vec<KernelModel> {
    let cost = pscg_ir::costs::body_cost(&pscg_ir::method_ir(method, s));
    let (rows, nnzf) = (nrows as f64, nnz as f64);
    let spmv_flops = 2.0 * nnzf;
    let spmv_bytes = costmodel::spmv_model_bytes(format, nnzf, rows);
    let mut models = vec![
        KernelModel {
            kind: SpanKind::Spmv,
            flops_per_call: spmv_flops,
            bytes_per_call: spmv_bytes,
        },
        KernelModel {
            kind: SpanKind::Pc,
            flops_per_call: pc_flops_per_row * rows,
            bytes_per_call: pc_bytes_per_row * rows,
        },
    ];
    if cost.mpks > 0 {
        let depth = cost.mpk_depth_total as f64 / cost.mpks as f64;
        models.push(KernelModel {
            kind: SpanKind::Mpk,
            flops_per_call: depth * spmv_flops,
            bytes_per_call: depth * spmv_bytes,
        });
    }
    if cost.dots > 0 {
        let dot = KernelModel {
            kind: SpanKind::Dot,
            flops_per_call: cost.dot_flops_per_row / cost.dots as f64 * rows,
            bytes_per_call: cost.dot_bytes_per_row / cost.dots as f64 * rows,
        };
        models.push(KernelModel {
            kind: SpanKind::Gram,
            ..dot
        });
        models.push(dot);
    }
    if cost.combines > 0 {
        models.push(KernelModel {
            kind: SpanKind::Combine,
            flops_per_call: cost.combine_flops_per_row / cost.combines as f64 * rows,
            bytes_per_call: cost.combine_bytes_per_row / cost.combines as f64 * rows,
        });
    }
    models
}

/// One kernel row of the report: measured time joined with modelled work.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRow {
    /// Span kind name (`spmv`, `pc`, …).
    pub kind: String,
    /// Measured invocations.
    pub count: u64,
    /// Measured total duration (ns).
    pub total_ns: u64,
    /// Modelled FLOPs across all invocations.
    pub model_flops: f64,
    /// Modelled bytes across all invocations.
    pub model_bytes: f64,
}

impl KernelRow {
    /// Achieved GFLOP/s (model FLOPs over measured ns).
    pub fn gflops(&self) -> f64 {
        self.model_flops / self.total_ns as f64
    }

    /// Achieved GB/s under the model's traffic assumption.
    pub fn gbps(&self) -> f64 {
        self.model_bytes / self.total_ns as f64
    }
}

/// Overlap quality of one method's solve: the measured per-window fill
/// next to what the IR's static capacity report says *could* be hidden.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapRow {
    /// Post→wait windows observed.
    pub windows: u64,
    /// Total window time (ns).
    pub window_ns: u64,
    /// Kernel time inside windows (ns).
    pub kernel_in_window_ns: u64,
    /// Worst single window's fill ratio.
    pub min_ratio: f64,
    /// Unweighted mean fill ratio.
    pub mean_ratio: f64,
    /// Static overlap capacity per the IR, one entry per window tag
    /// (`"[gram] 1 SpMV + 1 PC + 2 local"`).
    pub capacity: Vec<String>,
}

impl OverlapRow {
    /// Time-weighted achieved overlap.
    pub fn achieved(&self) -> f64 {
        if self.window_ns == 0 {
            return f64::NAN;
        }
        self.kernel_in_window_ns as f64 / self.window_ns as f64
    }
}

/// The full attribution of one method's solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodPerf {
    /// Method name (`MethodKind::name` spelling).
    pub method: String,
    /// s-step block size of the solve.
    pub s: u64,
    /// CG iterations performed.
    pub iterations: u64,
    /// Wall time of the solve (ns).
    pub wall_ns: u64,
    /// Active SpMV storage format.
    pub spmv_format: String,
    /// Modelled SpMV traffic per stored entry under that format.
    pub spmv_model_bytes_per_nnz: f64,
    /// Kernel attribution rows (kinds with no recorded spans omitted).
    pub kernels: Vec<KernelRow>,
    /// Overlap quality; `None` for methods with no post→wait windows.
    pub overlap: Option<OverlapRow>,
}

impl MethodPerf {
    /// The row for one kernel kind, when recorded.
    pub fn kernel(&self, kind: &str) -> Option<&KernelRow> {
        self.kernels.iter().find(|k| k.kind == kind)
    }
}

/// The whole report: one entry per method.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfReport {
    /// Per-method attributions, in sweep order.
    pub methods: Vec<MethodPerf>,
}

/// Builds one method's attribution from an in-memory span set and
/// telemetry stream (the `repro --perf-report` path; the binary's
/// file-based path is [`from_dir`]).
pub fn method_perf(method: MethodKind, spans: &SpanSet, tel: &SolveTelemetry) -> MethodPerf {
    let meta = &tel.meta;
    let format = SpmvFormat::parse(meta.spmv_format).unwrap_or(SpmvFormat::Csr);
    let models = models_for(
        method,
        meta.s,
        format,
        meta.nrows,
        meta.nnz,
        meta.pc_flops_per_row,
        meta.pc_bytes_per_row,
    );
    let kernels = attribute(spans, &models)
        .into_iter()
        .map(|a| KernelRow {
            kind: a.kind.name().to_string(),
            count: a.count as u64,
            total_ns: a.total_ns,
            model_flops: a.model_flops,
            model_bytes: a.model_bytes,
        })
        .collect();
    let overlap = window_stats(spans).map(|w| OverlapRow {
        windows: w.windows as u64,
        window_ns: w.window_ns,
        kernel_in_window_ns: w.kernel_in_window_ns,
        min_ratio: w.min_ratio,
        mean_ratio: w.mean_ratio,
        capacity: overlap_capacity(method, meta.s),
    });
    MethodPerf {
        method: method.name().to_string(),
        s: meta.s as u64,
        iterations: tel.finish.iterations as u64,
        wall_ns: tel.finish.wall_ns,
        spmv_format: meta.spmv_format.to_string(),
        spmv_model_bytes_per_nnz: meta.spmv_model_bytes_per_nnz,
        kernels,
        overlap,
    }
}

/// The IR's static overlap-capacity report, rendered one line per window.
fn overlap_capacity(method: MethodKind, s: usize) -> Vec<String> {
    pscg_ir::overlap::report(&pscg_ir::method_ir(method, s))
        .iter()
        .map(|c| {
            format!(
                "[{}] {} SpMV + {} PC + {} local",
                c.tag, c.spmvs, c.pcs, c.locals
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// File ingestion (the perf-report binary's path)
// ---------------------------------------------------------------------------

/// Reconstructs a [`SpanSet`] from an exported Chrome trace document.
/// Unknown event names (e.g. foreign metadata) are skipped; timestamps
/// are the format's microseconds, converted back to integer ns.
pub fn spans_from_trace(text: &str) -> Result<SpanSet, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace without traceEvents")?;
    let mut set = SpanSet::default();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let Some(kind) = ev
            .get("name")
            .and_then(Json::as_str)
            .and_then(SpanKind::parse)
        else {
            continue;
        };
        let ts = ev.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
        let dur = ev.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
        set.records.push(SpanRecord {
            kind,
            arg: ev
                .get("args")
                .and_then(|a| a.get("arg"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64,
            start_ns: (ts * 1e3).round() as u64,
            dur_ns: (dur * 1e3).round() as u64,
            tid: ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        });
    }
    Ok(set)
}

/// The subset of a metrics stream the analyzer needs, parsed from a
/// `.metrics.jsonl` file.
struct StreamSummary {
    method: String,
    s: u64,
    nrows: usize,
    nnz: usize,
    spmv_format: String,
    spmv_model_bytes_per_nnz: f64,
    pc_flops_per_row: f64,
    pc_bytes_per_row: f64,
    iterations: u64,
    wall_ns: u64,
}

fn parse_stream(text: &str) -> Result<StreamSummary, String> {
    let mut meta: Option<StreamSummary> = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match doc.get("type").and_then(Json::as_str) {
            Some("meta") => {
                let str_of = |key: &str| {
                    doc.get(key)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or(format!("meta without {key}"))
                };
                let num_of = |key: &str| doc.get(key).and_then(Json::as_f64).unwrap_or(0.0);
                meta = Some(StreamSummary {
                    method: str_of("method")?,
                    s: num_of("s") as u64,
                    nrows: num_of("nrows") as usize,
                    nnz: num_of("nnz") as usize,
                    spmv_format: str_of("spmv_format")?,
                    spmv_model_bytes_per_nnz: num_of("spmv_model_bytes_per_nnz"),
                    pc_flops_per_row: num_of("pc_flops_per_row"),
                    pc_bytes_per_row: num_of("pc_bytes_per_row"),
                    iterations: 0,
                    wall_ns: 0,
                });
            }
            Some("finish") => {
                let m = meta.as_mut().ok_or("finish before meta")?;
                m.iterations = doc.get("iterations").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                m.wall_ns = doc.get("wall_ns").and_then(Json::as_f64).unwrap_or(0.0) as u64;
            }
            _ => {}
        }
    }
    meta.ok_or_else(|| "no meta line".to_string())
}

/// Builds a report from a telemetry directory: every `<slug>.metrics.jsonl`
/// with a sibling `<slug>.trace.json` contributes one method entry.
pub fn from_dir(dir: &Path) -> Result<PerfReport, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut stems: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            name.strip_suffix(".metrics.jsonl").map(str::to_string)
        })
        .collect();
    stems.sort();
    if stems.is_empty() {
        return Err(format!("no *.metrics.jsonl files in {}", dir.display()));
    }
    let mut report = PerfReport::default();
    for stem in stems {
        let jsonl_path = dir.join(format!("{stem}.metrics.jsonl"));
        let trace_path = dir.join(format!("{stem}.trace.json"));
        let jsonl = std::fs::read_to_string(&jsonl_path)
            .map_err(|e| format!("read {}: {e}", jsonl_path.display()))?;
        let trace = std::fs::read_to_string(&trace_path)
            .map_err(|e| format!("read {}: {e}", trace_path.display()))?;
        let stream = parse_stream(&jsonl).map_err(|e| format!("{}: {e}", jsonl_path.display()))?;
        let spans =
            spans_from_trace(&trace).map_err(|e| format!("{}: {e}", trace_path.display()))?;
        let method = method_by_name(&stream.method).ok_or(format!(
            "{}: unknown method '{}'",
            jsonl_path.display(),
            stream.method
        ))?;
        let format = SpmvFormat::parse(&stream.spmv_format).unwrap_or(SpmvFormat::Csr);
        let models = models_for(
            method,
            stream.s as usize,
            format,
            stream.nrows,
            stream.nnz,
            stream.pc_flops_per_row,
            stream.pc_bytes_per_row,
        );
        let kernels = attribute(&spans, &models)
            .into_iter()
            .map(|a| KernelRow {
                kind: a.kind.name().to_string(),
                count: a.count as u64,
                total_ns: a.total_ns,
                model_flops: a.model_flops,
                model_bytes: a.model_bytes,
            })
            .collect();
        let overlap = window_stats(&spans).map(|w| OverlapRow {
            windows: w.windows as u64,
            window_ns: w.window_ns,
            kernel_in_window_ns: w.kernel_in_window_ns,
            min_ratio: w.min_ratio,
            mean_ratio: w.mean_ratio,
            capacity: overlap_capacity(method, stream.s as usize),
        });
        report.methods.push(MethodPerf {
            method: stream.method,
            s: stream.s,
            iterations: stream.iterations,
            wall_ns: stream.wall_ns,
            spmv_format: stream.spmv_format,
            spmv_model_bytes_per_nnz: stream.spmv_model_bytes_per_nnz,
            kernels,
            overlap,
        });
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Rendering and reparsing
// ---------------------------------------------------------------------------

fn push_jstr(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 || (c as u32) >= 0x7f => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    let _ = write!(out, "\\u{unit:04x}");
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_jnum(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Renders the report as JSON (the `results/perf_report.json` artifact and
/// the `--check` baseline format).
pub fn render_json(report: &PerfReport) -> String {
    let mut out = String::from("{\"type\":\"perf_report\",\"methods\":[");
    for (i, m) in report.methods.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"method\":");
        push_jstr(&mut out, &m.method);
        let _ = write!(
            out,
            ",\"s\":{},\"iterations\":{},\"wall_ns\":{},\"spmv_format\":",
            m.s, m.iterations, m.wall_ns
        );
        push_jstr(&mut out, &m.spmv_format);
        out.push_str(",\"spmv_model_bytes_per_nnz\":");
        push_jnum(&mut out, m.spmv_model_bytes_per_nnz);
        out.push_str(",\"kernels\":[");
        for (j, k) in m.kernels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"kind\":");
            push_jstr(&mut out, &k.kind);
            let _ = write!(out, ",\"count\":{},\"total_ns\":{}", k.count, k.total_ns);
            out.push_str(",\"model_flops\":");
            push_jnum(&mut out, k.model_flops);
            out.push_str(",\"model_bytes\":");
            push_jnum(&mut out, k.model_bytes);
            out.push_str(",\"gflops\":");
            push_jnum(&mut out, k.gflops());
            out.push_str(",\"gbps\":");
            push_jnum(&mut out, k.gbps());
            out.push('}');
        }
        out.push_str("],\"overlap\":");
        match &m.overlap {
            None => out.push_str("null"),
            Some(o) => {
                let _ = write!(
                    out,
                    "{{\"windows\":{},\"window_ns\":{},\"kernel_in_window_ns\":{}",
                    o.windows, o.window_ns, o.kernel_in_window_ns
                );
                out.push_str(",\"min_ratio\":");
                push_jnum(&mut out, o.min_ratio);
                out.push_str(",\"mean_ratio\":");
                push_jnum(&mut out, o.mean_ratio);
                out.push_str(",\"achieved\":");
                push_jnum(&mut out, o.achieved());
                out.push_str(",\"capacity\":[");
                for (j, c) in o.capacity.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    push_jstr(&mut out, c);
                }
                out.push_str("]}");
            }
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Parses a document produced by [`render_json`] (derived fields like
/// `gflops` are recomputed, not trusted).
pub fn parse_report(text: &str) -> Result<PerfReport, String> {
    let doc = parse_json(text)?;
    if doc.get("type").and_then(Json::as_str) != Some("perf_report") {
        return Err("type is not 'perf_report'".into());
    }
    let methods = doc
        .get("methods")
        .and_then(Json::as_arr)
        .ok_or("missing methods array")?;
    let mut report = PerfReport::default();
    for (i, m) in methods.iter().enumerate() {
        let str_of = |key: &str| {
            m.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("method {i}: missing {key}"))
        };
        let num_of = |key: &str| m.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let kernels = m
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or(format!("method {i}: missing kernels"))?
            .iter()
            .enumerate()
            .map(|(j, k)| {
                let kind = k
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or(format!("method {i} kernel {j}: missing kind"))?;
                if SpanKind::parse(kind).is_none() {
                    return Err(format!("method {i} kernel {j}: unknown kind '{kind}'"));
                }
                let knum = |key: &str| {
                    k.get(key)
                        .and_then(Json::as_f64)
                        .ok_or(format!("method {i} kernel {j}: missing {key}"))
                };
                Ok(KernelRow {
                    kind: kind.to_string(),
                    count: knum("count")? as u64,
                    total_ns: knum("total_ns")? as u64,
                    model_flops: knum("model_flops")?,
                    model_bytes: knum("model_bytes")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let overlap = match m.get("overlap") {
            None | Some(Json::Null) => None,
            Some(o) => Some(OverlapRow {
                windows: o.get("windows").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                window_ns: o.get("window_ns").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                kernel_in_window_ns: o
                    .get("kernel_in_window_ns")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as u64,
                min_ratio: o
                    .get("min_ratio")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
                mean_ratio: o
                    .get("mean_ratio")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
                capacity: o
                    .get("capacity")
                    .and_then(Json::as_arr)
                    .map(|a| {
                        a.iter()
                            .filter_map(|c| c.as_str().map(str::to_string))
                            .collect()
                    })
                    .unwrap_or_default(),
            }),
        };
        report.methods.push(MethodPerf {
            method: str_of("method")?,
            s: num_of("s") as u64,
            iterations: num_of("iterations") as u64,
            wall_ns: num_of("wall_ns") as u64,
            spmv_format: str_of("spmv_format")?,
            spmv_model_bytes_per_nnz: num_of("spmv_model_bytes_per_nnz"),
            kernels,
            overlap,
        });
    }
    Ok(report)
}

/// Renders the report as markdown (the `results/perf_report.md` artifact).
pub fn render_md(report: &PerfReport) -> String {
    let mut out = String::from("# Perf report: roofline attribution\n\n");
    out.push_str(
        "Achieved figures follow the roofline convention: modelled work \
         over measured time (see DESIGN.md §13).\n\n",
    );
    out.push_str("| method | s | iters | kernel | calls | total ms | GFLOP/s | GB/s |\n");
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for m in &report.methods {
        for k in &m.kernels {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {:.3} | {:.3} | {:.3} |",
                m.method,
                m.s,
                m.iterations,
                k.kind,
                k.count,
                k.total_ns as f64 / 1e6,
                k.gflops(),
                k.gbps(),
            );
        }
    }
    out.push_str("\n## Overlap\n\n");
    out.push_str("| method | windows | achieved | min | mean | static capacity |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for m in &report.methods {
        let Some(o) = &m.overlap else { continue };
        let _ = writeln!(
            out,
            "| {} | {} | {:.3} | {:.3} | {:.3} | {} |",
            m.method,
            o.windows,
            o.achieved(),
            o.min_ratio,
            o.mean_ratio,
            if o.capacity.is_empty() {
                "—".to_string()
            } else {
                o.capacity.join("; ")
            },
        );
    }
    for m in &report.methods {
        let _ = writeln!(
            out,
            "\n`{}`: format {} — model {:.2} B/nnz",
            m.method, m.spmv_format, m.spmv_model_bytes_per_nnz
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

/// Compares `current` against `baseline`: any method present in the
/// baseline whose SpMV/MPK achieved bandwidth or achieved overlap dropped
/// by more than `tolerance` (relative), or which disappeared entirely,
/// yields one failure message. An empty result means the gate passes.
pub fn check(current: &PerfReport, baseline: &PerfReport, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for base in &baseline.methods {
        let Some(cur) = current.methods.iter().find(|m| m.method == base.method) else {
            failures.push(format!("{}: missing from current report", base.method));
            continue;
        };
        for kind in ["spmv", "mpk"] {
            let (Some(b), Some(c)) = (base.kernel(kind), cur.kernel(kind)) else {
                continue;
            };
            let (bw_base, bw_cur) = (b.gbps(), c.gbps());
            if bw_base > 0.0 && bw_cur < bw_base * (1.0 - tolerance) {
                failures.push(format!(
                    "{}: {kind} achieved bandwidth regressed {:.3} → {:.3} GB/s \
                     ({:.0}% drop > {:.0}% tolerance)",
                    base.method,
                    bw_base,
                    bw_cur,
                    (1.0 - bw_cur / bw_base) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
        if let (Some(bo), Some(co)) = (&base.overlap, &cur.overlap) {
            let (ov_base, ov_cur) = (bo.achieved(), co.achieved());
            if ov_base.is_finite() && ov_base > 0.0 && ov_cur < ov_base * (1.0 - tolerance) {
                failures.push(format!(
                    "{}: achieved overlap regressed {:.3} → {:.3} \
                     ({:.0}% drop > {:.0}% tolerance)",
                    base.method,
                    ov_base,
                    ov_cur,
                    (1.0 - ov_cur / ov_base) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PerfReport {
        PerfReport {
            methods: vec![MethodPerf {
                method: "PIPE-PsCG".into(),
                s: 4,
                iterations: 32,
                wall_ns: 5_000_000,
                spmv_format: "csr".into(),
                spmv_model_bytes_per_nnz: 14.4,
                kernels: vec![
                    KernelRow {
                        kind: "spmv".into(),
                        count: 40,
                        total_ns: 400_000,
                        model_flops: 4.0e6,
                        model_bytes: 2.4e7,
                    },
                    KernelRow {
                        kind: "pc".into(),
                        count: 40,
                        total_ns: 100_000,
                        model_flops: 5.0e5,
                        model_bytes: 1.2e7,
                    },
                ],
                overlap: Some(OverlapRow {
                    windows: 8,
                    window_ns: 800_000,
                    kernel_in_window_ns: 600_000,
                    min_ratio: 0.4,
                    mean_ratio: 0.7,
                    capacity: vec!["[gram] 1 SpMV + 1 PC + 2 local".into()],
                }),
            }],
        }
    }

    #[test]
    fn report_json_roundtrips() {
        let report = sample_report();
        let text = render_json(&report);
        let back = parse_report(&text).expect("reparses");
        assert_eq!(report, back);
        let md = render_md(&report);
        assert!(md.contains("PIPE-PsCG"));
        assert!(md.contains("| spmv | 40 |"));
    }

    #[test]
    fn parse_report_rejects_unknown_kernel_kinds() {
        let text = render_json(&sample_report()).replace("\"kind\":\"spmv\"", "\"kind\":\"warp\"");
        assert!(parse_report(&text).is_err());
    }

    #[test]
    fn check_passes_identical_and_fails_degraded() {
        let base = sample_report();
        assert!(check(&base, &base, 0.2).is_empty());

        // Synthetic degradation: SpMV 50% slower → bandwidth drops 33%.
        let mut slow = base.clone();
        slow.methods[0].kernels[0].total_ns = 600_000;
        let failures = check(&slow, &base, 0.2);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("spmv achieved bandwidth regressed"));

        // Overlap degradation alone is also caught.
        let mut unhidden = base.clone();
        unhidden.methods[0]
            .overlap
            .as_mut()
            .unwrap()
            .kernel_in_window_ns = 100_000;
        let failures = check(&unhidden, &base, 0.2);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("achieved overlap regressed"));

        // A missing method is a coverage regression.
        let empty = PerfReport::default();
        assert_eq!(check(&empty, &base, 0.2).len(), 1);

        // Within tolerance passes.
        let mut slight = base.clone();
        slight.methods[0].kernels[0].total_ns = 440_000; // 10% slower
        assert!(check(&slight, &base, 0.2).is_empty());
    }

    #[test]
    fn models_price_the_spmv_and_pc_from_the_meta() {
        let models = models_for(MethodKind::Pcg, 1, SpmvFormat::Csr, 1000, 6400, 1.0, 24.0);
        let spmv = models.iter().find(|m| m.kind == SpanKind::Spmv).unwrap();
        assert_eq!(spmv.flops_per_call, 2.0 * 6400.0);
        assert_eq!(spmv.bytes_per_call, 12.0 * 6400.0 + 16.0 * 1000.0);
        let pc = models.iter().find(|m| m.kind == SpanKind::Pc).unwrap();
        assert_eq!(pc.flops_per_call, 1000.0);
        assert_eq!(pc.bytes_per_call, 24000.0);
        let dot = models.iter().find(|m| m.kind == SpanKind::Dot).unwrap();
        assert!(dot.bytes_per_call > 0.0, "PCG's IR declares dot traffic");
        // Gram gets the same body-average dot cost.
        let gram = models.iter().find(|m| m.kind == SpanKind::Gram).unwrap();
        assert_eq!(gram.flops_per_call, dot.flops_per_call);
    }

    #[test]
    fn spans_from_trace_reconstructs_kernel_records() {
        let set = SpanSet {
            records: vec![
                SpanRecord {
                    kind: SpanKind::Spmv,
                    arg: 1,
                    start_ns: 1500,
                    dur_ns: 2500,
                    tid: 3,
                },
                SpanRecord {
                    kind: SpanKind::ArWindow,
                    arg: 0,
                    start_ns: 1000,
                    dur_ns: 4000,
                    tid: 3,
                },
            ],
            dropped: 0,
        };
        let text = pscg_obs::export::chrome_trace(&set);
        let back = spans_from_trace(&text).expect("parses");
        assert_eq!(back.records, set.records);
    }

    #[test]
    fn model_bytes_per_nnz_matches_the_cost_model() {
        let v = spmv_model_bytes_per_nnz(SpmvFormat::Csr, 6400.0, 1000.0);
        assert!((v - (12.0 + 16.0 * 1000.0 / 6400.0)).abs() < 1e-12);
        assert_eq!(spmv_model_bytes_per_nnz(SpmvFormat::Csr, 0.0, 10.0), 0.0);
    }
}

//! Problem-scale presets for the reproduction runs.

/// A reproduction scale (see crate docs for the table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Preset name.
    pub name: &'static str,
    /// Cube edge of the 125-pt Poisson problem (paper: 100 → 1M unknowns).
    pub poisson_n: usize,
    /// Linear scale factor applied to the SuiteSparse surrogates.
    pub surrogate_scale: f64,
    /// Cap on CG steps (safety for the hard problems at small scales).
    pub max_iters: usize,
}

impl Scale {
    /// Tiny smoke-test scale.
    pub fn ci() -> Scale {
        Scale {
            name: "ci",
            poisson_n: 24,
            surrogate_scale: 0.005,
            max_iters: 20_000,
        }
    }

    /// Default scale: full behaviour in minutes.
    pub fn small() -> Scale {
        Scale {
            name: "small",
            poisson_n: 64,
            surrogate_scale: 0.1,
            max_iters: 50_000,
        }
    }

    /// The paper's exact problem sizes.
    pub fn paper() -> Scale {
        Scale {
            name: "paper",
            poisson_n: 100,
            surrogate_scale: 1.0,
            max_iters: 100_000,
        }
    }

    /// Reads `PSCG_SCALE` (`ci` | `small` | `paper`), defaulting to `small`.
    pub fn from_env() -> Scale {
        match std::env::var("PSCG_SCALE").as_deref() {
            Ok("ci") => Scale::ci(),
            Ok("paper") => Scale::paper(),
            Ok("small") | Err(_) => Scale::small(),
            Ok(other) => {
                eprintln!("unknown PSCG_SCALE '{other}', using 'small'");
                Scale::small()
            }
        }
    }

    /// The node counts of the strong-scaling sweeps (the paper plots up to
    /// 120 nodes in Figures 1–2 and 140 in Figure 3).
    pub fn node_sweep(max_nodes: usize) -> Vec<usize> {
        [1, 10, 20, 30, 40, 50, 60, 70, 80, 100, 120, 140]
            .into_iter()
            .filter(|&n| n <= max_nodes)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        assert!(Scale::ci().poisson_n < Scale::small().poisson_n);
        assert!(Scale::small().poisson_n < Scale::paper().poisson_n);
        assert_eq!(Scale::paper().poisson_n, 100, "paper uses 1M unknowns");
    }

    #[test]
    fn node_sweep_caps_at_max() {
        assert_eq!(Scale::node_sweep(40), vec![1, 10, 20, 30, 40]);
        assert_eq!(Scale::node_sweep(140).last(), Some(&140));
    }
}

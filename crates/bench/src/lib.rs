//! Benchmark and paper-figure reproduction harness.
//!
//! Every table and figure of the paper's evaluation (§VI) has a runner in
//! [`experiments`]; the `repro` binary and the `figures` bench target drive
//! them and write CSV + markdown into `results/`. The problem scale is
//! selected with the `PSCG_SCALE` environment variable:
//!
//! | value | 125-pt grid | surrogate scale | purpose |
//! |---|---|---|---|
//! | `ci` | 24³ ≈ 14k | 0.5 % | smoke runs, integration tests |
//! | `small` (default) | 64³ ≈ 262k | 10 % | minutes-scale full reproduction |
//! | `paper` | 100³ = 1M | 100 % | the paper's exact sizes |
//!
//! Numerics run once per method (they are rank-count independent); the
//! machine-model replay then produces the whole scaling curve, so even the
//! `paper` scale is tractable on one core.

#![warn(missing_docs)]

pub mod experiments;
pub mod microbench;
pub mod perf_report;
pub mod problems;
pub mod report;
pub mod scale;

pub use report::Report;
pub use scale::Scale;

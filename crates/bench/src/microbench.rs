//! A minimal wall-clock micro-benchmark harness.
//!
//! The offline build environment has no access to crates.io, so the bench
//! targets cannot use criterion. This module provides the small subset the
//! repo needs: per-iteration timing with warmup, median-of-samples
//! reporting, and optional element throughput — enough to compare kernels
//! and whole solves run to run. Output is one markdown-ish line per case so
//! `cargo bench` logs diff cleanly.

use std::time::Instant;

/// Number of timed samples per case.
const SAMPLES: usize = 7;

/// One benchmark group, printed as a markdown table section.
pub struct Group {
    name: String,
    /// Minimum time to spend per sample, seconds.
    sample_seconds: f64,
}

impl Group {
    /// Starts a group and prints its header.
    pub fn new(name: &str) -> Self {
        println!("\n## {name}\n");
        println!("| case | median | per-elem | GFLOP/s | iters/sample |");
        println!("|---|---|---|---|---|");
        Group {
            name: name.to_string(),
            sample_seconds: 0.05,
        }
    }

    /// Overrides the per-sample time budget (default 50 ms).
    pub fn sample_seconds(mut self, secs: f64) -> Self {
        self.sample_seconds = secs;
        self
    }

    /// Times `f`, printing a row. `elements` scales the per-element column
    /// (pass 0 to omit it).
    pub fn bench<F: FnMut()>(&self, case: &str, elements: u64, f: F) {
        self.bench_flops(case, elements, 0, f);
    }

    /// Times `f`, printing a row including throughput for a known per-call
    /// FLOP count (pass 0 to omit the GFLOP/s column). Returns the median
    /// seconds per call so callers can derive speedups and reports.
    pub fn bench_flops<F: FnMut()>(&self, case: &str, elements: u64, flops: u64, mut f: F) -> f64 {
        // Warmup + calibration: find an iteration count filling the budget.
        let t0 = Instant::now();
        f();
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((self.sample_seconds / once).ceil() as usize).clamp(1, 1_000_000);

        let mut samples = [0.0f64; SAMPLES];
        for s in samples.iter_mut() {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            *s = t.elapsed().as_secs_f64() / iters as f64;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[SAMPLES / 2];
        let per_elem = if elements > 0 {
            format!("{:.3} ns", median * 1e9 / elements as f64)
        } else {
            "—".to_string()
        };
        let gflops = if flops > 0 {
            format!("{:.2}", gflops_per_sec(flops, median))
        } else {
            "—".to_string()
        };
        println!(
            "| {case} | {} | {per_elem} | {gflops} | {iters} |",
            format_time(median)
        );
        median
    }

    /// The group's name (for cross-referencing in logs).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Throughput in GFLOP/s for `flops` floating-point operations in `secs`.
pub fn gflops_per_sec(flops: u64, secs: f64) -> f64 {
    flops as f64 / secs.max(1e-12) / 1e9
}

/// Formats a duration in engineer-friendly units.
pub fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_time_picks_sane_units() {
        assert_eq!(format_time(2.5), "2.500 s");
        assert_eq!(format_time(2.5e-3), "2.500 ms");
        assert_eq!(format_time(2.5e-6), "2.500 µs");
        assert_eq!(format_time(2.5e-9), "2.5 ns");
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut count = 0u64;
        let g = Group::new("selftest").sample_seconds(0.001);
        g.bench("counter", 0, || count += 1);
        assert!(count > 0);
        assert_eq!(g.name(), "selftest");
    }

    #[test]
    fn bench_flops_returns_positive_median() {
        let g = Group::new("selftest-flops").sample_seconds(0.001);
        let mut acc = 0.0f64;
        let median = g.bench_flops("fma", 64, 128, || {
            for i in 0..64 {
                acc += i as f64 * 0.5;
            }
        });
        assert!(median > 0.0);
        assert!(acc != 0.0);
    }

    #[test]
    fn gflops_conversion_is_sane() {
        assert!((gflops_per_sec(2_000_000_000, 1.0) - 2.0).abs() < 1e-12);
        assert!(gflops_per_sec(1, 0.0) > 0.0);
    }
}

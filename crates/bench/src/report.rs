//! Tabular reports: markdown to stdout, CSV to `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-oriented report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. `fig1`.
    pub id: String,
    /// Human title (paper caption).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "report row width mismatch");
        self.rows.push(row);
    }

    /// Renders a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes `results/<id>.csv` (creating the directory) and prints the
    /// markdown table to stdout.
    pub fn emit(&self, results_dir: &Path) {
        print!("{}", self.to_markdown());
        if let Err(e) = fs::create_dir_all(results_dir)
            .and_then(|_| fs::write(results_dir.join(format!("{}.csv", self.id)), self.to_csv()))
        {
            eprintln!("warning: could not write results CSV for {}: {e}", self.id);
        }
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1}us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{seconds:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_agree_on_shape() {
        let mut r = Report::new("t", "test", &["a", "b"]);
        r.push_row(vec!["1".into(), "2".into()]);
        let md = r.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = r.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut r = Report::new("t", "test", &["a", "b"]);
        r.push_row(vec!["1".into()]);
    }

    #[test]
    fn time_formatting_picks_units() {
        assert_eq!(fmt_time(5e-6), "5.0us");
        assert_eq!(fmt_time(2.5e-3), "2.50ms");
        assert_eq!(fmt_time(1.5), "1.500s");
    }
}

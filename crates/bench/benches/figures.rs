//! `cargo bench -p pscg-bench --bench figures` — regenerates every table
//! and figure of the paper at the `PSCG_SCALE` scale (default `small`),
//! writing CSVs to `results/` and printing the tables. This is the
//! canonical entry point recorded in EXPERIMENTS.md.
//!
//! Note on paths: cargo runs bench targets with the *package* directory as
//! cwd, so this target writes `crates/bench/results/`; the `repro` binary
//! run from the workspace root writes `./results/`.

use std::path::PathBuf;
use std::time::Instant;

use pscg_bench::{experiments, Scale};
use pscg_sim::Machine;

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    let scale = Scale::from_env();
    let machine = Machine::sahasrat();
    let results = PathBuf::from("results");
    println!(
        "# figures bench — scale '{}' (125-pt grid {}^3), machine '{}'",
        scale.name, scale.poisson_n, machine.name
    );
    let t0 = Instant::now();

    experiments::table1(3).emit(&results);
    let (fig1, runs) = experiments::fig1(&scale, &machine);
    fig1.emit(&results);
    experiments::fig5(&runs, &machine).emit(&results);
    let (fig2, _) = experiments::fig2(&scale, &machine);
    fig2.emit(&results);
    experiments::table2(&scale, &machine).emit(&results);
    experiments::fig3(&scale, &machine).emit(&results);
    experiments::fig4(&scale, &machine).emit(&results);
    experiments::ablation_progress(&scale).emit(&results);
    experiments::crossover(&scale, &machine).emit(&results);
    experiments::mpk(&scale, &machine).emit(&results);

    eprintln!(
        "\n[figures] all experiments regenerated in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}

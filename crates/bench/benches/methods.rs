//! Benchmarks of whole solves: every method of the paper's comparison on a
//! fixed small Poisson problem (single-core wall time), on the internal
//! harness in [`pscg_bench::microbench`].
//!
//! These measure the *computational* cost per method — the FLOPs column of
//! Table I made concrete — complementing the machine-model replay that
//! measures the *distributed* cost. PIPE-PsCG is expected to be the most
//! FLOP-hungry here (4s³+12s²+… per s steps) while winning the replayed
//! scaling runs; both facts together reproduce the paper's trade-off.

use std::hint::black_box;

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_bench::microbench::Group;
use pscg_precond::Jacobi;
use pscg_sim::SimCtx;
use pscg_sparse::stencil::{poisson3d_27pt, Grid3};
use pscg_sparse::{CsrMatrix, IdentityOp};

fn problem() -> (CsrMatrix, Vec<f64>) {
    let g = Grid3::cube(16);
    let a = poisson3d_27pt(g);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    (a, b)
}

fn bench_methods() {
    let (a, b) = problem();
    let opts = SolveOptions {
        rtol: 1e-5,
        s: 3,
        ..Default::default()
    };
    let group = Group::new("solve_to_1e-5_27pt_16cube").sample_seconds(0.2);
    for m in [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
    ] {
        group.bench(m.name(), 0, || {
            let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
            let res = m.solve(&mut ctx, black_box(&b), None, &opts);
            assert!(res.converged(), "{} failed to converge", m.name());
            black_box(res.iterations);
        });
    }
}

fn bench_s_values() {
    // Computational overhead of growing s (the FLOPS column trend).
    let (a, b) = problem();
    let group = Group::new("pipe_pscg_by_s").sample_seconds(0.2);
    for s in [1usize, 2, 3, 4, 5] {
        let opts = SolveOptions {
            rtol: 1e-5,
            s,
            ..Default::default()
        };
        group.bench(&format!("s={s}"), 0, || {
            let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
            let res = MethodKind::PipePscg.solve(&mut ctx, &b, None, &opts);
            assert!(res.converged());
            black_box(res.iterations);
        });
    }
}

fn bench_unpreconditioned() {
    let (a, b) = problem();
    let opts = SolveOptions {
        rtol: 1e-5,
        s: 3,
        ..Default::default()
    };
    let group = Group::new("unpreconditioned_27pt_16cube").sample_seconds(0.2);
    for m in [
        MethodKind::Pcg,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::PipeScg,
    ] {
        group.bench(m.name(), 0, || {
            let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(a.nrows())));
            let res = m.solve(&mut ctx, &b, None, &opts);
            assert!(res.converged());
            black_box(res.iterations);
        });
    }
}

fn main() {
    bench_methods();
    bench_s_values();
    bench_unpreconditioned();
}

//! Criterion benchmarks of whole solves: every method of the paper's
//! comparison on a fixed small Poisson problem (single-core wall time).
//!
//! These measure the *computational* cost per method — the FLOPs column of
//! Table I made concrete — complementing the machine-model replay that
//! measures the *distributed* cost. PIPE-PsCG is expected to be the most
//! FLOP-hungry here (4s³+12s²+… per s steps) while winning the replayed
//! scaling runs; both facts together reproduce the paper's trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_precond::Jacobi;
use pscg_sim::SimCtx;
use pscg_sparse::stencil::{poisson3d_27pt, Grid3};
use pscg_sparse::{CsrMatrix, IdentityOp};

fn problem() -> (CsrMatrix, Vec<f64>) {
    let g = Grid3::cube(16);
    let a = poisson3d_27pt(g);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    (a, b)
}

fn bench_methods(c: &mut Criterion) {
    let (a, b) = problem();
    let opts = SolveOptions {
        rtol: 1e-5,
        s: 3,
        ..Default::default()
    };
    let mut group = c.benchmark_group("solve_to_1e-5_27pt_16cube");
    group.sample_size(10);
    for m in [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
    ] {
        group.bench_function(BenchmarkId::from_parameter(m.name()), |bch| {
            bch.iter(|| {
                let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
                let res = m.solve(&mut ctx, std::hint::black_box(&b), None, &opts);
                assert!(res.converged(), "{} failed to converge", m.name());
                res.iterations
            })
        });
    }
    group.finish();
}

fn bench_s_values(c: &mut Criterion) {
    // Computational overhead of growing s (the FLOPS column trend).
    let (a, b) = problem();
    let mut group = c.benchmark_group("pipe_pscg_by_s");
    group.sample_size(10);
    for s in [1usize, 2, 3, 4, 5] {
        let opts = SolveOptions {
            rtol: 1e-5,
            s,
            ..Default::default()
        };
        group.bench_function(BenchmarkId::from_parameter(s), |bch| {
            bch.iter(|| {
                let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
                let res = MethodKind::PipePscg.solve(&mut ctx, &b, None, &opts);
                assert!(res.converged());
                res.iterations
            })
        });
    }
    group.finish();
}

fn bench_unpreconditioned(c: &mut Criterion) {
    let (a, b) = problem();
    let opts = SolveOptions {
        rtol: 1e-5,
        s: 3,
        ..Default::default()
    };
    let mut group = c.benchmark_group("unpreconditioned_27pt_16cube");
    group.sample_size(10);
    for m in [
        MethodKind::Pcg,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::PipeScg,
    ] {
        group.bench_function(BenchmarkId::from_parameter(m.name()), |bch| {
            bch.iter(|| {
                let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(a.nrows())));
                let res = m.solve(&mut ctx, &b, None, &opts);
                assert!(res.converged());
                res.iterations
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_methods,
    bench_s_values,
    bench_unpreconditioned
);
criterion_main!(benches);

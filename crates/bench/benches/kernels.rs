//! Micro-benchmarks of the computational kernels the paper's cost analysis
//! is built from: SpMV (by stencil), dot products, VMAs, the block
//! recurrence linear combinations, Gram products, the s×s LU scalar work and
//! the preconditioner applications. Uses the internal harness in
//! [`pscg_bench::microbench`] (the environment has no criterion).

use std::hint::black_box;

use pscg_bench::microbench::Group;
use pscg_precond::{Jacobi, Ssor};
use pscg_sparse::dense::DenseMatrix;
use pscg_sparse::op::Operator;
use pscg_sparse::stencil::{poisson3d_125pt, poisson3d_27pt, poisson3d_7pt, Grid3};
use pscg_sparse::{kernels, MultiVector};

fn bench_spmv() {
    let g = Grid3::cube(32);
    let mats = [
        ("7pt", poisson3d_7pt(g, None)),
        ("27pt", poisson3d_27pt(g)),
        ("125pt", poisson3d_125pt(g)),
    ];
    let group = Group::new("spmv_32cube");
    for (name, a) in &mats {
        let x = vec![1.0; a.nrows()];
        let mut y = vec![0.0; a.nrows()];
        group.bench(name, a.nnz() as u64, || {
            a.spmv(black_box(&x), black_box(&mut y))
        });
    }
}

fn bench_vector_ops() {
    let n = 1 << 18;
    let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let mut y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let group = Group::new("vector_ops");
    group.bench("dot", n as u64, || {
        black_box(kernels::dot(black_box(&x), black_box(&y)));
    });
    group.bench("axpy", n as u64, || {
        kernels::axpy(1.0001, black_box(&x), black_box(&mut y))
    });
    group.bench("aypx", n as u64, || {
        kernels::aypx(0.9999, black_box(&x), black_box(&mut y))
    });
}

fn bench_block_ops() {
    // The recurrence LCs of the s-step methods at s = 3.
    let n = 1 << 16;
    let s = 3;
    let mut xb = MultiVector::zeros(n, s);
    let yb = {
        let cols: Vec<Vec<f64>> = (0..s)
            .map(|j| (0..n).map(|i| ((i + j) as f64).sin()).collect())
            .collect();
        MultiVector::from_columns(&cols.iter().map(|c| c.as_slice()).collect::<Vec<_>>())
    };
    let bmat = DenseMatrix::from_rows(&[&[0.1, 0.2, 0.3], &[0.4, 0.5, 0.6], &[0.7, 0.8, 0.9]]);
    let group = Group::new("block_ops_s3");
    group.bench("add_mul", (n * s) as u64, || {
        xb.add_mul(black_box(&yb), black_box(&bmat))
    });
    group.bench("gram", (n * s) as u64, || {
        black_box(black_box(&yb).gram(black_box(&yb)));
    });
    let v = vec![1.0; n];
    let mut y = v.clone();
    group.bench("gemv_acc", (n * s) as u64, || {
        yb.gemv_acc(black_box(&[0.1, 0.2, 0.3]), black_box(&mut y))
    });
}

fn bench_scalar_work() {
    // The two s×s LU solves per s-step iteration.
    let group = Group::new("scalar_work_lu");
    for s in [2usize, 3, 4, 5, 8] {
        let mut w = DenseMatrix::identity(s);
        for i in 0..s {
            for j in 0..s {
                w.add(i, j, 1.0 / (1.0 + (i + j) as f64));
            }
        }
        let rhs = vec![1.0; s];
        group.bench(&format!("s={s}"), 0, || {
            let f = black_box(&w).lu().unwrap();
            black_box(f.solve(&rhs));
        });
    }
}

fn bench_preconditioners() {
    let g = Grid3::cube(24);
    let a = poisson3d_7pt(g, None);
    let n = a.nrows();
    let r = vec![1.0; n];
    let mut u = vec![0.0; n];
    let group = Group::new("pc_apply_24cube");
    let mut jac = Jacobi::new(&a);
    group.bench("jacobi", n as u64, || {
        jac.apply(black_box(&r), black_box(&mut u))
    });
    let mut sor = Ssor::new(&a, 1.0);
    group.bench("ssor", n as u64, || {
        sor.apply(black_box(&r), black_box(&mut u))
    });
    let mut mg = pscg_precond::multigrid::gmg(&a, g);
    group.bench("gmg_vcycle", n as u64, || {
        mg.apply(black_box(&r), black_box(&mut u))
    });
    let mut ga = pscg_precond::multigrid::gamg(&a);
    group.bench("gamg_vcycle", n as u64, || {
        ga.apply(black_box(&r), black_box(&mut u))
    });
}

fn main() {
    bench_spmv();
    bench_vector_ops();
    bench_block_ops();
    bench_scalar_work();
    bench_preconditioners();
}

//! Criterion micro-benchmarks of the computational kernels the paper's cost
//! analysis is built from: SpMV (by stencil), dot products, VMAs, the block
//! recurrence linear combinations, Gram products, the s×s LU scalar work and
//! the preconditioner applications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pscg_precond::{Jacobi, Ssor};
use pscg_sparse::dense::DenseMatrix;
use pscg_sparse::op::Operator;
use pscg_sparse::stencil::{poisson3d_125pt, poisson3d_27pt, poisson3d_7pt, Grid3};
use pscg_sparse::{kernels, MultiVector};

fn bench_spmv(c: &mut Criterion) {
    let g = Grid3::cube(32);
    let mats = [
        ("7pt", poisson3d_7pt(g, None)),
        ("27pt", poisson3d_27pt(g)),
        ("125pt", poisson3d_125pt(g)),
    ];
    let mut group = c.benchmark_group("spmv_32cube");
    for (name, a) in &mats {
        let x = vec![1.0; a.nrows()];
        let mut y = vec![0.0; a.nrows()];
        group.throughput(Throughput::Elements(a.nnz() as u64));
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| a.spmv(std::hint::black_box(&x), std::hint::black_box(&mut y)));
        });
    }
    group.finish();
}

fn bench_vector_ops(c: &mut Criterion) {
    let n = 1 << 18;
    let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let mut y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let mut group = c.benchmark_group("vector_ops");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("dot", |b| {
        b.iter(|| kernels::dot(std::hint::black_box(&x), std::hint::black_box(&y)))
    });
    group.bench_function("axpy", |b| {
        b.iter(|| {
            kernels::axpy(
                1.0001,
                std::hint::black_box(&x),
                std::hint::black_box(&mut y),
            )
        })
    });
    group.bench_function("aypx", |b| {
        b.iter(|| {
            kernels::aypx(
                0.9999,
                std::hint::black_box(&x),
                std::hint::black_box(&mut y),
            )
        })
    });
    group.finish();
}

fn bench_block_ops(c: &mut Criterion) {
    // The recurrence LCs of the s-step methods at s = 3.
    let n = 1 << 16;
    let s = 3;
    let mut xb = MultiVector::zeros(n, s);
    let yb = {
        let cols: Vec<Vec<f64>> = (0..s)
            .map(|j| (0..n).map(|i| ((i + j) as f64).sin()).collect())
            .collect();
        MultiVector::from_columns(&cols.iter().map(|c| c.as_slice()).collect::<Vec<_>>())
    };
    let bmat = DenseMatrix::from_rows(&[&[0.1, 0.2, 0.3], &[0.4, 0.5, 0.6], &[0.7, 0.8, 0.9]]);
    let mut group = c.benchmark_group("block_ops_s3");
    group.throughput(Throughput::Elements((n * s) as u64));
    group.bench_function("add_mul", |b| {
        b.iter(|| xb.add_mul(std::hint::black_box(&yb), std::hint::black_box(&bmat)))
    });
    group.bench_function("gram", |b| {
        b.iter(|| std::hint::black_box(&yb).gram(std::hint::black_box(&yb)))
    });
    let v = vec![1.0; n];
    group.bench_function("gemv_acc", |b| {
        let mut y = v.clone();
        b.iter(|| {
            yb.gemv_acc(
                std::hint::black_box(&[0.1, 0.2, 0.3]),
                std::hint::black_box(&mut y),
            )
        })
    });
    group.finish();
}

fn bench_scalar_work(c: &mut Criterion) {
    // The two s×s LU solves per s-step iteration.
    let mut group = c.benchmark_group("scalar_work_lu");
    for s in [2usize, 3, 4, 5, 8] {
        let mut w = DenseMatrix::identity(s);
        for i in 0..s {
            for j in 0..s {
                w.add(i, j, 1.0 / (1.0 + (i + j) as f64));
            }
        }
        let rhs = vec![1.0; s];
        group.bench_function(BenchmarkId::from_parameter(s), |b| {
            b.iter(|| {
                let f = std::hint::black_box(&w).lu().unwrap();
                std::hint::black_box(f.solve(&rhs));
            })
        });
    }
    group.finish();
}

fn bench_preconditioners(c: &mut Criterion) {
    let g = Grid3::cube(24);
    let a = poisson3d_7pt(g, None);
    let n = a.nrows();
    let r = vec![1.0; n];
    let mut u = vec![0.0; n];
    let mut group = c.benchmark_group("pc_apply_24cube");
    group.throughput(Throughput::Elements(n as u64));
    let mut jac = Jacobi::new(&a);
    group.bench_function("jacobi", |b| {
        b.iter(|| jac.apply(std::hint::black_box(&r), std::hint::black_box(&mut u)))
    });
    let mut sor = Ssor::new(&a, 1.0);
    group.bench_function("ssor", |b| {
        b.iter(|| sor.apply(std::hint::black_box(&r), std::hint::black_box(&mut u)))
    });
    let mut mg = pscg_precond::multigrid::gmg(&a, g);
    group.bench_function("gmg_vcycle", |b| {
        b.iter(|| mg.apply(std::hint::black_box(&r), std::hint::black_box(&mut u)))
    });
    let mut ga = pscg_precond::multigrid::gamg(&a);
    group.bench_function("gamg_vcycle", |b| {
        b.iter(|| ga.apply(std::hint::black_box(&r), std::hint::black_box(&mut u)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spmv,
    bench_vector_ops,
    bench_block_ops,
    bench_scalar_work,
    bench_preconditioners
);
criterion_main!(benches);

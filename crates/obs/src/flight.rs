//! The flight recorder: a bounded ring of the most recent iterations'
//! metrics and spans, dumped on solver failure.
//!
//! Post-mortem telemetry inverts the usual trade-off: a full trace of a
//! 10⁴-iteration campaign is too big to keep *just in case*, but when a
//! solve breaks down the only interesting part is the last few hundred
//! microseconds before it did. The recorder keeps the final `capacity`
//! [`IterRecord`]s and a proportional tail of raw spans in two bounded
//! rings, costing O(capacity) memory regardless of solve length; the
//! resilient supervisor dumps them to `flight.json` on breakdown /
//! `RecoveryExhausted`, and the fault campaign on any non-recovered
//! fault.
//!
//! Inertness: the recorder only observes streams the telemetry layer
//! already produces, so it needs `crate::set_enabled(true)` to see
//! anything; while unconfigured, every hook is a single relaxed atomic
//! load, and it never feeds anything back into the solver (the
//! `tests/observatory_inert.rs` bitwise checks cover both states).

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::export::{push_jnum, push_jstr};
use crate::json::{parse, Json};
use crate::metrics::{IterRecord, SolveMeta};
use crate::span::{SpanKind, SpanRecord};

/// Raw spans retained per unit of iteration capacity (a solver iteration
/// is a handful of kernels + reductions; 64 leaves slack for s-step
/// bursts).
const SPANS_PER_FRAME: usize = 64;

struct FlightState {
    capacity: usize,
    path: Option<PathBuf>,
    meta: Option<SolveMeta>,
    iters: VecDeque<IterRecord>,
    spans: VecDeque<SpanRecord>,
}

/// Fast-path gate: true only between `configure(n>0, ..)` and
/// `configure(0, ..)`.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<FlightState>> = Mutex::new(None);

/// Arms the recorder with a ring of `capacity` iterations (and
/// `capacity × 64` spans), optionally bound to a dump path for
/// [`dump_to_path`]. `capacity == 0` disarms and frees the rings.
pub fn configure(capacity: usize, path: Option<PathBuf>) {
    let mut state = STATE.lock().unwrap();
    if capacity == 0 {
        *state = None;
        ACTIVE.store(false, Ordering::Relaxed);
    } else {
        *state = Some(FlightState {
            capacity,
            path,
            meta: None,
            iters: VecDeque::with_capacity(capacity),
            spans: VecDeque::with_capacity(capacity * SPANS_PER_FRAME),
        });
        ACTIVE.store(true, Ordering::Relaxed);
    }
}

/// True while the recorder is armed.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Resets the rings for a new solve (called by `metrics::begin_solve`, so
/// a dump always describes the *current* — failing — solve attempt).
pub(crate) fn note_begin(meta: &SolveMeta) {
    if !active() {
        return;
    }
    if let Some(s) = STATE.lock().unwrap().as_mut() {
        s.meta = Some(meta.clone());
        s.iters.clear();
        s.spans.clear();
    }
}

/// Appends one iteration record, evicting the oldest beyond capacity.
pub(crate) fn note_iter(rec: &IterRecord) {
    if !active() {
        return;
    }
    if let Some(s) = STATE.lock().unwrap().as_mut() {
        if s.iters.len() >= s.capacity {
            s.iters.pop_front();
        }
        s.iters.push_back(rec.clone());
    }
}

/// Appends one span, evicting the oldest beyond the span ring bound
/// (called from the span recorder's push path in every telemetry mode).
pub(crate) fn note_span(rec: &SpanRecord) {
    if !active() {
        return;
    }
    if let Some(s) = STATE.lock().unwrap().as_mut() {
        if s.spans.len() >= s.capacity * SPANS_PER_FRAME {
            s.spans.pop_front();
        }
        s.spans.push_back(*rec);
    }
}

/// Renders the current rings as a `flight.json` document, or `None` when
/// the recorder is disarmed or no solve has begun since arming. Does not
/// clear the rings: a later, more specific failure can dump again.
pub fn dump(reason: &str) -> Option<String> {
    let state = STATE.lock().unwrap();
    let s = state.as_ref()?;
    let meta = s.meta.as_ref()?;
    let mut out = String::with_capacity(1024 + s.spans.len() * 96 + s.iters.len() * 128);
    out.push_str("{\"type\":\"flight\",\"reason\":");
    push_jstr(&mut out, reason);
    out.push_str(",\"method\":");
    push_jstr(&mut out, meta.method);
    let _ = write_fields(&mut out, s, meta);
    out.push_str("}\n");
    Some(out)
}

fn write_fields(out: &mut String, s: &FlightState, meta: &SolveMeta) -> std::fmt::Result {
    use std::fmt::Write as _;
    write!(out, ",\"s\":{},\"spmv_format\":", meta.s)?;
    push_jstr(out, meta.spmv_format);
    write!(
        out,
        ",\"nrows\":{},\"nnz\":{},\"capacity\":{},\"iters\":[",
        meta.nrows, meta.nnz, s.capacity
    )?;
    for (i, rec) in s.iters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"seq\":{},\"iter\":{},\"t_ns\":{},\"relres\":",
            rec.seq, rec.iter, rec.t_ns
        )?;
        push_jnum(out, rec.sample.relres);
        write!(
            out,
            ",\"d_spmv\":{},\"d_pc\":{},\"d_allreduce\":{},\
             \"window_ns\":{},\"kernel_in_window_ns\":{}}}",
            rec.d_kernels.spmv,
            rec.d_kernels.pc,
            rec.d_kernels.allreduce,
            rec.window_ns,
            rec.kernel_in_window_ns
        )?;
    }
    out.push_str("],\"spans\":[");
    for (i, rec) in s.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"kind\":");
        push_jstr(out, rec.kind.name());
        write!(
            out,
            ",\"arg\":{},\"start_ns\":{},\"dur_ns\":{},\"tid\":{}}}",
            rec.arg, rec.start_ns, rec.dur_ns, rec.tid
        )?;
    }
    out.push(']');
    Ok(())
}

/// Dumps to the path given at [`configure`] time, returning it on success.
/// Best-effort: I/O failures are swallowed (a failing dump must never turn
/// a diagnosable solver failure into a crash), and `None` is returned.
pub fn dump_to_path(reason: &str) -> Option<PathBuf> {
    let path = STATE.lock().unwrap().as_ref()?.path.clone()?;
    let doc = dump(reason)?;
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, doc).ok()?;
    Some(path)
}

/// Summary returned by [`validate_flight_json`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightCheck {
    /// The dump reason.
    pub reason: String,
    /// The failing method's name.
    pub method: String,
    /// Retained iteration records.
    pub iters: usize,
    /// Retained spans.
    pub spans: usize,
}

/// Structurally validates a flight dump: `type == "flight"`, a reason and
/// method, `iters.len() ≤ capacity`, every iteration with
/// `seq`/`iter`/`t_ns`/`relres`, every span with a known kind and
/// `start_ns`/`dur_ns`/`tid`.
pub fn validate_flight_json(text: &str) -> Result<FlightCheck, String> {
    let doc = parse(text.trim())?;
    if doc.get("type").and_then(Json::as_str) != Some("flight") {
        return Err("type is not 'flight'".into());
    }
    let reason = doc
        .get("reason")
        .and_then(Json::as_str)
        .ok_or("missing reason")?;
    let method = doc
        .get("method")
        .and_then(Json::as_str)
        .ok_or("missing method")?;
    let capacity = doc
        .get("capacity")
        .and_then(Json::as_f64)
        .ok_or("missing capacity")? as usize;
    if capacity == 0 {
        return Err("capacity is zero".into());
    }
    let iters = doc
        .get("iters")
        .and_then(Json::as_arr)
        .ok_or("missing iters array")?;
    if iters.len() > capacity {
        return Err(format!("{} iters exceed capacity {capacity}", iters.len()));
    }
    let mut last_seq = -1i64;
    for (i, rec) in iters.iter().enumerate() {
        for key in ["seq", "iter", "t_ns"] {
            if rec.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("iter {i}: missing {key}"));
            }
        }
        match rec.get("relres") {
            Some(Json::Num(_)) | Some(Json::Null) => {}
            _ => return Err(format!("iter {i}: missing relres")),
        }
        let seq = rec.get("seq").and_then(Json::as_f64).unwrap() as i64;
        if seq <= last_seq {
            return Err(format!("iter {i}: seq {seq} not increasing"));
        }
        last_seq = seq;
    }
    let spans = doc
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or("missing spans array")?;
    for (i, rec) in spans.iter().enumerate() {
        let kind = rec
            .get("kind")
            .and_then(Json::as_str)
            .ok_or(format!("span {i}: missing kind"))?;
        if SpanKind::parse(kind).is_none() {
            return Err(format!("span {i}: unknown kind '{kind}'"));
        }
        for key in ["start_ns", "dur_ns", "tid"] {
            if rec.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("span {i}: missing {key}"));
            }
        }
    }
    Ok(FlightCheck {
        reason: reason.to_string(),
        method: method.to_string(),
        iters: iters.len(),
        spans: spans.len(),
    })
}

/// Validates a flight dump file on disk.
pub fn validate_flight_file(path: &Path) -> Result<FlightCheck, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    validate_flight_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{IterSample, KernelCounts};

    fn iter_rec(seq: usize, relres: f64) -> IterRecord {
        IterRecord {
            seq,
            iter: seq,
            sample: IterSample {
                iter: seq,
                relres,
                norms_sq: [relres * relres, f64::NAN, f64::NAN],
                alpha: vec![0.5],
                beta: vec![0.1],
                gamma: 1.0,
            },
            t_ns: 100 * (seq as u64 + 1),
            kernels: KernelCounts::default(),
            d_kernels: KernelCounts {
                spmv: 1,
                pc: 1,
                allreduce: 1,
            },
            window_ns: 10,
            kernel_in_window_ns: 5,
        }
    }

    fn meta() -> SolveMeta {
        SolveMeta {
            method: "PIPE-PsCG",
            s: 4,
            norm: "preconditioned",
            rtol: 1e-5,
            threads: 1,
            stagnation: None,
            nrows: 512,
            nnz: 3392,
            spmv_format: "csr",
            spmv_model_bytes_per_nnz: 14.4,
            pc_flops_per_row: 1.0,
            pc_bytes_per_row: 24.0,
        }
    }

    #[test]
    fn ring_bounds_dump_schema_and_disarm() {
        let _g = crate::test_lock();
        // Disarmed: hooks are no-ops and dump yields nothing.
        configure(0, None);
        assert!(!active());
        note_begin(&meta());
        note_iter(&iter_rec(0, 1.0));
        assert!(dump("x").is_none(), "disarmed recorder dumps nothing");

        // Armed with capacity 4: only the last 4 of 10 iterations survive.
        configure(4, None);
        assert!(active());
        assert!(dump("x").is_none(), "no solve begun yet");
        note_begin(&meta());
        for seq in 0..10 {
            note_iter(&iter_rec(seq, 1.0 / (seq + 1) as f64));
            note_span(&SpanRecord {
                kind: SpanKind::Spmv,
                arg: 0,
                start_ns: seq as u64 * 10,
                dur_ns: 5,
                tid: 0,
            });
        }
        let doc = dump("RecoveryExhausted").expect("armed dump");
        assert!(doc.is_ascii());
        let check = validate_flight_json(&doc).expect("schema-valid dump");
        assert_eq!(check.reason, "RecoveryExhausted");
        assert_eq!(check.method, "PIPE-PsCG");
        assert_eq!(check.iters, 4, "ring keeps the last capacity iters");
        assert_eq!(check.spans, 10);
        // The retained records are the *final* four (seq 6..9).
        let parsed = parse(doc.trim()).unwrap();
        let first = &parsed.get("iters").unwrap().as_arr().unwrap()[0];
        assert_eq!(first.get("seq").and_then(Json::as_f64), Some(6.0));

        // A new solve clears the rings.
        note_begin(&meta());
        let doc = dump("Breakdown").unwrap();
        assert_eq!(validate_flight_json(&doc).unwrap().iters, 0);

        // Span ring is bounded too.
        for i in 0..(4 * super::SPANS_PER_FRAME + 50) {
            note_span(&SpanRecord {
                kind: SpanKind::Dot,
                arg: 0,
                start_ns: i as u64,
                dur_ns: 1,
                tid: 0,
            });
        }
        let doc = dump("Breakdown").unwrap();
        assert_eq!(
            validate_flight_json(&doc).unwrap().spans,
            4 * super::SPANS_PER_FRAME
        );

        configure(0, None);
        assert!(!active());
    }

    #[test]
    fn dump_to_path_writes_a_valid_file() {
        let _g = crate::test_lock();
        let dir = std::env::temp_dir().join(format!("pscg-flight-{}", std::process::id()));
        let path = dir.join("flight.json");
        configure(3, Some(path.clone()));
        note_begin(&meta());
        note_iter(&iter_rec(0, 0.5));
        let written = dump_to_path("Breakdown").expect("dump written");
        assert_eq!(written, path);
        let check = validate_flight_file(&path).expect("file validates");
        assert_eq!(check.iters, 1);
        configure(0, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validator_rejects_malformed_dumps() {
        assert!(validate_flight_json("{}").is_err());
        assert!(validate_flight_json("{\"type\":\"flight\"}").is_err());
        let bad_kind = r#"{"type":"flight","reason":"r","method":"m","capacity":2,
            "iters":[],"spans":[{"kind":"warp","start_ns":0,"dur_ns":1,"tid":0}]}"#;
        assert!(validate_flight_json(bad_kind).is_err(), "unknown span kind");
        let over = r#"{"type":"flight","reason":"r","method":"m","capacity":1,
            "iters":[{"seq":0,"iter":0,"t_ns":1,"relres":1.0},
                     {"seq":1,"iter":1,"t_ns":2,"relres":0.5}],"spans":[]}"#;
        assert!(validate_flight_json(over).is_err(), "iters over capacity");
    }
}

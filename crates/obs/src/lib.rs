//! Runtime telemetry for the PIPE-PsCG solver stack.
//!
//! The static analyzer (`crates/analysis`) proves what the communication
//! schedule *should* do; this crate measures what a run *actually* does:
//!
//! * [`span`] — a thread-local ring-buffer span recorder for the hot
//!   kernels (SpMV, MPK, PC, Gram, fused combine), blocking allreduces and
//!   the non-blocking **post→wait windows** of the pipelined methods. It
//!   also keeps running totals from which the *achieved-overlap ratio* —
//!   kernel time inside post→wait windows divided by total window span —
//!   is derived, the runtime counterpart of Cools et al.'s "overlap
//!   attained vs. available".
//! * [`metrics`] — the per-iteration [`metrics::SolveTelemetry`] stream:
//!   iteration index, all three residual norms, the α/β/γ scalars, kernel
//!   counts (cumulative and per-interval), overlap intervals, and thread
//!   pool counters, consumed through the pluggable
//!   [`metrics::MetricsSink`] trait.
//! * [`export`] — Chrome trace-event JSON (loadable in `chrome://tracing`
//!   and [Perfetto](https://ui.perfetto.dev)) and JSONL exporters, each
//!   paired with a validator used by the unit tests and the CI artifact
//!   check.
//! * [`stagnation`] — the windowed relative-residual slope detector the
//!   hybrid driver uses for its PIPE-PsCG → PIPECG-OATI switchover.
//!
//! # Inertness contract
//!
//! Telemetry observes, never participates: it reads values the solver
//! already computed and timestamps kernel boundaries. With telemetry
//! enabled, numerics are bitwise identical, `OpTrace`/`BufId` streams are
//! analyzer-identical, and the kernel engine's chunk boundaries are
//! untouched (`tests/obs_inert.rs` enforces all three at 1 and 4 pool
//! threads). Everything is gated on one process-global flag
//! ([`set_enabled`]); while the flag is off, every instrumentation point
//! is a single relaxed atomic load.
//!
//! The crate is zero-dependency (`std` only) per the offline-build policy
//! of DESIGN.md §5.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub mod agg;
pub mod attribution;
pub mod export;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod span;
pub mod stagnation;

pub use agg::{AggregateReport, KindAggregate, LogHistogram};
pub use span::{span, span_arg, SpanGuard, SpanKind, SpanRecord, SpanSet};
pub use stagnation::{StagnationConfig, StagnationDetector};

/// The process-global telemetry switch. Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// What the span recorder retains while telemetry is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// Every span is retained in the per-thread rings (bounded by the ring
    /// capacity) for [`span::drain`] — the Chrome-trace workflow.
    #[default]
    Full,
    /// Spans fold into O(1)-memory per-kind [`LogHistogram`]s and
    /// counters; [`agg::drain`] yields the merged [`AggregateReport`].
    /// Window/overlap totals and the metrics stream are unchanged — only
    /// span *retention* differs. Built for replay campaigns whose full
    /// traces would not fit in memory.
    Aggregate,
}

/// The process-global [`TelemetryMode`]. `Full` by default.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Selects what the span recorder retains (irrelevant while telemetry is
/// disabled). Switching modes does not move spans already recorded.
pub fn set_mode(mode: TelemetryMode) {
    MODE.store(
        match mode {
            TelemetryMode::Full => 0,
            TelemetryMode::Aggregate => 1,
        },
        Ordering::Relaxed,
    );
}

/// The current [`TelemetryMode`].
#[inline]
pub fn mode() -> TelemetryMode {
    if MODE.load(Ordering::Relaxed) == 0 {
        TelemetryMode::Full
    } else {
        TelemetryMode::Aggregate
    }
}

/// Turns telemetry recording on or off for the whole process.
///
/// Toggling does not clear previously recorded spans or metrics; use
/// [`span::drain`] / [`metrics::take_last`] to consume them.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when telemetry recording is enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the process-wide telemetry epoch (the first call).
///
/// A single shared epoch keeps timestamps from different threads — and
/// from the span and metrics layers — on one comparable axis.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// Serializes unit tests that touch the process-global flag, rings, or
/// collector — the test harness runs them on parallel threads.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_togglable() {
        let _g = test_lock();
        // Other unit tests in this binary may toggle the flag; assert only
        // the toggle semantics, not the initial state.
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
    }

    #[test]
    fn clock_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}

//! The span recorder: thread-local ring buffers of timed spans.
//!
//! Each thread records into its own bounded ring (registered in a global
//! list on first use), so recording never contends across threads — the
//! only locks taken are a thread's own uncontended `Mutex` per record and
//! the registry lock once per thread lifetime ("lock-free enough" on
//! `std::sync` only, per the offline-build policy). [`drain`] collects and
//! clears every ring.
//!
//! Two aggregate counters track the overlap economy of the pipelined
//! methods: total **post→wait window** time ([`window_open`] /
//! [`window_close`], driven by the engines' `iallreduce`/`wait`) and total
//! kernel time spent *inside* such a window. Their ratio is the
//! achieved-overlap ratio. On the serial engines a kernel that starts
//! inside a window also ends inside it (the waiting `wait` call is on the
//! same thread), so attributing each kernel span by its start point is
//! exact; on the thread-backed engine it is exact per rank thread for the
//! same reason.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Per-thread ring capacity. Oldest spans are dropped (and counted) when a
/// thread exceeds it between drains.
const RING_CAP: usize = 1 << 16;

/// What a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One sparse matrix–vector product.
    Spmv,
    /// One matrix-powers-kernel invocation.
    Mpk,
    /// One preconditioner application.
    Pc,
    /// One local Gram / block-dot kernel.
    Gram,
    /// One local dot product.
    Dot,
    /// One fused recurrence-combine / basis-shift sweep.
    Combine,
    /// One blocking allreduce.
    Allreduce,
    /// One non-blocking allreduce post→wait window (`arg` = reduction id).
    ArWindow,
    /// One solver interval between convergence checks (`arg` = sample seq).
    Iter,
    /// One benchmark-harness measurement body.
    Bench,
    /// One injected fault (`arg` = fault-site index).
    Fault,
    /// One recovery action (`arg` = recovery code, see
    /// `pipescg::resilience::code`).
    Recovery,
}

impl SpanKind {
    /// Every kind, in [`SpanKind::index`] order.
    pub const ALL: [SpanKind; 12] = [
        SpanKind::Spmv,
        SpanKind::Mpk,
        SpanKind::Pc,
        SpanKind::Gram,
        SpanKind::Dot,
        SpanKind::Combine,
        SpanKind::Allreduce,
        SpanKind::ArWindow,
        SpanKind::Iter,
        SpanKind::Bench,
        SpanKind::Fault,
        SpanKind::Recovery,
    ];

    /// Dense index into [`SpanKind::ALL`] (used by the aggregate tables).
    pub fn index(self) -> usize {
        match self {
            SpanKind::Spmv => 0,
            SpanKind::Mpk => 1,
            SpanKind::Pc => 2,
            SpanKind::Gram => 3,
            SpanKind::Dot => 4,
            SpanKind::Combine => 5,
            SpanKind::Allreduce => 6,
            SpanKind::ArWindow => 7,
            SpanKind::Iter => 8,
            SpanKind::Bench => 9,
            SpanKind::Fault => 10,
            SpanKind::Recovery => 11,
        }
    }

    /// Inverse of [`SpanKind::name`] (used when re-ingesting exported
    /// traces and aggregate files).
    pub fn parse(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Display name (also the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Spmv => "spmv",
            SpanKind::Mpk => "mpk",
            SpanKind::Pc => "pc",
            SpanKind::Gram => "gram",
            SpanKind::Dot => "dot",
            SpanKind::Combine => "combine",
            SpanKind::Allreduce => "allreduce",
            SpanKind::ArWindow => "ar_window",
            SpanKind::Iter => "iter",
            SpanKind::Bench => "bench",
            SpanKind::Fault => "fault",
            SpanKind::Recovery => "recovery",
        }
    }

    /// Chrome trace category.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Spmv | SpanKind::Mpk | SpanKind::Pc => "kernel",
            SpanKind::Gram | SpanKind::Dot | SpanKind::Combine => "blas",
            SpanKind::Allreduce | SpanKind::ArWindow => "comm",
            SpanKind::Iter => "solver",
            SpanKind::Bench => "bench",
            SpanKind::Fault | SpanKind::Recovery => "fault",
        }
    }

    /// True for the compute kernels whose time inside a post→wait window
    /// counts as achieved overlap (communication itself does not).
    pub fn is_kernel(self) -> bool {
        matches!(
            self,
            SpanKind::Spmv
                | SpanKind::Mpk
                | SpanKind::Pc
                | SpanKind::Gram
                | SpanKind::Dot
                | SpanKind::Combine
        )
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// What was measured.
    pub kind: SpanKind,
    /// Kind-specific argument (reduction id, iteration seq, 0 otherwise).
    pub arg: u64,
    /// Start, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Recording thread (registration order, 0-based).
    pub tid: u64,
}

impl SpanRecord {
    /// End timestamp.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

struct RingInner {
    records: VecDeque<SpanRecord>,
    dropped: u64,
}

struct ThreadRing {
    tid: u64,
    inner: Mutex<RingInner>,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);
/// Cumulative post→wait window nanoseconds (process lifetime).
static WINDOW_NS: AtomicU64 = AtomicU64::new(0);
/// Cumulative kernel nanoseconds spent inside a post→wait window.
static KERNEL_IN_WINDOW_NS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL: Arc<ThreadRing> = {
        let ring = Arc::new(ThreadRing {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            inner: Mutex::new(RingInner { records: VecDeque::new(), dropped: 0 }),
        });
        registry().lock().unwrap().push(Arc::clone(&ring));
        ring
    };
    /// Open post→wait windows of this thread: (reduction id, start ns).
    static OPEN_WINDOWS: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// Cached depth of `OPEN_WINDOWS`, checked on every kernel-span drop.
    static WINDOW_DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn push_record(rec: SpanRecord) {
    // The flight recorder sees every span regardless of telemetry mode;
    // its own ACTIVE flag is the fast-path gate.
    crate::flight::note_span(&rec);
    if crate::mode() == crate::TelemetryMode::Aggregate {
        // Aggregate mode folds the span into O(1) per-kind state instead
        // of retaining it. Window/overlap totals are untouched — they were
        // already charged before this call.
        crate::agg::note(&rec);
        return;
    }
    LOCAL.with(|ring| {
        let mut inner = ring.inner.lock().unwrap();
        if inner.records.len() >= RING_CAP {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        inner.records.push_back(rec);
    });
}

/// RAII guard returned by [`span`]; records on drop. Inert (no clock read,
/// no allocation) when telemetry is disabled at creation.
pub struct SpanGuard {
    kind: SpanKind,
    arg: u64,
    /// `u64::MAX` marks an inactive guard.
    start_ns: u64,
    in_window: bool,
}

impl SpanGuard {
    /// True when this guard will record a span on drop.
    pub fn is_active(&self) -> bool {
        self.start_ns != u64::MAX
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.start_ns == u64::MAX {
            return;
        }
        let dur = crate::now_ns().saturating_sub(self.start_ns);
        if self.in_window && self.kind.is_kernel() {
            KERNEL_IN_WINDOW_NS.fetch_add(dur, Ordering::Relaxed);
        }
        push_record(SpanRecord {
            kind: self.kind,
            arg: self.arg,
            start_ns: self.start_ns,
            dur_ns: dur,
            tid: LOCAL.with(|r| r.tid),
        });
    }
}

/// Opens a span of `kind`; the span ends when the guard drops.
#[inline]
pub fn span(kind: SpanKind) -> SpanGuard {
    span_arg(kind, 0)
}

/// Opens a span of `kind` carrying a kind-specific argument.
#[inline]
pub fn span_arg(kind: SpanKind, arg: u64) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            kind,
            arg,
            start_ns: u64::MAX,
            in_window: false,
        };
    }
    SpanGuard {
        kind,
        arg,
        start_ns: crate::now_ns(),
        in_window: WINDOW_DEPTH.with(|d| d.get()) > 0,
    }
}

/// Records a span with explicit timestamps (used by the metrics layer for
/// iteration intervals).
pub fn record_span(kind: SpanKind, arg: u64, start_ns: u64, dur_ns: u64) {
    if !crate::enabled() {
        return;
    }
    push_record(SpanRecord {
        kind,
        arg,
        start_ns,
        dur_ns,
        tid: LOCAL.with(|r| r.tid),
    });
}

/// Marks the post of non-blocking allreduce `id` on this thread, opening
/// its post→wait window.
pub fn window_open(id: u64) {
    if !crate::enabled() {
        return;
    }
    let now = crate::now_ns();
    OPEN_WINDOWS.with(|w| w.borrow_mut().push((id, now)));
    WINDOW_DEPTH.with(|d| d.set(d.get() + 1));
}

/// Marks the wait-completion of non-blocking allreduce `id`, closing its
/// window and recording an [`SpanKind::ArWindow`] span. A close with no
/// matching open on this thread (e.g. telemetry was enabled mid-flight) is
/// ignored.
pub fn window_close(id: u64) {
    if !crate::enabled() {
        return;
    }
    let start = OPEN_WINDOWS.with(|w| {
        let mut w = w.borrow_mut();
        let pos = w.iter().rposition(|&(wid, _)| wid == id)?;
        Some(w.remove(pos).1)
    });
    let Some(start) = start else { return };
    WINDOW_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    let dur = crate::now_ns().saturating_sub(start);
    WINDOW_NS.fetch_add(dur, Ordering::Relaxed);
    push_record(SpanRecord {
        kind: SpanKind::ArWindow,
        arg: id,
        start_ns: start,
        dur_ns: dur,
        tid: LOCAL.with(|r| r.tid),
    });
}

/// Cumulative `(window_ns, kernel_in_window_ns)` totals since process
/// start. Monotone: consumers diff two readings to measure an interval.
pub fn overlap_totals() -> (u64, u64) {
    (
        WINDOW_NS.load(Ordering::Relaxed),
        KERNEL_IN_WINDOW_NS.load(Ordering::Relaxed),
    )
}

/// Every span recorded since the previous drain, across all threads.
#[derive(Debug, Clone, Default)]
pub struct SpanSet {
    /// Records, sorted by start time (ties broken by thread id).
    pub records: Vec<SpanRecord>,
    /// Spans lost to ring overflow since the previous drain.
    pub dropped: u64,
}

impl SpanSet {
    /// Total duration of spans of `kind`.
    pub fn total_ns(&self, kind: SpanKind) -> u64 {
        self.records
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.dur_ns)
            .sum()
    }

    /// Number of spans of `kind`.
    pub fn count(&self, kind: SpanKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }
}

/// Collects and clears every thread's ring.
pub fn drain() -> SpanSet {
    let rings: Vec<Arc<ThreadRing>> = registry().lock().unwrap().clone();
    let mut out = SpanSet::default();
    for ring in rings {
        let mut inner = ring.inner.lock().unwrap();
        out.records.extend(inner.records.drain(..));
        out.dropped += inner.dropped;
        inner.dropped = 0;
    }
    out.records.sort_by_key(|r| (r.start_ns, r.tid));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spans and windows share process globals; the crate test lock keeps
    /// this single-writer within the test binary.
    #[test]
    fn spans_windows_and_overlap_accounting() {
        let _g = crate::test_lock();
        crate::set_enabled(false);
        drain(); // clear spans left by earlier tests in this binary
        drop(span(SpanKind::Spmv));
        assert!(
            drain().records.is_empty(),
            "disabled recorder must record nothing"
        );

        crate::set_enabled(true);
        let (w0, k0) = overlap_totals();

        // A kernel outside any window: no overlap credit.
        {
            let _s = span(SpanKind::Spmv);
            std::hint::black_box(());
        }
        // A window with one kernel inside and a non-kernel span inside.
        window_open(7);
        {
            let _s = span_arg(SpanKind::Pc, 1);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        drop(span(SpanKind::Allreduce)); // comm: never overlap credit
        window_close(7);
        // Close of an unknown id is ignored.
        window_close(99);

        let set = drain();
        crate::set_enabled(false);

        assert_eq!(set.count(SpanKind::Spmv), 1);
        assert_eq!(set.count(SpanKind::Pc), 1);
        assert_eq!(set.count(SpanKind::ArWindow), 1);
        assert_eq!(set.dropped, 0);
        let win = set
            .records
            .iter()
            .find(|r| r.kind == SpanKind::ArWindow)
            .unwrap();
        assert_eq!(win.arg, 7);
        let pc = set.records.iter().find(|r| r.kind == SpanKind::Pc).unwrap();
        assert!(pc.start_ns >= win.start_ns && pc.end_ns() <= win.end_ns());

        let (w1, k1) = overlap_totals();
        let dw = w1 - w0;
        let dk = k1 - k0;
        assert_eq!(dw, win.dur_ns);
        assert_eq!(dk, pc.dur_ns, "only the in-window kernel earns credit");
        assert!(dk <= dw);

        // Multi-thread: each thread records into its own ring; drain merges.
        crate::set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| drop(span(SpanKind::Gram)));
            }
        });
        let set = drain();
        crate::set_enabled(false);
        assert_eq!(set.count(SpanKind::Gram), 3);
        let tids: std::collections::HashSet<u64> = set.records.iter().map(|r| r.tid).collect();
        assert_eq!(tids.len(), 3, "one ring per recording thread");
    }
}

//! Exporters: Chrome trace-event JSON for spans, JSONL for solver metrics.
//!
//! Both formats are hand-rolled (the build is fully offline; no serde).
//! Floating-point values are written with Rust's shortest-roundtrip
//! formatting, so a reparsed value is bitwise identical to the one the
//! solver computed — `repro` relies on this to check the exported residual
//! stream against the solver's convergence history exactly. Each exporter
//! is paired with a validator ([`validate_chrome_trace`],
//! [`validate_metrics_jsonl`], [`validate_aggregate_json`]) built on the
//! minimal JSON parser in [`crate::json`]; the validators back the schema
//! unit tests and the CI artifact check.

use std::fmt::Write as _;

use crate::agg::AggregateReport;
use crate::json::{parse as parse_json, Json};
use crate::metrics::{FinishRecord, IterRecord, MetricsSink, SolveMeta, SolveTelemetry};
use crate::span::{SpanKind, SpanRecord, SpanSet};

// ---------------------------------------------------------------------------
// JSON writing helpers
// ---------------------------------------------------------------------------

/// Writes a JSON string literal into `out`. Output is pure ASCII: quotes,
/// backslashes, control characters (including DEL) and every non-ASCII
/// character are escaped, supplementary-plane characters as surrogate
/// pairs — so a trace is byte-identical under any downstream transcoding
/// and survives consumers that mishandle raw UTF-8.
pub(crate) fn push_jstr(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || (c as u32) >= 0x7f => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    let _ = write!(out, "\\u{:04x}", unit);
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an f64 as a JSON value: shortest-roundtrip decimal for finite
/// values (reparsing yields the identical bits), `null` for NaN/±inf
/// (which JSON cannot represent).
pub(crate) fn push_jnum(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Writes a `[f64, ...]` array.
fn push_jnum_arr(out: &mut String, vs: &[f64]) {
    out.push('[');
    for (i, &v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_jnum(out, v);
    }
    out.push(']');
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

/// Renders a [`SpanSet`] as Chrome trace-event JSON (object form, with a
/// `traceEvents` array of complete `"X"` events), loadable in
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
///
/// Timestamps are microseconds (the format's unit) with sub-µs fractions
/// preserved; `args.arg` carries the kind-specific span argument.
pub fn chrome_trace(set: &SpanSet) -> String {
    let mut out = String::with_capacity(64 + set.records.len() * 128);
    out.push_str("{\"traceEvents\":[");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"pipe-pscg\"}}",
    );
    for rec in &set.records {
        out.push(',');
        push_trace_event(&mut out, rec);
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"");
    if set.dropped > 0 {
        let _ = write!(out, ",\"droppedSpans\":{}", set.dropped);
    }
    out.push_str("}\n");
    out
}

fn push_trace_event(out: &mut String, rec: &SpanRecord) {
    out.push_str("{\"ph\":\"X\",\"pid\":0,\"tid\":");
    let _ = write!(out, "{}", rec.tid);
    out.push_str(",\"name\":");
    push_jstr(out, rec.kind.name());
    out.push_str(",\"cat\":");
    push_jstr(out, rec.kind.category());
    out.push_str(",\"ts\":");
    push_jnum(out, rec.start_ns as f64 / 1e3);
    out.push_str(",\"dur\":");
    push_jnum(out, rec.dur_ns as f64 / 1e3);
    let _ = write!(out, ",\"args\":{{\"arg\":{}}}}}", rec.arg);
}

// ---------------------------------------------------------------------------
// JSONL metrics export
// ---------------------------------------------------------------------------

/// A [`MetricsSink`] that renders the stream as JSON Lines: one `meta`
/// line, one `iter` line per convergence check, one `finish` line.
#[derive(Debug, Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The rendered JSONL document.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl MetricsSink for JsonlSink {
    fn on_meta(&mut self, meta: &SolveMeta) {
        let out = &mut self.out;
        out.push_str("{\"type\":\"meta\",\"method\":");
        push_jstr(out, meta.method);
        let _ = write!(out, ",\"s\":{},\"norm\":", meta.s);
        push_jstr(out, meta.norm);
        out.push_str(",\"rtol\":");
        push_jnum(out, meta.rtol);
        let _ = write!(out, ",\"threads\":{},\"stagnation\":", meta.threads);
        match meta.stagnation {
            Some(cfg) => {
                let _ = write!(out, "{{\"window\":{},\"min_ratio\":", cfg.window);
                push_jnum(out, cfg.min_ratio);
                out.push('}');
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"nrows\":{},\"nnz\":{},\"spmv_format\":",
            meta.nrows, meta.nnz
        );
        push_jstr(out, meta.spmv_format);
        out.push_str(",\"spmv_model_bytes_per_nnz\":");
        push_jnum(out, meta.spmv_model_bytes_per_nnz);
        out.push_str(",\"pc_flops_per_row\":");
        push_jnum(out, meta.pc_flops_per_row);
        out.push_str(",\"pc_bytes_per_row\":");
        push_jnum(out, meta.pc_bytes_per_row);
        out.push_str("}\n");
    }

    fn on_iter(&mut self, rec: &IterRecord) {
        let out = &mut self.out;
        let _ = write!(
            out,
            "{{\"type\":\"iter\",\"seq\":{},\"iter\":{},\"t_ns\":{},\"relres\":",
            rec.seq, rec.iter, rec.t_ns
        );
        push_jnum(out, rec.sample.relres);
        out.push_str(",\"rr\":");
        push_jnum(out, rec.sample.norms_sq[0]);
        out.push_str(",\"uu\":");
        push_jnum(out, rec.sample.norms_sq[1]);
        out.push_str(",\"ru\":");
        push_jnum(out, rec.sample.norms_sq[2]);
        out.push_str(",\"alpha\":");
        push_jnum_arr(out, &rec.sample.alpha);
        out.push_str(",\"beta\":");
        push_jnum_arr(out, &rec.sample.beta);
        out.push_str(",\"gamma\":");
        push_jnum(out, rec.sample.gamma);
        let _ = write!(
            out,
            ",\"spmv\":{},\"pc\":{},\"allreduce\":{}",
            rec.kernels.spmv, rec.kernels.pc, rec.kernels.allreduce
        );
        let _ = write!(
            out,
            ",\"d_spmv\":{},\"d_pc\":{},\"d_allreduce\":{}",
            rec.d_kernels.spmv, rec.d_kernels.pc, rec.d_kernels.allreduce
        );
        let _ = write!(
            out,
            ",\"window_ns\":{},\"kernel_in_window_ns\":{},\"overlap\":",
            rec.window_ns, rec.kernel_in_window_ns
        );
        push_jnum(out, rec.overlap_ratio());
        out.push_str("}\n");
    }

    fn on_finish(&mut self, fin: &FinishRecord) {
        let out = &mut self.out;
        let _ = write!(
            out,
            "{{\"type\":\"finish\",\"iterations\":{},\"stop\":",
            fin.iterations
        );
        push_jstr(out, fin.stop);
        out.push_str(",\"final_relres\":");
        push_jnum(out, fin.final_relres);
        let _ = write!(
            out,
            ",\"spmv\":{},\"pc\":{},\"allreduce\":{}",
            fin.kernels.spmv, fin.kernels.pc, fin.kernels.allreduce
        );
        let _ = write!(
            out,
            ",\"d_spmv\":{},\"d_pc\":{},\"d_allreduce\":{}",
            fin.d_kernels.spmv, fin.d_kernels.pc, fin.d_kernels.allreduce
        );
        let _ = write!(
            out,
            ",\"window_ns\":{},\"kernel_in_window_ns\":{},\"achieved_overlap\":",
            fin.window_ns, fin.kernel_in_window_ns
        );
        push_jnum(out, fin.achieved_overlap());
        let _ = write!(
            out,
            ",\"stagnation_fired\":{},\"faults_injected\":{},\"recoveries\":{},\"wall_ns\":{}",
            fin.stagnation_fired, fin.faults_injected, fin.recoveries, fin.wall_ns
        );
        let p = &fin.pool;
        let _ = write!(
            out,
            ",\"pool\":{{\"jobs\":{},\"parallel_jobs\":{},\"inline_fallback\":{},\
             \"inline_small\":{},\"chunks\":{}}}",
            p.jobs, p.parallel_jobs, p.inline_fallback, p.inline_small, p.chunks
        );
        out.push_str("}\n");
    }
}

/// Renders a [`SolveTelemetry`] stream as JSON Lines.
pub fn metrics_jsonl(t: &SolveTelemetry) -> String {
    let mut sink = JsonlSink::new();
    t.emit(&mut sink);
    sink.into_string()
}

// ---------------------------------------------------------------------------
// Aggregate export
// ---------------------------------------------------------------------------

/// Renders an [`AggregateReport`] as a single JSON object: one entry per
/// span kind with count/sum/min/max/p50/p95/p99 plus the sparse non-zero
/// bins (`[index, count]` pairs; edges are implied by the fixed bin grid,
/// see DESIGN.md §13).
pub fn aggregate_json(report: &AggregateReport) -> String {
    let mut out = String::with_capacity(128 + report.kinds.len() * 256);
    out.push_str("{\"type\":\"aggregate\",\"bins\":");
    let _ = write!(out, "{}", crate::agg::BINS);
    out.push_str(",\"kinds\":[");
    for (i, k) in report.kinds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let h = &k.hist;
        out.push_str("{\"kind\":");
        push_jstr(&mut out, k.kind.name());
        let _ = write!(
            out,
            ",\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{}",
            h.count,
            h.sum_ns,
            if h.count == 0 { 0 } else { h.min_ns },
            h.max_ns
        );
        let _ = write!(
            out,
            ",\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}",
            h.percentile_ns(0.50),
            h.percentile_ns(0.95),
            h.percentile_ns(0.99)
        );
        out.push_str(",\"hist\":[");
        let mut first = true;
        for (idx, &c) in h.counts.iter().enumerate() {
            if c > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{idx},{c}]");
            }
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Summary returned by [`validate_aggregate_json`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AggregateCheck {
    /// Span kinds present.
    pub kinds: usize,
    /// Total spans across all kinds.
    pub spans: u64,
}

/// Structurally validates an aggregate document: known span kinds, each
/// with `count`/`sum_ns`/percentiles, whose sparse bins sum to `count`.
pub fn validate_aggregate_json(text: &str) -> Result<AggregateCheck, String> {
    let doc = parse_json(text)?;
    if doc.get("type").and_then(Json::as_str) != Some("aggregate") {
        return Err("type is not 'aggregate'".into());
    }
    let kinds = doc
        .get("kinds")
        .and_then(Json::as_arr)
        .ok_or("missing kinds array")?;
    let mut check = AggregateCheck {
        kinds: kinds.len(),
        spans: 0,
    };
    for (i, k) in kinds.iter().enumerate() {
        let name = k
            .get("kind")
            .and_then(Json::as_str)
            .ok_or(format!("kind {i}: missing kind name"))?;
        if SpanKind::parse(name).is_none() {
            return Err(format!("kind {i}: unknown span kind '{name}'"));
        }
        let count = k
            .get("count")
            .and_then(Json::as_f64)
            .ok_or(format!("kind {i}: missing count"))? as u64;
        for key in ["sum_ns", "min_ns", "max_ns", "p50_ns", "p95_ns", "p99_ns"] {
            if k.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("kind {i}: missing {key}"));
            }
        }
        let hist = k
            .get("hist")
            .and_then(Json::as_arr)
            .ok_or(format!("kind {i}: missing hist"))?;
        let mut binned = 0u64;
        for (j, pair) in hist.iter().enumerate() {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or(format!("kind {i}: hist entry {j} is not [index,count]"))?;
            let idx = pair[0].as_f64().unwrap_or(-1.0);
            if !(0.0..crate::agg::BINS as f64).contains(&idx) {
                return Err(format!("kind {i}: hist entry {j} index out of range"));
            }
            binned += pair[1].as_f64().unwrap_or(0.0) as u64;
        }
        if binned != count {
            return Err(format!(
                "kind {i}: bins sum to {binned}, count says {count}"
            ));
        }
        check.spans += count;
    }
    Ok(check)
}

// ---------------------------------------------------------------------------
// Validators
// ---------------------------------------------------------------------------

/// Summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeCheck {
    /// Total events in the trace.
    pub events: usize,
    /// Complete (`"X"`) events.
    pub complete: usize,
    /// Matched `"B"`/`"E"` pairs.
    pub pairs: usize,
}

/// Structurally validates a Chrome trace-event document: top level is an
/// event array or an object with a `traceEvents` array; every `"X"` event
/// carries `name`/`ts`/`dur`; every `"B"` has a matching `"E"` (same
/// `pid`/`tid`, LIFO order, same name); metadata (`"M"`) events pass.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeCheck, String> {
    let doc = parse_json(text)?;
    let events = match &doc {
        Json::Arr(_) => &doc,
        Json::Obj(_) => doc
            .get("traceEvents")
            .ok_or("object trace without traceEvents")?,
        _ => return Err("trace is neither array nor object".into()),
    };
    let events = events.as_arr().ok_or("traceEvents is not an array")?;
    let mut check = ChromeCheck {
        events: events.len(),
        ..Default::default()
    };
    // Open "B" stacks per (pid, tid) lane: (name).
    let mut open: std::collections::HashMap<(i64, i64), Vec<String>> =
        std::collections::HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        let lane = || -> (i64, i64) {
            let pid = ev.get("pid").and_then(Json::as_f64).unwrap_or(0.0) as i64;
            let tid = ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as i64;
            (pid, tid)
        };
        match ph {
            "X" => {
                for key in ["name", "ts", "dur"] {
                    if ev.get(key).is_none() {
                        return Err(format!("event {i}: X without {key}"));
                    }
                }
                if ev.get("ts").and_then(Json::as_f64).is_none()
                    || ev.get("dur").and_then(Json::as_f64).is_none()
                {
                    return Err(format!("event {i}: non-numeric ts/dur"));
                }
                check.complete += 1;
            }
            "B" => {
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("event {i}: B without name"))?;
                open.entry(lane()).or_default().push(name.to_string());
            }
            "E" => {
                let stack = open.entry(lane()).or_default();
                let Some(top) = stack.pop() else {
                    return Err(format!("event {i}: E without open B"));
                };
                if let Some(name) = ev.get("name").and_then(Json::as_str) {
                    if name != top {
                        return Err(format!("event {i}: E for '{name}' closes open '{top}'"));
                    }
                }
                check.pairs += 1;
            }
            "M" | "C" | "I" | "i" => {}
            other => return Err(format!("event {i}: unsupported phase '{other}'")),
        }
    }
    for ((pid, tid), stack) in &open {
        if !stack.is_empty() {
            return Err(format!(
                "unclosed B event '{}' on pid {pid} tid {tid}",
                stack.last().unwrap()
            ));
        }
    }
    Ok(check)
}

/// Summary returned by [`validate_metrics_jsonl`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonlCheck {
    /// Number of `iter` lines.
    pub iters: usize,
    /// The `relres` value of each `iter` line, in order (bitwise as
    /// written, via shortest-roundtrip parsing).
    pub relres: Vec<f64>,
    /// The `final_relres` of the `finish` line.
    pub final_relres: f64,
    /// The `achieved_overlap` of the `finish` line (NaN when absent/null).
    pub achieved_overlap: f64,
}

/// Structurally validates a metrics JSONL document: every line parses as
/// an object with a `type`; the first is `meta`; `iter` lines carry
/// strictly increasing `seq`, non-decreasing `iter`, and a numeric or
/// null `relres`; the last line is the single `finish`.
pub fn validate_metrics_jsonl(text: &str) -> Result<JsonlCheck, String> {
    let mut check = JsonlCheck {
        achieved_overlap: f64::NAN,
        ..Default::default()
    };
    let mut seen_meta = false;
    let mut seen_finish = false;
    let mut last_seq: Option<i64> = None;
    let mut last_iter: Option<i64> = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ty = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or(format!("line {}: missing type", lineno + 1))?;
        if seen_finish {
            return Err(format!("line {}: record after finish", lineno + 1));
        }
        match ty {
            "meta" => {
                if seen_meta {
                    return Err(format!("line {}: duplicate meta", lineno + 1));
                }
                if lineno != 0 {
                    return Err(format!("line {}: meta is not first", lineno + 1));
                }
                for key in [
                    "method",
                    "s",
                    "norm",
                    "rtol",
                    "threads",
                    "nrows",
                    "nnz",
                    "spmv_format",
                    "spmv_model_bytes_per_nnz",
                ] {
                    if doc.get(key).is_none() {
                        return Err(format!("line {}: meta without {key}", lineno + 1));
                    }
                }
                seen_meta = true;
            }
            "iter" => {
                if !seen_meta {
                    return Err(format!("line {}: iter before meta", lineno + 1));
                }
                let seq = doc
                    .get("seq")
                    .and_then(Json::as_f64)
                    .ok_or(format!("line {}: iter without seq", lineno + 1))?
                    as i64;
                if let Some(prev) = last_seq {
                    if seq <= prev {
                        return Err(format!(
                            "line {}: seq {seq} not greater than {prev}",
                            lineno + 1
                        ));
                    }
                }
                last_seq = Some(seq);
                let iter = doc
                    .get("iter")
                    .and_then(Json::as_f64)
                    .ok_or(format!("line {}: iter without iter index", lineno + 1))?
                    as i64;
                if let Some(prev) = last_iter {
                    if iter < prev {
                        return Err(format!(
                            "line {}: iteration index {iter} decreased from {prev}",
                            lineno + 1
                        ));
                    }
                }
                last_iter = Some(iter);
                let relres = match doc.get("relres") {
                    Some(Json::Num(v)) => *v,
                    Some(Json::Null) => f64::NAN,
                    _ => return Err(format!("line {}: iter without relres", lineno + 1)),
                };
                check.relres.push(relres);
                check.iters += 1;
            }
            "finish" => {
                if !seen_meta {
                    return Err(format!("line {}: finish before meta", lineno + 1));
                }
                for key in ["iterations", "stop", "final_relres"] {
                    if doc.get(key).is_none() {
                        return Err(format!("line {}: finish without {key}", lineno + 1));
                    }
                }
                check.final_relres = doc
                    .get("final_relres")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN);
                check.achieved_overlap = doc
                    .get("achieved_overlap")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN);
                seen_finish = true;
            }
            other => return Err(format!("line {}: unknown type '{other}'", lineno + 1)),
        }
    }
    if !seen_meta {
        return Err("no meta line".into());
    }
    if !seen_finish {
        return Err("no finish line".into());
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{
        FinishRecord, IterRecord, IterSample, KernelCounts, PoolCounters, SolveMeta, SolveTelemetry,
    };
    use crate::span::{SpanKind, SpanRecord, SpanSet};
    use crate::stagnation::StagnationConfig;

    fn sample_set() -> SpanSet {
        let mk = |kind, arg, start_ns, dur_ns, tid| SpanRecord {
            kind,
            arg,
            start_ns,
            dur_ns,
            tid,
        };
        SpanSet {
            records: vec![
                mk(SpanKind::ArWindow, 1, 100, 900, 0),
                mk(SpanKind::Spmv, 0, 150, 300, 0),
                mk(SpanKind::Pc, 0, 500, 200, 0),
                mk(SpanKind::Gram, 0, 1200, 80, 1),
                mk(SpanKind::Iter, 0, 0, 1500, 0),
            ],
            dropped: 0,
        }
    }

    fn sample_stream() -> SolveTelemetry {
        let meta = SolveMeta {
            method: "PIPE-PsCG",
            s: 4,
            norm: "preconditioned",
            rtol: 1e-5,
            threads: 2,
            stagnation: Some(StagnationConfig {
                window: 6,
                min_ratio: 0.98,
            }),
            nrows: 512,
            nnz: 3392,
            spmv_format: "sym-csr",
            spmv_model_bytes_per_nnz: 9.62,
            pc_flops_per_row: 1.0,
            pc_bytes_per_row: 24.0,
        };
        let iter = |seq: usize, iter: usize, relres: f64, spmv: u64| IterRecord {
            seq,
            iter,
            sample: IterSample {
                iter,
                relres,
                norms_sq: [relres * relres, f64::NAN, 0.25],
                alpha: vec![0.5, 0.25],
                beta: vec![0.0, 0.1, 0.2, 0.3],
                gamma: f64::NAN,
            },
            t_ns: 1000 * (seq as u64 + 1),
            kernels: KernelCounts {
                spmv,
                pc: spmv + 1,
                allreduce: seq as u64 + 1,
            },
            d_kernels: KernelCounts {
                spmv: 4,
                pc: 4,
                allreduce: 1,
            },
            window_ns: 800,
            kernel_in_window_ns: 600,
        };
        SolveTelemetry {
            meta,
            iters: vec![iter(0, 0, 1.0, 4), iter(1, 4, 1.25e-3, 8)],
            finish: FinishRecord {
                iterations: 8,
                stop: "Converged",
                final_relres: 1.25e-3,
                kernels: KernelCounts {
                    spmv: 8,
                    pc: 9,
                    allreduce: 2,
                },
                d_kernels: KernelCounts::default(),
                window_ns: 1600,
                kernel_in_window_ns: 1200,
                stagnation_fired: false,
                faults_injected: 0,
                recoveries: 0,
                pool: PoolCounters {
                    jobs: 40,
                    parallel_jobs: 30,
                    inline_fallback: 2,
                    inline_small: 8,
                    chunks: 160,
                },
                wall_ns: 5000,
            },
        }
    }

    #[test]
    fn chrome_trace_roundtrips_and_validates() {
        let text = chrome_trace(&sample_set());
        let check = validate_chrome_trace(&text).expect("valid trace");
        assert_eq!(check.events, 6, "5 spans + 1 metadata event");
        assert_eq!(check.complete, 5);
        // Spot-check one event survived with its timing intact.
        let doc = parse_json(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let spmv = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("spmv"))
            .unwrap();
        assert_eq!(spmv.get("ts").unwrap().as_f64(), Some(0.15));
        assert_eq!(spmv.get("dur").unwrap().as_f64(), Some(0.3));
        assert_eq!(spmv.get("cat").and_then(Json::as_str), Some("kernel"));
    }

    #[test]
    fn chrome_trace_reports_dropped_spans() {
        let mut set = sample_set();
        set.dropped = 17;
        let text = chrome_trace(&set);
        let doc = parse_json(&text).unwrap();
        assert_eq!(doc.get("droppedSpans").unwrap().as_f64(), Some(17.0));
        validate_chrome_trace(&text).expect("still valid");
    }

    #[test]
    fn chrome_validator_accepts_matched_be_and_rejects_mismatches() {
        let good = r#"[{"ph":"B","pid":0,"tid":1,"name":"a","ts":1},
                       {"ph":"B","pid":0,"tid":1,"name":"b","ts":2},
                       {"ph":"E","pid":0,"tid":1,"name":"b","ts":3},
                       {"ph":"E","pid":0,"tid":1,"name":"a","ts":4}]"#;
        assert_eq!(validate_chrome_trace(good).unwrap().pairs, 2);

        let crossed = r#"[{"ph":"B","pid":0,"tid":1,"name":"a","ts":1},
                          {"ph":"B","pid":0,"tid":1,"name":"b","ts":2},
                          {"ph":"E","pid":0,"tid":1,"name":"a","ts":3},
                          {"ph":"E","pid":0,"tid":1,"name":"b","ts":4}]"#;
        assert!(validate_chrome_trace(crossed).is_err(), "crossed B/E");

        let unclosed = r#"[{"ph":"B","pid":0,"tid":1,"name":"a","ts":1}]"#;
        assert!(validate_chrome_trace(unclosed).is_err(), "unclosed B");

        let orphan = r#"[{"ph":"E","pid":0,"tid":1,"name":"a","ts":1}]"#;
        assert!(validate_chrome_trace(orphan).is_err(), "E without B");

        let bare_x = r#"[{"ph":"X","name":"k","ts":1}]"#;
        assert!(validate_chrome_trace(bare_x).is_err(), "X without dur");
    }

    #[test]
    fn jsonl_roundtrips_bitwise_and_validates() {
        let stream = sample_stream();
        let text = metrics_jsonl(&stream);
        let check = validate_metrics_jsonl(&text).expect("valid jsonl");
        assert_eq!(check.iters, 2);
        // Shortest-roundtrip write + parse: bitwise identity.
        assert_eq!(check.relres[0].to_bits(), 1.0f64.to_bits());
        assert_eq!(check.relres[1].to_bits(), 1.25e-3f64.to_bits());
        assert_eq!(check.final_relres.to_bits(), 1.25e-3f64.to_bits());
        assert_eq!(check.achieved_overlap, 0.75);
        // NaN norms render as null and come back as NaN in raw parses.
        let first_iter = text.lines().nth(1).unwrap();
        let doc = parse_json(first_iter).unwrap();
        assert_eq!(doc.get("uu"), Some(&Json::Null));
        assert_eq!(doc.get("rr").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn jsonl_exercises_awkward_floats() {
        let mut stream = sample_stream();
        // Values whose decimal forms stress the writer: subnormal, huge,
        // many digits.
        let awkward = [5e-324, 1.7976931348623157e308, 0.1 + 0.2, 1.0 / 3.0];
        for (i, &v) in awkward.iter().enumerate() {
            stream.iters[0].sample.alpha[0] = v;
            stream.iters[i % 2].sample.relres = v;
            let text = metrics_jsonl(&stream);
            let check = validate_metrics_jsonl(&text).expect("valid");
            assert_eq!(check.relres[i % 2].to_bits(), v.to_bits(), "value {v:e}");
        }
    }

    #[test]
    fn jstr_escapes_control_and_non_ascii_to_pure_ascii_roundtrip() {
        // Control chars (incl. DEL), BMP non-ASCII, supplementary-plane
        // emoji, quotes and backslashes — everything must escape to pure
        // ASCII and decode back to the identical string.
        let awkward = "naïve κ∇·u \u{1}\u{7f}\u{9f} 𝒮 😀 \"q\\b\"\n\t\r";
        let mut out = String::new();
        push_jstr(&mut out, awkward);
        assert!(out.is_ascii(), "escaped JSON must be pure ASCII: {out}");
        let back = parse_json(&out).expect("escaped string reparses");
        assert_eq!(back.as_str(), Some(awkward), "round-trip identity");
    }

    #[test]
    fn meta_with_non_ascii_method_name_roundtrips_through_jsonl() {
        let mut stream = sample_stream();
        stream.meta.method = "PIPE-PsCG·κ 😀\u{7}";
        let text = metrics_jsonl(&stream);
        assert!(text.is_ascii(), "exported JSONL must be pure ASCII");
        validate_metrics_jsonl(&text).expect("valid jsonl");
        let meta_line = text.lines().next().unwrap();
        let doc = parse_json(meta_line).unwrap();
        assert_eq!(
            doc.get("method").and_then(Json::as_str),
            Some("PIPE-PsCG·κ 😀\u{7}")
        );
        assert_eq!(
            doc.get("spmv_format").and_then(Json::as_str),
            Some("sym-csr")
        );
        assert_eq!(doc.get("nnz").and_then(Json::as_f64), Some(3392.0));
    }

    #[test]
    fn aggregate_json_roundtrips_and_validates() {
        use crate::agg::{AggregateReport, KindAggregate, LogHistogram};
        let mut h = LogHistogram::default();
        for v in [10u64, 20, 30, 1000, 5000] {
            h.record(v);
        }
        let mut h2 = LogHistogram::default();
        h2.record(7);
        let report = AggregateReport {
            kinds: vec![
                KindAggregate {
                    kind: SpanKind::Spmv,
                    hist: h.clone(),
                },
                KindAggregate {
                    kind: SpanKind::Allreduce,
                    hist: h2,
                },
            ],
        };
        let text = aggregate_json(&report);
        let check = validate_aggregate_json(&text).expect("valid aggregate");
        assert_eq!(check.kinds, 2);
        assert_eq!(check.spans, 6);
        // Percentiles in the document match the in-memory histogram.
        let doc = parse_json(text.trim()).unwrap();
        let spmv = &doc.get("kinds").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            spmv.get("p50_ns").and_then(Json::as_f64),
            Some(h.percentile_ns(0.5) as f64)
        );
        assert_eq!(spmv.get("count").and_then(Json::as_f64), Some(5.0));
        // A corrupted count is rejected (bins no longer sum to it).
        let broken = text.replace("\"count\":5", "\"count\":9");
        assert!(validate_aggregate_json(&broken).is_err());
        assert!(validate_aggregate_json("{\"type\":\"aggregate\"}").is_err());
    }

    #[test]
    fn jsonl_validator_rejects_structural_breaks() {
        let stream = sample_stream();
        let good = metrics_jsonl(&stream);

        // Drop the meta line.
        let no_meta: String = good.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert!(validate_metrics_jsonl(&no_meta).is_err());

        // Drop the finish line.
        let lines: Vec<&str> = good.lines().collect();
        let no_finish: String = lines[..lines.len() - 1]
            .iter()
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(validate_metrics_jsonl(&no_finish).is_err());

        // Repeat an iter line before finish: seq no longer strictly
        // increasing. lines = [meta, iter0, iter1, finish].
        let dup = format!(
            "{}\n{}\n{}\n{}\n{}\n",
            lines[0], lines[1], lines[2], lines[1], lines[3]
        );
        assert!(validate_metrics_jsonl(&dup).is_err(), "duplicated seq");

        // Corrupt a line.
        let broken = good.replace("\"type\":\"iter\"", "\"type\":");
        assert!(validate_metrics_jsonl(&broken).is_err());
    }
}

//! Roofline attribution: joining measured spans with modelled kernel
//! costs.
//!
//! This module is deliberately *numeric*: it knows span kinds, durations
//! and plain per-call FLOP/byte figures, nothing about where those figures
//! come from. The dependency DAG forces this — `pipescg` (which owns the
//! cost model) depends on this crate, so the glue that derives
//! [`KernelModel`]s from `pscg-ir` node metadata and
//! `costmodel::spmv_model_bytes` lives downstream in `pscg-bench`'s
//! `perf_report` module. The join semantics (DESIGN.md §13): each model
//! carries the *per-invocation* cost of its span kind; attribution
//! multiplies by the measured invocation count and divides by measured
//! time, giving achieved GFLOP/s and GB/s **under the model's traffic
//! assumption** — the roofline convention, where "achieved bandwidth"
//! means model bytes over measured seconds.

use crate::agg::AggregateReport;
use crate::span::{SpanKind, SpanRecord, SpanSet};

/// Modelled per-invocation cost of one span kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelModel {
    /// The span kind this model prices.
    pub kind: SpanKind,
    /// FLOPs one invocation performs under the model.
    pub flops_per_call: f64,
    /// Bytes one invocation moves under the model.
    pub bytes_per_call: f64,
}

/// One row of the attribution join: measured time × modelled work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelAttribution {
    /// The span kind.
    pub kind: SpanKind,
    /// Measured invocations.
    pub count: usize,
    /// Measured total duration (ns).
    pub total_ns: u64,
    /// `count × flops_per_call`.
    pub model_flops: f64,
    /// `count × bytes_per_call`.
    pub model_bytes: f64,
}

impl KernelAttribution {
    /// Achieved GFLOP/s: model FLOPs over measured time. (FLOPs per
    /// nanosecond *is* GFLOP/s.)
    pub fn achieved_gflops(&self) -> f64 {
        self.model_flops / self.total_ns as f64
    }

    /// Achieved GB/s under the model's traffic assumption: model bytes
    /// over measured time. (Bytes per nanosecond *is* GB/s.)
    pub fn achieved_gbps(&self) -> f64 {
        self.model_bytes / self.total_ns as f64
    }

    /// Mean invocation duration (ns).
    pub fn mean_ns(&self) -> f64 {
        self.total_ns as f64 / self.count as f64
    }
}

fn join(
    models: &[KernelModel],
    measure: impl Fn(SpanKind) -> (usize, u64),
) -> Vec<KernelAttribution> {
    models
        .iter()
        .filter_map(|m| {
            let (count, total_ns) = measure(m.kind);
            (count > 0).then_some(KernelAttribution {
                kind: m.kind,
                count,
                total_ns,
                model_flops: count as f64 * m.flops_per_call,
                model_bytes: count as f64 * m.bytes_per_call,
            })
        })
        .collect()
}

/// Joins a full-trace [`SpanSet`] with per-kind models. Kinds with no
/// recorded spans are omitted (no time to attribute against).
pub fn attribute(set: &SpanSet, models: &[KernelModel]) -> Vec<KernelAttribution> {
    join(models, |kind| (set.count(kind), set.total_ns(kind)))
}

/// The same join over an [`AggregateReport`] — attribution works
/// identically in aggregate mode because it only needs per-kind counts
/// and total durations, both of which the histograms preserve exactly.
pub fn attribute_agg(report: &AggregateReport, models: &[KernelModel]) -> Vec<KernelAttribution> {
    join(models, |kind| (report.count(kind), report.total_ns(kind)))
}

/// Per-window overlap quality over a full trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Post→wait windows observed.
    pub windows: usize,
    /// Total window duration (ns).
    pub window_ns: u64,
    /// Total kernel time inside windows (ns), attributed per thread by
    /// span start (exact on the engines — see `span` module docs).
    pub kernel_in_window_ns: u64,
    /// The worst single window's kernel-fill ratio.
    pub min_ratio: f64,
    /// Unweighted mean of per-window kernel-fill ratios.
    pub mean_ratio: f64,
}

impl WindowStats {
    /// Time-weighted achieved-overlap ratio (total kernel-in-window over
    /// total window time).
    pub fn achieved_overlap(&self) -> f64 {
        self.kernel_in_window_ns as f64 / self.window_ns as f64
    }
}

/// Computes per-window overlap statistics from a full trace: for each
/// `ArWindow` span, the kernel spans on the *same thread* whose start
/// falls inside the window count toward its fill (the same attribution
/// rule as the live `KERNEL_IN_WINDOW_NS` counter, reconstructed per
/// window). `None` when the trace has no windows — e.g. any
/// non-pipelined method.
pub fn window_stats(set: &SpanSet) -> Option<WindowStats> {
    let windows: Vec<&SpanRecord> = set
        .records
        .iter()
        .filter(|r| r.kind == SpanKind::ArWindow)
        .collect();
    if windows.is_empty() {
        return None;
    }
    let mut stats = WindowStats {
        windows: windows.len(),
        window_ns: 0,
        kernel_in_window_ns: 0,
        min_ratio: f64::INFINITY,
        mean_ratio: 0.0,
    };
    for w in &windows {
        let filled: u64 = set
            .records
            .iter()
            .filter(|r| {
                r.kind.is_kernel()
                    && r.tid == w.tid
                    && r.start_ns >= w.start_ns
                    && r.start_ns < w.end_ns()
            })
            .map(|r| r.dur_ns)
            .sum();
        stats.window_ns += w.dur_ns;
        stats.kernel_in_window_ns += filled;
        let ratio = if w.dur_ns == 0 {
            // A zero-length window can hold no kernels; count it as fully
            // overlapped rather than poisoning min/mean with NaN.
            1.0
        } else {
            filled as f64 / w.dur_ns as f64
        };
        stats.min_ratio = stats.min_ratio.min(ratio);
        stats.mean_ratio += ratio;
    }
    stats.mean_ratio /= windows.len() as f64;
    Some(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: SpanKind, start_ns: u64, dur_ns: u64, tid: u64) -> SpanRecord {
        SpanRecord {
            kind,
            arg: 0,
            start_ns,
            dur_ns,
            tid,
        }
    }

    #[test]
    fn attribution_join_multiplies_counts_and_divides_time() {
        let set = SpanSet {
            records: vec![
                rec(SpanKind::Spmv, 0, 100, 0),
                rec(SpanKind::Spmv, 200, 300, 0),
                rec(SpanKind::Pc, 600, 50, 0),
            ],
            dropped: 0,
        };
        let models = [
            KernelModel {
                kind: SpanKind::Spmv,
                flops_per_call: 2000.0,
                bytes_per_call: 12000.0,
            },
            KernelModel {
                kind: SpanKind::Pc,
                flops_per_call: 500.0,
                bytes_per_call: 8000.0,
            },
            KernelModel {
                kind: SpanKind::Mpk,
                flops_per_call: 1.0,
                bytes_per_call: 1.0,
            },
        ];
        let rows = attribute(&set, &models);
        assert_eq!(rows.len(), 2, "unmeasured kinds are omitted");
        let spmv = rows.iter().find(|r| r.kind == SpanKind::Spmv).unwrap();
        assert_eq!(spmv.count, 2);
        assert_eq!(spmv.total_ns, 400);
        assert_eq!(spmv.model_flops, 4000.0);
        assert_eq!(spmv.achieved_gflops(), 10.0, "4000 flops / 400 ns");
        assert_eq!(spmv.achieved_gbps(), 60.0, "24000 B / 400 ns");
        assert_eq!(spmv.mean_ns(), 200.0);

        // The aggregate-mode join sees the identical numbers.
        let mut report = AggregateReport::default();
        for r in &set.records {
            let idx = report.kinds.iter().position(|k| k.kind == r.kind);
            let k = match idx {
                Some(i) => &mut report.kinds[i],
                None => {
                    report.kinds.push(crate::agg::KindAggregate {
                        kind: r.kind,
                        hist: crate::agg::LogHistogram::default(),
                    });
                    report.kinds.last_mut().unwrap()
                }
            };
            k.hist.record(r.dur_ns);
        }
        let agg_rows = attribute_agg(&report, &models);
        assert_eq!(rows, agg_rows, "full-trace and aggregate joins agree");
    }

    #[test]
    fn window_stats_attributes_by_thread_and_start() {
        let set = SpanSet {
            records: vec![
                // Window on tid 0: [100, 1100), 60% filled.
                rec(SpanKind::ArWindow, 100, 1000, 0),
                rec(SpanKind::Spmv, 150, 400, 0),
                rec(SpanKind::Pc, 600, 200, 0),
                // A kernel on ANOTHER thread inside the time range: no
                // credit (per-thread attribution).
                rec(SpanKind::Gram, 200, 500, 1),
                // A kernel on tid 0 starting after the window: no credit.
                rec(SpanKind::Dot, 1200, 100, 0),
                // Comm inside the window: never credited.
                rec(SpanKind::Allreduce, 300, 100, 0),
                // Second window on tid 1: [2000, 2100), empty.
                rec(SpanKind::ArWindow, 2000, 100, 1),
            ],
            dropped: 0,
        };
        let stats = window_stats(&set).expect("windows present");
        assert_eq!(stats.windows, 2);
        assert_eq!(stats.window_ns, 1100);
        assert_eq!(stats.kernel_in_window_ns, 600);
        assert_eq!(stats.min_ratio, 0.0, "the empty window");
        assert_eq!(stats.mean_ratio, 0.3, "(0.6 + 0.0) / 2");
        assert!((stats.achieved_overlap() - 600.0 / 1100.0).abs() < 1e-12);

        let no_windows = SpanSet {
            records: vec![rec(SpanKind::Spmv, 0, 10, 0)],
            dropped: 0,
        };
        assert!(window_stats(&no_windows).is_none());
    }
}

//! Streaming aggregation: O(1)-memory per-kind duration histograms.
//!
//! Full-trace mode retains every span, which is the right tool for a
//! Chrome-trace deep dive but not for replay campaigns at 10⁵+ modeled
//! ranks. In [`crate::TelemetryMode::Aggregate`] each span folds into a
//! fixed-size [`LogHistogram`] per [`SpanKind`] per thread — recording
//! stays contention-free exactly like the span rings — and [`drain`]
//! merges the per-thread tables into one [`AggregateReport`].
//!
//! # Bin scheme (deterministic, merge-associative)
//!
//! Quarter-octave log bins: a duration `v` ns lands in bin
//! `4·lg + sub` where `lg = floor(log2 v)` and `sub` is the two bits
//! below the leading bit (so each octave splits into 4 sub-bins, ~19%
//! relative width). 64 octaves × 4 sub-bins = 256 bins cover the full
//! `u64` range with no saturation. Bin edges are pure integer functions
//! of the index — independent of recording order, thread count, or merge
//! order — and merging is element-wise integer addition, hence
//! associative and commutative. Percentiles return the **lower edge** of
//! the bin holding rank `ceil(q·count)`, so p50/p95/p99 are identical
//! for any partition of the same multiset of durations
//! (`tests` property-checks this; `tests/observatory_inert.rs` checks it
//! end to end across thread counts).

use crate::span::{SpanKind, SpanRecord};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram bins: 64 octaves × 4 quarter-octave sub-bins.
pub const BINS: usize = 256;

/// A fixed-size log-binned histogram of span durations (nanoseconds).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Per-bin counts, indexed by [`LogHistogram::bin_index`].
    pub counts: [u64; BINS],
    /// Total recorded durations.
    pub count: u64,
    /// Exact sum of recorded durations (u128: no overflow at any scale).
    pub sum_ns: u128,
    /// Smallest recorded duration (`u64::MAX` when empty).
    pub min_ns: u64,
    /// Largest recorded duration (0 when empty).
    pub max_ns: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: [0; BINS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl LogHistogram {
    /// The bin a duration falls into. `0` shares the first bin with `1`.
    pub fn bin_index(v: u64) -> usize {
        if v == 0 {
            return 0;
        }
        let lg = 63 - v.leading_zeros() as usize;
        let sub = if lg >= 2 {
            ((v >> (lg - 2)) & 3) as usize
        } else {
            ((v << (2 - lg)) & 3) as usize
        };
        lg * 4 + sub
    }

    /// Lower edge (inclusive) of bin `idx` in nanoseconds. Pure in `idx`:
    /// the edge grid is a process-independent constant.
    pub fn bin_lower_edge(idx: usize) -> u64 {
        let (lg, sub) = (idx / 4, (idx % 4) as u64);
        if lg < 2 {
            ((4 + sub) << lg) >> 2
        } else {
            (4 + sub) << (lg - 2)
        }
    }

    /// Records one duration.
    pub fn record(&mut self, dur_ns: u64) {
        self.counts[Self::bin_index(dur_ns)] += 1;
        self.count += 1;
        self.sum_ns += dur_ns as u128;
        self.min_ns = self.min_ns.min(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
    }

    /// Folds `other` into `self`. Element-wise integer addition plus
    /// min/max/sum combination: associative and commutative, so any merge
    /// tree over the same spans yields bitwise-identical state.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The lower bin edge of the value at rank `ceil(q·count)` (0 when
    /// empty). Deterministic: depends only on the merged bin counts.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bin_lower_edge(idx);
            }
        }
        Self::bin_lower_edge(BINS - 1)
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// Aggregated state for one span kind.
#[derive(Debug, Clone)]
pub struct KindAggregate {
    /// The span kind.
    pub kind: SpanKind,
    /// Duration histogram of every span of this kind.
    pub hist: LogHistogram,
}

/// The merged aggregate over every recording thread since the last drain.
#[derive(Debug, Clone, Default)]
pub struct AggregateReport {
    /// One entry per kind that recorded at least one span, in
    /// [`SpanKind::index`] order.
    pub kinds: Vec<KindAggregate>,
}

impl AggregateReport {
    /// The aggregate for `kind`, if any span of it was recorded.
    pub fn get(&self, kind: SpanKind) -> Option<&KindAggregate> {
        self.kinds.iter().find(|k| k.kind == kind)
    }

    /// Total duration of spans of `kind` (0 when none). Mirror of
    /// [`crate::SpanSet::total_ns`] so attribution can consume either.
    pub fn total_ns(&self, kind: SpanKind) -> u64 {
        self.get(kind).map_or(0, |k| k.hist.sum_ns as u64)
    }

    /// Number of spans of `kind`. Mirror of [`crate::SpanSet::count`].
    pub fn count(&self, kind: SpanKind) -> usize {
        self.get(kind).map_or(0, |k| k.hist.count as usize)
    }
}

/// Per-thread aggregate table, registered globally on first use (same
/// shape as the span rings: the only cross-thread lock is the registry
/// push, once per thread lifetime).
struct ThreadAgg {
    inner: Mutex<Vec<LogHistogram>>,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadAgg>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadAgg>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<ThreadAgg> = {
        let agg = Arc::new(ThreadAgg {
            inner: Mutex::new(vec![LogHistogram::default(); SpanKind::ALL.len()]),
        });
        registry().lock().unwrap().push(Arc::clone(&agg));
        agg
    };
}

/// Folds one span into this thread's table (called by the span recorder
/// when the mode is [`crate::TelemetryMode::Aggregate`]).
pub(crate) fn note(rec: &SpanRecord) {
    LOCAL.with(|agg| {
        agg.inner.lock().unwrap()[rec.kind.index()].record(rec.dur_ns);
    });
}

/// Merges and clears every thread's aggregate table.
pub fn drain() -> AggregateReport {
    let aggs: Vec<Arc<ThreadAgg>> = registry().lock().unwrap().clone();
    let mut merged = vec![LogHistogram::default(); SpanKind::ALL.len()];
    for agg in aggs {
        let mut inner = agg.inner.lock().unwrap();
        for (m, h) in merged.iter_mut().zip(inner.iter()) {
            m.merge(h);
        }
        for h in inner.iter_mut() {
            *h = LogHistogram::default();
        }
    }
    AggregateReport {
        kinds: SpanKind::ALL
            .iter()
            .zip(merged)
            .filter(|(_, h)| h.count > 0)
            .map(|(&kind, hist)| KindAggregate { kind, hist })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic xorshift stream for property inputs (no external
    /// RNG crates under the offline-build policy).
    fn xorshift_durations(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Mix magnitudes: spread across ~20 octaves.
                state >> (state % 44)
            })
            .collect()
    }

    #[test]
    fn bin_index_is_monotone_and_edges_bracket() {
        let mut prev_idx = 0;
        for v in 0..100_000u64 {
            let idx = LogHistogram::bin_index(v);
            assert!(idx >= prev_idx, "bin index regressed at {v}");
            prev_idx = idx;
            assert!(
                LogHistogram::bin_lower_edge(idx) <= v.max(1),
                "edge above value {v} (bin {idx})"
            );
        }
        // Quarter-octave spot checks: [48,56) and [56,64) are distinct bins
        // whose lower edges are exact.
        assert_eq!(LogHistogram::bin_index(56), LogHistogram::bin_index(63));
        assert_ne!(LogHistogram::bin_index(55), LogHistogram::bin_index(56));
        assert_eq!(
            LogHistogram::bin_lower_edge(LogHistogram::bin_index(56)),
            56
        );
        assert_eq!(
            LogHistogram::bin_lower_edge(LogHistogram::bin_index(48)),
            48
        );
        // Extremes stay in range.
        assert!(LogHistogram::bin_index(u64::MAX) < BINS);
        assert_eq!(LogHistogram::bin_index(1), 0);
    }

    #[test]
    fn edges_are_monotone_nondecreasing() {
        let mut prev = 0;
        for idx in 0..BINS {
            let e = LogHistogram::bin_lower_edge(idx);
            assert!(e >= prev, "edge regression at bin {idx}: {e} < {prev}");
            prev = e;
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let durations = xorshift_durations(0x5eed, 3000);
        // Partition three ways; fold in different orders / groupings.
        let mut parts = [
            LogHistogram::default(),
            LogHistogram::default(),
            LogHistogram::default(),
        ];
        for (i, &d) in durations.iter().enumerate() {
            parts[i % 3].record(d);
        }
        // (a ⊕ b) ⊕ c
        let mut ab_c = parts[0].clone();
        ab_c.merge(&parts[1]);
        ab_c.merge(&parts[2]);
        // a ⊕ (b ⊕ c)
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut a_bc = parts[0].clone();
        a_bc.merge(&bc);
        // c ⊕ b ⊕ a
        let mut cba = parts[2].clone();
        cba.merge(&parts[1]);
        cba.merge(&parts[0]);
        // Sequential reference.
        let mut seq = LogHistogram::default();
        for &d in &durations {
            seq.record(d);
        }
        for other in [&ab_c, &a_bc, &cba] {
            assert_eq!(seq.counts, other.counts);
            assert_eq!(seq.count, other.count);
            assert_eq!(seq.sum_ns, other.sum_ns);
            assert_eq!(seq.min_ns, other.min_ns);
            assert_eq!(seq.max_ns, other.max_ns);
        }
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(seq.percentile_ns(q), ab_c.percentile_ns(q));
            assert_eq!(seq.percentile_ns(q), cba.percentile_ns(q));
        }
    }

    #[test]
    fn percentiles_return_lower_edges_and_bracket_exact_ranks() {
        let mut h = LogHistogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile_ns(0.5);
        let p99 = h.percentile_ns(0.99);
        // Lower edge of the bin holding the exact rank: within one
        // quarter-octave (~19%) below the exact order statistic.
        assert!(p50 <= 500 && p50 as f64 >= 500.0 / 1.26, "p50={p50}");
        assert!(p99 <= 990 && p99 as f64 >= 990.0 / 1.26, "p99={p99}");
        assert!(h.percentile_ns(0.0) >= 1);
        assert_eq!(h.min_ns, 1);
        assert_eq!(h.max_ns, 1000);
        assert_eq!(h.mean_ns(), 500.5);
        let empty = LogHistogram::default();
        assert_eq!(empty.percentile_ns(0.5), 0);
        assert_eq!(empty.mean_ns(), 0.0);
    }

    #[test]
    fn aggregate_mode_routes_spans_into_histograms() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        crate::set_mode(crate::TelemetryMode::Aggregate);
        crate::span::drain(); // clear full-trace leftovers from other tests
        drain(); // clear aggregate leftovers
        for _ in 0..5 {
            drop(crate::span(SpanKind::Spmv));
        }
        drop(crate::span(SpanKind::Dot));
        let rings = crate::span::drain();
        let report = drain();
        crate::set_mode(crate::TelemetryMode::Full);
        crate::set_enabled(false);
        assert!(
            rings.records.is_empty(),
            "aggregate mode must not retain raw spans"
        );
        assert_eq!(report.count(SpanKind::Spmv), 5);
        assert_eq!(report.count(SpanKind::Dot), 1);
        assert_eq!(report.count(SpanKind::Pc), 0);
        // Drained: a second drain is empty.
        assert!(drain().kinds.is_empty());
    }
}

//! A minimal JSON parser (std only, offline-build policy).
//!
//! This started as the private engine behind the exporter validators in
//! [`crate::export`]; the observatory tier made it public so downstream
//! analyzers (the `perf-report` binary in `crates/bench`) can re-ingest the
//! artifacts this crate writes — `trace.json`, `metrics.jsonl`,
//! `flight.json`, aggregate summaries — without a serde dependency.
//!
//! Numbers are parsed as `f64` with Rust's shortest-roundtrip semantics, so
//! a value written by [`crate::export`] reparses to the identical bits.
//! String escapes follow RFC 8259, including surrogate-pair `\uXXXX\uXXXX`
//! decoding for characters outside the Basic Multilingual Plane; a lone
//! surrogate is rejected rather than silently replaced.

/// A parsed JSON value. Object fields keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document field order (duplicate keys are kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field `key` of an object (`None` for other variants or a missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, val: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    /// Reads 4 hex digits starting at byte offset `at`.
    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
            16,
        )
        .map_err(|_| self.err("bad \\u escape"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            // self.pos is at the 'u'; hex digits follow.
                            let unit = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            match unit {
                                // High surrogate: a low surrogate escape
                                // must follow immediately (RFC 8259 §7).
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 2) != Some(&b'u')
                                    {
                                        return Err(self.err("lone high surrogate"));
                                    }
                                    let lo = self.hex4(self.pos + 3)?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((unit - 0xD800) << 10) + (lo - 0xDC00);
                                    s.push(char::from_u32(code).expect("valid supplementary"));
                                    self.pos += 6;
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(self.err("lone low surrogate"));
                                }
                                _ => s.push(char::from_u32(unit).expect("valid BMP scalar")),
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        let doc = parse(r#"{"a":[1,2],"b":{"c":"d"}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
        assert!(parse("{}x").is_err(), "trailing garbage");
    }

    #[test]
    fn decodes_escapes_including_surrogate_pairs() {
        assert_eq!(
            parse(r#""a\n\t\"\\b""#).unwrap().as_str(),
            Some("a\n\t\"\\b")
        );
        // BMP escape.
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        // Supplementary plane: surrogate pair combines to one scalar.
        assert_eq!(parse(r#""𝒮""#).unwrap().as_str(), Some("𝒮"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        // Lone surrogates are rejected, not replaced.
        assert!(parse(r#""\ud835""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\ud835x""#).is_err(), "high surrogate + text");
        assert!(parse(r#""\udcae""#).is_err(), "lone low surrogate");
        assert!(parse(r#""\ud835A""#).is_err(), "bad pair");
    }

    #[test]
    fn raw_utf8_passes_through() {
        assert_eq!(parse("\"héllo 😀\"").unwrap().as_str(), Some("héllo 😀"));
    }
}

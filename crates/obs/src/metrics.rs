//! The per-iteration solver metrics stream.
//!
//! A solve driver (the `MethodKind::solve` dispatcher in `pipescg`) brackets
//! each solve with [`begin_solve`] / [`end_solve`]; the method's inner loop
//! reports one [`IterSample`] per convergence check via [`record_iter`].
//! The collector turns samples into [`IterRecord`]s — adding monotone
//! sequence numbers, kernel-count deltas, iteration-interval spans and the
//! per-interval achieved-overlap ratio — and the completed
//! [`SolveTelemetry`] is retrieved with [`take_last`] and replayed into any
//! [`MetricsSink`] (the JSONL exporter in [`crate::export`] is one).
//!
//! Every entry point is a no-op unless telemetry is enabled *and* a solve
//! is active, so solver code can call unconditionally.

use std::sync::Mutex;

use crate::span::{self, SpanKind};
use crate::stagnation::StagnationConfig;

/// The kernel counters the drift test reconciles against `OpCounters`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounts {
    /// Sparse matrix–vector products (MPK constituents included).
    pub spmv: u64,
    /// Preconditioner applications.
    pub pc: u64,
    /// Allreduces of either kind (blocking + non-blocking posts).
    pub allreduce: u64,
}

impl KernelCounts {
    /// Component-wise `self − earlier` (saturating).
    pub fn delta_since(&self, earlier: &KernelCounts) -> KernelCounts {
        KernelCounts {
            spmv: self.spmv.saturating_sub(earlier.spmv),
            pc: self.pc.saturating_sub(earlier.pc),
            allreduce: self.allreduce.saturating_sub(earlier.allreduce),
        }
    }

    /// Component-wise sum.
    pub fn add(&self, other: &KernelCounts) -> KernelCounts {
        KernelCounts {
            spmv: self.spmv + other.spmv,
            pc: self.pc + other.pc,
            allreduce: self.allreduce + other.allreduce,
        }
    }
}

/// Thread-pool counters (a plain mirror of `pscg_par::stats::PoolStats`,
/// kept here as bare numbers so this crate stays dependency-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// `Pool::run` submissions.
    pub jobs: u64,
    /// Submissions dispatched to the worker pool.
    pub parallel_jobs: u64,
    /// Submissions run inline because another job held the pool (the
    /// nested-submission fallback).
    pub inline_fallback: u64,
    /// Submissions run inline because they were too small or the pool has
    /// one lane.
    pub inline_small: u64,
    /// Total job indices (chunks) executed.
    pub chunks: u64,
}

impl PoolCounters {
    /// Component-wise `self − earlier` (saturating).
    pub fn delta_since(&self, earlier: &PoolCounters) -> PoolCounters {
        PoolCounters {
            jobs: self.jobs.saturating_sub(earlier.jobs),
            parallel_jobs: self.parallel_jobs.saturating_sub(earlier.parallel_jobs),
            inline_fallback: self.inline_fallback.saturating_sub(earlier.inline_fallback),
            inline_small: self.inline_small.saturating_sub(earlier.inline_small),
            chunks: self.chunks.saturating_sub(earlier.chunks),
        }
    }

    /// Fraction of submissions that actually used the worker pool
    /// (`NaN` when no jobs ran).
    pub fn utilization(&self) -> f64 {
        self.parallel_jobs as f64 / self.jobs as f64
    }
}

/// Solve-level metadata, emitted once at the head of the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveMeta {
    /// Method name (paper spelling).
    pub method: &'static str,
    /// The s parameter.
    pub s: usize,
    /// Convergence-test norm name.
    pub norm: &'static str,
    /// Relative tolerance.
    pub rtol: f64,
    /// Global-pool lanes at solve start.
    pub threads: usize,
    /// Stagnation-detector configuration, when the method armed one — this
    /// records the switchover threshold in the emitted stream.
    pub stagnation: Option<StagnationConfig>,
    /// Matrix rows (0 when the driver did not supply problem geometry).
    pub nrows: usize,
    /// Matrix non-zeros (0 when unknown).
    pub nnz: usize,
    /// Active SpMV storage format (`SpmvFormat::as_str` spelling) — makes
    /// traces captured under `PSCG_SPMV_FORMAT` self-describing.
    pub spmv_format: &'static str,
    /// Modelled SpMV traffic in bytes per non-zero for that format on this
    /// matrix (`costmodel::spmv_model_bytes / nnz`; 0 when unknown).
    pub spmv_model_bytes_per_nnz: f64,
    /// Preconditioner FLOPs per row from its declared `ApplyCost`.
    pub pc_flops_per_row: f64,
    /// Preconditioner bytes per row from its declared `ApplyCost`.
    pub pc_bytes_per_row: f64,
}

/// What a solver's inner loop reports at one convergence check.
#[derive(Debug, Clone)]
pub struct IterSample {
    /// The method's own CG-step count at this check (s-step methods count
    /// s per outer iteration; restarts inside a hybrid may reset it).
    pub iter: usize,
    /// Relative residual in the selected norm.
    pub relres: f64,
    /// The squared norm triple `(r·r, u·u, r·u)`; components the method
    /// did not compute are `NaN`.
    pub norms_sq: [f64; 3],
    /// Step coefficients (one per basis column; previous-iteration values
    /// for the s-step methods, whose scalar work follows the check).
    pub alpha: Vec<f64>,
    /// Conjugation coefficients (the β scalar, or the flattened `s × s`
    /// B-matrix of the s-step methods).
    pub beta: Vec<f64>,
    /// The γ = (r, u) scalar where the recurrence carries one (`NaN`
    /// otherwise).
    pub gamma: f64,
}

/// One enriched entry of the telemetry stream.
#[derive(Debug, Clone)]
pub struct IterRecord {
    /// Collector-assigned sequence number, strictly increasing.
    pub seq: usize,
    /// Monotone iteration index: the reported CG-step count, offset so a
    /// mid-solve restart (the hybrid's phase handoff) never decreases it.
    pub iter: usize,
    /// The reported sample.
    pub sample: IterSample,
    /// Timestamp of the check (ns since the telemetry epoch).
    pub t_ns: u64,
    /// Cumulative kernel counts at the check.
    pub kernels: KernelCounts,
    /// Kernel counts since the previous record (the first record counts
    /// from solve start, so the deltas telescope to the final totals).
    pub d_kernels: KernelCounts,
    /// Post→wait window nanoseconds in this interval.
    pub window_ns: u64,
    /// Kernel nanoseconds inside post→wait windows in this interval.
    pub kernel_in_window_ns: u64,
}

impl IterRecord {
    /// Achieved-overlap ratio of this interval (`NaN` when no window
    /// elapsed — e.g. every interval of a non-pipelined method).
    pub fn overlap_ratio(&self) -> f64 {
        self.kernel_in_window_ns as f64 / self.window_ns as f64
    }
}

/// The end-of-solve summary record.
#[derive(Debug, Clone)]
pub struct FinishRecord {
    /// Total CG steps.
    pub iterations: usize,
    /// Stop reason (debug spelling of `StopReason`).
    pub stop: &'static str,
    /// Final relative residual.
    pub final_relres: f64,
    /// Final kernel totals.
    pub kernels: KernelCounts,
    /// Kernel counts after the last convergence check (the telescoping
    /// tail: Σ iter deltas + this = final totals).
    pub d_kernels: KernelCounts,
    /// Total post→wait window nanoseconds over the solve.
    pub window_ns: u64,
    /// Total kernel nanoseconds inside windows over the solve.
    pub kernel_in_window_ns: u64,
    /// True when a stagnation detector fired during the solve.
    pub stagnation_fired: bool,
    /// Faults injected into kernels/reductions during the solve (0 on a
    /// clean run).
    pub faults_injected: u64,
    /// Recovery actions (reduction retries, rollbacks, replacements,
    /// restarts) taken during the solve.
    pub recoveries: u64,
    /// Thread-pool activity during the solve.
    pub pool: PoolCounters,
    /// Wall time of the solve in nanoseconds.
    pub wall_ns: u64,
}

impl FinishRecord {
    /// Solve-wide achieved-overlap ratio (`NaN` when the method posted no
    /// non-blocking allreduce).
    pub fn achieved_overlap(&self) -> f64 {
        self.kernel_in_window_ns as f64 / self.window_ns as f64
    }
}

/// Consumer of a telemetry stream (see [`SolveTelemetry::emit`]).
pub trait MetricsSink {
    /// Called once, before any iteration record.
    fn on_meta(&mut self, meta: &SolveMeta);
    /// Called once per convergence check, in order.
    fn on_iter(&mut self, rec: &IterRecord);
    /// Called once, after the last iteration record.
    fn on_finish(&mut self, fin: &FinishRecord);
}

/// The complete telemetry stream of one solve.
#[derive(Debug, Clone)]
pub struct SolveTelemetry {
    /// Solve-level metadata.
    pub meta: SolveMeta,
    /// One record per convergence check.
    pub iters: Vec<IterRecord>,
    /// The end-of-solve summary.
    pub finish: FinishRecord,
}

impl SolveTelemetry {
    /// Replays the stream into a sink, in order.
    pub fn emit(&self, sink: &mut dyn MetricsSink) {
        sink.on_meta(&self.meta);
        for rec in &self.iters {
            sink.on_iter(rec);
        }
        sink.on_finish(&self.finish);
    }

    /// The per-check relative residuals, in order — must equal the
    /// solver's reported convergence history exactly.
    pub fn relres_stream(&self) -> Vec<f64> {
        self.iters.iter().map(|r| r.sample.relres).collect()
    }
}

struct ActiveSolve {
    meta: SolveMeta,
    iters: Vec<IterRecord>,
    start_ns: u64,
    last_t_ns: u64,
    last_kernels: KernelCounts,
    last_overlap: (u64, u64),
    iter_offset: usize,
    last_iter: usize,
    stagnation_fired: bool,
    faults_injected: u64,
    recoveries: u64,
    pool_base: PoolCounters,
}

static ACTIVE: Mutex<Option<ActiveSolve>> = Mutex::new(None);
static LAST: Mutex<Option<SolveTelemetry>> = Mutex::new(None);

/// Opens a solve-level collection. Returns false (and collects nothing)
/// when telemetry is disabled or another solve is already active — the
/// caller must pass the returned flag to [`end_solve`].
pub fn begin_solve(meta: SolveMeta, pool_base: PoolCounters) -> bool {
    if !crate::enabled() {
        return false;
    }
    let mut active = ACTIVE.lock().unwrap();
    if active.is_some() {
        return false;
    }
    crate::flight::note_begin(&meta);
    let now = crate::now_ns();
    *active = Some(ActiveSolve {
        meta,
        iters: Vec::new(),
        start_ns: now,
        last_t_ns: now,
        last_kernels: KernelCounts::default(),
        last_overlap: span::overlap_totals(),
        iter_offset: 0,
        last_iter: 0,
        stagnation_fired: false,
        faults_injected: 0,
        recoveries: 0,
        pool_base,
    });
    true
}

/// Records the stagnation-detector configuration of the running solve into
/// its metadata (called by the method that arms the detector).
pub fn set_stagnation_config(cfg: StagnationConfig) {
    if let Some(a) = ACTIVE.lock().unwrap().as_mut() {
        a.meta.stagnation = Some(cfg);
    }
}

/// Notes that a stagnation detector fired during the running solve.
pub fn note_stagnation_fired() {
    if let Some(a) = ACTIVE.lock().unwrap().as_mut() {
        a.stagnation_fired = true;
    }
}

/// Notes one injected fault (called by a fault-armed execution engine).
/// No-op without an active solve.
pub fn note_fault_injected() {
    if let Some(a) = ACTIVE.lock().unwrap().as_mut() {
        a.faults_injected += 1;
    }
}

/// Notes one recovery action taken by the solver. No-op without an active
/// solve.
pub fn note_recovery() {
    if let Some(a) = ACTIVE.lock().unwrap().as_mut() {
        a.recoveries += 1;
    }
}

/// Appends one convergence-check sample to the running solve. `kernels`
/// is the cumulative kernel count at the check. No-op without an active
/// solve.
pub fn record_iter(sample: IterSample, kernels: KernelCounts) {
    let mut active = ACTIVE.lock().unwrap();
    let Some(a) = active.as_mut() else { return };
    let now = crate::now_ns();
    let overlap = span::overlap_totals();
    // A reported index below the previous one means the method restarted
    // its own counter mid-solve (hybrid phase handoff); shift so the
    // stream index stays monotone.
    if sample.iter + a.iter_offset < a.last_iter {
        a.iter_offset = a.last_iter.saturating_sub(sample.iter);
    }
    let iter = sample.iter + a.iter_offset;
    a.last_iter = iter;
    let seq = a.iters.len();
    let rec = IterRecord {
        seq,
        iter,
        t_ns: now,
        kernels,
        d_kernels: kernels.delta_since(&a.last_kernels),
        window_ns: overlap.0 - a.last_overlap.0,
        kernel_in_window_ns: overlap.1 - a.last_overlap.1,
        sample,
    };
    span::record_span(
        SpanKind::Iter,
        seq as u64,
        a.last_t_ns,
        now.saturating_sub(a.last_t_ns),
    );
    a.last_t_ns = now;
    a.last_kernels = kernels;
    a.last_overlap = overlap;
    crate::flight::note_iter(&rec);
    a.iters.push(rec);
}

/// Closes the active solve (when `began`), stores the completed
/// [`SolveTelemetry`] for [`take_last`], and returns whether one was
/// stored. `kernels`/`pool_now` are the final counter readings.
pub fn end_solve(
    began: bool,
    iterations: usize,
    stop: &'static str,
    final_relres: f64,
    kernels: KernelCounts,
    pool_now: PoolCounters,
) -> bool {
    if !began {
        return false;
    }
    let Some(a) = ACTIVE.lock().unwrap().take() else {
        return false;
    };
    let now = crate::now_ns();
    let overlap = span::overlap_totals();
    let base_overlap = a
        .iters
        .first()
        .map(|_| a.last_overlap)
        .unwrap_or(a.last_overlap);
    let total_window: u64 =
        a.iters.iter().map(|r| r.window_ns).sum::<u64>() + (overlap.0 - base_overlap.0);
    let total_in_window: u64 =
        a.iters.iter().map(|r| r.kernel_in_window_ns).sum::<u64>() + (overlap.1 - base_overlap.1);
    let finish = FinishRecord {
        iterations,
        stop,
        final_relres,
        kernels,
        d_kernels: kernels.delta_since(&a.last_kernels),
        window_ns: total_window,
        kernel_in_window_ns: total_in_window,
        stagnation_fired: a.stagnation_fired,
        faults_injected: a.faults_injected,
        recoveries: a.recoveries,
        pool: pool_now.delta_since(&a.pool_base),
        wall_ns: now.saturating_sub(a.start_ns),
    };
    *LAST.lock().unwrap() = Some(SolveTelemetry {
        meta: a.meta,
        iters: a.iters,
        finish,
    });
    true
}

/// Takes the stream of the most recently completed solve, if any.
pub fn take_last() -> Option<SolveTelemetry> {
    LAST.lock().unwrap().take()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(iter: usize, relres: f64) -> IterSample {
        IterSample {
            iter,
            relres,
            norms_sq: [relres * relres, f64::NAN, f64::NAN],
            alpha: vec![0.5],
            beta: vec![0.1],
            gamma: 1.0,
        }
    }

    /// Single test: the collector is process-global state.
    #[test]
    fn collector_lifecycle_deltas_and_monotonicity() {
        let _g = crate::test_lock();
        crate::set_enabled(false);
        assert!(!begin_solve(meta(), PoolCounters::default()));
        record_iter(sample(0, 1.0), KernelCounts::default());
        assert!(!end_solve(
            false,
            0,
            "Converged",
            0.0,
            KernelCounts::default(),
            PoolCounters::default()
        ));
        assert!(take_last().is_none(), "disabled collector stores nothing");

        crate::set_enabled(true);
        let began = begin_solve(
            meta(),
            PoolCounters {
                jobs: 10,
                ..Default::default()
            },
        );
        assert!(began);
        // Nested begin is refused while a solve is active.
        assert!(!begin_solve(meta(), PoolCounters::default()));

        set_stagnation_config(StagnationConfig {
            window: 6,
            min_ratio: 0.98,
        });
        let k1 = KernelCounts {
            spmv: 3,
            pc: 4,
            allreduce: 2,
        };
        record_iter(sample(0, 1.0), k1);
        let k2 = KernelCounts {
            spmv: 7,
            pc: 9,
            allreduce: 3,
        };
        record_iter(sample(4, 0.5), k2);
        // Hybrid-style restart: reported index drops back to 0.
        record_iter(sample(0, 0.4), k2);
        record_iter(sample(2, 0.3), k2);
        note_stagnation_fired();
        note_fault_injected();
        note_fault_injected();
        note_recovery();
        let kf = KernelCounts {
            spmv: 8,
            pc: 10,
            allreduce: 4,
        };
        assert!(end_solve(
            began,
            6,
            "Converged",
            0.3,
            kf,
            PoolCounters {
                jobs: 25,
                parallel_jobs: 9,
                ..Default::default()
            }
        ));
        crate::set_enabled(false);

        let t = take_last().expect("stream stored");
        assert!(take_last().is_none(), "take_last clears");
        assert_eq!(t.meta.stagnation.unwrap().window, 6);
        assert_eq!(t.iters.len(), 4);
        // seq strictly increasing, iter monotone despite the restart.
        for (i, r) in t.iters.iter().enumerate() {
            assert_eq!(r.seq, i);
        }
        let iters: Vec<usize> = t.iters.iter().map(|r| r.iter).collect();
        assert_eq!(iters, vec![0, 4, 4, 6], "restart offset applied");
        // Deltas telescope to the final totals.
        let sum = t
            .iters
            .iter()
            .fold(KernelCounts::default(), |acc, r| acc.add(&r.d_kernels))
            .add(&t.finish.d_kernels);
        assert_eq!(sum, kf);
        assert_eq!(t.finish.pool.jobs, 15, "pool deltas are solve-relative");
        assert_eq!(t.finish.pool.parallel_jobs, 9);
        assert!(t.finish.stagnation_fired);
        assert_eq!(t.finish.faults_injected, 2);
        assert_eq!(t.finish.recoveries, 1);
        assert_eq!(t.relres_stream(), vec![1.0, 0.5, 0.4, 0.3]);
    }

    fn meta() -> SolveMeta {
        SolveMeta {
            method: "PCG",
            s: 1,
            norm: "preconditioned",
            rtol: 1e-5,
            threads: 1,
            stagnation: None,
            nrows: 512,
            nnz: 3392,
            spmv_format: "csr",
            spmv_model_bytes_per_nnz: 14.4,
            pc_flops_per_row: 1.0,
            pc_bytes_per_row: 24.0,
        }
    }
}

//! Rolling stagnation detection on the relative-residual stream.
//!
//! The hybrid PIPE-PsCG → PIPECG-OATI driver needs to know when the
//! pipelined s-step phase has stopped making progress (the s-step basis
//! conditioning limits attainable accuracy; see the paper's §V). The
//! detector here is the windowed relative-slope rule: stagnation is
//! declared when the current relative residual has improved by less than
//! a factor `min_ratio` over the last `window` convergence checks.
//!
//! [`StagnationDetector::observe`] reproduces the historical inline check
//! exactly — `relres > history[len − 1 − window] · min_ratio` once more
//! than `window` values have been seen — so moving the hybrid's switchover
//! onto this detector changes no iteration counts.

use std::collections::VecDeque;

/// Configuration of the windowed stagnation rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagnationConfig {
    /// Number of convergence checks to look back.
    pub window: usize,
    /// Required improvement factor over the window (e.g. `0.9` = the
    /// residual must have dropped at least 10 %; values near 1 tolerate
    /// slow-but-steady convergence).
    pub min_ratio: f64,
}

/// Rolling detector over a relative-residual stream.
///
/// Keeps the last `window + 1` observed values; O(1) memory and time per
/// observation.
#[derive(Debug, Clone)]
pub struct StagnationDetector {
    cfg: StagnationConfig,
    recent: VecDeque<f64>,
    fired: bool,
}

impl StagnationDetector {
    /// Creates a detector with the given rule.
    pub fn new(cfg: StagnationConfig) -> Self {
        StagnationDetector {
            cfg,
            recent: VecDeque::with_capacity(cfg.window + 2),
            fired: false,
        }
    }

    /// The configured rule.
    pub fn config(&self) -> StagnationConfig {
        self.cfg
    }

    /// Feeds one relative residual; returns true when the stream has
    /// stagnated: the value from `window` checks ago, scaled by
    /// `min_ratio`, is still below the current value.
    ///
    /// A non-finite value is immediate stagnation: a NaN can never satisfy
    /// the `>` comparison, so the windowed rule would stay silent forever
    /// on a stream that has catastrophically failed — and a NaN admitted
    /// into the window would disarm the rule for the next `window` checks.
    ///
    /// For finite streams, equivalent to the inline rule on a full history
    /// `h` after pushing the current value: `h.len() > window &&
    /// h[h.len() - 1 - window] * min_ratio < h[h.len() - 1]`.
    pub fn observe(&mut self, relres: f64) -> bool {
        if !relres.is_finite() {
            self.fired = true;
            return true;
        }
        self.recent.push_back(relres);
        while self.recent.len() > self.cfg.window + 1 {
            self.recent.pop_front();
        }
        let stagnated = self.recent.len() == self.cfg.window + 1
            && relres > self.recent[0] * self.cfg.min_ratio;
        self.fired |= stagnated;
        stagnated
    }

    /// True when any observation so far reported stagnation.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Windowed improvement slope: current value ÷ value `window` checks
    /// ago. `None` until `window + 1` values have been seen; below 1 means
    /// the residual is still shrinking over the window.
    pub fn window_ratio(&self) -> Option<f64> {
        if self.recent.len() == self.cfg.window + 1 {
            Some(self.recent[self.cfg.window] / self.recent[0])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(window: usize, min_ratio: f64) -> StagnationDetector {
        StagnationDetector::new(StagnationConfig { window, min_ratio })
    }

    /// Mirror of the inline rule the detector replaces.
    fn inline_rule(history: &[f64], window: usize, min_ratio: f64) -> bool {
        history.len() > window
            && history[history.len() - 1] > history[history.len() - 1 - window] * min_ratio
    }

    #[test]
    fn silent_until_window_filled() {
        let mut d = det(4, 0.5);
        for v in [1.0, 1.0, 1.0, 1.0] {
            assert!(!d.observe(v), "needs window+1 samples to judge");
            assert_eq!(d.window_ratio(), None);
        }
        assert!(d.observe(1.0), "flat stream stagnates at the 5th sample");
        assert_eq!(d.window_ratio(), Some(1.0));
        assert!(d.fired());
    }

    #[test]
    fn steady_convergence_never_fires() {
        let mut d = det(4, 0.5);
        let mut relres = 1.0;
        for _ in 0..50 {
            relres *= 0.8; // 0.8^4 ≈ 0.41 < min_ratio over the window
            assert!(!d.observe(relres));
        }
        assert!(!d.fired());
        assert!(d.window_ratio().unwrap() < 0.5);
    }

    #[test]
    fn non_finite_residual_is_immediate_stagnation() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut d = det(4, 0.5);
            assert!(!d.observe(1.0));
            assert!(d.observe(bad), "{bad} must fire at once");
            assert!(d.fired());
        }
    }

    #[test]
    fn non_finite_values_do_not_poison_the_window() {
        // A NaN mid-stream fires but is not admitted into the window: the
        // rule keeps judging the surviving finite values, so a genuinely
        // flat stream still stagnates on schedule afterwards.
        let mut d = det(2, 0.5);
        assert!(!d.observe(1.0));
        assert!(d.observe(f64::NAN));
        assert!(!d.observe(1.0));
        assert!(d.observe(1.0), "flat finite stream fires past the window");
        assert_eq!(d.window_ratio(), Some(1.0));
    }

    #[test]
    fn matches_inline_rule_on_noisy_stream() {
        // Deterministic pseudo-noisy stream: decays, then flattens.
        let stream: Vec<f64> = (0..40)
            .map(|i| {
                let i = i as f64;
                let decay = (-i / 6.0).exp();
                let floor = 1e-3;
                let wiggle = 1.0 + 0.05 * (i * 0.7).sin();
                (decay + floor) * wiggle
            })
            .collect();
        for window in [1, 3, 6] {
            for min_ratio in [0.5, 0.9, 0.98] {
                let mut d = det(window, min_ratio);
                let mut history = Vec::new();
                for &v in &stream {
                    history.push(v);
                    assert_eq!(
                        d.observe(v),
                        inline_rule(&history, window, min_ratio),
                        "window={window} min_ratio={min_ratio} len={}",
                        history.len()
                    );
                }
            }
        }
    }
}

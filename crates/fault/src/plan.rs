//! Fault plans: what to corrupt, where, and when.
//!
//! A plan is a list of [`FaultEvent`]s, each firing on the `nth` invocation
//! (0-based, counted per engine lifetime) of a [`FaultSite`]. Data sites
//! (`spmv`, `mpk`, `pc`, `reduce`) take value-corrupting actions; the
//! completion site (`wait`) takes scheduling actions (drop / delay /
//! duplicate). [`FaultPlan::parse`] and [`FaultPlan::to_text`] round-trip
//! the text format:
//!
//! ```text
//! # seeded fault campaign
//! seed 42
//! at spmv 17 bitflip 12      # flip mantissa bit 12 of one output element
//! at pc 5 nan                # poison one preconditioner output element
//! at mpk 2 inf
//! at reduce 3 perturb 1e-3   # scale one local contribution by (1 + eps)
//! at wait 4 drop             # lose a reduction completion (surfaces as timeout)
//! at wait 6 delay 2          # completion times out twice before arriving
//! at wait 8 duplicate        # completion delivers the previous reduction's payload
//! ```

use std::fmt;

/// Where a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Output vector of a sparse matrix–vector product.
    Spmv,
    /// Output block of a matrix-powers-kernel invocation.
    Mpk,
    /// Output vector of a preconditioner application.
    Pc,
    /// Local contribution entering an allreduce (blocking or posted).
    Reduce,
    /// Completion of a posted non-blocking allreduce.
    Wait,
}

impl FaultSite {
    /// Every site, in plan-text order.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::Spmv,
        FaultSite::Mpk,
        FaultSite::Pc,
        FaultSite::Reduce,
        FaultSite::Wait,
    ];

    /// Plan-text keyword.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Spmv => "spmv",
            FaultSite::Mpk => "mpk",
            FaultSite::Pc => "pc",
            FaultSite::Reduce => "reduce",
            FaultSite::Wait => "wait",
        }
    }

    /// Dense index for per-site invocation counters.
    pub fn index(self) -> usize {
        match self {
            FaultSite::Spmv => 0,
            FaultSite::Mpk => 1,
            FaultSite::Pc => 2,
            FaultSite::Reduce => 3,
            FaultSite::Wait => 4,
        }
    }

    fn parse(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|site| site.name() == s)
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What the fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// XOR one mantissa bit (`0..52`) of one output element.
    BitFlip {
        /// Mantissa bit to flip (bit 0 is the least significant).
        bit: u32,
    },
    /// Set one output element to NaN.
    Nan,
    /// Set one output element to +∞.
    Inf,
    /// Scale one output element by `1 + eps`.
    Perturb {
        /// Relative perturbation magnitude.
        eps: f64,
    },
    /// Lose the completion: the wait times out and the posted values are
    /// gone (the caller must re-post to recover).
    Drop,
    /// The completion times out `ticks` times before arriving intact.
    Delay {
        /// Number of timed-out wait attempts before delivery.
        ticks: u32,
    },
    /// The completion delivers a stale duplicate: the payload of the
    /// *previous* completed reduction (or the correct one if none).
    Duplicate,
}

impl FaultAction {
    /// True for the actions that target reduction completions (`wait`
    /// site) rather than numerical data.
    pub fn is_completion_fault(self) -> bool {
        matches!(
            self,
            FaultAction::Drop | FaultAction::Delay { .. } | FaultAction::Duplicate
        )
    }
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::BitFlip { bit } => write!(f, "bitflip {bit}"),
            FaultAction::Nan => write!(f, "nan"),
            FaultAction::Inf => write!(f, "inf"),
            FaultAction::Perturb { eps } => write!(f, "perturb {eps:e}"),
            FaultAction::Drop => write!(f, "drop"),
            FaultAction::Delay { ticks } => write!(f, "delay {ticks}"),
            FaultAction::Duplicate => write!(f, "duplicate"),
        }
    }
}

/// One scheduled fault: fires on the `nth` invocation of `site`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Which engine hook the fault targets.
    pub site: FaultSite,
    /// 0-based invocation index of `site` at which the fault fires,
    /// counted over the engine's lifetime.
    pub nth: u64,
    /// The corruption applied.
    pub action: FaultAction,
}

/// A deterministic, seeded fault campaign.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the SplitMix64 stream that picks corrupted element indices.
    pub seed: u64,
    /// The scheduled faults (order irrelevant; all matching events fire).
    pub events: Vec<FaultEvent>,
}

/// A syntactically or semantically invalid plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanParseError {
    /// 1-based line number (0 for whole-plan validation errors).
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "invalid fault plan: {}", self.msg)
        } else {
            write!(f, "invalid fault plan (line {}): {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for PlanParseError {}

impl FaultPlan {
    /// An empty plan with the given seed. An *armed but empty* plan must be
    /// behaviorally inert: the injector draws no random numbers and touches
    /// no data.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Builder-style event append.
    pub fn with(mut self, site: FaultSite, nth: u64, action: FaultAction) -> Self {
        self.events.push(FaultEvent { site, nth, action });
        self
    }

    /// Checks site/action compatibility and parameter ranges.
    pub fn validate(&self) -> Result<(), PlanParseError> {
        for ev in &self.events {
            let err = |msg: String| PlanParseError { line: 0, msg };
            match ev.action {
                FaultAction::BitFlip { bit } if bit >= 52 => {
                    return Err(err(format!(
                        "bitflip bit {bit} outside the mantissa (0..52)"
                    )));
                }
                FaultAction::Perturb { eps } if !eps.is_finite() => {
                    return Err(err(format!("perturb magnitude {eps} is not finite")));
                }
                _ => {}
            }
            let completion_site = ev.site == FaultSite::Wait;
            if completion_site != ev.action.is_completion_fault() {
                return Err(err(format!(
                    "action '{}' cannot target site '{}'",
                    ev.action, ev.site
                )));
            }
        }
        Ok(())
    }

    /// Parses the text format (see module docs). Blank lines and `#`
    /// comments (full-line or trailing) are ignored.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::new(0);
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let err = |msg: String| PlanParseError { line: lineno, msg };
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let tok: Vec<&str> = line.split_whitespace().collect();
            match tok[0] {
                "seed" => {
                    if tok.len() != 2 {
                        return Err(err("'seed' takes exactly one value".into()));
                    }
                    plan.seed = tok[1]
                        .parse()
                        .map_err(|_| err(format!("bad seed '{}'", tok[1])))?;
                }
                "at" => {
                    if tok.len() < 4 {
                        return Err(err("'at' needs: at <site> <nth> <action> [arg]".into()));
                    }
                    let site = FaultSite::parse(tok[1])
                        .ok_or_else(|| err(format!("unknown site '{}'", tok[1])))?;
                    let nth: u64 = tok[2]
                        .parse()
                        .map_err(|_| err(format!("bad invocation index '{}'", tok[2])))?;
                    let arg = |n: usize| -> Result<&str, PlanParseError> {
                        tok.get(n)
                            .copied()
                            .ok_or_else(|| err(format!("action '{}' needs an argument", tok[3])))
                    };
                    let action = match tok[3] {
                        "bitflip" => FaultAction::BitFlip {
                            bit: arg(4)?
                                .parse()
                                .map_err(|_| err(format!("bad bit '{}'", tok[4])))?,
                        },
                        "nan" => FaultAction::Nan,
                        "inf" => FaultAction::Inf,
                        "perturb" => FaultAction::Perturb {
                            eps: arg(4)?
                                .parse()
                                .map_err(|_| err(format!("bad magnitude '{}'", tok[4])))?,
                        },
                        "drop" => FaultAction::Drop,
                        "delay" => FaultAction::Delay {
                            ticks: arg(4)?
                                .parse()
                                .map_err(|_| err(format!("bad tick count '{}'", tok[4])))?,
                        },
                        "duplicate" => FaultAction::Duplicate,
                        other => return Err(err(format!("unknown action '{other}'"))),
                    };
                    plan.events.push(FaultEvent { site, nth, action });
                }
                other => return Err(err(format!("unknown directive '{other}'"))),
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Serializes to the text format parsed by [`FaultPlan::parse`].
    pub fn to_text(&self) -> String {
        let mut out = format!("seed {}\n", self.seed);
        for ev in &self.events {
            out.push_str(&format!("at {} {} {}\n", ev.site, ev.nth, ev.action));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_action() {
        let text = "\
# campaign
seed 42
at spmv 17 bitflip 12
at pc 5 nan            # trailing comment
at mpk 2 inf
at reduce 3 perturb 1e-3
at wait 4 drop
at wait 6 delay 2
at wait 8 duplicate
";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.events.len(), 7);
        assert_eq!(
            plan.events[0],
            FaultEvent {
                site: FaultSite::Spmv,
                nth: 17,
                action: FaultAction::BitFlip { bit: 12 }
            }
        );
        let reparsed = FaultPlan::parse(&plan.to_text()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn rejects_malformed_plans() {
        for (text, needle) in [
            ("at spmv x bitflip 3", "bad invocation index"),
            ("at nowhere 1 nan", "unknown site"),
            ("at spmv 1 explode", "unknown action"),
            ("at spmv 1 bitflip", "needs an argument"),
            ("frobnicate 3", "unknown directive"),
            ("seed", "exactly one value"),
            ("at spmv 1 bitflip 60", "outside the mantissa"),
            ("at spmv 1 drop", "cannot target site"),
            ("at wait 1 nan", "cannot target site"),
        ] {
            let e = FaultPlan::parse(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "{text:?}: expected {needle:?} in {e}"
            );
        }
    }

    #[test]
    fn empty_plan_is_valid() {
        let plan = FaultPlan::parse("seed 7\n").unwrap();
        assert_eq!(plan, FaultPlan::new(7));
        assert!(plan.validate().is_ok());
    }
}

//! Fault plans: what to corrupt, where, and when.
//!
//! A plan is a list of [`FaultEvent`]s, each firing on the `nth` invocation
//! (0-based, counted per engine lifetime) of a [`FaultSite`]. Data sites
//! (`spmv`, `mpk`, `pc`, `reduce`) take value-corrupting actions; the
//! completion site (`wait`) takes scheduling actions (drop / delay /
//! duplicate). A plan may also carry [`RankEvent`]s — machine-level rank
//! death and straggler events counted in global collectives (one blocking
//! allreduce or one non-blocking post each). [`FaultPlan::parse`] and
//! [`FaultPlan::to_text`] round-trip the text format:
//!
//! ```text
//! # seeded fault campaign
//! seed 42
//! ranks 8                    # modeled world size for rank events
//! at spmv 17 bitflip 12      # flip mantissa bit 12 of one output element
//! at pc 5 nan                # poison one preconditioner output element
//! at mpk 2 inf
//! at reduce 3 perturb 1e-3   # scale one local contribution by (1 + eps)
//! at wait 4 drop             # lose a reduction completion (surfaces as timeout)
//! at wait 6 delay 2          # completion times out twice before arriving
//! at wait 8 duplicate        # completion delivers the previous reduction's payload
//! rank_dead 3 5              # rank 3 dies at the 5th collective
//! rank_slow 2 4.0 1          # rank 2 turns a 4x straggler at the 1st collective
//! ```

use std::fmt;

/// Where a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Output vector of a sparse matrix–vector product.
    Spmv,
    /// Output block of a matrix-powers-kernel invocation.
    Mpk,
    /// Output vector of a preconditioner application.
    Pc,
    /// Local contribution entering an allreduce (blocking or posted).
    Reduce,
    /// Completion of a posted non-blocking allreduce.
    Wait,
}

impl FaultSite {
    /// Every site, in plan-text order.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::Spmv,
        FaultSite::Mpk,
        FaultSite::Pc,
        FaultSite::Reduce,
        FaultSite::Wait,
    ];

    /// Plan-text keyword.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Spmv => "spmv",
            FaultSite::Mpk => "mpk",
            FaultSite::Pc => "pc",
            FaultSite::Reduce => "reduce",
            FaultSite::Wait => "wait",
        }
    }

    /// Dense index for per-site invocation counters.
    pub fn index(self) -> usize {
        match self {
            FaultSite::Spmv => 0,
            FaultSite::Mpk => 1,
            FaultSite::Pc => 2,
            FaultSite::Reduce => 3,
            FaultSite::Wait => 4,
        }
    }

    fn parse(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|site| site.name() == s)
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What the fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// XOR one mantissa bit (`0..52`) of one output element.
    BitFlip {
        /// Mantissa bit to flip (bit 0 is the least significant).
        bit: u32,
    },
    /// Set one output element to NaN.
    Nan,
    /// Set one output element to +∞.
    Inf,
    /// Scale one output element by `1 + eps`.
    Perturb {
        /// Relative perturbation magnitude.
        eps: f64,
    },
    /// Lose the completion: the wait times out and the posted values are
    /// gone (the caller must re-post to recover).
    Drop,
    /// The completion times out `ticks` times before arriving intact.
    Delay {
        /// Number of timed-out wait attempts before delivery.
        ticks: u32,
    },
    /// The completion delivers a stale duplicate: the payload of the
    /// *previous* completed reduction (or the correct one if none).
    Duplicate,
}

impl FaultAction {
    /// True for the actions that target reduction completions (`wait`
    /// site) rather than numerical data.
    pub fn is_completion_fault(self) -> bool {
        matches!(
            self,
            FaultAction::Drop | FaultAction::Delay { .. } | FaultAction::Duplicate
        )
    }
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::BitFlip { bit } => write!(f, "bitflip {bit}"),
            FaultAction::Nan => write!(f, "nan"),
            FaultAction::Inf => write!(f, "inf"),
            FaultAction::Perturb { eps } => write!(f, "perturb {eps:e}"),
            FaultAction::Drop => write!(f, "drop"),
            FaultAction::Delay { ticks } => write!(f, "delay {ticks}"),
            FaultAction::Duplicate => write!(f, "duplicate"),
        }
    }
}

/// One scheduled fault: fires on the `nth` invocation of `site`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Which engine hook the fault targets.
    pub site: FaultSite,
    /// 0-based invocation index of `site` at which the fault fires,
    /// counted over the engine's lifetime.
    pub nth: u64,
    /// The corruption applied.
    pub action: FaultAction,
}

/// What a rank-level machine event does to its rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankFault {
    /// The rank dies: from the activating collective on, every collective
    /// involving it fails with a typed rank failure instead of a value.
    Dead,
    /// The rank turns straggler: from the activating collective on, every
    /// collective completion is stretched by `factor`.
    Slow {
        /// Completion-time multiplier (finite, ≥ 1).
        factor: f64,
    },
}

impl fmt::Display for RankFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankFault::Dead => write!(f, "dead"),
            RankFault::Slow { factor } => write!(f, "slow {factor}"),
        }
    }
}

/// One scheduled rank-level machine event: activates at the `nth` global
/// collective (0-based; blocking allreduces and non-blocking posts count
/// alike) and stays in effect from then on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankEvent {
    /// The modeled rank affected. Rank 0 hosts the root partition the
    /// engine executes, so only ranks ≥ 1 can be targeted.
    pub rank: u32,
    /// 0-based global collective index at which the event activates.
    pub nth: u64,
    /// What happens to the rank.
    pub kind: RankFault,
}

/// A deterministic, seeded fault campaign.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the SplitMix64 stream that picks corrupted element indices.
    pub seed: u64,
    /// The scheduled faults (order irrelevant; all matching events fire).
    pub events: Vec<FaultEvent>,
    /// Scheduled rank-level machine events (death / straggler).
    pub rank_events: Vec<RankEvent>,
    /// Modeled world size the rank events act in (0 = engine default).
    pub ranks: u32,
}

/// Typed reason a fault plan was rejected (the `kind` of a
/// [`PlanParseError`]).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// `at <site> …` named a site outside [`FaultSite::ALL`].
    UnknownSite(String),
    /// The action keyword of an `at` line is not recognised.
    UnknownAction(String),
    /// The first token of a line is not a known directive.
    UnknownDirective(String),
    /// A numeric field failed to parse; `what` names the field.
    BadValue {
        /// Which field (e.g. `"seed"`, `"invocation index"`).
        what: &'static str,
        /// The offending token.
        got: String,
    },
    /// An action that takes an argument was given none.
    MissingArgument(String),
    /// A directive was given the wrong number of tokens; the payload is
    /// the full usage message.
    Arity(&'static str),
    /// `bitflip` targeted a bit outside the f64 mantissa.
    BitOutOfRange(u32),
    /// `perturb` magnitude was not finite.
    MagnitudeNotFinite(f64),
    /// A data action targeted the completion site or vice versa.
    IncompatibleAction {
        /// The offending action.
        action: FaultAction,
        /// The site it cannot target.
        site: FaultSite,
    },
    /// A straggler factor was not a finite value ≥ 1.
    BadSlowFactor(f64),
    /// A rank event targeted a rank outside the failable range.
    BadRank {
        /// The offending rank.
        rank: u32,
        /// The modeled world size (0 = engine default).
        ranks: u32,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownSite(s) => write!(f, "unknown site '{s}'"),
            PlanError::UnknownAction(s) => write!(f, "unknown action '{s}'"),
            PlanError::UnknownDirective(s) => write!(f, "unknown directive '{s}'"),
            PlanError::BadValue { what, got } => write!(f, "bad {what} '{got}'"),
            PlanError::MissingArgument(a) => write!(f, "action '{a}' needs an argument"),
            PlanError::Arity(usage) => f.write_str(usage),
            PlanError::BitOutOfRange(bit) => {
                write!(f, "bitflip bit {bit} outside the mantissa (0..52)")
            }
            PlanError::MagnitudeNotFinite(eps) => {
                write!(f, "perturb magnitude {eps} is not finite")
            }
            PlanError::IncompatibleAction { action, site } => {
                write!(f, "action '{action}' cannot target site '{site}'")
            }
            PlanError::BadSlowFactor(factor) => {
                write!(f, "rank_slow factor {factor} must be finite and >= 1")
            }
            PlanError::BadRank { rank, ranks } => {
                if *rank == 0 {
                    write!(f, "rank 0 hosts the root partition and cannot be targeted")
                } else {
                    write!(f, "rank {rank} outside the failable range (1..{ranks})")
                }
            }
        }
    }
}

/// A syntactically or semantically invalid plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanParseError {
    /// 1-based line number (0 for whole-plan validation errors).
    pub line: usize,
    /// The typed rejection reason.
    pub kind: PlanError,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "invalid fault plan: {}", self.kind)
        } else {
            write!(f, "invalid fault plan (line {}): {}", self.line, self.kind)
        }
    }
}

impl std::error::Error for PlanParseError {}

impl FaultPlan {
    /// An empty plan with the given seed. An *armed but empty* plan must be
    /// behaviorally inert: the injector draws no random numbers and touches
    /// no data, and the engine schedules no rank events.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
            rank_events: Vec::new(),
            ranks: 0,
        }
    }

    /// Builder-style event append.
    pub fn with(mut self, site: FaultSite, nth: u64, action: FaultAction) -> Self {
        self.events.push(FaultEvent { site, nth, action });
        self
    }

    /// Builder-style modeled world size.
    pub fn with_ranks(mut self, ranks: u32) -> Self {
        self.ranks = ranks;
        self
    }

    /// Builder-style rank death at the `nth` global collective.
    pub fn with_rank_dead(mut self, rank: u32, nth: u64) -> Self {
        self.rank_events.push(RankEvent {
            rank,
            nth,
            kind: RankFault::Dead,
        });
        self
    }

    /// Builder-style straggler event at the `nth` global collective.
    pub fn with_rank_slow(mut self, rank: u32, factor: f64, nth: u64) -> Self {
        self.rank_events.push(RankEvent {
            rank,
            nth,
            kind: RankFault::Slow { factor },
        });
        self
    }

    /// True when the plan schedules nothing at all — the armed-but-empty
    /// case the inertness guarantee covers.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.rank_events.is_empty()
    }

    /// Checks site/action compatibility and parameter ranges.
    pub fn validate(&self) -> Result<(), PlanParseError> {
        let err = |kind: PlanError| PlanParseError { line: 0, kind };
        for ev in &self.events {
            match ev.action {
                FaultAction::BitFlip { bit } if bit >= 52 => {
                    return Err(err(PlanError::BitOutOfRange(bit)));
                }
                FaultAction::Perturb { eps } if !eps.is_finite() => {
                    return Err(err(PlanError::MagnitudeNotFinite(eps)));
                }
                _ => {}
            }
            let completion_site = ev.site == FaultSite::Wait;
            if completion_site != ev.action.is_completion_fault() {
                return Err(err(PlanError::IncompatibleAction {
                    action: ev.action,
                    site: ev.site,
                }));
            }
        }
        for rv in &self.rank_events {
            if let RankFault::Slow { factor } = rv.kind {
                if !factor.is_finite() || factor < 1.0 {
                    return Err(err(PlanError::BadSlowFactor(factor)));
                }
            }
            if rv.rank == 0 || (self.ranks != 0 && rv.rank >= self.ranks) {
                return Err(err(PlanError::BadRank {
                    rank: rv.rank,
                    ranks: self.ranks,
                }));
            }
        }
        Ok(())
    }

    /// Parses the text format (see module docs). Blank lines and `#`
    /// comments (full-line or trailing) are ignored.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::new(0);
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let err = |kind: PlanError| PlanParseError { line: lineno, kind };
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let tok: Vec<&str> = line.split_whitespace().collect();
            let num = |what: &'static str, s: &str| -> Result<u64, PlanParseError> {
                s.parse().map_err(|_| {
                    err(PlanError::BadValue {
                        what,
                        got: s.into(),
                    })
                })
            };
            match tok[0] {
                "seed" => {
                    if tok.len() != 2 {
                        return Err(err(PlanError::Arity("'seed' takes exactly one value")));
                    }
                    plan.seed = num("seed", tok[1])?;
                }
                "ranks" => {
                    if tok.len() != 2 {
                        return Err(err(PlanError::Arity("'ranks' takes exactly one value")));
                    }
                    plan.ranks = num("rank count", tok[1])? as u32;
                }
                "rank_dead" => {
                    if tok.len() != 3 {
                        return Err(err(PlanError::Arity(
                            "'rank_dead' needs: rank_dead <rank> <nth>",
                        )));
                    }
                    plan.rank_events.push(RankEvent {
                        rank: num("rank", tok[1])? as u32,
                        nth: num("collective index", tok[2])?,
                        kind: RankFault::Dead,
                    });
                }
                "rank_slow" => {
                    if tok.len() != 4 {
                        return Err(err(PlanError::Arity(
                            "'rank_slow' needs: rank_slow <rank> <factor> <nth>",
                        )));
                    }
                    let factor: f64 = tok[2].parse().map_err(|_| {
                        err(PlanError::BadValue {
                            what: "straggler factor",
                            got: tok[2].into(),
                        })
                    })?;
                    plan.rank_events.push(RankEvent {
                        rank: num("rank", tok[1])? as u32,
                        nth: num("collective index", tok[3])?,
                        kind: RankFault::Slow { factor },
                    });
                }
                "at" => {
                    if tok.len() < 4 {
                        return Err(err(PlanError::Arity(
                            "'at' needs: at <site> <nth> <action> [arg]",
                        )));
                    }
                    let site = FaultSite::parse(tok[1])
                        .ok_or_else(|| err(PlanError::UnknownSite(tok[1].into())))?;
                    let nth = num("invocation index", tok[2])?;
                    let arg = |n: usize| -> Result<&str, PlanParseError> {
                        tok.get(n)
                            .copied()
                            .ok_or_else(|| err(PlanError::MissingArgument(tok[3].into())))
                    };
                    let action = match tok[3] {
                        "bitflip" => FaultAction::BitFlip {
                            bit: num("bit", arg(4)?)? as u32,
                        },
                        "nan" => FaultAction::Nan,
                        "inf" => FaultAction::Inf,
                        "perturb" => FaultAction::Perturb {
                            eps: arg(4)?.parse().map_err(|_| {
                                err(PlanError::BadValue {
                                    what: "magnitude",
                                    got: tok[4].into(),
                                })
                            })?,
                        },
                        "drop" => FaultAction::Drop,
                        "delay" => FaultAction::Delay {
                            ticks: num("tick count", arg(4)?)? as u32,
                        },
                        "duplicate" => FaultAction::Duplicate,
                        other => return Err(err(PlanError::UnknownAction(other.into()))),
                    };
                    plan.events.push(FaultEvent { site, nth, action });
                }
                other => return Err(err(PlanError::UnknownDirective(other.into()))),
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Serializes to the text format parsed by [`FaultPlan::parse`].
    pub fn to_text(&self) -> String {
        let mut out = format!("seed {}\n", self.seed);
        if self.ranks != 0 {
            out.push_str(&format!("ranks {}\n", self.ranks));
        }
        for ev in &self.events {
            out.push_str(&format!("at {} {} {}\n", ev.site, ev.nth, ev.action));
        }
        for rv in &self.rank_events {
            match rv.kind {
                RankFault::Dead => out.push_str(&format!("rank_dead {} {}\n", rv.rank, rv.nth)),
                RankFault::Slow { factor } => {
                    out.push_str(&format!("rank_slow {} {} {}\n", rv.rank, factor, rv.nth))
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_action() {
        let text = "\
# campaign
seed 42
at spmv 17 bitflip 12
at pc 5 nan            # trailing comment
at mpk 2 inf
at reduce 3 perturb 1e-3
at wait 4 drop
at wait 6 delay 2
at wait 8 duplicate
";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.events.len(), 7);
        assert_eq!(
            plan.events[0],
            FaultEvent {
                site: FaultSite::Spmv,
                nth: 17,
                action: FaultAction::BitFlip { bit: 12 }
            }
        );
        let reparsed = FaultPlan::parse(&plan.to_text()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn parse_round_trips_rank_events() {
        let text = "\
seed 9
ranks 8
at spmv 1 nan
rank_dead 3 5
rank_slow 2 4.5 1
";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.ranks, 8);
        assert_eq!(
            plan.rank_events,
            vec![
                RankEvent {
                    rank: 3,
                    nth: 5,
                    kind: RankFault::Dead
                },
                RankEvent {
                    rank: 2,
                    nth: 1,
                    kind: RankFault::Slow { factor: 4.5 }
                },
            ]
        );
        let reparsed = FaultPlan::parse(&plan.to_text()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn rejects_malformed_plans() {
        for (text, needle) in [
            ("at spmv x bitflip 3", "bad invocation index"),
            ("at nowhere 1 nan", "unknown site"),
            ("at spmv 1 explode", "unknown action"),
            ("at spmv 1 bitflip", "needs an argument"),
            ("frobnicate 3", "unknown directive"),
            ("seed", "exactly one value"),
            ("at spmv 1 bitflip 60", "outside the mantissa"),
            ("at spmv 1 drop", "cannot target site"),
            ("at wait 1 nan", "cannot target site"),
            ("ranks", "exactly one value"),
            ("rank_dead 3", "rank_dead <rank> <nth>"),
            ("rank_slow 3 2.0", "rank_slow <rank> <factor> <nth>"),
            ("rank_dead zero 1", "bad rank"),
            ("rank_slow 3 fast 1", "bad straggler factor"),
            ("rank_slow 3 0.5 1", "must be finite and >= 1"),
            ("rank_dead 0 1", "cannot be targeted"),
            ("ranks 4\nrank_dead 6 1", "outside the failable range"),
        ] {
            let e = FaultPlan::parse(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "{text:?}: expected {needle:?} in {e}"
            );
        }
    }

    #[test]
    fn typed_kind_survives_parse() {
        let e = FaultPlan::parse("at nowhere 1 nan").unwrap_err();
        assert_eq!(e.kind, PlanError::UnknownSite("nowhere".into()));
        assert_eq!(e.line, 1);
        let e = FaultPlan::parse("seed 1\nat spmv 1 bitflip 60").unwrap_err();
        assert_eq!(e.kind, PlanError::BitOutOfRange(60));
        assert_eq!(e.line, 0, "validation errors are whole-plan");
    }

    #[test]
    fn empty_plan_is_valid() {
        let plan = FaultPlan::parse("seed 7\n").unwrap();
        assert_eq!(plan, FaultPlan::new(7));
        assert!(plan.validate().is_ok());
        assert!(plan.is_empty());
    }
}

//! Automatic fault-plan shrinking: minimize an invariant-violating plan to
//! a smallest still-violating plan.
//!
//! Two passes, both driven by a caller-supplied oracle (`true` = the plan
//! still reproduces the violation):
//!
//! 1. **Delta-debug over plan lines** (classic ddmin): repeatedly try to
//!    delete chunks of event lines, halving the chunk size whenever a full
//!    sweep removes nothing, until no single line can be deleted.
//! 2. **Numeric shrink over counts**: for every surviving line, try to
//!    drive its invocation index toward 0 (binary descent), a delay's tick
//!    count toward 1, and a straggler factor toward 2 — smaller counts make
//!    the reproduction fire earlier and read cleaner.
//!
//! The oracle must be deterministic (re-running the same plan yields the
//! same verdict); chaos campaigns guarantee this by construction. The
//! result is 1-minimal over lines: deleting any single remaining line no
//! longer reproduces.

use crate::plan::{FaultEvent, FaultPlan, RankEvent, RankFault};

/// One shrinkable plan line: a data/completion event or a rank event.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Line {
    Event(FaultEvent),
    Rank(RankEvent),
}

fn lines_of(plan: &FaultPlan) -> Vec<Line> {
    plan.events
        .iter()
        .copied()
        .map(Line::Event)
        .chain(plan.rank_events.iter().copied().map(Line::Rank))
        .collect()
}

fn rebuild(proto: &FaultPlan, lines: &[Line]) -> FaultPlan {
    let mut plan = FaultPlan::new(proto.seed).with_ranks(proto.ranks);
    for line in lines {
        match line {
            Line::Event(ev) => plan.events.push(*ev),
            Line::Rank(rv) => plan.rank_events.push(*rv),
        }
    }
    plan
}

/// Minimizes `plan` under `still_fails` (see module docs). The input plan
/// is expected to violate (`still_fails(plan) == true`); if it does not,
/// it is returned unchanged.
pub fn shrink<F>(plan: &FaultPlan, mut still_fails: F) -> FaultPlan
where
    F: FnMut(&FaultPlan) -> bool,
{
    if !still_fails(plan) {
        return plan.clone();
    }
    let mut lines = lines_of(plan);

    // Pass 1: ddmin over lines.
    let mut chunk = lines.len().max(1);
    while chunk >= 1 {
        let mut removed_any = false;
        let mut i = 0;
        while i < lines.len() {
            let end = (i + chunk).min(lines.len());
            let mut candidate = lines.clone();
            candidate.drain(i..end);
            if (!candidate.is_empty() || plan.ranks != 0) && still_fails(&rebuild(plan, &candidate))
            {
                lines = candidate;
                removed_any = true;
                continue; // same i: the next chunk slid into place
            }
            i = end;
        }
        if removed_any {
            chunk = chunk.min(lines.len().max(1));
        } else if chunk == 1 {
            break;
        } else {
            chunk /= 2;
        }
    }

    // Pass 2: numeric descent per line.
    for idx in 0..lines.len() {
        // Invocation / collective index toward 0.
        loop {
            let nth = match lines[idx] {
                Line::Event(ev) => ev.nth,
                Line::Rank(rv) => rv.nth,
            };
            if nth == 0 {
                break;
            }
            let smaller = nth / 2;
            let mut candidate = lines.clone();
            match &mut candidate[idx] {
                Line::Event(ev) => ev.nth = smaller,
                Line::Rank(rv) => rv.nth = smaller,
            }
            if still_fails(&rebuild(plan, &candidate)) {
                lines = candidate;
            } else {
                break;
            }
        }
        // Delay ticks toward 1, straggler factor toward 2.
        let simplified = match lines[idx] {
            Line::Event(mut ev) => {
                if let crate::plan::FaultAction::Delay { ticks } = &mut ev.action {
                    if *ticks > 1 {
                        *ticks = 1;
                        Some(Line::Event(ev))
                    } else {
                        None
                    }
                } else {
                    None
                }
            }
            Line::Rank(mut rv) => {
                if let RankFault::Slow { factor } = &mut rv.kind {
                    if *factor > 2.0 {
                        *factor = 2.0;
                        Some(Line::Rank(rv))
                    } else {
                        None
                    }
                } else {
                    None
                }
            }
        };
        if let Some(line) = simplified {
            let mut candidate = lines.clone();
            candidate[idx] = line;
            if still_fails(&rebuild(plan, &candidate)) {
                lines = candidate;
            }
        }
    }

    rebuild(plan, &lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultAction, FaultSite};

    fn decoyed_plan() -> FaultPlan {
        FaultPlan::new(7)
            .with_ranks(8)
            .with(FaultSite::Pc, 9, FaultAction::Nan)
            .with(FaultSite::Spmv, 8, FaultAction::BitFlip { bit: 50 })
            .with(FaultSite::Reduce, 3, FaultAction::Perturb { eps: 1e-4 })
            .with(FaultSite::Wait, 5, FaultAction::Delay { ticks: 3 })
            .with_rank_slow(3, 8.0, 6)
    }

    #[test]
    fn shrinks_to_the_single_culprit_line() {
        // Oracle: "fails" iff the plan still contains a spmv bitflip.
        let plan = decoyed_plan();
        let shrunk = shrink(&plan, |p| {
            p.events.iter().any(|e| {
                e.site == FaultSite::Spmv && matches!(e.action, FaultAction::BitFlip { .. })
            })
        });
        assert_eq!(shrunk.events.len(), 1);
        assert!(shrunk.rank_events.is_empty());
        assert_eq!(shrunk.events[0].site, FaultSite::Spmv);
        assert_eq!(shrunk.events[0].nth, 0, "nth shrunk to 0");
        assert_eq!(shrunk.seed, plan.seed, "seed preserved");
    }

    #[test]
    fn shrinks_conjunction_to_both_culprits() {
        // Oracle needs the bitflip AND the rank event together.
        let plan = decoyed_plan();
        let shrunk = shrink(&plan, |p| {
            let flip = p
                .events
                .iter()
                .any(|e| matches!(e.action, FaultAction::BitFlip { .. }));
            flip && !p.rank_events.is_empty()
        });
        assert_eq!(shrunk.events.len() + shrunk.rank_events.len(), 2);
        if let RankFault::Slow { factor } = shrunk.rank_events[0].kind {
            assert_eq!(factor, 2.0, "straggler factor simplified");
        } else {
            panic!("rank event lost its kind");
        }
    }

    #[test]
    fn numeric_pass_simplifies_counts() {
        let plan = FaultPlan::new(1).with(FaultSite::Wait, 9, FaultAction::Delay { ticks: 3 });
        let shrunk = shrink(&plan, |p| {
            p.events
                .iter()
                .any(|e| matches!(e.action, FaultAction::Delay { .. }))
        });
        assert_eq!(shrunk.events.len(), 1);
        assert_eq!(shrunk.events[0].nth, 0);
        assert_eq!(
            shrunk.events[0].action,
            FaultAction::Delay { ticks: 1 },
            "ticks simplified to 1"
        );
    }

    #[test]
    fn non_failing_plan_is_returned_unchanged() {
        let plan = decoyed_plan();
        assert_eq!(shrink(&plan, |_| false), plan);
    }

    #[test]
    fn result_is_one_minimal_over_lines() {
        // Oracle: fails iff >= 2 data events survive (any two).
        let plan = decoyed_plan();
        let oracle = |p: &FaultPlan| {
            p.events
                .iter()
                .filter(|e| !e.action.is_completion_fault())
                .count()
                >= 2
        };
        let shrunk = shrink(&plan, oracle);
        assert!(oracle(&shrunk));
        // Deleting any single line breaks the reproduction.
        let lines = lines_of(&shrunk);
        for i in 0..lines.len() {
            let mut fewer = lines.clone();
            fewer.remove(i);
            assert!(
                !oracle(&rebuild(&shrunk, &fewer)),
                "line {i} was deletable — not 1-minimal"
            );
        }
    }
}

//! Seeded chaos-plan generator: one SplitMix64 seed → one random mix of
//! data faults, completion faults and rank-level machine events.
//!
//! The generator is the front end of the chaos campaign (`repro --chaos N`):
//! instead of hand-writing fault plans, a campaign draws N plans from
//! consecutive seeds and asserts the single invariant *recover-or-explicit-
//! error, never hang, never silent-wrong* over every method. Determinism is
//! absolute — the same `(seed, config)` pair always yields the same plan, so
//! any violating campaign is reproducible from its seed alone (and then
//! minimized by [`crate::shrink`]).

use pscg_sparse::rng::SplitMix64;

use crate::plan::{FaultAction, FaultPlan, FaultSite};

/// Bounds on what one generated plan may schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Maximum data-corrupting events (`spmv`/`mpk`/`pc`/`reduce` sites).
    pub max_data_faults: usize,
    /// Maximum completion events (`wait` site: drop/delay/duplicate).
    pub max_completion_faults: usize,
    /// Maximum rank-level events (death / straggler).
    pub max_rank_events: usize,
    /// Invocation indices are drawn from `0..max_nth` — early enough that
    /// short CI-scale solves actually reach them.
    pub max_nth: u64,
    /// Modeled world size written into the plan (rank events target
    /// `1..ranks`).
    pub ranks: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            max_data_faults: 3,
            max_completion_faults: 2,
            max_rank_events: 1,
            max_nth: 12,
            ranks: 8,
        }
    }
}

/// Generates one fault plan from `seed`. Every draw comes from a single
/// SplitMix64 stream, so the mapping `(seed, cfg) → plan` is a pure
/// function; the plan's own element-picking seed is derived from the same
/// stream.
pub fn generate(seed: u64, cfg: &ChaosConfig) -> FaultPlan {
    let mut rng = SplitMix64::new(seed);
    let mut plan = FaultPlan::new(rng.next_u64()).with_ranks(cfg.ranks.max(2));

    let data_sites = [
        FaultSite::Spmv,
        FaultSite::Mpk,
        FaultSite::Pc,
        FaultSite::Reduce,
    ];
    let n_data = rng.below(cfg.max_data_faults + 1);
    for _ in 0..n_data {
        let site = data_sites[rng.below(data_sites.len())];
        let nth = rng.below(cfg.max_nth.max(1) as usize) as u64;
        let action = match rng.below(4) {
            0 => FaultAction::BitFlip {
                bit: rng.below(52) as u32,
            },
            1 => FaultAction::Nan,
            2 => FaultAction::Inf,
            _ => FaultAction::Perturb {
                // Log-uniform in [1e-6, 1e-1].
                eps: 10f64.powf(rng.uniform(-6.0, -1.0)),
            },
        };
        plan = plan.with(site, nth, action);
    }

    let n_compl = rng.below(cfg.max_completion_faults + 1);
    for _ in 0..n_compl {
        let nth = rng.below(cfg.max_nth.max(1) as usize) as u64;
        let action = match rng.below(3) {
            0 => FaultAction::Drop,
            1 => FaultAction::Delay {
                ticks: 1 + rng.below(3) as u32,
            },
            _ => FaultAction::Duplicate,
        };
        plan = plan.with(FaultSite::Wait, nth, action);
    }

    let n_rank = rng.below(cfg.max_rank_events + 1);
    for _ in 0..n_rank {
        let rank = 1 + rng.below((plan.ranks - 1) as usize) as u32;
        let nth = rng.below(cfg.max_nth.max(1) as usize) as u64;
        plan = if rng.below(2) == 0 {
            plan.with_rank_dead(rank, nth)
        } else {
            let factor = [1.5, 2.0, 4.0, 8.0][rng.below(4)];
            plan.with_rank_slow(rank, factor, nth)
        };
    }

    debug_assert!(plan.validate().is_ok(), "generator produced invalid plan");
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let cfg = ChaosConfig::default();
        for seed in 0..64u64 {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg));
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let cfg = ChaosConfig::default();
        let distinct: std::collections::HashSet<String> =
            (0..32u64).map(|s| generate(s, &cfg).to_text()).collect();
        assert!(
            distinct.len() > 16,
            "only {} distinct plans",
            distinct.len()
        );
    }

    #[test]
    fn generated_plans_validate_and_round_trip() {
        let cfg = ChaosConfig::default();
        for seed in 0..128u64 {
            let plan = generate(seed, &cfg);
            plan.validate().unwrap();
            assert_eq!(FaultPlan::parse(&plan.to_text()).unwrap(), plan);
        }
    }

    #[test]
    fn zero_bounds_yield_an_empty_inert_plan() {
        let cfg = ChaosConfig {
            max_data_faults: 0,
            max_completion_faults: 0,
            max_rank_events: 0,
            ..ChaosConfig::default()
        };
        for seed in 0..16u64 {
            assert!(generate(seed, &cfg).is_empty());
        }
    }

    #[test]
    fn bounds_are_respected() {
        let cfg = ChaosConfig::default();
        for seed in 0..256u64 {
            let plan = generate(seed, &cfg);
            let compl = plan
                .events
                .iter()
                .filter(|e| e.action.is_completion_fault())
                .count();
            let data = plan.events.len() - compl;
            assert!(data <= cfg.max_data_faults);
            assert!(compl <= cfg.max_completion_faults);
            assert!(plan.rank_events.len() <= cfg.max_rank_events);
            for ev in &plan.events {
                assert!(ev.nth < cfg.max_nth);
            }
        }
    }
}

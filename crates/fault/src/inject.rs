//! The injector: applies a [`FaultPlan`](crate::FaultPlan) at runtime.
//!
//! An engine arms one [`Injector`] and calls [`Injector::corrupt`] after
//! every data-producing kernel and [`Injector::completion_fate`] at every
//! non-blocking-reduction wait. The injector counts invocations per site,
//! fires the plan's matching events, and logs every applied fault. With an
//! empty plan it only increments counters — no random draws, no data
//! access — so arming an empty plan is behaviorally inert.

use pscg_sparse::rng::SplitMix64;

use crate::plan::{FaultAction, FaultPlan, FaultSite};

/// The scheduled fate of one reduction completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionFault {
    /// The completion is lost; the posted values are gone.
    Drop,
    /// The completion times out this many times before arriving.
    Delay {
        /// Timed-out wait attempts before delivery.
        ticks: u32,
    },
    /// The completion delivers the previous reduction's payload.
    Duplicate,
}

/// A log entry for one applied fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// The site struck.
    pub site: FaultSite,
    /// The invocation index at which it fired.
    pub nth: u64,
    /// The action applied.
    pub action: FaultAction,
    /// What happened, human-readable (element index, old/new value, …).
    pub detail: String,
}

/// Runtime state of one armed fault campaign.
#[derive(Debug)]
pub struct Injector {
    plan: FaultPlan,
    counts: [u64; 5],
    rng: SplitMix64,
    log: Vec<FaultRecord>,
}

impl Injector {
    /// Arms a plan. The plan should be [validated](FaultPlan::validate)
    /// first; incompatible events are skipped at fire time.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed);
        Injector {
            plan,
            counts: [0; 5],
            rng,
            log: Vec::new(),
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counts one invocation of `site` and returns the actions scheduled
    /// for it.
    fn fire(&mut self, site: FaultSite) -> Vec<FaultAction> {
        let nth = self.counts[site.index()];
        self.counts[site.index()] += 1;
        if self.plan.events.is_empty() {
            return Vec::new();
        }
        self.plan
            .events
            .iter()
            .filter(|ev| ev.site == site && ev.nth == nth)
            .map(|ev| ev.action)
            .collect()
    }

    /// Applies any data fault scheduled for this invocation of `site` to
    /// `out`. Returns true when `out` was modified.
    pub fn corrupt(&mut self, site: FaultSite, out: &mut [f64]) -> bool {
        let actions = self.fire(site);
        let nth = self.counts[site.index()] - 1;
        let mut hit = false;
        for action in actions {
            if action.is_completion_fault() || out.is_empty() {
                continue;
            }
            let i = self.rng.below(out.len());
            let old = out[i];
            match action {
                FaultAction::BitFlip { bit } => {
                    out[i] = f64::from_bits(old.to_bits() ^ (1u64 << (bit % 52)));
                }
                FaultAction::Nan => out[i] = f64::NAN,
                FaultAction::Inf => out[i] = f64::INFINITY,
                FaultAction::Perturb { eps } => out[i] = old * (1.0 + eps),
                _ => unreachable!("completion faults filtered above"),
            }
            self.log.push(FaultRecord {
                site,
                nth,
                action,
                detail: format!("element {i}: {old:e} -> {:e}", out[i]),
            });
            hit = true;
        }
        hit
    }

    /// Decides the fate of the next reduction completion (one call per
    /// first wait attempt on a handle; retries of a delayed completion must
    /// not call this again).
    pub fn completion_fate(&mut self) -> Option<CompletionFault> {
        let actions = self.fire(FaultSite::Wait);
        let nth = self.counts[FaultSite::Wait.index()] - 1;
        let fate = actions.into_iter().find_map(|action| {
            let f = match action {
                FaultAction::Drop => CompletionFault::Drop,
                FaultAction::Delay { ticks } => CompletionFault::Delay { ticks },
                FaultAction::Duplicate => CompletionFault::Duplicate,
                _ => return None,
            };
            Some((action, f))
        });
        fate.map(|(action, f)| {
            self.log.push(FaultRecord {
                site: FaultSite::Wait,
                nth,
                action,
                detail: format!("completion fate {f:?}"),
            });
            f
        })
    }

    /// Everything applied so far.
    pub fn log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// Drains the applied-fault log.
    pub fn take_log(&mut self) -> Vec<FaultRecord> {
        std::mem::take(&mut self.log)
    }

    /// Number of faults applied so far.
    pub fn faults_applied(&self) -> u64 {
        self.log.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_touches_data() {
        let mut inj = Injector::new(FaultPlan::new(9));
        let mut v = vec![1.0, 2.0, 3.0];
        for _ in 0..10 {
            assert!(!inj.corrupt(FaultSite::Spmv, &mut v));
            assert!(inj.completion_fate().is_none());
        }
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        assert_eq!(inj.faults_applied(), 0);
    }

    #[test]
    fn fires_on_the_scheduled_invocation_only() {
        let plan = FaultPlan::new(1).with(FaultSite::Pc, 2, FaultAction::Nan);
        let mut inj = Injector::new(plan);
        let mut v = vec![1.0; 4];
        assert!(!inj.corrupt(FaultSite::Pc, &mut v)); // nth 0
        assert!(!inj.corrupt(FaultSite::Pc, &mut v)); // nth 1
        assert!(inj.corrupt(FaultSite::Pc, &mut v)); // nth 2 fires
        assert_eq!(v.iter().filter(|x| x.is_nan()).count(), 1);
        assert!(!inj.corrupt(FaultSite::Pc, &mut v)); // nth 3
        assert_eq!(inj.log().len(), 1);
        assert_eq!(inj.log()[0].nth, 2);
    }

    #[test]
    fn bitflip_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let plan =
                FaultPlan::new(seed).with(FaultSite::Spmv, 0, FaultAction::BitFlip { bit: 40 });
            let mut inj = Injector::new(plan);
            let mut v: Vec<f64> = (0..100).map(|i| i as f64 + 0.5).collect();
            inj.corrupt(FaultSite::Spmv, &mut v);
            v
        };
        assert_eq!(run(3), run(3), "same seed, same corruption");
        assert_ne!(run(3), run(4), "different seed strikes elsewhere");
        let v = run(3);
        let clean: Vec<f64> = (0..100).map(|i| i as f64 + 0.5).collect();
        let diffs = v
            .iter()
            .zip(&clean)
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        assert_eq!(diffs, 1, "exactly one element flipped");
    }

    #[test]
    fn completion_fates_map_actions() {
        let plan = FaultPlan::new(0)
            .with(FaultSite::Wait, 0, FaultAction::Drop)
            .with(FaultSite::Wait, 1, FaultAction::Delay { ticks: 2 })
            .with(FaultSite::Wait, 2, FaultAction::Duplicate);
        let mut inj = Injector::new(plan);
        assert_eq!(inj.completion_fate(), Some(CompletionFault::Drop));
        assert_eq!(
            inj.completion_fate(),
            Some(CompletionFault::Delay { ticks: 2 })
        );
        assert_eq!(inj.completion_fate(), Some(CompletionFault::Duplicate));
        assert_eq!(inj.completion_fate(), None);
        assert_eq!(inj.take_log().len(), 3);
        assert!(inj.log().is_empty());
    }
}

//! # pscg-fault — deterministic fault injection for the solver engines
//!
//! Pipelined and s-step CG variants trade synchronization for numerical
//! fragility: a flipped mantissa bit in an SPMV output, a poisoned
//! preconditioner application, or a lost non-blocking reduction completion
//! can silently derail the recurrence (Cools & Vanroose, arXiv:1706.05988).
//! This crate provides the *injection* half of proving the solvers survive:
//!
//! * [`FaultPlan`] — a seeded, fully deterministic campaign description:
//!   which invocation of which kernel/communication site is corrupted, and
//!   how. Plans round-trip through a small line-oriented text format so the
//!   `repro` driver can load them from a file (`--fault-plan`) or the
//!   `PSCG_FAULTS` environment variable.
//! * [`Injector`] — the runtime that engines arm. It counts invocations per
//!   site, applies the scheduled corruption (mantissa bit flips, NaN/Inf,
//!   relative perturbation, dropped/delayed/duplicated reduction
//!   completions) and keeps a [`FaultRecord`] log of everything it did.
//!
//! Plans may also schedule *rank-level* machine events ([`RankEvent`]):
//! rank death (collectives involving the dead rank fail with a typed
//! error) and stragglers (collective completions stretched by a factor) —
//! the failure modes of the distributed machine itself rather than of the
//! data. On top of hand-written plans, [`chaos::generate`] draws a whole
//! plan from one seed, and [`shrink::shrink`] delta-debugs any
//! invariant-violating plan down to a minimal reproduction.
//!
//! Randomness (the corrupted element index within a vector) comes from the
//! in-tree [`pscg_sparse::rng::SplitMix64`] seeded from the plan, so a
//! campaign is reproducible bit-for-bit. The *detection and recovery* half
//! lives with the solvers (`pipescg::resilience`).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod chaos;
pub mod inject;
pub mod plan;
pub mod shrink;

pub use chaos::ChaosConfig;
pub use inject::{CompletionFault, FaultRecord, Injector};
pub use plan::{
    FaultAction, FaultEvent, FaultPlan, FaultSite, PlanError, PlanParseError, RankEvent, RankFault,
};

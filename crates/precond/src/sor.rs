//! Symmetric successive over-relaxation preconditioning (PETSc `PCSOR`).
//!
//! With `A = L + D + U` (strict lower, diagonal, strict upper) and
//! relaxation factor `ω`, the SSOR preconditioner is
//!
//! ```text
//! M = (D/ω + L) · (ω/(2−ω)) D⁻¹ · (D/ω + U)
//! ```
//!
//! Applying `M⁻¹ r` is a forward triangular sweep, a diagonal scaling, and a
//! backward sweep — roughly two SpMV-equivalents of work per application,
//! which is what makes SOR "computationally intensive" relative to Jacobi in
//! the paper's Figure 4 discussion. PETSc's default relaxes processor-
//! locally (no communication); the global engines here apply the one-block
//! exact variant.

use pscg_sparse::op::{ApplyCost, Operator};
use pscg_sparse::CsrMatrix;

/// SSOR preconditioner with factor `ω ∈ (0, 2)`.
pub struct Ssor {
    a: CsrMatrix,
    diag: Vec<f64>,
    omega: f64,
    scratch: Vec<f64>,
}

impl Ssor {
    /// Builds from `a` (kept as a copy; sweeps need row access).
    pub fn new(a: &CsrMatrix, omega: f64) -> Self {
        assert!(omega > 0.0 && omega < 2.0, "SSOR requires 0 < omega < 2");
        let diag = a.diagonal();
        assert!(
            diag.iter().all(|&d| d > 0.0),
            "SSOR requires a positive diagonal"
        );
        Ssor {
            a: a.clone(),
            diag,
            omega,
            scratch: vec![0.0; a.nrows()],
        }
    }
}

impl Operator for Ssor {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }

    fn apply(&mut self, r: &[f64], u: &mut [f64]) {
        let n = self.a.nrows();
        let w = self.omega;
        let z = &mut self.scratch;
        // Forward sweep: (D/ω + L) z = r.
        for i in 0..n {
            let mut acc = r[i];
            for (k, &c) in self.a.row_cols(i).iter().enumerate() {
                if c < i {
                    acc -= self.a.row_vals(i)[k] * z[c];
                }
            }
            z[i] = acc * w / self.diag[i];
        }
        // Diagonal scaling: z ← ((2−ω)/ω) · D · z.
        let scale = (2.0 - w) / w;
        for i in 0..n {
            z[i] *= scale * self.diag[i];
        }
        // Backward sweep: (D/ω + U) u = z.
        for i in (0..n).rev() {
            let mut acc = z[i];
            for (k, &c) in self.a.row_cols(i).iter().enumerate() {
                if c > i {
                    acc -= self.a.row_vals(i)[k] * u[c];
                }
            }
            u[i] = acc * w / self.diag[i];
        }
    }

    fn cost(&self) -> ApplyCost {
        // Two triangular sweeps stream the whole matrix once each.
        let per_row = self.a.avg_nnz_per_row();
        ApplyCost {
            flops_per_row: 4.0 * per_row + 6.0,
            bytes_per_row: 32.0 * per_row + 48.0,
            comm_rounds: 0,
        }
    }

    fn name(&self) -> &str {
        "SOR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{richardson, small_poisson};

    #[test]
    fn ssor_of_diagonal_matrix_is_exact_inverse() {
        // For a diagonal matrix and ω = 1, M = D, so M⁻¹ r = r / d.
        let a =
            CsrMatrix::from_raw_parts(3, 3, vec![0, 1, 2, 3], vec![0, 1, 2], vec![2.0, 4.0, 8.0])
                .unwrap();
        let mut m = Ssor::new(&a, 1.0);
        let r = [2.0, 4.0, 8.0];
        let mut u = [0.0; 3];
        m.apply(&r, &mut u);
        assert_eq!(u, [1.0, 1.0, 1.0]);
    }

    #[test]
    fn ssor_solves_triangular_systems_consistently() {
        // Verify M u = r by reconstructing M x for the computed u:
        // M = (D+L) D^{-1} (D+U) at omega = 1.
        let (a, _) = small_poisson();
        let n = a.nrows();
        let mut m = Ssor::new(&a, 1.0);
        let r: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let mut u = vec![0.0; n];
        m.apply(&r, &mut u);
        let d = a.diagonal();
        // t = (D+U) u
        let mut t = vec![0.0; n];
        for i in 0..n {
            let mut acc = d[i] * u[i];
            for (k, &c) in a.row_cols(i).iter().enumerate() {
                if c > i {
                    acc += a.row_vals(i)[k] * u[c];
                }
            }
            t[i] = acc;
        }
        // s = D^{-1} t ; Mu = (D+L) s
        let mut mu = vec![0.0; n];
        for i in 0..n {
            let mut acc = d[i] * (t[i] / d[i]);
            for (k, &c) in a.row_cols(i).iter().enumerate() {
                if c < i {
                    acc += a.row_vals(i)[k] * (t[c] / d[c]);
                }
            }
            mu[i] = acc;
        }
        for i in 0..n {
            assert!(
                (mu[i] - r[i]).abs() < 1e-10,
                "row {i}: {} vs {}",
                mu[i],
                r[i]
            );
        }
    }

    #[test]
    fn ssor_richardson_contracts_faster_than_jacobi() {
        let (a, _) = small_poisson();
        let mut s = Ssor::new(&a, 1.0);
        let mut j = crate::Jacobi::new(&a);
        let (_, rs) = richardson(&a, &mut s, 10);
        let (_, rj) = richardson(&a, &mut j, 10);
        assert!(rs < rj, "SSOR {rs} should beat Jacobi {rj}");
    }

    #[test]
    fn ssor_cost_exceeds_jacobi_cost() {
        let (a, _) = small_poisson();
        let s = Ssor::new(&a, 1.0);
        let j = crate::Jacobi::new(&a);
        assert!(s.cost().flops_per_row > j.cost().flops_per_row);
    }

    #[test]
    #[should_panic(expected = "0 < omega < 2")]
    fn rejects_bad_omega() {
        let (a, _) = small_poisson();
        let _ = Ssor::new(&a, 2.5);
    }
}

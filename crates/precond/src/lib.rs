//! Preconditioners for the PIPE-PsCG reproduction.
//!
//! The paper's experiments use four PETSc preconditioners: Jacobi (the
//! default in Figures 1–3), and SOR, MG and GAMG for the preconditioner
//! study of Figure 4. Each preconditioner here implements
//! [`pscg_sparse::Operator`], i.e. it is both the numerical application
//! `u = M⁻¹ r` and a *cost declaration* (flops/bytes per row and
//! halo-equivalent communication rounds) consumed by the machine-model
//! replay — so Figure 4's "computational intensity of the preconditioner"
//! axis is driven by the real per-apply work of each method.
//!
//! * [`Jacobi`] — pointwise diagonal scaling; no communication.
//! * [`Ssor`] — symmetric successive over-relaxation sweeps. PETSc's
//!   `PCSOR` default relaxes processor-locally; under the global sim engine
//!   this is the one-block (exact) variant.
//! * [`Ic0`] — zero-fill incomplete Cholesky (extension beyond the paper's
//!   four preconditioners).
//! * [`BlockJacobi`] — exact diagonal-block solves, PETSc's parallel
//!   default (extension).
//! * [`multigrid`] — a V-cycle engine with two setup paths:
//!   [`multigrid::gmg`] (geometric: grid-hierarchy interpolation, the `MG`
//!   stand-in) and [`multigrid::gamg`] (smoothed aggregation, the `GAMG`
//!   stand-in). Both build Galerkin coarse operators `PᵀAP`.

#![warn(missing_docs)]
// Indexed loops are the clearer idiom for the numerical kernels here
// (triangular sweeps, stencil assembly); the iterator rewrites clippy
// suggests obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

pub mod block_jacobi;
pub mod ic0;
pub mod jacobi;
pub mod multigrid;
pub mod sor;

pub use block_jacobi::BlockJacobi;
pub use ic0::Ic0;
pub use jacobi::Jacobi;
pub use multigrid::Multigrid;
pub use sor::Ssor;

use pscg_sparse::op::Operator;
use pscg_sparse::stencil::Grid3;
use pscg_sparse::CsrMatrix;

/// Preconditioner selector used by examples and the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcKind {
    /// No preconditioning.
    None,
    /// Pointwise Jacobi.
    Jacobi,
    /// Symmetric SOR (ω = 1).
    Sor,
    /// Geometric multigrid (needs a grid).
    Mg,
    /// Smoothed-aggregation algebraic multigrid.
    Gamg,
}

impl PcKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PcKind::None => "none",
            PcKind::Jacobi => "Jacobi",
            PcKind::Sor => "SOR",
            PcKind::Mg => "MG",
            PcKind::Gamg => "GAMG",
        }
    }

    /// Builds the preconditioner for `a` (with `grid` available for the
    /// geometric path; GAMG is used when no grid is given for `Mg`).
    pub fn build<'a>(self, a: &'a CsrMatrix, grid: Option<Grid3>) -> Box<dyn Operator + 'a> {
        match self {
            PcKind::None => Box::new(pscg_sparse::IdentityOp::new(a.nrows())),
            PcKind::Jacobi => Box::new(Jacobi::new(a)),
            PcKind::Sor => Box::new(Ssor::new(a, 1.0)),
            PcKind::Mg => match grid {
                Some(g) => Box::new(multigrid::gmg(a, g)),
                None => Box::new(multigrid::gamg(a)),
            },
            PcKind::Gamg => Box::new(multigrid::gamg(a)),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
    use pscg_sparse::CsrMatrix;

    /// Small SPD test problem.
    pub fn small_poisson() -> (CsrMatrix, Grid3) {
        let g = Grid3::cube(6);
        (poisson3d_7pt(g, None), g)
    }

    /// Runs preconditioned Richardson iteration and returns the initial and
    /// final residual norms; any sane SPD preconditioner scaled like M ≈ A
    /// contracts the residual.
    pub fn richardson(
        a: &CsrMatrix,
        m: &mut dyn pscg_sparse::Operator,
        steps: usize,
    ) -> (f64, f64) {
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n)
            .map(|i| ((i * 7919 % 101) as f64 - 50.0) / 50.0)
            .collect();
        let b = a.mul_vec(&xstar);
        let mut x = vec![0.0; n];
        let mut r = b.clone();
        let mut u = vec![0.0; n];
        let r0 = pscg_sparse::kernels::norm2(&r);
        for _ in 0..steps {
            m.apply(&r, &mut u);
            for (xi, ui) in x.iter_mut().zip(&u) {
                *xi += ui;
            }
            let ax = a.mul_vec(&x);
            for ((ri, &bi), &axi) in r.iter_mut().zip(&b).zip(&ax) {
                *ri = bi - axi;
            }
        }
        (r0, pscg_sparse::kernels::norm2(&r))
    }
}

//! Multigrid V-cycle preconditioning: geometric (`MG`) and smoothed
//! aggregation (`GAMG`) setups over one cycle engine.
//!
//! Both setups build a hierarchy `A₀ = A, A_{l+1} = PᵀA_l P` (Galerkin) and
//! apply one V-cycle with weighted-Jacobi smoothing per preconditioner
//! application; the coarsest system is solved directly by dense LU. A
//! symmetric cycle (same pre- and post-smoothing, symmetric smoother) keeps
//! the preconditioner SPD, as CG requires.
//!
//! * [`gmg`] coarsens a structured [`Grid3`] by factor 2 per dimension with
//!   (tri)linear interpolation — the stand-in for PETSc `PCMG` on a DMDA.
//! * [`gamg`] is classic Vaněk-style smoothed aggregation: strength graph →
//!   greedy aggregation → tentative prolongator → one damped-Jacobi
//!   smoothing step — the stand-in for PETSc `PCGAMG`. It needs no grid, so
//!   it also serves unstructured surrogates.

use pscg_sparse::dense::{DenseMatrix, LuFactors};
use pscg_sparse::op::{ApplyCost, Operator};
use pscg_sparse::stencil::Grid3;
use pscg_sparse::{CooMatrix, CsrMatrix};

/// One level of the hierarchy: its operator, the interpolation *to this
/// level from the next coarser one* being stored on the finer level.
struct Level {
    a: CsrMatrix,
    inv_diag: Vec<f64>,
    /// Prolongation from the next-coarser level (absent on the coarsest).
    p: Option<CsrMatrix>,
    /// Transpose of `p` (restriction).
    pt: Option<CsrMatrix>,
    // Cycle work vectors.
    x: Vec<f64>,
    rhs: Vec<f64>,
    res: Vec<f64>,
    tmp: Vec<f64>,
}

impl Level {
    fn new(a: CsrMatrix) -> Self {
        let n = a.nrows();
        let inv_diag: Vec<f64> = a.diagonal().iter().map(|&d| 1.0 / d).collect();
        Level {
            a,
            inv_diag,
            p: None,
            pt: None,
            x: vec![0.0; n],
            rhs: vec![0.0; n],
            res: vec![0.0; n],
            tmp: vec![0.0; n],
        }
    }
}

/// A V-cycle multigrid preconditioner (see module docs).
pub struct Multigrid {
    levels: Vec<Level>,
    coarse_lu: LuFactors,
    nsmooth: usize,
    omega: f64,
    cost: ApplyCost,
    label: &'static str,
}

/// Smallest system handed to the dense coarse solver.
const COARSE_LIMIT: usize = 200;

impl Multigrid {
    fn build(mut as_and_ps: (Vec<CsrMatrix>, Vec<CsrMatrix>), label: &'static str) -> Self {
        let (mats, mut ps) = (
            std::mem::take(&mut as_and_ps.0),
            std::mem::take(&mut as_and_ps.1),
        );
        assert_eq!(mats.len(), ps.len() + 1);
        let mut levels: Vec<Level> = mats.into_iter().map(Level::new).collect();
        for (l, p) in ps.drain(..).enumerate() {
            levels[l].pt = Some(p.transpose());
            levels[l].p = Some(p);
        }
        // Dense LU of the coarsest operator.
        let coarse = &levels.last().unwrap().a;
        let nc = coarse.nrows();
        assert!(
            nc <= 50 * COARSE_LIMIT,
            "multigrid setup failed to coarsen: coarsest level still has {nc} rows \
             (dense solve would be infeasible); check the strength threshold"
        );
        let mut dense = DenseMatrix::zeros(nc, nc);
        for r in 0..nc {
            for (k, &c) in coarse.row_cols(r).iter().enumerate() {
                dense.set(r, c, coarse.row_vals(r)[k]);
            }
        }
        let coarse_lu = dense.lu().expect("coarse-level operator is singular");

        let nsmooth = 1;
        let omega = 2.0 / 3.0;
        let cost = Self::declared_cost(&levels, nsmooth);
        Multigrid {
            levels,
            coarse_lu,
            nsmooth,
            omega,
            cost,
            label,
        }
    }

    /// Counts the real per-apply work of the built hierarchy so the machine
    /// model charges what the cycle actually does.
    fn declared_cost(levels: &[Level], nsmooth: usize) -> ApplyCost {
        let n0 = levels[0].a.nrows() as f64;
        let mut flops = 0.0;
        for (l, lvl) in levels.iter().enumerate() {
            let nnz = lvl.a.nnz() as f64;
            let n = lvl.a.nrows() as f64;
            if l + 1 == levels.len() {
                // Dense triangular solves.
                flops += 2.0 * n * n;
            } else {
                // pre+post smoothing, residual, restriction, prolongation.
                flops += 2.0 * nsmooth as f64 * (2.0 * nnz + 3.0 * n);
                flops += 2.0 * nnz + n;
                let nnzp = lvl.p.as_ref().map_or(0.0, |p| p.nnz() as f64);
                flops += 4.0 * nnzp;
            }
        }
        ApplyCost {
            flops_per_row: flops / n0,
            // Sparse kernels stream ~8 bytes per flop.
            bytes_per_row: 8.0 * flops / n0,
            // Fine-level smoother exchanges dominate the communication: the
            // per-level volume shrinks ~8x per level and production
            // multigrid (PETSc PCMG/PCGAMG) agglomerates coarse grids onto
            // sub-communicators precisely so that coarse levels do not pay
            // full-machine latency. Three halo-equivalent rounds cover the
            // fine level plus the (volume-decayed) remainder.
            comm_rounds: 3,
        }
    }

    /// Number of levels (≥ 1).
    pub fn nlevels(&self) -> usize {
        self.levels.len()
    }

    /// Weighted-Jacobi smoothing sweeps per pre/post stage.
    pub fn nsmooth(&self) -> usize {
        self.nsmooth
    }

    fn vcycle(levels: &mut [Level], coarse_lu: &LuFactors, nsmooth: usize, omega: f64) {
        let nlev = levels.len();
        if nlev == 1 {
            let lvl = &mut levels[0];
            lvl.x = coarse_lu.solve(&lvl.rhs);
            return;
        }
        let (lvl, rest) = levels.split_first_mut().unwrap();
        // x = 0; pre-smooth.
        lvl.x.iter_mut().for_each(|v| *v = 0.0);
        for _ in 0..nsmooth {
            smooth(lvl, omega);
        }
        // Residual and restriction.
        lvl.a.spmv(&lvl.x, &mut lvl.tmp);
        for i in 0..lvl.res.len() {
            lvl.res[i] = lvl.rhs[i] - lvl.tmp[i];
        }
        lvl.pt.as_ref().unwrap().spmv(&lvl.res, &mut rest[0].rhs);
        // Coarse correction.
        Self::vcycle(rest, coarse_lu, nsmooth, omega);
        lvl.p.as_ref().unwrap().spmv(&rest[0].x, &mut lvl.tmp);
        for i in 0..lvl.x.len() {
            lvl.x[i] += lvl.tmp[i];
        }
        // Post-smooth.
        for _ in 0..nsmooth {
            smooth(lvl, omega);
        }
    }
}

/// One weighted-Jacobi sweep `x += ω D⁻¹ (rhs − A x)`.
fn smooth(lvl: &mut Level, omega: f64) {
    lvl.a.spmv(&lvl.x, &mut lvl.tmp);
    for i in 0..lvl.x.len() {
        lvl.x[i] += omega * lvl.inv_diag[i] * (lvl.rhs[i] - lvl.tmp[i]);
    }
}

impl Operator for Multigrid {
    fn nrows(&self) -> usize {
        self.levels[0].a.nrows()
    }

    fn apply(&mut self, r: &[f64], u: &mut [f64]) {
        self.levels[0].rhs.copy_from_slice(r);
        Multigrid::vcycle(&mut self.levels, &self.coarse_lu, self.nsmooth, self.omega);
        u.copy_from_slice(&self.levels[0].x);
    }

    fn cost(&self) -> ApplyCost {
        self.cost
    }

    fn name(&self) -> &str {
        self.label
    }
}

// ---------------------------------------------------------------------------
// Geometric setup
// ---------------------------------------------------------------------------

/// Geometric multigrid for an operator assembled on `grid`: factor-2
/// coarsening with (tri)linear interpolation and Galerkin coarse operators.
pub fn gmg(a: &CsrMatrix, grid: Grid3) -> Multigrid {
    assert_eq!(a.nrows(), grid.len(), "gmg: grid does not match the matrix");
    let mut mats = vec![a.clone()];
    let mut ps = Vec::new();
    let mut g = grid;
    while mats.last().unwrap().nrows() > COARSE_LIMIT {
        let (p, gc) = linear_interpolation(g);
        if p.ncols() >= p.nrows() {
            break; // no further coarsening possible
        }
        let ac = mats.last().unwrap().rap(&p);
        mats.push(ac);
        ps.push(p);
        g = gc;
    }
    Multigrid::build((mats, ps), "MG")
}

/// Builds the (tri)linear interpolation from the factor-2-coarsened grid of
/// `g` back to `g`, returning it with the coarse grid.
fn linear_interpolation(g: Grid3) -> (CsrMatrix, Grid3) {
    let coarse = Grid3::new(
        g.nx.div_ceil(2).max(1),
        g.ny.div_ceil(2).max(1),
        g.nz.div_ceil(2).max(1),
    );
    // Per-dimension stencils: an even fine index sits on a coarse point; an
    // odd one averages its two coarse neighbours (clamped at the boundary).
    let dim_weights = |x: usize, cn: usize| -> Vec<(usize, f64)> {
        if x.is_multiple_of(2) {
            vec![(x / 2, 1.0)]
        } else {
            let lo = x / 2;
            let hi = (lo + 1).min(cn - 1);
            if hi == lo {
                vec![(lo, 1.0)]
            } else {
                vec![(lo, 0.5), (hi, 0.5)]
            }
        }
    };
    let mut coo = CooMatrix::with_capacity(g.len(), coarse.len(), g.len() * 8);
    for z in 0..g.nz {
        let wz = dim_weights(z, coarse.nz);
        for y in 0..g.ny {
            let wy = dim_weights(y, coarse.ny);
            for x in 0..g.nx {
                let wx = dim_weights(x, coarse.nx);
                let row = g.idx(x, y, z);
                for &(cz, az) in &wz {
                    for &(cy, ay) in &wy {
                        for &(cx, ax) in &wx {
                            coo.push(row, coarse.idx(cx, cy, cz), ax * ay * az).unwrap();
                        }
                    }
                }
            }
        }
    }
    (coo.to_csr(), coarse)
}

// ---------------------------------------------------------------------------
// Smoothed-aggregation setup
// ---------------------------------------------------------------------------

/// Strength-of-connection threshold, *relative to the largest off-diagonal
/// of the row*: `|a_ij| > θ · max_k |a_ik|`. The classic
/// `|a_ij| > θ√(a_ii a_jj)` test degenerates on wide stencils (the 125-pt
/// operator has diag ≈ 42 with unit off-diagonals, so nothing is "strong"
/// and aggregation would produce only singletons); the row-relative measure
/// is scale-free.
const SA_THETA: f64 = 0.5;

/// Smoothed-aggregation AMG (the `GAMG` stand-in); works on any SPD matrix.
pub fn gamg(a: &CsrMatrix) -> Multigrid {
    let mut mats = vec![a.clone()];
    let mut ps = Vec::new();
    while mats.last().unwrap().nrows() > COARSE_LIMIT {
        let fine = mats.last().unwrap();
        let agg = aggregate(fine);
        let nagg = agg.iter().copied().max().map_or(0, |m| m + 1);
        if nagg == 0 || nagg >= fine.nrows() {
            break;
        }
        let p = smoothed_prolongator(fine, &agg, nagg);
        let ac = fine.rap(&p);
        mats.push(ac);
        ps.push(p);
    }
    Multigrid::build((mats, ps), "GAMG")
}

/// Greedy aggregation over the strength graph. Returns, per row, its
/// aggregate id.
fn aggregate(a: &CsrMatrix) -> Vec<usize> {
    let n = a.nrows();
    // Largest off-diagonal magnitude per row, for the relative strength test.
    let row_max: Vec<f64> = (0..n)
        .map(|r| {
            a.row_cols(r)
                .iter()
                .zip(a.row_vals(r))
                .filter(|(&c, _)| c != r)
                .map(|(_, v)| v.abs())
                .fold(0.0f64, f64::max)
        })
        .collect();
    let strong = |r: usize, k: usize| -> bool {
        let c = a.row_cols(r)[k];
        if c == r {
            return false;
        }
        let v = a.row_vals(r)[k].abs();
        v > SA_THETA * row_max[r]
    };
    const UNASSIGNED: usize = usize::MAX;
    let mut agg = vec![UNASSIGNED; n];
    let mut nagg = 0;
    // Pass 1: roots whose strong neighbourhood is fully unassigned.
    for r in 0..n {
        if agg[r] != UNASSIGNED {
            continue;
        }
        let mut free = true;
        for k in 0..a.row_cols(r).len() {
            if strong(r, k) && agg[a.row_cols(r)[k]] != UNASSIGNED {
                free = false;
                break;
            }
        }
        if free {
            agg[r] = nagg;
            for k in 0..a.row_cols(r).len() {
                if strong(r, k) {
                    agg[a.row_cols(r)[k]] = nagg;
                }
            }
            nagg += 1;
        }
    }
    // Pass 2: attach leftovers to a strongly connected aggregate, or make
    // them singletons.
    for r in 0..n {
        if agg[r] != UNASSIGNED {
            continue;
        }
        let mut joined = false;
        for k in 0..a.row_cols(r).len() {
            let c = a.row_cols(r)[k];
            if strong(r, k) && agg[c] != UNASSIGNED {
                agg[r] = agg[c];
                joined = true;
                break;
            }
        }
        if !joined {
            agg[r] = nagg;
            nagg += 1;
        }
    }
    agg
}

/// Tentative piecewise-constant prolongator smoothed with one damped-Jacobi
/// step: `P = (I − ω D⁻¹ A) P_tent`, ω = 2/3 / ρ(D⁻¹A).
fn smoothed_prolongator(a: &CsrMatrix, agg: &[usize], nagg: usize) -> CsrMatrix {
    let n = a.nrows();
    let mut tent = CooMatrix::with_capacity(n, nagg, n);
    for (r, &g) in agg.iter().enumerate() {
        tent.push(r, g, 1.0).unwrap();
    }
    let tent = tent.to_csr();
    let inv_diag: Vec<f64> = a.diagonal().iter().map(|&d| 1.0 / d).collect();
    let rho = estimate_rho_dinv_a(a, &inv_diag);
    let omega = if rho > 0.0 {
        (2.0 / 3.0) / rho
    } else {
        2.0 / 3.0
    };
    // P = tent − ω D⁻¹ (A · tent)
    let atent = a.matmul(&tent);
    let mut coo = CooMatrix::with_capacity(n, nagg, atent.nnz() + n);
    for r in 0..n {
        coo.push(r, agg[r], 1.0).unwrap();
        for (k, &c) in atent.row_cols(r).iter().enumerate() {
            coo.push(r, c, -omega * inv_diag[r] * atent.row_vals(r)[k])
                .unwrap();
        }
    }
    coo.to_csr()
}

/// Power iteration estimate of the spectral radius of `D⁻¹A`.
fn estimate_rho_dinv_a(a: &CsrMatrix, inv_diag: &[f64]) -> f64 {
    let n = a.nrows();
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let mut av = vec![0.0; n];
    let mut rho = 1.0;
    for _ in 0..8 {
        let norm = pscg_sparse::kernels::norm2(&v);
        // pscg-lint: allow(float-eq, exact-zero norm guard before normalising)
        if norm == 0.0 {
            break;
        }
        v.iter_mut().for_each(|x| *x /= norm);
        a.spmv(&v, &mut av);
        for i in 0..n {
            av[i] *= inv_diag[i];
        }
        rho = pscg_sparse::kernels::norm2(&av);
        std::mem::swap(&mut v, &mut av);
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{richardson, small_poisson};
    use pscg_sparse::stencil::poisson3d_7pt;

    #[test]
    fn linear_interpolation_partitions_unity() {
        let g = Grid3::new(5, 4, 3);
        let (p, gc) = linear_interpolation(g);
        assert_eq!(p.nrows(), g.len());
        assert_eq!(p.ncols(), gc.len());
        // Row sums of an interpolation operator are 1.
        let ones = vec![1.0; gc.len()];
        let y = p.mul_vec(&ones);
        for v in y {
            assert!((v - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn gmg_builds_multiple_levels_and_contracts() {
        let g = Grid3::cube(12);
        let a = poisson3d_7pt(g, None);
        let mut mg = gmg(&a, g);
        assert!(mg.nlevels() >= 2, "levels = {}", mg.nlevels());
        let (r0, r1) = richardson(&a, &mut mg, 6);
        assert!(r1 < 1e-2 * r0, "MG should contract fast: {r0} -> {r1}");
    }

    #[test]
    fn gamg_builds_and_contracts() {
        let (a, _) = small_poisson();
        let mut mg = gamg(&a);
        assert!(mg.nlevels() >= 2);
        let (r0, r1) = richardson(&a, &mut mg, 8);
        assert!(r1 < 0.1 * r0, "GAMG should contract: {r0} -> {r1}");
    }

    #[test]
    fn aggregation_covers_every_row() {
        let (a, _) = small_poisson();
        let agg = aggregate(&a);
        let nagg = agg.iter().copied().max().unwrap() + 1;
        assert!(nagg < a.nrows());
        assert!(agg.iter().all(|&g| g < nagg));
    }

    #[test]
    fn multigrid_apply_is_symmetric() {
        // SPD preconditioner check: (M⁻¹x, y) == (x, M⁻¹y).
        let g = Grid3::cube(8);
        let a = poisson3d_7pt(g, None);
        let mut mg = gmg(&a, g);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 13 % 23) as f64) - 11.0).collect();
        let mut mx = vec![0.0; n];
        let mut my = vec![0.0; n];
        mg.apply(&x, &mut mx);
        mg.apply(&y, &mut my);
        let lhs = pscg_sparse::kernels::dot(&mx, &y);
        let rhs = pscg_sparse::kernels::dot(&x, &my);
        assert!(
            (lhs - rhs).abs() <= 1e-10 * lhs.abs().max(rhs.abs()),
            "asymmetric: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn mg_cost_exceeds_sor_and_jacobi() {
        let (a, g) = small_poisson();
        let mg = gmg(&a, g);
        let sor = crate::Ssor::new(&a, 1.0);
        assert!(mg.cost().flops_per_row > sor.cost().flops_per_row);
        assert!(mg.cost().comm_rounds > 0);
    }

    #[test]
    fn gamg_cost_exceeds_gmg_cost() {
        // Smoothed-aggregation coarse operators are denser, so GAMG is the
        // most computationally intensive preconditioner — the paper's
        // premise in the Figure 4 discussion.
        let g = Grid3::cube(10);
        let a = poisson3d_7pt(g, None);
        let mg = gmg(&a, g);
        let ga = gamg(&a);
        assert!(
            ga.cost().flops_per_row > mg.cost().flops_per_row,
            "GAMG {} vs MG {}",
            ga.cost().flops_per_row,
            mg.cost().flops_per_row
        );
    }
}

//! Block-Jacobi preconditioning: exact solves on the diagonal blocks of a
//! row-block partition.
//!
//! This is what `PCBJACOBI` (PETSc's parallel default) computes: each rank
//! factorises its own diagonal block and applies it with no communication.
//! Like processor-local SOR, the preconditioner quality *depends on the
//! block count* — more ranks, weaker coupling — which the global engines
//! emulate by taking the intended rank count at construction.

use pscg_sparse::dense::{DenseMatrix, LuFactors, LuFactorsF32};
use pscg_sparse::op::{ApplyCost, Operator};
use pscg_sparse::partition::RowBlockPartition;
use pscg_sparse::CsrMatrix;

/// Block-Jacobi with dense LU per diagonal block.
///
/// Supports the demoted fp32 apply (DESIGN.md §12): on
/// [`Operator::demote_precision`] every block's factors are rounded to f32
/// once and the triangular solves run in f32, halving factor traffic. The
/// fp64 factors are kept, so promotion restores the original operator
/// exactly.
pub struct BlockJacobi {
    part: RowBlockPartition,
    blocks: Vec<LuFactors>,
    /// fp32 copies of the block factors, built lazily on first demotion.
    blocks_f32: Vec<LuFactorsF32>,
    fp32: bool,
    avg_block: f64,
}

impl BlockJacobi {
    /// Builds with the balanced `nblocks`-way row partition. Block sizes
    /// must stay small enough for dense factors (guarded at 2048 rows).
    pub fn new(a: &CsrMatrix, nblocks: usize) -> Self {
        assert!(nblocks > 0);
        let n = a.nrows();
        let part = RowBlockPartition::balanced(n, nblocks);
        assert!(
            part.max_local_len() <= 2048,
            "block size {} too large for dense block factors",
            part.max_local_len()
        );
        let blocks: Vec<LuFactors> = (0..nblocks)
            .map(|r| {
                let (lo, hi) = part.range(r);
                let m = hi - lo;
                let mut d = DenseMatrix::zeros(m, m);
                for row in lo..hi {
                    for (k, &c) in a.row_cols(row).iter().enumerate() {
                        if c >= lo && c < hi {
                            d.set(row - lo, c - lo, a.row_vals(row)[k]);
                        }
                    }
                }
                d.lu()
                    .expect("diagonal block of an SPD matrix is nonsingular")
            })
            .collect();
        let avg_block = n as f64 / nblocks as f64;
        BlockJacobi {
            part,
            blocks,
            blocks_f32: Vec::new(),
            fp32: false,
            avg_block,
        }
    }

    /// Number of blocks.
    pub fn nblocks(&self) -> usize {
        self.blocks.len()
    }
}

impl Operator for BlockJacobi {
    fn nrows(&self) -> usize {
        self.part.nrows()
    }

    fn apply(&mut self, r: &[f64], u: &mut [f64]) {
        if self.fp32 {
            for (b, lu) in self.blocks_f32.iter().enumerate() {
                let (lo, hi) = self.part.range(b);
                lu.solve_into(&r[lo..hi], &mut u[lo..hi]);
            }
        } else {
            for (b, lu) in self.blocks.iter().enumerate() {
                let (lo, hi) = self.part.range(b);
                let x = lu.solve(&r[lo..hi]);
                u[lo..hi].copy_from_slice(&x);
            }
        }
    }

    fn cost(&self) -> ApplyCost {
        // Dense triangular solves: ~2·m² flops over m rows = 2m per row;
        // demoted factors halve the dominant factor traffic.
        ApplyCost {
            flops_per_row: 2.0 * self.avg_block,
            bytes_per_row: if self.fp32 { 4.0 } else { 8.0 } * self.avg_block,
            comm_rounds: 0,
        }
    }

    fn name(&self) -> &str {
        if self.fp32 {
            "BlockJacobi-fp32"
        } else {
            "BlockJacobi"
        }
    }

    fn demote_precision(&mut self) -> bool {
        if self.blocks_f32.is_empty() && !self.blocks.is_empty() {
            self.blocks_f32 = self.blocks.iter().map(LuFactors::to_f32).collect();
        }
        self.fp32 = true;
        true
    }

    fn promote_precision(&mut self) {
        self.fp32 = false;
    }

    fn is_demoted(&self) -> bool {
        self.fp32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{richardson, small_poisson};

    #[test]
    fn one_block_is_a_direct_solve() {
        let (a, _) = small_poisson();
        let n = a.nrows();
        let mut m = BlockJacobi::new(&a, 1);
        let xstar: Vec<f64> = (0..n).map(|i| (0.3 * i as f64).sin()).collect();
        let b = a.mul_vec(&xstar);
        let mut u = vec![0.0; n];
        m.apply(&b, &mut u);
        for i in 0..n {
            assert!((u[i] - xstar[i]).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn more_blocks_weaken_the_preconditioner() {
        let (a, _) = small_poisson();
        let mut m1 = BlockJacobi::new(&a, 2);
        let mut m2 = BlockJacobi::new(&a, 27);
        let (_, r1) = richardson(&a, &mut m1, 6);
        let (_, r2) = richardson(&a, &mut m2, 6);
        assert!(r1 < r2, "2 blocks {r1} should beat 27 blocks {r2}");
    }

    #[test]
    fn block_jacobi_beats_pointwise_jacobi() {
        let (a, _) = small_poisson();
        let mut bj = BlockJacobi::new(&a, 8);
        let mut j = crate::Jacobi::new(&a);
        let (_, rb) = richardson(&a, &mut bj, 8);
        let (_, rj) = richardson(&a, &mut j, 8);
        assert!(rb < rj, "block {rb} vs pointwise {rj}");
    }

    #[test]
    fn cost_grows_with_block_size() {
        let (a, _) = small_poisson();
        let big = BlockJacobi::new(&a, 2);
        let small = BlockJacobi::new(&a, 32);
        assert!(big.cost().flops_per_row > small.cost().flops_per_row);
        assert_eq!(big.cost().comm_rounds, 0);
    }
}

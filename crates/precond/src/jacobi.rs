//! Pointwise Jacobi (diagonal) preconditioning — the paper's default
//! (`"We use Jacobi Preconditioner in all preconditioned variants unless
//! stated otherwise"`, §VI-A).

use pscg_sparse::op::{ApplyCost, Operator};
use pscg_sparse::CsrMatrix;

/// `M⁻¹ = diag(A)⁻¹`.
///
/// Supports the demoted fp32 apply of the kernel tier (DESIGN.md §12): on
/// [`Operator::demote_precision`] the inverse diagonal is rounded to f32
/// once and the pointwise apply runs in f32, reading 4 bytes of diagonal
/// per row instead of 8. The fp64 diagonal is kept, so promotion restores
/// the exact original operator. Demotion itself never fails — if an entry
/// overflows f32 (ill-conditioned diagonal) the apply produces non-finite
/// values that the solver's breakdown guard and drift probe catch, which
/// is precisely the fallback ladder this knob is gated by.
#[derive(Debug, Clone)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
    /// fp32 copy of `inv_diag`, built lazily on first demotion.
    inv_diag_f32: Vec<f32>,
    fp32: bool,
}

impl Jacobi {
    /// Builds from the diagonal of `a`; every diagonal entry must be
    /// nonzero (SPD matrices have positive diagonals).
    pub fn new(a: &CsrMatrix) -> Self {
        let diag = a.diagonal();
        assert!(
            diag.iter().all(|&d| d != 0.0), // pscg-lint: allow(float-eq, an exactly-zero diagonal is the division hazard being excluded)
            "Jacobi preconditioner needs a zero-free diagonal"
        );
        Jacobi::from_inv_diag(diag.iter().map(|d| 1.0 / d).collect())
    }

    /// Builds directly from an inverse-diagonal vector (used by the
    /// distributed engine, which slices the diagonal per rank).
    pub fn from_inv_diag(inv_diag: Vec<f64>) -> Self {
        Jacobi {
            inv_diag,
            inv_diag_f32: Vec::new(),
            fp32: false,
        }
    }

    /// The stored inverse diagonal.
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_diag
    }
}

impl Operator for Jacobi {
    fn nrows(&self) -> usize {
        self.inv_diag.len()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        if self.fp32 {
            pscg_sparse::kernels::hadamard_f32(&self.inv_diag_f32, x, y);
        } else {
            pscg_sparse::kernels::hadamard(&self.inv_diag, x, y);
        }
    }

    fn cost(&self) -> ApplyCost {
        ApplyCost {
            flops_per_row: 1.0,
            // Demoted: 4 B diagonal + 8 B in + 8 B out per row.
            bytes_per_row: if self.fp32 { 20.0 } else { 24.0 },
            comm_rounds: 0,
        }
    }

    fn name(&self) -> &str {
        if self.fp32 {
            "Jacobi-fp32"
        } else {
            "Jacobi"
        }
    }

    fn demote_precision(&mut self) -> bool {
        if self.inv_diag_f32.is_empty() && !self.inv_diag.is_empty() {
            self.inv_diag_f32 = self.inv_diag.iter().map(|&d| d as f32).collect();
        }
        self.fp32 = true;
        true
    }

    fn promote_precision(&mut self) {
        self.fp32 = false;
    }

    fn is_demoted(&self) -> bool {
        self.fp32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{richardson, small_poisson};

    #[test]
    fn applies_inverse_diagonal() {
        let (a, _) = small_poisson();
        let mut j = Jacobi::new(&a);
        let n = a.nrows();
        let d = a.diagonal();
        let x = vec![2.0; n];
        let mut y = vec![0.0; n];
        j.apply(&x, &mut y);
        for i in 0..n {
            assert!((y[i] - 2.0 / d[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn jacobi_richardson_contracts() {
        let (a, _) = small_poisson();
        let mut j = Jacobi::new(&a);
        let (r0, r1) = richardson(&a, &mut j, 30);
        assert!(r1 < 0.5 * r0, "r0 = {r0}, r30 = {r1}");
    }

    #[test]
    #[should_panic(expected = "zero-free diagonal")]
    fn rejects_zero_diagonal() {
        // 2x2 with a structural zero on the diagonal.
        let a = CsrMatrix::from_raw_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 1.0]).unwrap();
        let _ = Jacobi::new(&a);
    }

    #[test]
    fn cost_is_local() {
        let (a, _) = small_poisson();
        assert_eq!(Jacobi::new(&a).cost().comm_rounds, 0);
    }
}

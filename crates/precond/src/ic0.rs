//! Zero-fill incomplete Cholesky preconditioning, `IC(0)`.
//!
//! Factorises `A ≈ L·Lᵀ` keeping only the sparsity pattern of `A`'s lower
//! triangle; applying `M⁻¹ = (LLᵀ)⁻¹` is a forward and a backward triangular
//! sweep. A classic mid-strength preconditioner sitting between SSOR and
//! multigrid in the paper's "computational intensity of the PC" axis —
//! provided here as an extension beyond the paper's four (its cost profile
//! slots straight into the Figure 4 style study).

use pscg_sparse::op::{ApplyCost, Operator};
use pscg_sparse::{CsrMatrix, SparseError};

/// IC(0) preconditioner.
pub struct Ic0 {
    /// Lower-triangular factor (same pattern as `tril(A)`), CSR.
    l: CsrMatrix,
    /// Diagonal of `L` (extracted for the sweeps).
    diag: Vec<f64>,
    scratch: Vec<f64>,
}

impl Ic0 {
    /// Computes the IC(0) factorisation. Fails on a non-positive pivot —
    /// IC(0) of a general SPD matrix can break down; diagonally dominant
    /// matrices (all the operators in this repository) are safe.
    pub fn new(a: &CsrMatrix) -> Result<Self, SparseError> {
        let n = a.nrows();
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        // Build the lower-triangle pattern of A in CSR.
        let mut row_ptr = vec![0usize; n + 1];
        for r in 0..n {
            let cnt = a.row_cols(r).iter().filter(|&&c| c <= r).count();
            row_ptr[r + 1] = row_ptr[r] + cnt;
        }
        let nnz = row_ptr[n];
        let mut col_idx = vec![0usize; nnz];
        let mut vals = vec![0.0f64; nnz];
        for r in 0..n {
            let mut k = row_ptr[r];
            for (j, &c) in a.row_cols(r).iter().enumerate() {
                if c <= r {
                    col_idx[k] = c;
                    vals[k] = a.row_vals(r)[j];
                    k += 1;
                }
            }
        }
        // Up-looking IC(0): for each row r, update against previous rows
        // restricted to the fixed pattern.
        let mut diag = vec![0.0f64; n];
        for r in 0..n {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            debug_assert!(
                hi > lo && col_idx[hi - 1] == r,
                "SPD matrix has a full diagonal"
            );
            for k in lo..hi {
                let c = col_idx[k];
                // vals[k] -= sum_{j<c, j in pattern of both rows} L[r,j]*L[c,j]
                let mut acc = vals[k];
                let (clo, chi) = (row_ptr[c], row_ptr[c + 1]);
                let mut i1 = lo;
                let mut i2 = clo;
                while i1 < k && i2 + 1 < chi {
                    let (c1, c2) = (col_idx[i1], col_idx[i2]);
                    if c2 >= c {
                        break;
                    }
                    match c1.cmp(&c2) {
                        std::cmp::Ordering::Less => i1 += 1,
                        std::cmp::Ordering::Greater => i2 += 1,
                        std::cmp::Ordering::Equal => {
                            acc -= vals[i1] * vals[i2];
                            i1 += 1;
                            i2 += 1;
                        }
                    }
                }
                if c == r {
                    if acc <= 0.0 {
                        return Err(SparseError::SingularMatrix { pivot: r });
                    }
                    let d = acc.sqrt();
                    vals[k] = d;
                    diag[r] = d;
                } else {
                    vals[k] = acc / diag[c];
                }
            }
        }
        let l = CsrMatrix::from_raw_parts(n, n, row_ptr, col_idx, vals)?;
        Ok(Ic0 {
            l,
            diag,
            scratch: vec![0.0; n],
        })
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &CsrMatrix {
        &self.l
    }
}

impl Operator for Ic0 {
    fn nrows(&self) -> usize {
        self.l.nrows()
    }

    fn apply(&mut self, r: &[f64], u: &mut [f64]) {
        let n = self.l.nrows();
        let z = &mut self.scratch;
        // Forward solve L z = r.
        for i in 0..n {
            let mut acc = r[i];
            let cols = self.l.row_cols(i);
            let vals = self.l.row_vals(i);
            for (k, &c) in cols.iter().enumerate() {
                if c < i {
                    acc -= vals[k] * z[c];
                }
            }
            z[i] = acc / self.diag[i];
        }
        // Backward solve Lᵀ u = z (column sweep over L's rows).
        u.copy_from_slice(z);
        for i in (0..n).rev() {
            u[i] /= self.diag[i];
            let ui = u[i];
            let cols = self.l.row_cols(i);
            let vals = self.l.row_vals(i);
            for (k, &c) in cols.iter().enumerate() {
                if c < i {
                    u[c] -= vals[k] * ui;
                }
            }
        }
    }

    fn cost(&self) -> ApplyCost {
        let per_row = self.l.avg_nnz_per_row();
        ApplyCost {
            flops_per_row: 4.0 * per_row + 2.0,
            bytes_per_row: 32.0 * per_row + 32.0,
            comm_rounds: 0,
        }
    }

    fn name(&self) -> &str {
        "IC0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{richardson, small_poisson};

    #[test]
    fn ic0_of_diagonal_matrix_is_exact() {
        let a =
            CsrMatrix::from_raw_parts(3, 3, vec![0, 1, 2, 3], vec![0, 1, 2], vec![4.0, 9.0, 16.0])
                .unwrap();
        let mut m = Ic0::new(&a).unwrap();
        let r = [4.0, 9.0, 16.0];
        let mut u = [0.0; 3];
        m.apply(&r, &mut u);
        assert_eq!(u, [1.0, 1.0, 1.0]);
    }

    #[test]
    fn ic0_is_exact_cholesky_on_tridiagonal() {
        // IC(0) on a tridiagonal matrix has no dropped fill: M == A.
        let n = 8;
        let mut coo = pscg_sparse::CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            if i + 1 < n {
                coo.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let mut m = Ic0::new(&a).unwrap();
        // M^{-1} A x == x
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
        let ax = a.mul_vec(&x);
        let mut y = vec![0.0; n];
        m.apply(&ax, &mut y);
        for i in 0..n {
            assert!((y[i] - x[i]).abs() < 1e-12, "row {i}: {} vs {}", y[i], x[i]);
        }
    }

    #[test]
    fn ic0_contracts_faster_than_ssor() {
        let (a, _) = small_poisson();
        let mut ic = Ic0::new(&a).unwrap();
        let mut sor = crate::Ssor::new(&a, 1.0);
        let (_, ric) = richardson(&a, &mut ic, 10);
        let (_, rsor) = richardson(&a, &mut sor, 10);
        assert!(
            ric <= rsor * 1.5,
            "IC(0) {ric} should be competitive with SSOR {rsor}"
        );
    }

    #[test]
    fn ic0_apply_is_symmetric() {
        let (a, _) = small_poisson();
        let mut m = Ic0::new(&a).unwrap();
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 17 % 13) as f64) - 6.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let mut mx = vec![0.0; n];
        let mut my = vec![0.0; n];
        m.apply(&x, &mut mx);
        m.apply(&y, &mut my);
        let lhs = pscg_sparse::kernels::dot(&mx, &y);
        let rhs = pscg_sparse::kernels::dot(&x, &my);
        assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));
    }

    #[test]
    fn rejects_rectangular() {
        let a = CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![0], vec![1.0]).unwrap();
        assert!(Ic0::new(&a).is_err());
    }
}

//! Detection and recovery: the self-stabilization half of the fault story.
//!
//! The injection half lives in `pscg-fault` (armed on the engine via
//! `SimCtx::arm_faults`); this module gives the solver loops and callers
//! the tools to *survive* what it injects:
//!
//! * [`ResilienceState`] — per-solve in-loop state: a periodic true-residual
//!   **drift probe** (`‖b − A x‖` recomputed from scratch vs the recurrence
//!   residual, flagged beyond a configurable gap), plus **checkpointing** of
//!   the last-good iterate and rollback to it when the loop aborts.
//! * [`wait_reduction`] — bounded retry of a timed-out non-blocking
//!   reduction completion, re-posting the local contribution when the
//!   completion was dropped outright; a rank failure surfaces as a typed
//!   [`CommError::RankFailed`] instead of a value.
//! * **Buddy checkpointing + rank rebuild** — on the checkpoint cadence
//!   each rank also ships its iterate partition to a neighbor
//!   (`Context::buddy_put`); when a rank dies mid-solve the supervisor
//!   reconstructs the lost partition from the buddy copy
//!   (`Context::buddy_recover`), shrinks the communicator to the
//!   survivors and resumes — escalating to [`SolveError::RankLost`] only
//!   when the buddy is gone too.
//! * **Progress watchdog** — a wall-clock and/or check-count deadline on
//!   residual improvement ([`Resilience::stall_timeout_secs`] /
//!   [`Resilience::stall_checks`]) converts any would-be hang into an
//!   explicit [`StopReason::Stalled`].
//! * [`solve_resilient`] — the supervisor implementing the recovery ladder:
//!   run the method; verify the result against the true residual; on
//!   breakdown, communication fault or silent drift, perform a
//!   **residual-replacement restart** from the current (or rolled-back)
//!   iterate — which recomputes `r = b − A x` and rebuilds every `AQ`/`AP`
//!   basis block at solve start — up to
//!   [`Resilience::max_replacements`] times; finally degrade to a clean PCG
//!   restart from the best iterate seen. If that also fails, the caller
//!   gets an explicit [`SolveError`] — never a hang, never a silently wrong
//!   answer.
//!
//! Everything here is inert unless armed: `Resilience::default()` issues no
//! extra kernels, and on a fault-free run `try_wait` completes first try so
//! the retry loop never re-posts.

use pscg_sim::{BuddyRecovery, CommError, Context, ReduceHandle, WaitOutcome};

use crate::methods::MethodKind;
use crate::solver::{NormType, Resilience, SolveError, SolveOptions, SolveResult, StopReason};
use crate::telemetry;

/// Recovery-action codes carried in the `arg` of recovery spans.
pub mod code {
    /// A timed-out reduction completion was retried.
    pub const REDUCE_RETRY: u64 = 1;
    /// A dropped reduction was re-posted from the local contribution.
    pub const REDUCE_REPOST: u64 = 2;
    /// The iterate was rolled back to the last-good checkpoint.
    pub const ROLLBACK: u64 = 3;
    /// A residual-replacement restart was performed.
    pub const REPLACEMENT: u64 = 4;
    /// The ladder degraded to a clean PCG restart.
    pub const PCG_RESTART: u64 = 5;
    /// A still-pending reduction was drained (payload discarded) after the
    /// retry budget ran out, so the next attempt starts quiescent.
    pub const REDUCE_DRAIN: u64 = 6;
    /// The preconditioner apply was demoted to fp32 at solve start
    /// (`SolveOptions::pc_fp32`).
    pub const PC_DEMOTE: u64 = 7;
    /// The fp32 preconditioner apply was promoted back to fp64 after an
    /// attempt failed — the drift-probe-gated mixed-precision fallback.
    pub const PC_PROMOTE: u64 = 8;
    /// A dead rank's partition was rebuilt from its buddy's in-memory
    /// checkpoint and the solve resumed on the survivor communicator.
    pub const RANK_REBUILD: u64 = 9;
    /// The progress watchdog converted a stall into an explicit stop.
    pub const STALL_ABORT: u64 = 10;
}

/// True relative residual `‖b − A x‖ / refn` recomputed from scratch in the
/// convergence-test norm. One SPMV, one PC for preconditioned/natural
/// norms, one blocking allreduce — all charged through the context.
pub(crate) fn true_relres<C: Context + ?Sized>(
    ctx: &mut C,
    b: &[f64],
    x: &[f64],
    norm: NormType,
    refn: f64,
) -> f64 {
    let n = ctx.vec_len();
    // Plain buffers, not `alloc_vec`: probe scratch is not part of the
    // method's Table-I memory footprint.
    let mut ax = vec![0.0; n];
    ctx.spmv(x, &mut ax);
    let mut r = vec![0.0; n];
    ctx.waxpy(&mut r, -1.0, &ax, b);
    let sq = match norm {
        NormType::Unpreconditioned => {
            let rr = ctx.local_dot(&r, &r);
            ctx.allreduce(&[rr])[0]
        }
        NormType::Preconditioned | NormType::Natural => {
            let mut u = vec![0.0; n];
            ctx.pc_apply(&r, &mut u);
            let uu = ctx.local_dot(&u, &u);
            let ru = ctx.local_dot(&r, &u);
            let red = ctx.allreduce(&[uu, ru]);
            norm.pick_sq(f64::NAN, red[0], red[1])
        }
    };
    // Preserve a non-finite squared norm: `.max(0.0)` alone would clamp a
    // poisoned NaN into a fake zero residual, and this probe is the last
    // line of defence against accepting a corrupted iterate.
    if !sq.is_finite() {
        return f64::NAN;
    }
    sq.max(0.0).sqrt() / refn.max(f64::MIN_POSITIVE)
}

/// Non-finite or negative γ-scalar breakdown guard: `(r, u)` (or any
/// positive-by-construction CG scalar) must stay finite and non-negative on
/// an SPD system. Pure comparison — no extra operations on clean runs.
#[inline]
pub(crate) fn gamma_breakdown(gamma: f64) -> bool {
    !gamma.is_finite() || gamma < 0.0
}

struct Checkpoint {
    x: Vec<f64>,
    relres: f64,
}

/// Verdict of one in-loop resilience check (see
/// [`ResilienceState::on_check`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CheckVerdict {
    /// Nothing suspicious: keep iterating.
    Continue,
    /// The drift probe caught the recurrence residual lying — roll back
    /// and abort the attempt ([`StopReason::Breakdown`]).
    Drift,
    /// The progress watchdog fired: no residual improvement within the
    /// configured deadline — abort with [`StopReason::Stalled`].
    Stalled,
}

impl CheckVerdict {
    /// Loop-level stop reason for a non-`Continue` verdict.
    pub(crate) fn stop(self) -> StopReason {
        match self {
            CheckVerdict::Continue => unreachable!("Continue does not stop the loop"),
            CheckVerdict::Drift => StopReason::Breakdown,
            CheckVerdict::Stalled => StopReason::Stalled,
        }
    }
}

/// Per-solve in-loop resilience state: drift probe, checkpoint/rollback,
/// buddy checkpointing and the no-progress watchdog.
pub(crate) struct ResilienceState {
    cfg: Resilience,
    norm: NormType,
    refn: f64,
    checks: usize,
    ckpt: Option<Checkpoint>,
    /// Best (smallest) residual seen — "progress" means improving on it.
    best: f64,
    /// Consecutive checks without progress (the deterministic watchdog).
    stale: usize,
    /// Wall-clock instant of the last progress (the wall-clock watchdog);
    /// lazily initialized so passive configurations never read the clock.
    last_progress: Option<std::time::Instant>,
}

impl ResilienceState {
    pub(crate) fn new(opts: &SolveOptions, refn: f64) -> Self {
        ResilienceState {
            cfg: opts.resilience,
            norm: opts.norm,
            refn,
            checks: 0,
            ckpt: None,
            best: f64::INFINITY,
            stale: 0,
            last_progress: None,
        }
    }

    /// Called at every convergence check (after the check decided to keep
    /// iterating). Takes local and buddy checkpoints and/or runs the drift
    /// probe on their configured cadences, and advances the no-progress
    /// watchdog. With a passive configuration this is a single branch.
    pub(crate) fn on_check<C: Context + ?Sized>(
        &mut self,
        ctx: &mut C,
        b: &[f64],
        x: &[f64],
        relres: f64,
    ) -> CheckVerdict {
        if self.cfg.passive() {
            return CheckVerdict::Continue;
        }
        self.checks += 1;
        if self.cfg.checkpoint_every > 0
            && self.checks.is_multiple_of(self.cfg.checkpoint_every)
            && relres.is_finite()
            && self.ckpt.as_ref().is_none_or(|c| relres < c.relres)
        {
            self.ckpt = Some(Checkpoint {
                x: x.to_vec(),
                relres,
            });
            // The same cadence ships the iterate to the buddy rank, so a
            // single rank death stays repairable in memory.
            ctx.buddy_put(x);
        }
        if self.cfg.drift_check_every > 0 && self.checks.is_multiple_of(self.cfg.drift_check_every)
        {
            let t = true_relres(ctx, b, x, self.norm, self.refn);
            let lying = !relres.is_finite()
                || !t.is_finite()
                || t > self.cfg.drift_tol * relres.max(f64::MIN_POSITIVE);
            // `broken-resilience` plants a blinded drift probe so the
            // chaos gate can prove it catches a sabotaged ladder.
            if lying && cfg!(not(feature = "broken-resilience")) {
                return CheckVerdict::Drift;
            }
        }
        self.watchdog(relres)
    }

    /// The no-progress watchdog: progress (an improved finite residual)
    /// resets both deadlines; a check without progress advances them.
    fn watchdog(&mut self, relres: f64) -> CheckVerdict {
        let wall = self.cfg.stall_timeout_secs > 0.0;
        let count = self.cfg.stall_checks > 0;
        if !wall && !count {
            return CheckVerdict::Continue;
        }
        if relres.is_finite() && relres < self.best {
            self.best = relres;
            self.stale = 0;
            if wall {
                self.last_progress = Some(std::time::Instant::now());
            }
            return CheckVerdict::Continue;
        }
        self.stale += 1;
        if count && self.stale >= self.cfg.stall_checks {
            return CheckVerdict::Stalled;
        }
        if wall {
            let since = self
                .last_progress
                .get_or_insert_with(std::time::Instant::now)
                .elapsed();
            if since.as_secs_f64() > self.cfg.stall_timeout_secs {
                return CheckVerdict::Stalled;
            }
        }
        CheckVerdict::Continue
    }

    /// Rolls `x` back to the last-good checkpoint; true when one existed.
    pub(crate) fn rollback<C: Context + ?Sized>(&mut self, ctx: &mut C, x: &mut [f64]) -> bool {
        match self.ckpt.take() {
            Some(c) => {
                x.copy_from_slice(&c.x);
                telemetry::note_recovery(ctx, code::ROLLBACK);
                true
            }
            None => false,
        }
    }
}

/// Completes a posted reduction with bounded retry-with-backoff: a delayed
/// completion is waited on again (up to `retries` times, each attempt a
/// backoff tick), a dropped one is re-posted from `local`. A rank failure
/// is not retriable — the handle is already retired and the typed error
/// goes straight to the supervisor. On a clean run the first `try_wait`
/// succeeds and this is exactly [`Context::wait`].
pub(crate) fn wait_reduction<C: Context + ?Sized>(
    ctx: &mut C,
    mut h: ReduceHandle,
    local: &[f64],
    retries: u32,
) -> Result<Vec<f64>, CommError> {
    let mut attempt = 0u32;
    loop {
        match ctx.try_wait(h) {
            WaitOutcome::Done(v) => return Ok(v),
            WaitOutcome::RankFailed(failure) => return Err(CommError::RankFailed(failure)),
            WaitOutcome::TimedOut { handle, fault } => {
                if attempt >= retries {
                    // Collective discipline: never abandon an in-flight
                    // reduction — the escalation path (restart) would post
                    // new collectives over it. Drain it, discard the stale
                    // payload, and report the timeout from a quiescent
                    // communicator.
                    if let Some(h) = handle {
                        telemetry::note_recovery(ctx, code::REDUCE_DRAIN);
                        let _ = ctx.wait(h);
                    }
                    return Err(CommError::Timeout(fault));
                }
                attempt += 1;
                h = match handle {
                    Some(h) => {
                        telemetry::note_recovery(ctx, code::REDUCE_RETRY);
                        h
                    }
                    None => {
                        telemetry::note_recovery(ctx, code::REDUCE_REPOST);
                        ctx.iallreduce(local)
                    }
                };
            }
        }
    }
}

/// Maps a terminal communication error to its loop-level stop reason.
pub(crate) fn comm_stop(err: &CommError) -> StopReason {
    match err {
        CommError::Timeout(_) => StopReason::CommFault,
        CommError::RankFailed(_) => StopReason::RankFailed,
    }
}

/// The recovery-ladder supervisor (see module docs). Arms
/// [`Resilience::armed`] when the caller left the default (inert)
/// configuration, so every attempt checkpoints and drift-probes.
pub fn solve_resilient<C: Context>(
    method: MethodKind,
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> Result<SolveResult, SolveError> {
    let mut opts = *opts;
    if opts.resilience == Resilience::default() {
        opts.resilience = Resilience::armed();
    }
    // Mixed-precision policy: try the fp32 preconditioner apply first. The
    // acceptance check below re-verifies every result against the
    // recomputed fp64 true residual, and the in-loop drift probe aborts a
    // lying recurrence — so reduced precision can cost a restart but never
    // a silently wrong answer. A failed attempt promotes back to fp64.
    if opts.pc_fp32 && ctx.pc_demote() {
        telemetry::note_recovery(ctx, code::PC_DEMOTE);
    }
    // `refn` is recomputed after a buddy rebuild (the survivor
    // communicator must agree on the reference norm), so the acceptance
    // check takes it as a parameter instead of capturing it.
    let mut refn = crate::methods::global_ref_norm(ctx, b, &opts);
    // A result is accepted only when the *recomputed* residual agrees that
    // the tolerance was met (small slack for the recurrence-vs-true gap a
    // healthy solve accumulates). The `broken-resilience` plant accepts
    // any finite residual — the sabotage the chaos gate must catch.
    let accept = |t: f64, refn: f64| {
        if cfg!(feature = "broken-resilience") {
            return t.is_finite();
        }
        t.is_finite() && t <= opts.rtol.max(opts.atol / refn.max(f64::MIN_POSITIVE)) * 10.0
    };

    let mut start: Option<Vec<f64>> = x0.map(|v| v.to_vec());
    let mut total_iters = 0usize;
    let mut history: Vec<f64> = Vec::new();
    let mut best: Option<(Vec<f64>, f64)> = None;
    let mut last = None;

    /// Merges one attempt into the ladder-wide result.
    fn merged(
        res: SolveResult,
        total_iters: usize,
        mut history: Vec<f64>,
        counters: pscg_sim::OpCounters,
    ) -> SolveResult {
        history.extend(res.history.iter().copied());
        SolveResult {
            iterations: total_iters,
            history,
            counters,
            ..res
        }
    }

    for attempt in 0..=opts.resilience.max_replacements {
        let res = method.solve(ctx, b, start.as_deref(), &opts);
        total_iters += res.iterations;
        if res.stop == StopReason::RankFailed {
            // The communicator is poisoned: repair it *before* issuing any
            // further collectives (the true-residual probe reduces).
            match ctx.buddy_recover() {
                BuddyRecovery::Lost { rank, .. } => {
                    pscg_obs::flight::dump_to_path("RankLost");
                    return Err(SolveError::RankLost {
                        rank,
                        iterations: total_iters,
                    });
                }
                BuddyRecovery::Restored { x, .. } => {
                    telemetry::note_recovery(ctx, code::RANK_REBUILD);
                    history.extend(res.history.iter().copied());
                    last = Some(res.stop);
                    // Resume from the buddy-checkpointed iterate; a death
                    // before the first checkpoint restarts from scratch.
                    // The failing attempt's iterate is poisoned — unusable.
                    start = x;
                    refn = crate::methods::global_ref_norm(ctx, b, &opts);
                    continue;
                }
                // An engine reporting RankFailed without an active failure
                // has already healed (e.g. a transient); fall through to
                // the ordinary replacement path.
                BuddyRecovery::NoFailure => {}
            }
        }
        let t = true_relres(ctx, b, &res.x, opts.norm, refn);
        if t.is_finite() && best.as_ref().is_none_or(|(_, bt)| t < *bt) {
            best = Some((res.x.clone(), t));
        }
        if res.converged() && accept(t, refn) {
            ctx.pc_promote();
            return Ok(merged(res, total_iters, history, *ctx.counters()));
        }
        // Honest budget exhaustion (no drift, no fault): report it as-is
        // rather than burning restarts on a solve that is simply slow.
        if res.stop == StopReason::MaxIterations
            && t.is_finite()
            && t <= opts.resilience.drift_tol * res.final_relres.max(f64::MIN_POSITIVE)
        {
            ctx.pc_promote();
            return Ok(merged(res, total_iters, history, *ctx.counters()));
        }
        history.extend(res.history.iter().copied());
        last = Some(res.stop);
        // Post-mortem snapshot of the failing attempt before recovery
        // mutates any state (no-op unless the flight recorder is armed).
        if matches!(res.stop, StopReason::Breakdown | StopReason::Stalled) {
            pscg_obs::flight::dump_to_path(res.stop.name());
        }
        if res.stop == StopReason::Stalled {
            telemetry::note_recovery(ctx, code::STALL_ABORT);
        }
        // fp64 fallback: a demoted preconditioner is the first suspect of
        // a failed attempt — promote before burning a restart on it.
        if ctx.pc_demoted() {
            ctx.pc_promote();
            telemetry::note_recovery(ctx, code::PC_PROMOTE);
        }
        if attempt < opts.resilience.max_replacements {
            // Residual replacement: restart from the best finite iterate —
            // the new solve recomputes r = b − A x and rebuilds the AQ/AP
            // basis blocks from scratch.
            telemetry::note_recovery(ctx, code::REPLACEMENT);
            start = Some(match &best {
                Some((x, _)) => x.clone(),
                None => res.x.clone(),
            });
        }
    }

    // Replacement failed max_replacements times: degrade gracefully to a
    // clean PCG restart from the last-good iterate (always full fp64).
    if ctx.pc_demoted() {
        ctx.pc_promote();
        telemetry::note_recovery(ctx, code::PC_PROMOTE);
    }
    telemetry::note_recovery(ctx, code::PCG_RESTART);
    let from = best.as_ref().map(|(x, _)| x.clone()).or(start);
    let res = MethodKind::Pcg.solve(ctx, b, from.as_deref(), &opts);
    total_iters += res.iterations;
    let t = true_relres(ctx, b, &res.x, opts.norm, refn);
    if res.converged() && accept(t, refn) {
        return Ok(merged(res, total_iters, history, *ctx.counters()));
    }
    let best_true = best.map(|(_, bt)| bt).unwrap_or(t);
    // The ladder is out of options: leave the flight recording of the
    // final (PCG-restart) attempt for post-mortem analysis.
    pscg_obs::flight::dump_to_path("RecoveryExhausted");
    Err(SolveError::RecoveryExhausted {
        last_stop: last.unwrap_or(res.stop),
        best_true_relres: best_true.min(t),
        iterations: total_iters,
    })
}

impl MethodKind {
    /// Solves with the full recovery ladder armed; see
    /// [`solve_resilient`]. Returns an explicit [`SolveError`] when the
    /// ladder is exhausted — never hangs, never returns a solution whose
    /// recomputed residual contradicts the reported convergence.
    pub fn solve_resilient<C: Context>(
        self,
        ctx: &mut C,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> Result<SolveResult, SolveError> {
        solve_resilient(self, ctx, b, x0, opts)
    }
}

//! Detection and recovery: the self-stabilization half of the fault story.
//!
//! The injection half lives in `pscg-fault` (armed on the engine via
//! `SimCtx::arm_faults`); this module gives the solver loops and callers
//! the tools to *survive* what it injects:
//!
//! * [`ResilienceState`] — per-solve in-loop state: a periodic true-residual
//!   **drift probe** (`‖b − A x‖` recomputed from scratch vs the recurrence
//!   residual, flagged beyond a configurable gap), plus **checkpointing** of
//!   the last-good iterate and rollback to it when the loop aborts.
//! * [`wait_reduction`] — bounded retry of a timed-out non-blocking
//!   reduction completion, re-posting the local contribution when the
//!   completion was dropped outright.
//! * [`solve_resilient`] — the supervisor implementing the recovery ladder:
//!   run the method; verify the result against the true residual; on
//!   breakdown, communication fault or silent drift, perform a
//!   **residual-replacement restart** from the current (or rolled-back)
//!   iterate — which recomputes `r = b − A x` and rebuilds every `AQ`/`AP`
//!   basis block at solve start — up to
//!   [`Resilience::max_replacements`] times; finally degrade to a clean PCG
//!   restart from the best iterate seen. If that also fails, the caller
//!   gets an explicit [`SolveError`] — never a hang, never a silently wrong
//!   answer.
//!
//! Everything here is inert unless armed: `Resilience::default()` issues no
//! extra kernels, and on a fault-free run `try_wait` completes first try so
//! the retry loop never re-posts.

use pscg_sim::{Context, ReduceHandle, ReduceTimeout, WaitOutcome};

use crate::methods::MethodKind;
use crate::solver::{NormType, Resilience, SolveError, SolveOptions, SolveResult, StopReason};
use crate::telemetry;

/// Recovery-action codes carried in the `arg` of recovery spans.
pub mod code {
    /// A timed-out reduction completion was retried.
    pub const REDUCE_RETRY: u64 = 1;
    /// A dropped reduction was re-posted from the local contribution.
    pub const REDUCE_REPOST: u64 = 2;
    /// The iterate was rolled back to the last-good checkpoint.
    pub const ROLLBACK: u64 = 3;
    /// A residual-replacement restart was performed.
    pub const REPLACEMENT: u64 = 4;
    /// The ladder degraded to a clean PCG restart.
    pub const PCG_RESTART: u64 = 5;
    /// A still-pending reduction was drained (payload discarded) after the
    /// retry budget ran out, so the next attempt starts quiescent.
    pub const REDUCE_DRAIN: u64 = 6;
    /// The preconditioner apply was demoted to fp32 at solve start
    /// (`SolveOptions::pc_fp32`).
    pub const PC_DEMOTE: u64 = 7;
    /// The fp32 preconditioner apply was promoted back to fp64 after an
    /// attempt failed — the drift-probe-gated mixed-precision fallback.
    pub const PC_PROMOTE: u64 = 8;
}

/// True relative residual `‖b − A x‖ / refn` recomputed from scratch in the
/// convergence-test norm. One SPMV, one PC for preconditioned/natural
/// norms, one blocking allreduce — all charged through the context.
pub(crate) fn true_relres<C: Context + ?Sized>(
    ctx: &mut C,
    b: &[f64],
    x: &[f64],
    norm: NormType,
    refn: f64,
) -> f64 {
    let n = ctx.vec_len();
    // Plain buffers, not `alloc_vec`: probe scratch is not part of the
    // method's Table-I memory footprint.
    let mut ax = vec![0.0; n];
    ctx.spmv(x, &mut ax);
    let mut r = vec![0.0; n];
    ctx.waxpy(&mut r, -1.0, &ax, b);
    let sq = match norm {
        NormType::Unpreconditioned => {
            let rr = ctx.local_dot(&r, &r);
            ctx.allreduce(&[rr])[0]
        }
        NormType::Preconditioned | NormType::Natural => {
            let mut u = vec![0.0; n];
            ctx.pc_apply(&r, &mut u);
            let uu = ctx.local_dot(&u, &u);
            let ru = ctx.local_dot(&r, &u);
            let red = ctx.allreduce(&[uu, ru]);
            norm.pick_sq(f64::NAN, red[0], red[1])
        }
    };
    sq.max(0.0).sqrt() / refn.max(f64::MIN_POSITIVE)
}

/// Non-finite or negative γ-scalar breakdown guard: `(r, u)` (or any
/// positive-by-construction CG scalar) must stay finite and non-negative on
/// an SPD system. Pure comparison — no extra operations on clean runs.
#[inline]
pub(crate) fn gamma_breakdown(gamma: f64) -> bool {
    !gamma.is_finite() || gamma < 0.0
}

struct Checkpoint {
    x: Vec<f64>,
    relres: f64,
}

/// Per-solve in-loop resilience state: drift probe + checkpoint/rollback.
pub(crate) struct ResilienceState {
    cfg: Resilience,
    norm: NormType,
    refn: f64,
    checks: usize,
    ckpt: Option<Checkpoint>,
}

impl ResilienceState {
    pub(crate) fn new(opts: &SolveOptions, refn: f64) -> Self {
        ResilienceState {
            cfg: opts.resilience,
            norm: opts.norm,
            refn,
            checks: 0,
            ckpt: None,
        }
    }

    /// Called at every convergence check (after the check decided to keep
    /// iterating). Takes a checkpoint and/or runs the drift probe on their
    /// configured cadences. Returns true when the probe found the
    /// recurrence residual lying — the loop should roll back and abort.
    /// With a passive configuration this is a single integer compare.
    pub(crate) fn on_check<C: Context + ?Sized>(
        &mut self,
        ctx: &mut C,
        b: &[f64],
        x: &[f64],
        relres: f64,
    ) -> bool {
        if self.cfg.passive() {
            return false;
        }
        self.checks += 1;
        if self.cfg.checkpoint_every > 0
            && self.checks.is_multiple_of(self.cfg.checkpoint_every)
            && relres.is_finite()
            && self.ckpt.as_ref().is_none_or(|c| relres < c.relres)
        {
            self.ckpt = Some(Checkpoint {
                x: x.to_vec(),
                relres,
            });
        }
        if self.cfg.drift_check_every > 0 && self.checks.is_multiple_of(self.cfg.drift_check_every)
        {
            let t = true_relres(ctx, b, x, self.norm, self.refn);
            let lying = !relres.is_finite()
                || !t.is_finite()
                || t > self.cfg.drift_tol * relres.max(f64::MIN_POSITIVE);
            if lying {
                return true;
            }
        }
        false
    }

    /// Rolls `x` back to the last-good checkpoint; true when one existed.
    pub(crate) fn rollback<C: Context + ?Sized>(&mut self, ctx: &C, x: &mut [f64]) -> bool {
        match self.ckpt.take() {
            Some(c) => {
                x.copy_from_slice(&c.x);
                telemetry::note_recovery(ctx, code::ROLLBACK);
                true
            }
            None => false,
        }
    }
}

/// Completes a posted reduction with bounded retry-with-backoff: a delayed
/// completion is waited on again (up to `retries` times, each attempt a
/// backoff tick), a dropped one is re-posted from `local`. On a clean run
/// the first `try_wait` succeeds and this is exactly [`Context::wait`].
pub(crate) fn wait_reduction<C: Context + ?Sized>(
    ctx: &mut C,
    mut h: ReduceHandle,
    local: &[f64],
    retries: u32,
) -> Result<Vec<f64>, ReduceTimeout> {
    let mut attempt = 0u32;
    loop {
        match ctx.try_wait(h) {
            WaitOutcome::Done(v) => return Ok(v),
            WaitOutcome::TimedOut { handle, fault } => {
                if attempt >= retries {
                    // Collective discipline: never abandon an in-flight
                    // reduction — the escalation path (restart) would post
                    // new collectives over it. Drain it, discard the stale
                    // payload, and report the timeout from a quiescent
                    // communicator.
                    if let Some(h) = handle {
                        telemetry::note_recovery(ctx, code::REDUCE_DRAIN);
                        let _ = ctx.wait(h);
                    }
                    return Err(fault);
                }
                attempt += 1;
                h = match handle {
                    Some(h) => {
                        telemetry::note_recovery(ctx, code::REDUCE_RETRY);
                        h
                    }
                    None => {
                        telemetry::note_recovery(ctx, code::REDUCE_REPOST);
                        ctx.iallreduce(local)
                    }
                };
            }
        }
    }
}

/// The recovery-ladder supervisor (see module docs). Arms
/// [`Resilience::armed`] when the caller left the default (inert)
/// configuration, so every attempt checkpoints and drift-probes.
pub fn solve_resilient<C: Context>(
    method: MethodKind,
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> Result<SolveResult, SolveError> {
    let mut opts = *opts;
    if opts.resilience == Resilience::default() {
        opts.resilience = Resilience::armed();
    }
    // Mixed-precision policy: try the fp32 preconditioner apply first. The
    // acceptance check below re-verifies every result against the
    // recomputed fp64 true residual, and the in-loop drift probe aborts a
    // lying recurrence — so reduced precision can cost a restart but never
    // a silently wrong answer. A failed attempt promotes back to fp64.
    if opts.pc_fp32 && ctx.pc_demote() {
        telemetry::note_recovery(ctx, code::PC_DEMOTE);
    }
    let refn = crate::methods::global_ref_norm(ctx, b, &opts);
    // A result is accepted only when the *recomputed* residual agrees that
    // the tolerance was met (small slack for the recurrence-vs-true gap a
    // healthy solve accumulates).
    let accept = |t: f64| {
        t.is_finite() && t <= opts.rtol.max(opts.atol / refn.max(f64::MIN_POSITIVE)) * 10.0
    };

    let mut start: Option<Vec<f64>> = x0.map(|v| v.to_vec());
    let mut total_iters = 0usize;
    let mut history: Vec<f64> = Vec::new();
    let mut best: Option<(Vec<f64>, f64)> = None;
    let mut last = None;

    /// Merges one attempt into the ladder-wide result.
    fn merged(
        res: SolveResult,
        total_iters: usize,
        mut history: Vec<f64>,
        counters: pscg_sim::OpCounters,
    ) -> SolveResult {
        history.extend(res.history.iter().copied());
        SolveResult {
            iterations: total_iters,
            history,
            counters,
            ..res
        }
    }

    for attempt in 0..=opts.resilience.max_replacements {
        let res = method.solve(ctx, b, start.as_deref(), &opts);
        total_iters += res.iterations;
        let t = true_relres(ctx, b, &res.x, opts.norm, refn);
        if t.is_finite() && best.as_ref().is_none_or(|(_, bt)| t < *bt) {
            best = Some((res.x.clone(), t));
        }
        if res.converged() && accept(t) {
            ctx.pc_promote();
            return Ok(merged(res, total_iters, history, *ctx.counters()));
        }
        // Honest budget exhaustion (no drift, no fault): report it as-is
        // rather than burning restarts on a solve that is simply slow.
        if res.stop == StopReason::MaxIterations
            && t.is_finite()
            && t <= opts.resilience.drift_tol * res.final_relres.max(f64::MIN_POSITIVE)
        {
            ctx.pc_promote();
            return Ok(merged(res, total_iters, history, *ctx.counters()));
        }
        history.extend(res.history.iter().copied());
        last = Some(res.stop);
        // Post-mortem snapshot of the failing attempt before recovery
        // mutates any state (no-op unless the flight recorder is armed).
        if res.stop == StopReason::Breakdown {
            pscg_obs::flight::dump_to_path("Breakdown");
        }
        // fp64 fallback: a demoted preconditioner is the first suspect of
        // a failed attempt — promote before burning a restart on it.
        if ctx.pc_demoted() {
            ctx.pc_promote();
            telemetry::note_recovery(ctx, code::PC_PROMOTE);
        }
        if attempt < opts.resilience.max_replacements {
            // Residual replacement: restart from the best finite iterate —
            // the new solve recomputes r = b − A x and rebuilds the AQ/AP
            // basis blocks from scratch.
            telemetry::note_recovery(ctx, code::REPLACEMENT);
            start = Some(match &best {
                Some((x, _)) => x.clone(),
                None => res.x.clone(),
            });
        }
    }

    // Replacement failed max_replacements times: degrade gracefully to a
    // clean PCG restart from the last-good iterate (always full fp64).
    if ctx.pc_demoted() {
        ctx.pc_promote();
        telemetry::note_recovery(ctx, code::PC_PROMOTE);
    }
    telemetry::note_recovery(ctx, code::PCG_RESTART);
    let from = best.as_ref().map(|(x, _)| x.clone()).or(start);
    let res = MethodKind::Pcg.solve(ctx, b, from.as_deref(), &opts);
    total_iters += res.iterations;
    let t = true_relres(ctx, b, &res.x, opts.norm, refn);
    if res.converged() && accept(t) {
        return Ok(merged(res, total_iters, history, *ctx.counters()));
    }
    let best_true = best.map(|(_, bt)| bt).unwrap_or(t);
    // The ladder is out of options: leave the flight recording of the
    // final (PCG-restart) attempt for post-mortem analysis.
    pscg_obs::flight::dump_to_path("RecoveryExhausted");
    Err(SolveError::RecoveryExhausted {
        last_stop: last.unwrap_or(res.stop),
        best_true_relres: best_true.min(t),
        iterations: total_iters,
    })
}

impl MethodKind {
    /// Solves with the full recovery ladder armed; see
    /// [`solve_resilient`]. Returns an explicit [`SolveError`] when the
    /// ladder is exhausted — never hangs, never returns a solution whose
    /// recomputed residual contradicts the reported convergence.
    pub fn solve_resilient<C: Context>(
        self,
        ctx: &mut C,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> Result<SolveResult, SolveError> {
        solve_resilient(self, ctx, b, x0, opts)
    }
}

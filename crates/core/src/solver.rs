//! Solver framework: options, convergence criteria, results.
//!
//! The paper checks convergence as `‖u_i‖ < max(rtol·‖b‖, atol)` (§VI-E),
//! where the norm may be taken of the preconditioned residual `u = M⁻¹r`,
//! the unpreconditioned residual `r`, or the "natural" norm `√(r, u)`. A
//! selling point of PIPE-PsCG is that it can evaluate *any* of the three
//! without extra PC or SPMV kernels; [`NormType`] threads that choice
//! through every method.

use pscg_sim::OpCounters;

/// Which residual norm the convergence test uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormType {
    /// `‖M⁻¹ r‖` — the PETSc default the paper quotes.
    #[default]
    Preconditioned,
    /// `‖r‖`.
    Unpreconditioned,
    /// `√(r, M⁻¹r)`.
    Natural,
}

impl NormType {
    /// Selects the squared norm value from the triple
    /// `(r·r, u·u, r·u)` that every method's reduction carries.
    pub fn pick_sq(self, rr: f64, uu: f64, ru: f64) -> f64 {
        match self {
            NormType::Unpreconditioned => rr,
            NormType::Preconditioned => uu,
            NormType::Natural => ru,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NormType::Preconditioned => "preconditioned",
            NormType::Unpreconditioned => "unpreconditioned",
            NormType::Natural => "natural",
        }
    }
}

/// Which norm of `b` the convergence threshold `rtol·‖b‖` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefNorm {
    /// The same norm as the residual test (`‖M⁻¹b‖` for the preconditioned
    /// norm, etc.) — the PETSc convention, and the library default because
    /// it makes `rtol` mean the same thing for every preconditioner.
    #[default]
    Matched,
    /// The plain 2-norm `‖b‖`, as the paper's §VI-E formula literally
    /// states — used by the figure harness for paper-exact runs.
    PlainB,
}

/// Self-stabilization knobs threaded through every solver loop.
///
/// The default is fully inert: no drift probes, no checkpoints, no extra
/// kernel or communication calls — a solve with `Resilience::default()` is
/// bitwise-identical to one before these knobs existed. [`Resilience::armed`]
/// is the configuration the resilient supervisor
/// (`MethodKind::solve_resilient`) uses when the caller did not choose one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resilience {
    /// Recompute the true residual `‖b − A x‖` every this many convergence
    /// checks and compare it against the recurrence residual (0 = never).
    /// Costs one SPMV (plus one PC for preconditioned norms) and one
    /// blocking allreduce per probe.
    pub drift_check_every: usize,
    /// The probe flags drift when the true relative residual exceeds
    /// `drift_tol ×` the recurrence value.
    pub drift_tol: f64,
    /// Save a last-good checkpoint (iterate + residual) every this many
    /// convergence checks (0 = never). On breakdown, drift or an exhausted
    /// reduction retry the loop rolls `x` back to the checkpoint before
    /// returning, so recovery restarts from a sane iterate.
    pub checkpoint_every: usize,
    /// Bounded retries of a timed-out non-blocking reduction completion
    /// before the loop gives up with [`StopReason::CommFault`]. Inert on
    /// clean runs: a completion that arrives first try never retries.
    pub reduce_retries: u32,
    /// Residual-replacement restarts the supervisor attempts before
    /// degrading to a clean PCG restart from the last-good iterate.
    pub max_replacements: u32,
    /// Iteration-progress deadline: the loop declares
    /// [`StopReason::Stalled`] when this much wall-clock time passes
    /// between convergence checks that improve the residual (0.0 = no
    /// watchdog). Converts any would-be hang into an explicit stop; costs
    /// one monotonic-clock read per check, no kernels, no communication.
    pub stall_timeout_secs: f64,
    /// Progress-count deadline: the loop declares [`StopReason::Stalled`]
    /// after this many *consecutive* convergence checks without residual
    /// improvement (0 = no watchdog). Deterministic companion to the
    /// wall-clock deadline — replayable test suites use this one.
    pub stall_checks: usize,
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience {
            drift_check_every: 0,
            drift_tol: 100.0,
            checkpoint_every: 0,
            reduce_retries: 2,
            max_replacements: 2,
            stall_timeout_secs: 0.0,
            stall_checks: 0,
        }
    }
}

impl Resilience {
    /// The active configuration used by the resilient supervisor: drift
    /// probe every 16 checks at a 100× gap, checkpoints every 8 checks,
    /// 2 reduction retries, 2 replacement restarts, and a 300 s
    /// no-progress wall-clock watchdog.
    pub fn armed() -> Self {
        Resilience {
            drift_check_every: 16,
            drift_tol: 100.0,
            checkpoint_every: 8,
            reduce_retries: 2,
            max_replacements: 2,
            stall_timeout_secs: 300.0,
            stall_checks: 0,
        }
    }

    /// True when probes, checkpoints and stall watchdogs are all disabled
    /// (the in-loop state machine then never issues an extra operation —
    /// not even a clock read).
    pub fn passive(&self) -> bool {
        self.drift_check_every == 0
            && self.checkpoint_every == 0
            && self.stall_timeout_secs == 0.0 // pscg-lint: allow(float-eq, 0.0 is the explicit disabled sentinel, set not computed)
            && self.stall_checks == 0
    }
}

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Relative tolerance (`rtol`); the paper uses 1e-5 (Poisson, PETSc
    /// default) and 1e-2 (ecology2, OpenFOAM default).
    pub rtol: f64,
    /// Absolute tolerance (`atol`).
    pub atol: f64,
    /// Maximum CG steps (s-step methods count s steps per iteration).
    pub max_iters: usize,
    /// Residual norm used in the convergence test.
    pub norm: NormType,
    /// Reference norm of `b` in the threshold.
    pub ref_norm: RefNorm,
    /// The s parameter of the s-step methods (ignored by the classic ones).
    pub s: usize,
    /// Self-stabilization knobs (default: fully inert).
    pub resilience: Resilience,
    /// Mixed-precision policy: ask the context to demote the
    /// preconditioner apply to fp32 for the fp64 outer loop. Only honoured
    /// by [`crate::resilience::solve_resilient`], whose true-residual
    /// drift probe and acceptance check gate the reduced precision — a
    /// failed attempt promotes back to fp64 and restarts, so the answer is
    /// never silently degraded.
    pub pc_fp32: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            rtol: 1e-5,
            atol: 1e-50,
            max_iters: 10_000,
            norm: NormType::default(),
            ref_norm: RefNorm::default(),
            s: 3,
            resilience: Resilience::default(),
            pc_fp32: false,
        }
    }
}

impl SolveOptions {
    /// Convenience: default options with the given `rtol`.
    pub fn with_rtol(rtol: f64) -> Self {
        SolveOptions {
            rtol,
            ..SolveOptions::default()
        }
    }

    /// Convenience: sets `s`.
    pub fn with_s(mut self, s: usize) -> Self {
        self.s = s;
        self
    }

    /// Convenience: sets the resilience configuration.
    pub fn with_resilience(mut self, resilience: Resilience) -> Self {
        self.resilience = resilience;
        self
    }

    /// Convergence threshold for a right-hand side of norm `bnorm`.
    pub fn threshold(&self, bnorm: f64) -> f64 {
        f64::max(self.rtol * bnorm, self.atol)
    }
}

/// Why the iteration stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The selected residual norm dropped below the threshold.
    Converged,
    /// `max_iters` CG steps were spent.
    MaxIterations,
    /// The iteration broke down (indefinite scalar system, NaN, …).
    Breakdown,
    /// Residual stagnation was detected (used by the hybrid driver).
    Stagnated,
    /// A non-blocking reduction completion kept timing out after the
    /// configured retries (injected communication fault).
    CommFault,
    /// The progress watchdog fired: no residual improvement within the
    /// configured wall-clock or check-count deadline
    /// ([`Resilience::stall_timeout_secs`] / [`Resilience::stall_checks`]).
    Stalled,
    /// A peer rank died mid-solve (the communicator reported a process
    /// failure); the supervisor decides between buddy reconstruction and
    /// [`SolveError::RankLost`].
    RankFailed,
}

/// Terminal failure of a resilient solve (`MethodKind::solve_resilient`):
/// the whole recovery ladder — residual replacement restarts, then a clean
/// PCG restart from the last-good iterate — was exhausted.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// No attempt reached the tolerance with a verified true residual.
    RecoveryExhausted {
        /// Stop reason of the final attempt.
        last_stop: StopReason,
        /// True relative residual of the best iterate produced.
        best_true_relres: f64,
        /// Total CG steps spent across all attempts.
        iterations: usize,
    },
    /// A rank died and its partition could not be reconstructed: the buddy
    /// holding the only in-memory checkpoint copy was dead too.
    RankLost {
        /// The rank whose partition is gone.
        rank: u32,
        /// Total CG steps spent before the loss.
        iterations: usize,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::RecoveryExhausted {
                last_stop,
                best_true_relres,
                iterations,
            } => write!(
                f,
                "recovery ladder exhausted after {iterations} steps \
                 (last stop {last_stop:?}, best true relres {best_true_relres:.3e})"
            ),
            SolveError::RankLost { rank, iterations } => write!(
                f,
                "rank {rank} lost with its buddy checkpoint after {iterations} steps \
                 (partition unrecoverable)"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// Result of one solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The computed solution.
    pub x: Vec<f64>,
    /// CG steps performed (one s-step iteration counts s).
    pub iterations: usize,
    /// Why the solve stopped.
    pub stop: StopReason,
    /// Relative residual (selected norm / ‖b‖) at each convergence check.
    pub history: Vec<f64>,
    /// Relative residual at exit (as seen by the convergence test).
    pub final_relres: f64,
    /// Kernel/communication counters accumulated during the solve.
    pub counters: OpCounters,
    /// Method name (paper spelling: "PCG", "PIPECG", "PIPE-PsCG", …).
    pub method: &'static str,
}

impl SolveResult {
    /// True when the solve converged.
    pub fn converged(&self) -> bool {
        self.stop == StopReason::Converged
    }

    /// True 2-norm relative residual recomputed from scratch — used by
    /// tests to confirm the recurrence residuals did not drift silently.
    pub fn true_relres(&self, a: &pscg_sparse::CsrMatrix, b: &[f64]) -> f64 {
        let ax = a.mul_vec(&self.x);
        let mut r = b.to_vec();
        for (ri, axi) in r.iter_mut().zip(&ax) {
            *ri -= axi;
        }
        pscg_sparse::kernels::norm2(&r) / pscg_sparse::kernels::norm2(b).max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_type_picks_the_right_component() {
        let n = NormType::Unpreconditioned;
        assert_eq!(n.pick_sq(1.0, 2.0, 3.0), 1.0);
        assert_eq!(NormType::Preconditioned.pick_sq(1.0, 2.0, 3.0), 2.0);
        assert_eq!(NormType::Natural.pick_sq(1.0, 2.0, 3.0), 3.0);
    }

    #[test]
    fn threshold_takes_the_max() {
        let o = SolveOptions {
            rtol: 1e-2,
            atol: 1e-3,
            ..Default::default()
        };
        assert_eq!(o.threshold(1.0), 1e-2);
        assert_eq!(o.threshold(1e-4), 1e-3);
    }

    #[test]
    fn defaults_match_the_paper() {
        let o = SolveOptions::default();
        assert_eq!(o.rtol, 1e-5);
        assert_eq!(o.s, 3);
        assert_eq!(o.norm, NormType::Preconditioned);
    }
}

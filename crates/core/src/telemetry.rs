//! Glue between the solvers and the `pscg-obs` telemetry collector.
//!
//! Every entry point here is inert unless telemetry is enabled
//! (`pscg_obs::set_enabled`) *and* the calling context is rank 0 — on the
//! thread-backed engine all ranks execute the solver, but only rank 0's
//! view feeds the process-global metrics stream. The helpers read values
//! the solver already computed; they never touch the numerics, and the
//! disabled path is a single relaxed atomic load.

use pscg_obs::metrics::{self, IterSample, KernelCounts, PoolCounters, SolveMeta};
use pscg_obs::StagnationConfig;
use pscg_sim::Context;

use crate::solver::{NormType, SolveOptions, SolveResult, StopReason};

/// The kernel counters the telemetry stream tracks, read off the
/// context's `OpCounters`.
pub(crate) fn kernel_counts<C: Context>(ctx: &C) -> KernelCounts {
    let c = ctx.counters();
    KernelCounts {
        spmv: c.spmv,
        pc: c.pc,
        allreduce: c.allreduces(),
    }
}

fn pool_counters() -> PoolCounters {
    let s = pscg_par::stats::PoolStats::snapshot();
    PoolCounters {
        jobs: s.jobs,
        parallel_jobs: s.parallel_jobs,
        inline_fallback: s.inline_nested,
        inline_small: s.inline_small,
        chunks: s.indices,
    }
}

#[inline]
fn active_rank<C: Context + ?Sized>(ctx: &C) -> bool {
    pscg_obs::enabled() && ctx.rank() == 0
}

/// Opens telemetry collection for one solve (called by the `MethodKind`
/// dispatcher). Returns the flag [`finish`] needs.
pub(crate) fn begin<C: Context>(method: &'static str, ctx: &C, opts: &SolveOptions) -> bool {
    if !active_rank(ctx) {
        return false;
    }
    let (nrows, nnz) = (ctx.nrows(), ctx.matrix_nnz());
    let fmt = pscg_sparse::spmv_format();
    let spmv_model_bytes_per_nnz = if nnz > 0 {
        crate::costmodel::spmv_model_bytes(fmt, nnz as f64, nrows as f64) / nnz as f64
    } else {
        0.0
    };
    let (pc_flops_per_row, pc_bytes_per_row) = ctx.pc_cost_rates();
    metrics::begin_solve(
        SolveMeta {
            method,
            s: opts.s,
            norm: opts.norm.name(),
            rtol: opts.rtol,
            threads: pscg_par::global_threads(),
            stagnation: None,
            nrows,
            nnz,
            spmv_format: fmt.as_str(),
            spmv_model_bytes_per_nnz,
            pc_flops_per_row,
            pc_bytes_per_row,
        },
        pool_counters(),
    )
}

/// Closes the collection opened by [`begin`].
pub(crate) fn finish<C: Context>(began: bool, ctx: &C, res: &SolveResult) {
    if !began {
        return;
    }
    metrics::end_solve(
        began,
        res.iterations,
        res.stop.name(),
        res.final_relres,
        kernel_counts(ctx),
        pool_counters(),
    );
}

/// Reports one convergence check. `iter` is the method's CG-step count at
/// the check; `alpha`/`beta` are the step scalars the recurrence last used
/// (for the s-step methods these are the *previous* outer iteration's,
/// because their scalar work follows the check); `gamma` is the `(r, u)`
/// scalar where the method carries one, `NaN` otherwise.
pub(crate) fn note_iter<C: Context>(
    ctx: &C,
    iter: usize,
    relres: f64,
    norms_sq: [f64; 3],
    alpha: &[f64],
    beta: &[f64],
    gamma: f64,
) {
    if !active_rank(ctx) {
        return;
    }
    metrics::record_iter(
        IterSample {
            iter,
            relres,
            norms_sq,
            alpha: alpha.to_vec(),
            beta: beta.to_vec(),
            gamma,
        },
        kernel_counts(ctx),
    );
}

/// Records the stagnation rule a method armed into the active stream.
pub(crate) fn set_stagnation<C: Context>(ctx: &C, cfg: StagnationConfig) {
    if active_rank(ctx) {
        metrics::set_stagnation_config(cfg);
    }
}

/// Notes that a stagnation detector fired.
pub(crate) fn note_stagnation_fired<C: Context>(ctx: &C) {
    if active_rank(ctx) {
        metrics::note_stagnation_fired();
    }
}

/// Notes one recovery action (reduction retry, rollback, replacement,
/// rank rebuild or restart) into the active stream, the span recorder and
/// the engine's deterministic recovery log.
pub(crate) fn note_recovery<C: Context + ?Sized>(ctx: &mut C, code: u64) {
    // The engine-side log is unconditional: recovery *decisions* are part
    // of the deterministic outcome regardless of telemetry state.
    ctx.note_recovery_code(code);
    if active_rank(ctx) {
        metrics::note_recovery();
        pscg_obs::span::record_span(pscg_obs::SpanKind::Recovery, code, pscg_obs::now_ns(), 0);
    }
}

/// Builds the `(r·r, u·u, r·u)` triple when a method computed only the
/// *selected* squared norm: the chosen slot gets `sq`, the natural slot
/// gets `ru` when known (PCG's γ is exactly `(r, u)`), the rest are `NaN`.
pub(crate) fn norms_from_selected(norm: NormType, sq: f64, ru: f64) -> [f64; 3] {
    let mut norms = [f64::NAN, f64::NAN, ru];
    match norm {
        NormType::Unpreconditioned => norms[0] = sq,
        NormType::Preconditioned => norms[1] = sq,
        NormType::Natural => norms[2] = sq,
    }
    norms
}

impl StopReason {
    /// Stable textual name, used by the telemetry exporters.
    pub fn name(self) -> &'static str {
        match self {
            StopReason::Converged => "Converged",
            StopReason::MaxIterations => "MaxIterations",
            StopReason::Breakdown => "Breakdown",
            StopReason::Stagnated => "Stagnated",
            StopReason::CommFault => "CommFault",
            StopReason::Stalled => "Stalled",
            StopReason::RankFailed => "RankFailed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_triple_places_the_selected_component() {
        let n = norms_from_selected(NormType::Unpreconditioned, 4.0, 2.0);
        assert_eq!(n[0], 4.0);
        assert!(n[1].is_nan());
        assert_eq!(n[2], 2.0);
        let n = norms_from_selected(NormType::Preconditioned, 4.0, f64::NAN);
        assert_eq!(n[1], 4.0);
        let n = norms_from_selected(NormType::Natural, 4.0, 2.0);
        assert_eq!(n[2], 4.0, "selected value wins the natural slot");
    }

    #[test]
    fn stop_reason_names_are_stable() {
        assert_eq!(StopReason::Converged.name(), "Converged");
        assert_eq!(StopReason::Stagnated.name(), "Stagnated");
    }
}

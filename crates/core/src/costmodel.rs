//! The analytic cost model of the paper's Table I.
//!
//! For s PCG-equivalent steps, each method is characterised by its allreduce
//! count, its critical-path time expression in terms of `G` (one global
//! allreduce), `PC` and `SPMV`, its VMA/dot FLOP count (×N) and the number
//! of vectors kept in memory (excluding `x` and `b`). The rows are
//! reproduced verbatim from the paper; [`TimeExpr::evaluate`] turns the
//! symbolic expression into seconds for a given machine and problem so the
//! model can be compared against the discrete-event replay (experiment E9).

use pscg_sim::{Machine, MatrixProfile};

/// Symbolic critical-path time per s steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeExpr {
    /// `s·(3G + PC + SPMV)` — PCG.
    Pcg,
    /// `s·max(G, PC + SPMV)` — PIPECG.
    Pipecg,
    /// `max(G, s·(PC + SPMV))` — PIPELCG (per its deep pipeline).
    Pipelcg,
    /// `⌈s/2⌉·max(G, 2(PC + SPMV))` — PIPECG3 and PIPECG-OATI.
    HalfStep,
    /// `G + (s+1)(PC + SPMV)` — PsCG (blocking, extra kernels).
    Pscg,
    /// `max(G, s·(PC + SPMV))` — PIPE-PsCG.
    PipePscg,
}

impl TimeExpr {
    /// Evaluates the expression for given kernel times (seconds).
    pub fn evaluate(self, s: usize, g: f64, pc: f64, spmv: f64) -> f64 {
        let sf = s as f64;
        let half = s.div_ceil(2) as f64;
        match self {
            TimeExpr::Pcg => sf * (3.0 * g + pc + spmv),
            TimeExpr::Pipecg => sf * f64::max(g, pc + spmv),
            TimeExpr::Pipelcg | TimeExpr::PipePscg => f64::max(g, sf * (pc + spmv)),
            TimeExpr::HalfStep => half * f64::max(g, 2.0 * (pc + spmv)),
            TimeExpr::Pscg => g + (sf + 1.0) * (pc + spmv),
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Method name (paper spelling).
    pub method: &'static str,
    /// Allreduces per s iterations, as a closed form in `s`.
    pub allreduces: fn(usize) -> usize,
    /// Critical-path time expression.
    pub time: TimeExpr,
    /// VMA + dot FLOPs (×N) per s iterations.
    pub flops: fn(usize) -> f64,
    /// Vectors kept in memory (excluding `x` and `b`).
    pub memory: fn(usize) -> f64,
}

/// The seven rows of Table I, in the paper's order.
pub fn table1() -> Vec<CostRow> {
    vec![
        CostRow {
            method: "PCG",
            allreduces: |s| 3 * s,
            time: TimeExpr::Pcg,
            flops: |s| 12.0 * s as f64,
            memory: |_| 4.0,
        },
        CostRow {
            method: "PIPECG",
            allreduces: |s| s,
            time: TimeExpr::Pipecg,
            flops: |s| 22.0 * s as f64,
            memory: |_| 9.0,
        },
        CostRow {
            method: "PIPELCG",
            allreduces: |s| s,
            time: TimeExpr::Pipelcg,
            flops: |s| {
                let sf = s as f64;
                6.0 * sf * sf + 14.0 * sf
            },
            memory: |_| 14.0,
        },
        CostRow {
            method: "PIPECG3",
            allreduces: |s| s.div_ceil(2),
            time: TimeExpr::HalfStep,
            flops: |s| 90.0 * s.div_ceil(2) as f64,
            memory: |_| 25.0,
        },
        CostRow {
            method: "PIPECG-OATI",
            allreduces: |s| s.div_ceil(2),
            time: TimeExpr::HalfStep,
            flops: |s| 80.0 * s.div_ceil(2) as f64,
            memory: |_| 19.0,
        },
        CostRow {
            method: "PsCG",
            allreduces: |_| 1,
            time: TimeExpr::Pscg,
            flops: |s| {
                let sf = s as f64;
                2.0 * sf * sf + 4.0 * sf + 2.0
            },
            memory: |s| 2.0 * s as f64 + 2.0,
        },
        CostRow {
            method: "PIPE-PsCG",
            allreduces: |_| 1,
            time: TimeExpr::PipePscg,
            flops: |s| {
                let sf = s as f64;
                4.0 * sf * sf * sf + 12.0 * sf * sf + 2.0 * sf + 5.0
            },
            memory: |s| {
                let sf = s as f64;
                4.0 * sf * sf + 12.0 * sf + 5.0
            },
        },
    ]
}

/// Kernel times `(G, PC, SPMV)` for a problem/machine/rank-count triple,
/// with `pc_flops_per_row`/`pc_bytes_per_row` from the preconditioner's
/// declared cost. Used to evaluate Table I expressions numerically and to
/// locate the break-even core count of §V (experiment E9).
pub fn kernel_times(
    machine: &Machine,
    profile: &MatrixProfile,
    p: usize,
    reduce_doubles: usize,
    pc_flops_per_row: f64,
    pc_bytes_per_row: f64,
) -> (f64, f64, f64) {
    let w = profile.work_at(p);
    let g = machine.allreduce_time(p, reduce_doubles);
    let rows = w.local_rows as f64;
    let pc = machine.compute_time(pc_flops_per_row * rows, pc_bytes_per_row * rows);
    let spmv = machine.compute_time(
        2.0 * w.local_nnz as f64,
        spmv_model_bytes(pscg_sparse::spmv_format(), w.local_nnz as f64, rows),
    ) + machine.halo_time(w.neighbors, 8.0 * w.halo_doubles as f64);
    (g, pc, spmv)
}

/// Modelled SpMV memory traffic for one storage format (DESIGN.md §12).
/// CSR moves 12 B per stored entry (value + compressed column index) plus
/// 16 B of pointer/vector traffic per row; the register-blocked variants
/// move the same bytes (their win is instruction-level parallelism, not
/// traffic), as does SELL-C-σ under this coarse model (the permutation and
/// length arrays replace the row pointer). The symmetric format stores
/// only the upper triangle — half the entry traffic — at the price of a
/// second streamed pass over `y`.
pub fn spmv_model_bytes(format: pscg_sparse::SpmvFormat, nnz: f64, rows: f64) -> f64 {
    let (per_nnz, per_row) = spmv_model_rates(format);
    per_nnz * nnz + per_row * rows
}

/// The `(bytes/nnz, bytes/row)` coefficients behind [`spmv_model_bytes`],
/// exposed so the observatory tier (perf-report, kernelbench) can report
/// the model alongside measured traffic without re-deriving it.
pub fn spmv_model_rates(format: pscg_sparse::SpmvFormat) -> (f64, f64) {
    use pscg_sparse::SpmvFormat as F;
    match format {
        F::Csr | F::CsrUnrolled4 | F::CsrUnrolled8 | F::SellCSigma => (12.0, 16.0),
        F::SymCsr => (6.0, 24.0),
    }
}

/// The smallest rank count (among `candidates`) at which `G` exceeds
/// `s·(PC + SPMV)` — the paper's §V condition for PIPE-PsCG's advantage to
/// saturate (the allreduce is no longer fully hidden).
pub fn breakeven_ranks(
    machine: &Machine,
    profile: &MatrixProfile,
    s: usize,
    reduce_doubles: usize,
    pc_flops_per_row: f64,
    pc_bytes_per_row: f64,
    candidates: &[usize],
) -> Option<usize> {
    candidates.iter().copied().find(|&p| {
        let (g, pc, spmv) = kernel_times(
            machine,
            profile,
            p,
            reduce_doubles,
            pc_flops_per_row,
            pc_bytes_per_row,
        );
        g > s as f64 * (pc + spmv)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscg_sim::Layout;

    #[test]
    fn table1_has_the_papers_seven_rows() {
        let rows = table1();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].method, "PCG");
        assert_eq!(rows[6].method, "PIPE-PsCG");
    }

    #[test]
    fn allreduce_counts_match_the_paper_at_s3() {
        let rows = table1();
        let counts: Vec<usize> = rows.iter().map(|r| (r.allreduces)(3)).collect();
        assert_eq!(counts, vec![9, 3, 3, 2, 2, 1, 1]);
    }

    #[test]
    fn flop_counts_match_the_paper_at_s3() {
        let rows = table1();
        let flops: Vec<f64> = rows.iter().map(|r| (r.flops)(3)).collect();
        assert_eq!(flops, vec![36.0, 66.0, 96.0, 180.0, 160.0, 32.0, 227.0]);
    }

    #[test]
    fn memory_matches_the_paper_at_s3() {
        let rows = table1();
        let mem: Vec<f64> = rows.iter().map(|r| (r.memory)(3)).collect();
        assert_eq!(mem, vec![4.0, 9.0, 14.0, 25.0, 19.0, 8.0, 77.0]);
    }

    #[test]
    fn pipe_pscg_time_beats_pcg_when_g_dominates() {
        // When G >> PC+SPMV, PCG pays 3sG while PIPE-PsCG pays ~G.
        let g = 100.0;
        let (pc, spmv) = (1.0, 2.0);
        let t_pcg = TimeExpr::Pcg.evaluate(3, g, pc, spmv);
        let t_pipe = TimeExpr::PipePscg.evaluate(3, g, pc, spmv);
        assert!(t_pcg > 8.0 * t_pipe);
    }

    #[test]
    fn pscg_pays_the_extra_kernels_when_pc_is_expensive() {
        // The Figure 4 effect: expensive PC makes PsCG worse than PCG once
        // G is small relative to the kernels.
        let (g, pc, spmv) = (0.5, 50.0, 2.0);
        let t_pcg = TimeExpr::Pcg.evaluate(3, g, pc, spmv);
        let t_pscg = TimeExpr::Pscg.evaluate(3, g, pc, spmv);
        assert!(t_pscg > t_pcg);
    }

    #[test]
    fn breakeven_exists_on_the_default_machine() {
        // At s = 3 on the 125-pt 1M-unknown problem the allreduce only
        // overtakes s·(PC+SPMV) beyond the paper's 140-node scale — which is
        // exactly why s = 3 keeps scaling in Figure 3 — but it must happen
        // eventually on the exascale trend the paper argues from (§IV).
        let machine = Machine::sahasrat();
        let profile = MatrixProfile::stencil3d(100, 100, 100, 2, 124_000_000, Layout::Box);
        let candidates: Vec<usize> = (1..=4096).map(|n| n * 24).collect();
        let be = breakeven_ranks(&machine, &profile, 3, 27, 1.0, 24.0, &candidates);
        let be = be.expect("G must eventually exceed s(PC+SPMV)");
        assert!(be > 960, "break-even at {be} ranks is implausibly early");
        // For s = 1 (the PIPECG regime) the break-even falls inside the
        // paper's sweep — the Figure 1 degradation of PIPECG.
        let be1 = breakeven_ranks(&machine, &profile, 1, 4, 1.0, 24.0, &candidates)
            .expect("s=1 break-even");
        assert!(
            be1 < be,
            "s=1 break-even {be1} must precede s=3 break-even {be}"
        );
        assert!(
            be1 <= 140 * 24,
            "PIPECG must saturate within the paper's sweep, got {be1}"
        );
    }
}

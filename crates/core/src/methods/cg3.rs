//! Preconditioned CG with three-term recurrences (Stiefel/Rutishauser form;
//! Saad, *Iterative Methods for Sparse Linear Systems*, §6.7).
//!
//! Instead of the direction vector `p`, the iterates and residuals are
//! advanced directly from their two predecessors:
//!
//! ```text
//! γⱼ = (rⱼ, uⱼ) / (uⱼ, A uⱼ)
//! ρⱼ = 1 / (1 − (γⱼ μⱼ) / (γⱼ₋₁ μⱼ₋₁ ρⱼ₋₁))        (ρ₀ = 1)
//! xⱼ₊₁ = ρⱼ (xⱼ + γⱼ uⱼ) + (1 − ρⱼ) xⱼ₋₁
//! rⱼ₊₁ = ρⱼ (rⱼ − γⱼ A uⱼ) + (1 − ρⱼ) rⱼ₋₁
//! ```
//!
//! with `μⱼ = (rⱼ, uⱼ)`. The two dot products batch into **one** blocking
//! allreduce per iteration, which is why the recurrence is the seed of
//! Eller & Gropp's pipelined PIPECG3 \[10\]; the price is the inferior
//! attainable accuracy of three-term residual recurrences analysed by
//! Gutknecht & Strakoš — the property the paper cites against PIPECG3.
//! Provided as an extension baseline (not part of the paper's figure set).

use pscg_sim::Context;

use crate::methods::{global_ref_norm, init_residual};
use crate::solver::{SolveOptions, SolveResult, StopReason};

/// Solves `M⁻¹A x = M⁻¹b` with three-term-recurrence CG.
pub fn solve<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    let bnorm = global_ref_norm(ctx, b, opts);
    let threshold = opts.threshold(bnorm);
    let mut resil = crate::resilience::ResilienceState::new(opts, bnorm);
    let (mut x, mut r) = init_residual(ctx, b, x0);

    let mut u = ctx.alloc_vec();
    let mut au = ctx.alloc_vec();
    let mut x_prev = ctx.alloc_vec();
    let mut r_prev = ctx.alloc_vec();
    let mut x_next = ctx.alloc_vec();
    let mut r_next = ctx.alloc_vec();

    let mut history: Vec<f64> = Vec::new();
    let mut iters = 0usize;
    let mut rho = 1.0f64;
    let mut gamma_mu_prev = 0.0f64;
    let stop;

    loop {
        ctx.pc_apply(&r, &mut u);
        ctx.spmv(&u, &mut au);
        // One blocking allreduce: μ = (r, u), ν = (u, Au), plus the norms.
        let lmu = ctx.local_dot(&r, &u);
        let lnu = ctx.local_dot(&u, &au);
        let lrr = ctx.local_dot(&r, &r);
        let luu = ctx.local_dot(&u, &u);
        let red = ctx.allreduce(&[lmu, lnu, lrr, luu]);
        let (mu, nu, rr, uu) = (red[0], red[1], red[2], red[3]);

        // A dead peer poisons the reduction: the check must precede the
        // relres computation, whose `.max(0.0)` would clamp a NaN norm
        // into a fake zero-residual convergence. The supervisor owns the
        // buddy rebuild.
        if ctx.rank_failure().is_some() {
            resil.rollback(ctx, &mut x);
            stop = StopReason::RankFailed;
            break;
        }
        let relres = crate::methods::relres_from_sq(opts.norm.pick_sq(rr, uu, mu), bnorm);
        history.push(relres);
        ctx.note_residual(relres);
        crate::telemetry::note_iter(ctx, iters, relres, [rr, uu, mu], &[], &[], mu);
        if relres * bnorm < threshold {
            stop = StopReason::Converged;
            break;
        }
        if iters >= opts.max_iters {
            stop = StopReason::MaxIterations;
            break;
        }
        // μ = (r, u) is the γ-like scalar here: finite and non-negative on
        // an SPD system.
        if nu <= 0.0 || nu.is_nan() || !relres.is_finite() || crate::resilience::gamma_breakdown(mu)
        {
            resil.rollback(ctx, &mut x);
            stop = StopReason::Breakdown;
            break;
        }
        match resil.on_check(ctx, b, &x, relres) {
            crate::resilience::CheckVerdict::Continue => {}
            verdict => {
                resil.rollback(ctx, &mut x);
                stop = verdict.stop();
                break;
            }
        }

        let gamma = mu / nu;
        let rho_next = if iters == 0 {
            1.0
        } else {
            let denom = 1.0 - (gamma * mu) / (gamma_mu_prev * rho);
            // pscg-lint: allow(float-eq, exact-zero division guard; any nonzero denom is usable)
            if denom == 0.0 || !denom.is_finite() {
                resil.rollback(ctx, &mut x);
                stop = StopReason::Breakdown;
                break;
            }
            1.0 / denom
        };

        // x_{j+1} = ρ(x_j + γ u_j) + (1-ρ) x_{j-1}, same for r.
        for i in 0..x.len() {
            x_next[i] = rho_next * (x[i] + gamma * u[i]) + (1.0 - rho_next) * x_prev[i];
            r_next[i] = rho_next * (r[i] - gamma * au[i]) + (1.0 - rho_next) * r_prev[i];
        }
        // 6 flops per row for each of the two fused updates.
        ctx.charge_local(pscg_sim::LocalKind::Vma, 12.0, 96.0);

        std::mem::swap(&mut x_prev, &mut x);
        std::mem::swap(&mut x, &mut x_next);
        std::mem::swap(&mut r_prev, &mut r);
        std::mem::swap(&mut r, &mut r_next);

        gamma_mu_prev = gamma * mu;
        rho = rho_next;
        iters += 1;
    }

    SolveResult {
        x,
        iterations: iters,
        stop,
        final_relres: history.last().copied().unwrap_or(f64::NAN),
        history,
        counters: *ctx.counters(),
        method: "CG3",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::pcg;
    use pscg_precond::Jacobi;
    use pscg_sim::SimCtx;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

    fn problem() -> (pscg_sparse::CsrMatrix, Vec<f64>) {
        let g = Grid3::cube(6);
        let a = poisson3d_7pt(g, None);
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n).map(|i| (0.29 * i as f64).sin()).collect();
        let b = a.mul_vec(&xstar);
        (a, b)
    }

    #[test]
    fn cg3_converges_and_matches_pcg_iteration_count() {
        let (a, b) = problem();
        let opts = SolveOptions::with_rtol(1e-8);
        let mut c1 = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let r1 = pcg::solve(&mut c1, &b, None, &opts);
        let mut c2 = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let r2 = solve(&mut c2, &b, None, &opts);
        assert!(r2.converged(), "{:?}", r2.stop);
        assert!(r2.true_relres(&a, &b) < 1e-6);
        // Same Krylov process in exact arithmetic.
        let diff = (r1.iterations as i64 - r2.iterations as i64).abs();
        assert!(diff <= 2, "PCG {} vs CG3 {}", r1.iterations, r2.iterations);
    }

    #[test]
    fn cg3_batches_its_dots_into_one_allreduce_per_iteration() {
        let (a, b) = problem();
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let res = solve(&mut ctx, &b, None, &SolveOptions::with_rtol(1e-6));
        assert!(res.converged());
        let passes = res.history.len() as u64;
        // One blocking allreduce per loop pass + the reference norm.
        assert_eq!(res.counters.blocking_allreduce, passes + 1);
        assert_eq!(res.counters.nonblocking_allreduce, 0);
    }

    #[test]
    fn cg3_attainable_accuracy_is_no_better_than_two_term_pcg() {
        // Gutknecht & Strakoš: three-term residual recurrences lose more
        // accuracy to rounding. Run both far past convergence and compare
        // the true residual floors.
        let (a, b) = problem();
        let opts = SolveOptions {
            rtol: 1e-15,
            atol: 0.0,
            max_iters: 300,
            ..Default::default()
        };
        let mut c1 = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let r1 = pcg::solve(&mut c1, &b, None, &opts);
        let mut c2 = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let r2 = solve(&mut c2, &b, None, &opts);
        let floor_pcg = r1.true_relres(&a, &b);
        let floor_cg3 = r2.true_relres(&a, &b);
        assert!(
            floor_cg3 >= floor_pcg * 0.1,
            "CG3 floor {floor_cg3:.2e} vs PCG floor {floor_pcg:.2e}"
        );
    }
}

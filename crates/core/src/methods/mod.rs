//! The CG method family: the paper's contribution and every baseline it is
//! evaluated against.
//!
//! | module | method | paper | allreduces per s steps | overlap |
//! |---|---|---|---|---|
//! | [`pcg`] | PCG | Alg. 1 | 3s, blocking | none |
//! | [`pipecg`] | PIPECG | Ghysels & Vanroose \[9\] | s, non-blocking | 1 PC + 1 SPMV |
//! | [`pipecg3`] | PIPECG3 | Eller & Gropp \[10\] | ⌈s/2⌉ | 2 PCs + 2 SPMVs |
//! | [`pipecg_oati`] | PIPECG-OATI | Tiwari & Vadhiyar \[11\] | ⌈s/2⌉ | 2 PCs + 2 SPMVs |
//! | [`scg`] | sCG | Alg. 2 (Chronopoulos & Gear) | 1, blocking | none (s+1 SPMVs) |
//! | [`scg_sspmv`] | sCG with s SPMVs | Alg. 4 (contribution) | 1, blocking | none (s SPMVs) |
//! | [`pscg`] | PsCG | Alg. 3 | 1, blocking | none (s+1 PCs/SPMVs) |
//! | [`pipe_scg`] | PIPE-sCG | Alg. 5 (contribution) | 1, non-blocking | s SPMVs |
//! | [`pipe_pscg`] | PIPE-PsCG | Alg. 6–7 (contribution) | 1, non-blocking | s PCs + s SPMVs |
//! | [`hybrid`] | Hybrid-pipelined | §VI-B | — | PIPE-PsCG then PIPECG-OATI |
//!
//! Every method has the same signature,
//! `solve(ctx, b, x0, &SolveOptions) -> SolveResult`, and is written against
//! [`pscg_sim::Context`], so it runs identically on the serial engine, the
//! tracing engine behind the figures, and the thread-backed distributed
//! engine.

pub mod cg3;
pub mod hybrid;
pub mod pcg;
pub mod pipe_pscg;
pub mod pipe_scg;
pub mod pipecg;
pub mod pipecg3;
pub mod pipecg_oati;
pub mod pscg;
pub mod scg;
pub mod scg_sspmv;

use crate::solver::{SolveOptions, SolveResult};
use pscg_sim::Context;

/// Uniform method selector, used by examples and the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Classic preconditioned CG (Algorithm 1).
    Pcg,
    /// Pipelined CG of Ghysels & Vanroose.
    Pipecg,
    /// Three-term-recurrence pipelined CG, one allreduce per two iterations.
    Pipecg3,
    /// One-allreduce-per-two-iterations pipelined CG (HiPC'20).
    PipecgOati,
    /// s-step CG (Algorithm 2).
    Scg,
    /// s-step CG with s SPMVs (Algorithm 4).
    ScgSspmv,
    /// Preconditioned s-step CG (Algorithm 3).
    Pscg,
    /// Pipelined s-step CG (Algorithm 5).
    PipeScg,
    /// Pipelined preconditioned s-step CG (Algorithms 6–7).
    PipePscg,
    /// PIPE-PsCG until stagnation, then PIPECG-OATI (§VI-B).
    Hybrid,
    /// Three-term-recurrence PCG (extension baseline; seed of PIPECG3).
    Cg3,
}

impl MethodKind {
    /// Paper spelling of the method name.
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Pcg => "PCG",
            MethodKind::Pipecg => "PIPECG",
            MethodKind::Pipecg3 => "PIPECG3",
            MethodKind::PipecgOati => "PIPECG-OATI",
            MethodKind::Scg => "sCG",
            MethodKind::ScgSspmv => "sCG-sSPMV",
            MethodKind::Pscg => "PsCG",
            MethodKind::PipeScg => "PIPE-sCG",
            MethodKind::PipePscg => "PIPE-PsCG",
            MethodKind::Hybrid => "Hybrid-pipelined",
            MethodKind::Cg3 => "CG3",
        }
    }

    /// All methods plotted in the paper's Figure 1/2 sweeps, in the paper's
    /// legend order, plus the hybrid.
    pub fn figure_set() -> [MethodKind; 7] {
        [
            MethodKind::Pcg,
            MethodKind::Pipecg,
            MethodKind::Pipecg3,
            MethodKind::PipecgOati,
            MethodKind::Pscg,
            MethodKind::PipeScg,
            MethodKind::PipePscg,
        ]
    }

    /// Dispatches to the implementation.
    ///
    /// This is also the telemetry boundary: when telemetry is enabled
    /// (`pscg_obs::set_enabled`), the whole solve — including the hybrid's
    /// two phases, which run inside one dispatch — is collected as a single
    /// metrics stream, retrievable afterwards with
    /// `pscg_obs::metrics::take_last`.
    pub fn solve<C: Context>(
        self,
        ctx: &mut C,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        let began = crate::telemetry::begin(self.name(), ctx, opts);
        let res = self.dispatch(ctx, b, x0, opts);
        crate::telemetry::finish(began, ctx, &res);
        res
    }

    fn dispatch<C: Context>(
        self,
        ctx: &mut C,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        match self {
            MethodKind::Pcg => pcg::solve(ctx, b, x0, opts),
            MethodKind::Pipecg => pipecg::solve(ctx, b, x0, opts),
            MethodKind::Pipecg3 => pipecg3::solve(ctx, b, x0, opts),
            MethodKind::PipecgOati => pipecg_oati::solve(ctx, b, x0, opts),
            MethodKind::Scg => scg::solve(ctx, b, x0, opts),
            MethodKind::ScgSspmv => scg_sspmv::solve(ctx, b, x0, opts),
            MethodKind::Pscg => pscg::solve(ctx, b, x0, opts),
            MethodKind::PipeScg => pipe_scg::solve(ctx, b, x0, opts),
            MethodKind::PipePscg => pipe_pscg::solve(ctx, b, x0, opts),
            MethodKind::Hybrid => hybrid::solve(ctx, b, x0, opts),
            MethodKind::Cg3 => cg3::solve(ctx, b, x0, opts),
        }
    }
}

/// Shared init: `x = x0` (or 0) and `r = b − A x` (always one SPMV, as in
/// PETSc). Returns `(x, r)`.
pub(crate) fn init_residual<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(
        b.len(),
        ctx.vec_len(),
        "rhs length must match the local vector length"
    );
    let mut x = ctx.alloc_vec();
    if let Some(x0) = x0 {
        assert_eq!(
            x0.len(),
            ctx.vec_len(),
            "x0 length must match the local vector length"
        );
        x.copy_from_slice(x0);
    }
    let mut r = ctx.alloc_vec();
    let mut ax = ctx.alloc_vec();
    ctx.spmv(&x, &mut ax);
    ctx.waxpy(&mut r, -1.0, &ax, b);
    (x, r)
}

/// Relative residual from a reduced squared norm, preserving a non-finite
/// input as NaN. The bare `.max(0.0).sqrt()` idiom (which exists to clamp
/// tiny negative rounding) would silently map a *poisoned* NaN reduction
/// to a zero residual — instant fake convergence. A NaN result instead
/// fails every `< threshold` comparison and trips the methods'
/// `!relres.is_finite()` breakdown guards.
#[inline]
pub(crate) fn relres_from_sq(norm_sq: f64, bnorm: f64) -> f64 {
    if norm_sq.is_finite() {
        norm_sq.max(0.0).sqrt() / bnorm
    } else {
        f64::NAN
    }
}

/// Norm from a reduced squared norm, preserving a non-finite input as NaN.
/// Same contract as [`relres_from_sq`] without the reference division:
/// clamps only tiny negative rounding, never a poisoned reduction.
#[inline]
pub(crate) fn norm_from_sq(norm_sq: f64) -> f64 {
    if norm_sq.is_finite() {
        norm_sq.max(0.0).sqrt()
    } else {
        f64::NAN
    }
}

/// The convergence-test reference norm of `b` in the norm the test uses:
/// `‖b‖`, `‖M⁻¹b‖` or `√(b, M⁻¹b)` — matching the residual norm on the
/// other side of `‖·‖ < rtol·ref` (the PETSc convention; the paper's §VI-E
/// formula abbreviates the right-hand side to `‖b‖`). One PC application
/// and one blocking allreduce at setup.
pub(crate) fn global_ref_norm<C: Context>(
    ctx: &mut C,
    b: &[f64],
    opts: &crate::solver::SolveOptions,
) -> f64 {
    let mut ub = ctx.alloc_vec();
    ctx.pc_apply(b, &mut ub);
    let bb = ctx.local_dot(b, b);
    let uu = ctx.local_dot(&ub, &ub);
    let bu = ctx.local_dot(b, &ub);
    let red = ctx.allreduce(&[bb, uu, bu]);
    match opts.ref_norm {
        crate::solver::RefNorm::PlainB => norm_from_sq(red[0]),
        crate::solver::RefNorm::Matched => norm_from_sq(opts.norm.pick_sq(red[0], red[1], red[2])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_match_the_paper() {
        assert_eq!(MethodKind::PipePscg.name(), "PIPE-PsCG");
        assert_eq!(MethodKind::PipecgOati.name(), "PIPECG-OATI");
        assert_eq!(MethodKind::figure_set().len(), 7);
    }
}

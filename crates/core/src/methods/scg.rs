//! s-step conjugate gradients of Chronopoulos & Gear — the paper's
//! Algorithm 2.
//!
//! One *blocking* allreduce per s-step iteration (each worth s PCG steps),
//! at the price of **s+1** SPMVs per iteration: the residual is recomputed
//! as `r = b − A x` and the monomial basis `{r, Ar, …, Aˢr}` is rebuilt with
//! fresh products every iteration. Unpreconditioned.

use pscg_sim::Context;

use crate::methods::{global_ref_norm, init_residual};
use crate::solver::{SolveOptions, SolveResult, StopReason};
use crate::sstep::{
    conjugate_window, estimate_sigma, extend_scaled_powers, GramPacket, ScalarWork,
};

/// Solves `A x = b` with sCG. `x0` defaults to zero.
pub fn solve<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    let s = opts.s.min(ctx.nrows().max(1));
    assert!(s >= 1, "sCG requires s >= 1");
    let bnorm = global_ref_norm(ctx, b, opts);
    let threshold = opts.threshold(bnorm);
    let mut resil = crate::resilience::ResilienceState::new(opts, bnorm);
    let (mut x, r) = init_residual(ctx, b, x0);

    // pow[j] = (σA)^j r, j = 0..=s (lines 3–4: s SPMVs after the
    // residual); σ keeps the monomial columns O(‖r‖) (see sstep docs).
    let mut pow = ctx.alloc_multi(s + 1);
    pow.col_mut(0).copy_from_slice(&r);
    {
        let (src, dst) = pow.col_pair_mut(0, 1);
        ctx.spmv(src, dst);
    }
    let sigma = estimate_sigma(ctx, pow.col(0), pow.col(1));
    ctx.scale_v(sigma, pow.col_mut(1));
    extend_scaled_powers(ctx, &mut pow, 1, s, sigma);

    let mut dirs = ctx.alloc_multi(s);
    let mut dirs_next = ctx.alloc_multi(s);
    let mut ax = ctx.alloc_vec();
    let mut scalar = ScalarWork::new(s);
    let mut history: Vec<f64> = Vec::new();
    let mut iters = 0usize;
    let stop;

    loop {
        // Line 5 / 13 / 19: the 2s dot products, as one blocking allreduce.
        let pkt = GramPacket::assemble(ctx, s, &pow, &pow, &dirs);
        let red = ctx.allreduce(&pkt.pack());
        let pkt = GramPacket::unpack(s, &red);
        // A dead peer poisons the reduction: the check must precede the
        // relres computation, whose `.max(0.0)` would clamp a NaN norm
        // into a fake zero-residual convergence. The supervisor owns the
        // buddy rebuild.
        if ctx.rank_failure().is_some() {
            resil.rollback(ctx, &mut x);
            stop = StopReason::RankFailed;
            break;
        }

        let relres = crate::methods::relres_from_sq(
            opts.norm.pick_sq(pkt.norms[0], pkt.norms[1], pkt.norms[2]),
            bnorm,
        );
        history.push(relres);
        ctx.note_residual(relres);
        crate::telemetry::note_iter(
            ctx,
            iters,
            relres,
            pkt.norms,
            &scalar.alpha,
            scalar.b.data(),
            f64::NAN,
        );
        if relres * bnorm < threshold {
            stop = StopReason::Converged;
            break;
        }
        if iters >= opts.max_iters {
            stop = StopReason::MaxIterations;
            break;
        }
        if !relres.is_finite() || relres > 1e8 || pkt.norms[2] < 0.0 {
            // The recurrences have left the basin of useful arithmetic
            // (non-finite/diverged residual, or a negative (r, u) scalar on
            // an SPD system); report breakdown instead of iterating on.
            resil.rollback(ctx, &mut x);
            stop = StopReason::Breakdown;
            break;
        }
        match resil.on_check(ctx, b, &x, relres) {
            crate::resilience::CheckVerdict::Continue => {}
            verdict => {
                resil.rollback(ctx, &mut x);
                stop = verdict.stop();
                break;
            }
        }
        // Line 7: Scalar Work (two s×s LU solves).
        if scalar.step(ctx, &pkt).is_err() {
            resil.rollback(ctx, &mut x);
            stop = StopReason::Breakdown;
            break;
        }

        // Lines 9–10 / 15–16: conjugate the basis and advance the solution.
        conjugate_window(ctx, &mut dirs_next, &pow, 0, &dirs, &scalar.b);
        std::mem::swap(&mut dirs, &mut dirs_next);
        // The directions live in the σ-scaled basis: x advances by σ·α.
        let alpha_x: Vec<f64> = scalar.alpha.iter().map(|a| a * sigma).collect();
        ctx.block_gemv_acc(&dirs, &alpha_x, &mut x);

        // Lines 11–12 / 17–18: fresh residual and basis, s+1 SPMVs.
        ctx.spmv(&x, &mut ax);
        ctx.waxpy(pow.col_mut(0), -1.0, &ax, b);
        extend_scaled_powers(ctx, &mut pow, 0, s, sigma);
        iters += s;
    }

    SolveResult {
        x,
        iterations: iters,
        stop,
        final_relres: history.last().copied().unwrap_or(f64::NAN),
        history,
        counters: *ctx.counters(),
        method: "sCG",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::pcg;
    use pscg_sim::SimCtx;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
    use pscg_sparse::IdentityOp;

    fn problem() -> (pscg_sparse::CsrMatrix, Vec<f64>) {
        let g = Grid3::cube(6);
        let a = poisson3d_7pt(g, None);
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n).map(|i| ((i % 9) as f64 - 4.0) / 4.0).collect();
        let b = a.mul_vec(&xstar);
        (a, b)
    }

    fn serial_ctx(a: &pscg_sparse::CsrMatrix) -> SimCtx<'_> {
        SimCtx::serial(a, Box::new(IdentityOp::new(a.nrows())))
    }

    #[test]
    fn scg_converges_like_cg_for_various_s() {
        let (a, b) = problem();
        let opts_cg = SolveOptions {
            rtol: 1e-8,
            ..Default::default()
        };
        let mut c0 = serial_ctx(&a);
        let rcg = pcg::solve(&mut c0, &b, None, &opts_cg);
        for s in [1usize, 2, 3, 4, 5] {
            let mut ctx = serial_ctx(&a);
            let opts = SolveOptions {
                rtol: 1e-8,
                s,
                ..Default::default()
            };
            let res = solve(&mut ctx, &b, None, &opts);
            assert!(res.converged(), "s={s}: {:?}", res.stop);
            assert!(res.true_relres(&a, &b) < 1e-6, "s={s}");
            // s-step CG performs the work of s PCG steps per iteration; the
            // step count rounds up to a multiple of s.
            let slack = 2 * s + 2;
            assert!(
                res.iterations <= rcg.iterations + slack,
                "s={s}: sCG {} vs PCG {}",
                res.iterations,
                rcg.iterations
            );
        }
    }

    #[test]
    fn scg_counts_one_allreduce_and_s_plus_1_spmvs_per_iteration() {
        let (a, b) = problem();
        let s = 3;
        let mut ctx = serial_ctx(&a);
        let opts = SolveOptions {
            rtol: 1e-6,
            s,
            ..Default::default()
        };
        let res = solve(&mut ctx, &b, None, &opts);
        assert!(res.converged());
        let outer = (res.iterations / s) as u64;
        // One blocking allreduce per outer iteration + final check + bnorm
        // + the basis-scale estimate.
        assert_eq!(res.counters.blocking_allreduce, outer + 3);
        // Setup: 1 (residual) + s (basis); each outer iteration: s+1.
        assert_eq!(res.counters.spmv, 1 + s as u64 + outer * (s as u64 + 1));
        // Only the reference-norm M^-1 b (identity); none in the loop.
        assert_eq!(res.counters.pc, 1, "sCG is unpreconditioned");
    }

    #[test]
    fn scg_s1_matches_cg_trajectory() {
        // s = 1 s-step CG is plain CG; trajectories agree step for step
        // until roundoff accumulates.
        let (a, b) = problem();
        let opts = SolveOptions {
            rtol: 1e-6,
            s: 1,
            ..Default::default()
        };
        let mut c1 = serial_ctx(&a);
        let r1 = solve(&mut c1, &b, None, &opts);
        let mut c2 = serial_ctx(&a);
        let r2 = pcg::solve(&mut c2, &b, None, &opts);
        assert!(r1.converged() && r2.converged());
        assert!((r1.iterations as i64 - r2.iterations as i64).abs() <= 2);
    }
}

//! Classic preconditioned conjugate gradients — the paper's Algorithm 1.
//!
//! Three *blocking* allreduces per iteration (`δ`, `γ`, and the norm), none
//! of which can be overlapped because each result feeds the very next
//! statement; this is the synchronisation bottleneck the pipelined variants
//! attack (§III).

use pscg_sim::Context;

use crate::methods::{global_ref_norm, init_residual};
use crate::solver::{NormType, SolveOptions, SolveResult, StopReason};

/// Solves `A x = b` with PCG. `x0` defaults to zero.
pub fn solve<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    let bnorm = global_ref_norm(ctx, b, opts);
    let threshold = opts.threshold(bnorm);
    let mut resil = crate::resilience::ResilienceState::new(opts, bnorm);
    let (mut x, mut r) = init_residual(ctx, b, x0);

    let mut u = ctx.alloc_vec();
    ctx.pc_apply(&r, &mut u);

    // Line 2: γ₀ = (u₀, r₀) and the initial norm.
    let lg = ctx.local_dot(&u, &r);
    let mut gamma = ctx.allreduce(&[lg])[0];
    let ln = norm_dot(ctx, opts.norm, &r, &u, gamma);
    let norm0_sq = ctx.allreduce(&[ln])[0];

    let mut history = vec![crate::methods::relres_from_sq(norm0_sq, bnorm)];
    ctx.note_residual(history[0]);
    crate::telemetry::note_iter(
        ctx,
        0,
        history[0],
        crate::telemetry::norms_from_selected(opts.norm, norm0_sq, gamma),
        &[],
        &[],
        gamma,
    );

    let result = |ctx: &mut C, x: Vec<f64>, iters, stop, history: Vec<f64>| SolveResult {
        x,
        iterations: iters,
        stop,
        // History is never empty (the initial residual is pushed above),
        // but a NaN fallback beats an abort mid-solve if that changes.
        final_relres: history.last().copied().unwrap_or(f64::NAN),
        history,
        counters: *ctx.counters(),
        method: "PCG",
    };

    // The failure check must precede any convergence interpretation: a
    // poisoned NaN norm would be clamped to zero by `.max(0.0)` and read
    // as instant convergence.
    if ctx.rank_failure().is_some() {
        return result(ctx, x, 0, StopReason::RankFailed, history);
    }
    if crate::methods::norm_from_sq(norm0_sq) < threshold {
        return result(ctx, x, 0, StopReason::Converged, history);
    }

    let mut p = ctx.alloc_vec();
    let mut s = ctx.alloc_vec();
    let mut gamma_old = 0.0;

    for i in 0..opts.max_iters {
        // Lines 4–9: β and the direction update p = u + β p.
        let beta = if i > 0 { gamma / gamma_old } else { 0.0 };
        ctx.aypx(beta, &u, &mut p);
        // Line 10: s = A p.
        ctx.spmv(&p, &mut s);
        // Lines 11–12: δ = (s, p) — blocking — and α = γ/δ.
        let ld = ctx.local_dot(&s, &p);
        let delta = ctx.allreduce(&[ld])[0];
        // A dead peer poisons the reduction: report the typed failure, not
        // a breakdown — the supervisor owns buddy reconstruction.
        if ctx.rank_failure().is_some() {
            resil.rollback(ctx, &mut x);
            return result(ctx, x, i, StopReason::RankFailed, history);
        }
        if delta <= 0.0 || delta.is_nan() {
            resil.rollback(ctx, &mut x);
            return result(ctx, x, i, StopReason::Breakdown, history);
        }
        let alpha = gamma / delta;
        // Lines 13–15.
        ctx.axpy(alpha, &p, &mut x);
        ctx.axpy(-alpha, &s, &mut r);
        ctx.pc_apply(&r, &mut u);
        // Line 16: γ — blocking.
        let lg = ctx.local_dot(&u, &r);
        let gamma_new = ctx.allreduce(&[lg])[0];
        // Line 17: the norm — blocking (the third allreduce of Table I).
        let ln = norm_dot(ctx, opts.norm, &r, &u, gamma_new);
        let norm_sq = ctx.allreduce(&[ln])[0];

        // Checked before `.max(0.0)` can clamp a poisoned NaN norm into a
        // fake zero-residual convergence.
        if ctx.rank_failure().is_some() {
            resil.rollback(ctx, &mut x);
            return result(ctx, x, i + 1, StopReason::RankFailed, history);
        }
        let relres = crate::methods::relres_from_sq(norm_sq, bnorm);
        history.push(relres);
        ctx.note_residual(relres);
        crate::telemetry::note_iter(
            ctx,
            i + 1,
            relres,
            crate::telemetry::norms_from_selected(opts.norm, norm_sq, gamma_new),
            &[alpha],
            &[beta],
            gamma_new,
        );

        gamma_old = gamma;
        gamma = gamma_new;

        if relres * bnorm < threshold {
            return result(ctx, x, i + 1, StopReason::Converged, history);
        }
        // γ = (r, u) must stay finite and non-negative on an SPD system;
        // a non-finite residual means corrupted data reached the norm.
        if !relres.is_finite() || crate::resilience::gamma_breakdown(gamma) {
            resil.rollback(ctx, &mut x);
            return result(ctx, x, i + 1, StopReason::Breakdown, history);
        }
        match resil.on_check(ctx, b, &x, relres) {
            crate::resilience::CheckVerdict::Continue => {}
            verdict => {
                resil.rollback(ctx, &mut x);
                return result(ctx, x, i + 1, verdict.stop(), history);
            }
        }
    }
    let iters = opts.max_iters;
    result(ctx, x, iters, StopReason::MaxIterations, history)
}

/// Local dot for the selected norm; `gamma_local_known` reuses (u, r) when
/// the natural norm is requested (still reduced separately, mirroring the
/// paper's three allreduces).
fn norm_dot<C: Context>(ctx: &mut C, norm: NormType, r: &[f64], u: &[f64], gamma: f64) -> f64 {
    match norm {
        NormType::Unpreconditioned => ctx.local_dot(r, r),
        NormType::Preconditioned => ctx.local_dot(u, u),
        NormType::Natural => gamma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscg_precond::Jacobi;
    use pscg_sim::SimCtx;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
    use pscg_sparse::IdentityOp;

    #[test]
    fn pcg_solves_small_poisson_to_machine_accuracy() {
        let g = Grid3::cube(6);
        let a = poisson3d_7pt(g, None);
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) / 5.0).collect();
        let b = a.mul_vec(&xstar);
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let opts = SolveOptions {
            rtol: 1e-10,
            ..Default::default()
        };
        let res = solve(&mut ctx, &b, None, &opts);
        assert!(res.converged(), "stop = {:?}", res.stop);
        assert!(res.true_relres(&a, &b) < 1e-9);
        let err: f64 = res
            .x
            .iter()
            .zip(&xstar)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-7, "max error {err}");
    }

    #[test]
    fn pcg_counts_three_allreduces_per_iteration() {
        let g = Grid3::cube(5);
        let a = poisson3d_7pt(g, None);
        let b = vec![1.0; a.nrows()];
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(a.nrows())));
        let res = solve(&mut ctx, &b, None, &SolveOptions::with_rtol(1e-8));
        let iters = res.iterations as u64;
        // 3 blocking allreduces per iteration + 3 at setup (bnorm, γ₀, norm₀).
        assert_eq!(res.counters.blocking_allreduce, 3 * iters + 3);
        assert_eq!(res.counters.nonblocking_allreduce, 0);
        // 1 SPMV per iteration + 1 at setup.
        assert_eq!(res.counters.spmv, iters + 1);
        // One PC per iteration + setup u0 + the reference-norm M^-1 b.
        assert_eq!(res.counters.pc, iters + 2);
    }

    #[test]
    fn pcg_respects_max_iters() {
        let g = Grid3::cube(8);
        let a = poisson3d_7pt(g, None);
        let b = vec![1.0; a.nrows()];
        let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(a.nrows())));
        let opts = SolveOptions {
            rtol: 1e-14,
            max_iters: 3,
            ..Default::default()
        };
        let res = solve(&mut ctx, &b, None, &opts);
        assert_eq!(res.stop, StopReason::MaxIterations);
        assert_eq!(res.iterations, 3);
        assert_eq!(res.history.len(), 4); // initial + 3
    }

    #[test]
    fn pcg_accepts_nonzero_initial_guess() {
        let g = Grid3::cube(5);
        let a = poisson3d_7pt(g, None);
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let b = a.mul_vec(&xstar);
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        // Start close to the solution: must converge in very few steps.
        let mut x0 = xstar.clone();
        x0[0] += 1e-6;
        let res = solve(&mut ctx, &b, Some(&x0), &SolveOptions::with_rtol(1e-6));
        assert!(res.converged());
        assert!(res.iterations <= 2, "iterations = {}", res.iterations);
    }

    #[test]
    fn pcg_converges_under_all_three_norms() {
        let g = Grid3::cube(5);
        let a = poisson3d_7pt(g, None);
        let b = vec![1.0; a.nrows()];
        for norm in [
            NormType::Preconditioned,
            NormType::Unpreconditioned,
            NormType::Natural,
        ] {
            let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
            let opts = SolveOptions {
                rtol: 1e-8,
                norm,
                ..Default::default()
            };
            let res = solve(&mut ctx, &b, None, &opts);
            assert!(res.converged(), "norm {norm:?}");
            assert!(res.true_relres(&a, &b) < 1e-6, "norm {norm:?}");
        }
    }
}

//! PIPE-PsCG — the paper's Algorithms 6–7 (§IV-C, main contribution).
//!
//! The preconditioned pipelined s-step method carries *dual* power lists —
//! u-type (`upow[j] = (M⁻¹A)^j u`, the paper's `Q/P` family) and r-type
//! (`rpow[j] = (AM⁻¹)^j r`, the paper's `Q2/P2` family) — together with
//! both A-power families (`AQm`/`AQ2m`). Per s-step iteration it performs:
//!
//! * recurrence LCs only for the direction blocks, both power families and
//!   the fresh bases (no PC/SPMV on the critical path of the dot products);
//! * **one** non-blocking allreduce of the Gram packet, overlapped with
//! * exactly **s** preconditioner applications and **s** SPMVs — the deep
//!   powers `(AM⁻¹)^{s+1..2s}r` / `(M⁻¹A)^{s+1..2s}u` whose results feed the
//!   *next* iteration's recurrences, not the pending dot products.
//!
//! Because `rpow\[0\] = r`, `upow\[0\] = u` and both travel in the packet, the
//! convergence test can use the unpreconditioned, preconditioned or natural
//! norm with no extra kernels — the advantage the paper emphasises over
//! PIPELCG.
//!
//! The depth-2 methods (PIPECG-OATI, PIPECG3) and the hybrid driver reuse
//! this core through [`PipeConfig`].

use pscg_obs::{StagnationConfig, StagnationDetector};
use pscg_sim::Context;
use pscg_sparse::MultiVector;

use crate::methods::{global_ref_norm, init_residual};
use crate::solver::{SolveOptions, SolveResult, StopReason};
use crate::sstep::{conjugate_window, estimate_sigma, GramPacket, ScalarWork};

/// Stagnation rule: stop with [`StopReason::Stagnated`] when the relative
/// residual improved by less than `min_ratio` over the last `window`
/// convergence checks. The rule is evaluated by
/// [`pscg_obs::StagnationDetector`], so the armed threshold and whether it
/// fired travel in the telemetry stream.
pub type StagnationCheck = StagnationConfig;

/// Tuning knobs for the pipelined s-step core.
#[derive(Debug, Clone, Copy)]
pub struct PipeConfig {
    /// Reported method name.
    pub method: &'static str,
    /// Step-block size (overrides `SolveOptions::s`).
    pub s: usize,
    /// Replace the recurrence basis with explicitly computed products every
    /// `k` outer iterations (the "non-recurrence computations" of
    /// PIPECG-OATI \[11\]); `None` = pure recurrences (Algorithm 6).
    pub replace_every: Option<usize>,
    /// Optional stagnation detection (used by the hybrid driver).
    pub stagnation: Option<StagnationCheck>,
    /// Extra VMA work (flops per row) charged once per outer iteration —
    /// used to reflect a method's Table I FLOP count when the shared core
    /// under-counts it (e.g. PIPECG3's costlier three-term recurrences).
    pub extra_flops_per_row: f64,
}

impl PipeConfig {
    /// The plain PIPE-PsCG configuration for a given `s`.
    pub fn pipe_pscg(s: usize) -> Self {
        PipeConfig {
            method: "PIPE-PsCG",
            s,
            replace_every: None,
            stagnation: None,
            extra_flops_per_row: 0.0,
        }
    }
}

/// Solves `M⁻¹A x = M⁻¹b` with PIPE-PsCG at `opts.s`. `x0` defaults to zero.
pub fn solve<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    solve_with(ctx, b, x0, opts, PipeConfig::pipe_pscg(opts.s))
}

/// Solves with an explicit [`PipeConfig`] (used by PIPECG-OATI, PIPECG3 and
/// the hybrid driver).
pub fn solve_with<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
    cfg: PipeConfig,
) -> SolveResult {
    // A basis deeper than the problem dimension is rank deficient by
    // construction; clamp (matters only for toy systems).
    let s = cfg.s.min(ctx.nrows().max(1));
    assert!(s >= 1, "{} requires s >= 1", cfg.method);
    let bnorm = global_ref_norm(ctx, b, opts);
    let threshold = opts.threshold(bnorm);
    let mut resil = crate::resilience::ResilienceState::new(opts, bnorm);
    let (mut x, r) = init_residual(ctx, b, x0);

    // Dual power lists, j = 0..=2s, double-buffered.
    let mut rpow = ctx.alloc_multi(2 * s + 1);
    let mut upow = ctx.alloc_multi(2 * s + 1);
    let mut rpow_next = ctx.alloc_multi(2 * s + 1);
    let mut upow_next = ctx.alloc_multi(2 * s + 1);

    // Lines 7–10: r₀, u₀ and the first s powers of both lists, built with
    // the σ-scaled operator (σ from the first chain link; see sstep docs).
    rpow.col_mut(0).copy_from_slice(&r);
    ctx.pc_apply(rpow.col(0), upow.col_mut(0));
    ctx.spmv(upow.col(0), rpow.col_mut(1));
    let sigma = estimate_sigma(ctx, rpow.col(0), rpow.col(1));
    ctx.scale_v(sigma, rpow.col_mut(1));
    ctx.pc_apply(rpow.col(1), upow.col_mut(1));
    extend_powers(ctx, &mut rpow, &mut upow, 1, s, sigma);

    // Line 11–12: local dot products and the non-blocking allreduce.
    let udirs0 = ctx.alloc_multi(s);
    let pkt = GramPacket::assemble(ctx, s, &upow, &rpow, &udirs0);
    let mut posted = pkt.pack();
    let mut handle = ctx.iallreduce(&posted);
    // Line 13: deep powers overlapped with it — s PCs + s SPMVs.
    extend_powers(ctx, &mut rpow, &mut upow, s, 2 * s, sigma);

    // Direction blocks (paper's P/Q and P2/Q2) and the A-power families
    // (AQm[j] = (M⁻¹A)^{j+1}·udirs, AQ2m[j] = (AM⁻¹)^{j+1}·rdirs).
    let mut udirs = udirs0;
    let mut rdirs = ctx.alloc_multi(s);
    let mut udirs_next = ctx.alloc_multi(s);
    let mut rdirs_next = ctx.alloc_multi(s);
    let mut uapow: Vec<MultiVector> = (0..=s).map(|_| ctx.alloc_multi(s)).collect();
    let mut rapow: Vec<MultiVector> = (0..=s).map(|_| ctx.alloc_multi(s)).collect();
    let mut uapow_next: Vec<MultiVector> = (0..=s).map(|_| ctx.alloc_multi(s)).collect();
    let mut rapow_next: Vec<MultiVector> = (0..=s).map(|_| ctx.alloc_multi(s)).collect();

    let mut ax = ctx.alloc_vec();
    let mut scalar = ScalarWork::new(s);
    let mut history: Vec<f64> = Vec::new();
    let mut iters = 0usize;
    let mut outer = 0usize;
    let mut stagnation = cfg.stagnation.map(StagnationDetector::new);
    if let Some(st) = cfg.stagnation {
        crate::telemetry::set_stagnation(ctx, st);
    }
    let stop;

    loop {
        // Line 35 wait (posted one overlap window ago).
        let red = match crate::resilience::wait_reduction(
            ctx,
            handle,
            &posted,
            opts.resilience.reduce_retries,
        ) {
            Ok(v) => v,
            Err(e) => {
                // Timeout -> CommFault; rank death -> RankFailed (the
                // handle is already retired; the supervisor owns the
                // buddy rebuild).
                resil.rollback(ctx, &mut x);
                stop = crate::resilience::comm_stop(&e);
                break;
            }
        };
        let pkt = GramPacket::unpack(s, &red);

        let relres = crate::methods::relres_from_sq(
            opts.norm.pick_sq(pkt.norms[0], pkt.norms[1], pkt.norms[2]),
            bnorm,
        );
        history.push(relres);
        ctx.note_residual(relres);
        crate::telemetry::note_iter(
            ctx,
            iters,
            relres,
            pkt.norms,
            &scalar.alpha,
            scalar.b.data(),
            f64::NAN,
        );
        if relres * bnorm < threshold {
            stop = StopReason::Converged;
            break;
        }
        if iters >= opts.max_iters {
            stop = StopReason::MaxIterations;
            break;
        }
        if !relres.is_finite() || relres > 1e8 || pkt.norms[2] < 0.0 {
            // The recurrences have left the basin of useful arithmetic
            // (non-finite/diverged residual, or a negative (r, u) scalar on
            // an SPD system); report breakdown instead of iterating on.
            resil.rollback(ctx, &mut x);
            stop = StopReason::Breakdown;
            break;
        }
        match resil.on_check(ctx, b, &x, relres) {
            crate::resilience::CheckVerdict::Continue => {}
            verdict => {
                resil.rollback(ctx, &mut x);
                stop = verdict.stop();
                break;
            }
        }
        // Feeding the detector only here (not on the breaking checks above)
        // matches the historical inline rule: any relres that ended the loop
        // earlier never reached the stagnation test either.
        if let Some(det) = stagnation.as_mut() {
            if det.observe(relres) {
                crate::telemetry::note_stagnation_fired(ctx);
                stop = StopReason::Stagnated;
                break;
            }
        }
        // Line 15: Scalar Work.
        if scalar.step(ctx, &pkt).is_err() {
            resil.rollback(ctx, &mut x);
            stop = StopReason::Stagnated;
            break;
        }

        // Lines 17–26: conjugate both direction blocks and all A-power
        // blocks with the same β-matrix. Fresh windows come from the *old*
        // power lists.
        conjugate_window(ctx, &mut udirs_next, &upow, 0, &udirs, &scalar.b);
        conjugate_window(ctx, &mut rdirs_next, &rpow, 0, &rdirs, &scalar.b);
        for j in 0..=s {
            conjugate_window(ctx, &mut uapow_next[j], &upow, j + 1, &uapow[j], &scalar.b);
            conjugate_window(ctx, &mut rapow_next[j], &rpow, j + 1, &rapow[j], &scalar.b);
        }
        std::mem::swap(&mut udirs, &mut udirs_next);
        std::mem::swap(&mut rdirs, &mut rdirs_next);
        std::mem::swap(&mut uapow, &mut uapow_next);
        std::mem::swap(&mut rapow, &mut rapow_next);

        // Line 27: x += Q (σα) — the u-type directions live in the
        // σ-scaled basis; the AQm/AQ2m blocks carry the σ factor, so the
        // basis recurrences below consume the raw α.
        let alpha_x: Vec<f64> = scalar.alpha.iter().map(|a| a * sigma).collect();
        ctx.block_gemv_acc(&udirs, &alpha_x, &mut x);

        if cfg.extra_flops_per_row > 0.0 {
            ctx.charge_local(
                pscg_sim::LocalKind::Vma,
                cfg.extra_flops_per_row,
                8.0 * cfg.extra_flops_per_row,
            );
        }

        let replace = cfg
            .replace_every
            .is_some_and(|k| outer > 0 && outer.is_multiple_of(k));
        if replace {
            // Non-recurrence computation: recompute the residual and the
            // leading basis columns explicitly (extra, *unoverlapped* PCs
            // and SPMVs — the price PIPECG-OATI pays for repaying the
            // rounding drift of the recurrences).
            ctx.spmv(&x, &mut ax);
            ctx.waxpy(rpow_next.col_mut(0), -1.0, &ax, b);
            extend_powers(ctx, &mut rpow_next, &mut upow_next, 0, s, sigma);
        } else {
            // Lines 28–33: fresh bases by recurrence only —
            // rpow[j] ← rpow[j] − AQ2m[j]·α, upow[j] ← upow[j] − AQm[j]·α,
            // each column as one fused copy-and-subtract sweep.
            for j in 0..=s {
                ctx.block_gemv_sub_into(
                    &rapow[j],
                    &scalar.alpha,
                    rpow.col(j),
                    rpow_next.col_mut(j),
                );
                ctx.block_gemv_sub_into(
                    &uapow[j],
                    &scalar.alpha,
                    upow.col(j),
                    upow_next.col_mut(j),
                );
            }
        }

        // Lines 34–35: dot products of the new bases, posted non-blocking.
        let pkt = GramPacket::assemble(ctx, s, &upow_next, &rpow_next, &udirs);
        posted = pkt.pack();
        handle = ctx.iallreduce(&posted);

        // Line 36: the deep powers — s PCs + s SPMVs — overlapped with the
        // allreduce.
        extend_powers(ctx, &mut rpow_next, &mut upow_next, s, 2 * s, sigma);

        std::mem::swap(&mut rpow, &mut rpow_next);
        std::mem::swap(&mut upow, &mut upow_next);
        iters += s;
        outer += 1;
    }

    SolveResult {
        x,
        iterations: iters,
        stop,
        final_relres: history.last().copied().unwrap_or(f64::NAN),
        history,
        counters: *ctx.counters(),
        method: cfg.method,
    }
}

/// Extends the dual σ-scaled chains: `rpow[j+1] = σ·A·upow[j]` and
/// `upow[j+1] = M⁻¹ rpow[j+1]` for `j = from..to` — `to − from` PCs and
/// SPMVs (plus the boundary PC when starting from a fresh residual). With
/// `from = s, to = 2s` this is the paper's overlap window of s PCs and
/// s SPMVs.
fn extend_powers<C: Context>(
    ctx: &mut C,
    rpow: &mut MultiVector,
    upow: &mut MultiVector,
    from: usize,
    to: usize,
    sigma: f64,
) {
    if from == 0 {
        // Boundary PC; at from = s, upow[s] already exists from the
        // recurrence phase.
        ctx.pc_apply(rpow.col(0), upow.col_mut(0));
    }
    for j in from..to {
        ctx.spmv(upow.col(j), rpow.col_mut(j + 1));
        // pscg-lint: allow(float-eq, exact identity-scaling skip; sigma is a set parameter, not computed)
        if sigma != 1.0 {
            ctx.scale_v(sigma, rpow.col_mut(j + 1));
        }
        ctx.pc_apply(rpow.col(j + 1), upow.col_mut(j + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::pscg;
    use crate::solver::NormType;
    use pscg_precond::Jacobi;
    use pscg_sim::SimCtx;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

    fn problem() -> (pscg_sparse::CsrMatrix, Vec<f64>) {
        let g = Grid3::cube(6);
        let a = poisson3d_7pt(g, None);
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n).map(|i| (0.23 * i as f64).sin() + 0.5).collect();
        let b = a.mul_vec(&xstar);
        (a, b)
    }

    fn jacobi_ctx(a: &pscg_sparse::CsrMatrix) -> SimCtx<'_> {
        SimCtx::serial(a, Box::new(Jacobi::new(a)))
    }

    #[test]
    fn pipe_pscg_converges_for_various_s() {
        let (a, b) = problem();
        for s in [1usize, 2, 3, 4, 5] {
            let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
            let opts = SolveOptions {
                rtol: 1e-7,
                s,
                ..Default::default()
            };
            let res = solve(&mut ctx, &b, None, &opts);
            assert!(res.converged(), "s={s}: {:?}", res.stop);
            assert!(res.true_relres(&a, &b) < 1e-5, "s={s}");
        }
    }

    #[test]
    fn pipe_pscg_matches_pscg_trajectory() {
        let (a, b) = problem();
        let opts = SolveOptions {
            rtol: 1e-7,
            s: 3,
            ..Default::default()
        };
        let mut c1 = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let r1 = pscg::solve(&mut c1, &b, None, &opts);
        let mut c2 = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let r2 = solve(&mut c2, &b, None, &opts);
        assert!(r1.converged() && r2.converged());
        assert_eq!(r1.iterations, r2.iterations, "same s-step Krylov process");
    }

    #[test]
    fn pipe_pscg_has_s_pcs_s_spmvs_one_iallreduce_per_iteration() {
        let (a, b) = problem();
        let s = 3u64;
        let mut ctx = jacobi_ctx(&a);
        let opts = SolveOptions {
            rtol: 1e-6,
            s: s as usize,
            ..Default::default()
        };
        let res = solve(&mut ctx, &b, None, &opts);
        assert!(res.converged());
        let outer = res.iterations as u64 / s;
        let passes = res.history.len() as u64;
        assert_eq!(res.counters.nonblocking_allreduce, passes);
        assert_eq!(res.counters.blocking_allreduce, 2);
        // Setup: 1 + 2s SPMVs and 2s + 2 PCs (incl. the reference norm);
        // per iteration: s and s.
        assert_eq!(res.counters.spmv, 1 + 2 * s + outer * s);
        assert_eq!(res.counters.pc, 2 * s + 2 + outer * s);
    }

    #[test]
    fn pipe_pscg_converges_under_all_three_norms_without_extra_kernels() {
        let (a, b) = problem();
        let s = 3u64;
        for norm in [
            NormType::Preconditioned,
            NormType::Unpreconditioned,
            NormType::Natural,
        ] {
            let mut ctx = jacobi_ctx(&a);
            let opts = SolveOptions {
                rtol: 1e-7,
                s: s as usize,
                norm,
                ..Default::default()
            };
            let res = solve(&mut ctx, &b, None, &opts);
            assert!(res.converged(), "norm {norm:?}");
            assert!(res.true_relres(&a, &b) < 1e-5, "norm {norm:?}");
            // The paper's "no extra PC or SPMV" claim: regardless of the
            // norm, kernels are exactly s per iteration beyond setup.
            let outer = res.iterations as u64 / s;
            assert_eq!(res.counters.spmv, 1 + 2 * s + outer * s, "norm {norm:?}");
            assert_eq!(res.counters.pc, 2 * s + 2 + outer * s, "norm {norm:?}");
        }
    }

    #[test]
    fn residual_replacement_curbs_recurrence_drift() {
        let (a, b) = problem();
        let opts = SolveOptions {
            rtol: 1e-12,
            s: 2,
            max_iters: 400,
            ..Default::default()
        };
        let mut c1 = jacobi_ctx(&a);
        let cfg_plain = PipeConfig {
            replace_every: None,
            ..PipeConfig::pipe_pscg(2)
        };
        let r1 = solve_with(&mut c1, &b, None, &opts, cfg_plain);
        let mut c2 = jacobi_ctx(&a);
        let cfg_rr = PipeConfig {
            replace_every: Some(8),
            ..PipeConfig::pipe_pscg(2)
        };
        let r2 = solve_with(&mut c2, &b, None, &opts, cfg_rr);
        // With replacement the *true* residual at exit is at least as good.
        assert!(r2.true_relres(&a, &b) <= r1.true_relres(&a, &b) * 10.0);
    }

    #[test]
    fn stagnation_detection_fires_at_unreachable_tolerance() {
        let (a, b) = problem();
        let opts = SolveOptions {
            rtol: 1e-30,
            atol: 0.0,
            max_iters: 5000,
            s: 3,
            ..Default::default()
        };
        let cfg = PipeConfig {
            stagnation: Some(StagnationCheck {
                window: 4,
                min_ratio: 0.5,
            }),
            ..PipeConfig::pipe_pscg(3)
        };
        let mut ctx = jacobi_ctx(&a);
        let res = solve_with(&mut ctx, &b, None, &opts, cfg);
        assert_eq!(res.stop, StopReason::Stagnated);
        // It still made real progress before stagnating.
        assert!(res.final_relres < 1e-3);
    }
}

//! PIPECG3 — Eller & Gropp, SC'16 \[10\].
//!
//! A pipelined PCG built on three-term recurrence relations that launches a
//! single allreduce every *two* iterations and overlaps it with two PCs and
//! two SPMVs; the present paper notes it "has been shown to have low
//! accuracy" compared with two-term-recurrence PCG variants.
//!
//! Reproduction note (see DESIGN.md §3): realised as the depth-2 instance of
//! the pipelined s-step core on *pure recurrences* (no residual
//! replacement), which reproduces both the communication cadence this paper
//! ascribes to PIPECG3 — ⌈s/2⌉ allreduces per s steps, each overlapped with
//! 2 PCs + 2 SPMVs — and its lower attainable accuracy relative to
//! PIPECG-OATI.

use pscg_sim::Context;

use crate::methods::pipe_pscg::{self, PipeConfig};
use crate::solver::{SolveOptions, SolveResult};

/// Solves `M⁻¹A x = M⁻¹b` with PIPECG3. `x0` defaults to zero.
pub fn solve<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    // Table I: 90 FLOPs xN per two steps for PIPECG3 vs the ~80 the depth-2
    // core performs; the difference is charged explicitly.
    let cfg = PipeConfig {
        method: "PIPECG3",
        s: 2,
        replace_every: None,
        stagnation: None,
        extra_flops_per_row: 10.0,
    };
    pipe_pscg::solve_with(ctx, b, x0, opts, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::pipecg_oati;
    use pscg_precond::Jacobi;
    use pscg_sim::SimCtx;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

    fn problem() -> (pscg_sparse::CsrMatrix, Vec<f64>) {
        let g = Grid3::cube(6);
        let a = poisson3d_7pt(g, None);
        let b: Vec<f64> = (0..a.nrows()).map(|i| ((i % 5) as f64) - 2.0).collect();
        (a, b)
    }

    #[test]
    fn pipecg3_converges_at_moderate_tolerance() {
        let (a, b) = problem();
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let res = solve(&mut ctx, &b, None, &SolveOptions::with_rtol(1e-6));
        assert!(res.converged(), "{:?}", res.stop);
        assert_eq!(res.method, "PIPECG3");
        assert!(res.true_relres(&a, &b) < 1e-4);
    }

    #[test]
    fn pipecg3_true_residual_no_better_than_oati_at_tight_tolerance() {
        // The pure-recurrence variant accumulates more drift than OATI's
        // periodically replaced residual.
        let (a, b) = problem();
        let opts = SolveOptions {
            rtol: 1e-11,
            max_iters: 600,
            ..Default::default()
        };
        let mut c1 = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let r1 = solve(&mut c1, &b, None, &opts);
        let mut c2 = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let r2 = pipecg_oati::solve(&mut c2, &b, None, &opts);
        assert!(r2.true_relres(&a, &b) <= r1.true_relres(&a, &b) * 10.0);
    }
}

//! Preconditioned s-step conjugate gradients — the paper's Algorithm 3
//! (Chronopoulos & Gear \[7\]).
//!
//! One blocking allreduce per s-step iteration, **s+1** preconditioner
//! applications and **s+1** SPMVs per iteration: the residual and the
//! preconditioned monomial basis `{u, (M⁻¹A)u, …, (M⁻¹A)ˢu}` are rebuilt
//! from explicit products every time. This is the method whose "extra PC and
//! SPMV" the paper's Figure 4 shows dragging it below even PCG once the
//! preconditioner is expensive.

use pscg_sim::Context;

use crate::methods::{global_ref_norm, init_residual};
use crate::solver::{SolveOptions, SolveResult, StopReason};
use crate::sstep::{conjugate_window, estimate_sigma, GramPacket, ScalarWork};

/// Solves `M⁻¹A x = M⁻¹b` with PsCG. `x0` defaults to zero.
pub fn solve<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    let s = opts.s.min(ctx.nrows().max(1));
    assert!(s >= 1, "PsCG requires s >= 1");
    let bnorm = global_ref_norm(ctx, b, opts);
    let threshold = opts.threshold(bnorm);
    let mut resil = crate::resilience::ResilienceState::new(opts, bnorm);
    let (mut x, r) = init_residual(ctx, b, x0);

    // rpow[j] = (σAM⁻¹)^j r, upow[j] = M⁻¹ rpow[j], j = 0..=s; σ-scaled
    // basis (see sstep docs), estimated from the first chain link.
    let mut rpow = ctx.alloc_multi(s + 1);
    let mut upow = ctx.alloc_multi(s + 1);
    rpow.col_mut(0).copy_from_slice(&r);
    ctx.pc_apply(rpow.col(0), upow.col_mut(0));
    ctx.spmv(upow.col(0), rpow.col_mut(1));
    let sigma = estimate_sigma(ctx, rpow.col(0), rpow.col(1));
    ctx.scale_v(sigma, rpow.col_mut(1));
    ctx.pc_apply(rpow.col(1), upow.col_mut(1));
    build_basis(ctx, 1, s, &mut rpow, &mut upow, sigma);

    let mut udirs = ctx.alloc_multi(s);
    let mut udirs_next = ctx.alloc_multi(s);
    let mut ax = ctx.alloc_vec();
    let mut scalar = ScalarWork::new(s);
    let mut history: Vec<f64> = Vec::new();
    let mut iters = 0usize;
    let stop;

    loop {
        // Line 15 / 22: the 2s dot products in one blocking allreduce.
        let pkt = GramPacket::assemble(ctx, s, &upow, &rpow, &udirs);
        let red = ctx.allreduce(&pkt.pack());
        let pkt = GramPacket::unpack(s, &red);
        // A dead peer poisons the reduction: the check must precede the
        // relres computation, whose `.max(0.0)` would clamp a NaN norm
        // into a fake zero-residual convergence. The supervisor owns the
        // buddy rebuild.
        if ctx.rank_failure().is_some() {
            resil.rollback(ctx, &mut x);
            stop = StopReason::RankFailed;
            break;
        }

        let relres = crate::methods::relres_from_sq(
            opts.norm.pick_sq(pkt.norms[0], pkt.norms[1], pkt.norms[2]),
            bnorm,
        );
        history.push(relres);
        ctx.note_residual(relres);
        crate::telemetry::note_iter(
            ctx,
            iters,
            relres,
            pkt.norms,
            &scalar.alpha,
            scalar.b.data(),
            f64::NAN,
        );
        if relres * bnorm < threshold {
            stop = StopReason::Converged;
            break;
        }
        if iters >= opts.max_iters {
            stop = StopReason::MaxIterations;
            break;
        }
        if !relres.is_finite() || relres > 1e8 || pkt.norms[2] < 0.0 {
            // The recurrences have left the basin of useful arithmetic
            // (non-finite/diverged residual, or a negative (r, u) scalar on
            // an SPD system); report breakdown instead of iterating on.
            resil.rollback(ctx, &mut x);
            stop = StopReason::Breakdown;
            break;
        }
        match resil.on_check(ctx, b, &x, relres) {
            crate::resilience::CheckVerdict::Continue => {}
            verdict => {
                resil.rollback(ctx, &mut x);
                stop = verdict.stop();
                break;
            }
        }
        // Line 8: Scalar Work.
        if scalar.step(ctx, &pkt).is_err() {
            resil.rollback(ctx, &mut x);
            stop = StopReason::Breakdown;
            break;
        }

        // Lines 10–11 / 17–18: conjugate directions, advance the solution.
        conjugate_window(ctx, &mut udirs_next, &upow, 0, &udirs, &scalar.b);
        std::mem::swap(&mut udirs, &mut udirs_next);
        // σ-scaled basis: x advances by σ·α.
        let alpha_x: Vec<f64> = scalar.alpha.iter().map(|a| a * sigma).collect();
        ctx.block_gemv_acc(&udirs, &alpha_x, &mut x);

        // Lines 12–14 / 19–21: fresh residual and preconditioned basis —
        // the s+1 PCs and s+1 SPMVs.
        ctx.spmv(&x, &mut ax);
        ctx.waxpy(rpow.col_mut(0), -1.0, &ax, b);
        build_basis(ctx, 0, s, &mut rpow, &mut upow, sigma);
        iters += s;
    }

    SolveResult {
        x,
        iterations: iters,
        stop,
        final_relres: history.last().copied().unwrap_or(f64::NAN),
        history,
        counters: *ctx.counters(),
        method: "PsCG",
    }
}

/// Extends the dual chains: `rpow[j+1] = σ·A·upow[j]`,
/// `upow[j+1] = M⁻¹ rpow[j+1]` for `j = from..to` (plus the boundary PC
/// when starting from a fresh residual).
fn build_basis<C: Context>(
    ctx: &mut C,
    from: usize,
    to: usize,
    rpow: &mut pscg_sparse::MultiVector,
    upow: &mut pscg_sparse::MultiVector,
    sigma: f64,
) {
    if from == 0 {
        ctx.pc_apply(rpow.col(0), upow.col_mut(0));
    }
    for j in from..to {
        ctx.spmv(upow.col(j), rpow.col_mut(j + 1));
        // pscg-lint: allow(float-eq, exact identity-scaling skip; sigma is a set parameter, not computed)
        if sigma != 1.0 {
            ctx.scale_v(sigma, rpow.col_mut(j + 1));
        }
        ctx.pc_apply(rpow.col(j + 1), upow.col_mut(j + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::pcg;
    use pscg_precond::Jacobi;
    use pscg_sim::SimCtx;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

    fn problem() -> (pscg_sparse::CsrMatrix, Vec<f64>) {
        let g = Grid3::cube(6);
        let a = poisson3d_7pt(g, None);
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) / 6.0).collect();
        let b = a.mul_vec(&xstar);
        (a, b)
    }

    #[test]
    fn pscg_converges_with_jacobi_for_various_s() {
        let (a, b) = problem();
        for s in [1usize, 2, 3, 5] {
            let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
            let opts = SolveOptions {
                rtol: 1e-8,
                s,
                ..Default::default()
            };
            let res = solve(&mut ctx, &b, None, &opts);
            assert!(res.converged(), "s={s}: {:?}", res.stop);
            assert!(res.true_relres(&a, &b) < 1e-6, "s={s}");
        }
    }

    #[test]
    fn pscg_matches_pcg_step_count_approximately() {
        let (a, b) = problem();
        let opts = SolveOptions {
            rtol: 1e-8,
            s: 3,
            ..Default::default()
        };
        let mut c1 = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let r1 = pcg::solve(&mut c1, &b, None, &opts);
        let mut c2 = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let r2 = solve(&mut c2, &b, None, &opts);
        assert!(r2.converged());
        assert!(
            r2.iterations <= r1.iterations + 2 * opts.s + 2,
            "PsCG {} vs PCG {}",
            r2.iterations,
            r1.iterations
        );
    }

    #[test]
    fn pscg_counts_s_plus_1_pcs_and_spmvs_per_iteration() {
        let (a, b) = problem();
        let s = 3;
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let opts = SolveOptions {
            rtol: 1e-6,
            s,
            ..Default::default()
        };
        let res = solve(&mut ctx, &b, None, &opts);
        assert!(res.converged());
        let outer = (res.iterations / s) as u64;
        let su = s as u64;
        assert_eq!(res.counters.blocking_allreduce, outer + 3);
        // Setup: 1 + s SPMVs, s+2 PCs (incl. the reference norm); per
        // iteration: s+1 of each.
        assert_eq!(res.counters.spmv, 1 + su + outer * (su + 1));
        assert_eq!(res.counters.pc, su + 2 + outer * (su + 1));
        assert_eq!(res.counters.nonblocking_allreduce, 0);
    }

    #[test]
    fn pscg_converges_under_all_three_norms() {
        let (a, b) = problem();
        use crate::solver::NormType;
        for norm in [
            NormType::Preconditioned,
            NormType::Unpreconditioned,
            NormType::Natural,
        ] {
            let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
            let opts = SolveOptions {
                rtol: 1e-7,
                s: 3,
                norm,
                ..Default::default()
            };
            let res = solve(&mut ctx, &b, None, &opts);
            assert!(res.converged(), "norm {norm:?}");
            assert!(res.true_relres(&a, &b) < 1e-5, "norm {norm:?}");
        }
    }
}

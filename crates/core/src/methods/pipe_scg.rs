//! PIPE-sCG — the paper's Algorithm 5 (§IV-B, main contribution,
//! unpreconditioned form).
//!
//! Starting from Algorithm 4, the dependency between the 2s dot products and
//! the s SPMVs is eliminated by carrying the *matrix of matrices*
//! `AQm[j] = A^{j+1}·P` (here `apow`, j = 0..s) with recurrence linear
//! combinations. The fresh monomial basis `{r, Ar, …, Aˢr}` then comes from
//! recurrences too, so the only SPMVs left in an iteration are the s *deep
//! power* products `A^{s+1}r … A^{2s}r` — whose results the dot products do
//! **not** need. The allreduce is posted non-blocking before them and waited
//! after them: one allreduce per s steps, fully overlapped with s SPMVs.

use pscg_sim::Context;
use pscg_sparse::MultiVector;

use crate::methods::{global_ref_norm, init_residual};
use crate::solver::{SolveOptions, SolveResult, StopReason};
use crate::sstep::{
    conjugate_window, estimate_sigma, extend_scaled_powers, GramPacket, ScalarWork,
};

/// Solves `A x = b` with PIPE-sCG. `x0` defaults to zero.
pub fn solve<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    solve_inner(ctx, b, x0, opts, false)
}

/// PIPE-sCG with the matrix-powers kernel: the basis and deep powers are
/// produced by CA-SpMV sweeps (one widened halo exchange for s products)
/// instead of s individual SpMVs. The paper's §II explains why the authors
/// avoid MPK — it constrains preconditioning — but for the unpreconditioned
/// method it composes cleanly; the `mpk` experiment in the benchmark
/// harness quantifies the halo-latency trade-off.
pub fn solve_mpk<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    solve_inner(ctx, b, x0, opts, true)
}

fn solve_inner<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
    use_mpk: bool,
) -> SolveResult {
    let s = opts.s.min(ctx.nrows().max(1));
    assert!(s >= 1, "PIPE-sCG requires s >= 1");
    let bnorm = global_ref_norm(ctx, b, opts);
    let threshold = opts.threshold(bnorm);
    let mut resil = crate::resilience::ResilienceState::new(opts, bnorm);
    let (mut x, r) = init_residual(ctx, b, x0);

    // pow[j] = A^j r, j = 0..=2s (double-buffered: recurrences read the old
    // basis while writing the new one).
    let mut pow = ctx.alloc_multi(2 * s + 1);
    let mut pow_next = ctx.alloc_multi(2 * s + 1);
    pow.col_mut(0).copy_from_slice(&r);
    // Lines 6–7: the first s powers, built with the σ-scaled operator
    // (σ from the first link; see sstep docs)...
    {
        let (src, dst) = pow.col_pair_mut(0, 1);
        ctx.spmv(src, dst);
    }
    let sigma = estimate_sigma(ctx, pow.col(0), pow.col(1));
    ctx.scale_v(sigma, pow.col_mut(1));
    if use_mpk {
        ctx.mpk(&mut pow, 1, s, sigma);
    } else {
        extend_scaled_powers(ctx, &mut pow, 1, s, sigma);
    }
    // Lines 8–9: ...the dot products and their non-blocking allreduce...
    let dirs0 = ctx.alloc_multi(s);
    let pkt = GramPacket::assemble(ctx, s, &pow, &pow, &dirs0);
    let mut posted = pkt.pack();
    let mut handle = ctx.iallreduce(&posted);
    // Line 10: ...overlapped with the deep powers A^{s+1}r … A^{2s}r.
    if use_mpk {
        ctx.mpk(&mut pow, s, 2 * s, sigma);
    } else {
        extend_scaled_powers(ctx, &mut pow, s, 2 * s, sigma);
    }

    // Direction block and its A-power family AQm[j] = A^{j+1}·dirs.
    let mut dirs = dirs0;
    let mut dirs_next = ctx.alloc_multi(s);
    let mut apow: Vec<MultiVector> = (0..=s).map(|_| ctx.alloc_multi(s)).collect();
    let mut apow_next: Vec<MultiVector> = (0..=s).map(|_| ctx.alloc_multi(s)).collect();

    let mut scalar = ScalarWork::new(s);
    let mut history: Vec<f64> = Vec::new();
    let mut iters = 0usize;
    let stop;

    loop {
        // Wait on the allreduce posted one overlap window ago.
        let red = match crate::resilience::wait_reduction(
            ctx,
            handle,
            &posted,
            opts.resilience.reduce_retries,
        ) {
            Ok(v) => v,
            Err(e) => {
                // Timeout -> CommFault; rank death -> RankFailed (the
                // handle is already retired; the supervisor owns the
                // buddy rebuild).
                resil.rollback(ctx, &mut x);
                stop = crate::resilience::comm_stop(&e);
                break;
            }
        };
        let pkt = GramPacket::unpack(s, &red);

        let relres = crate::methods::relres_from_sq(
            opts.norm.pick_sq(pkt.norms[0], pkt.norms[1], pkt.norms[2]),
            bnorm,
        );
        history.push(relres);
        ctx.note_residual(relres);
        crate::telemetry::note_iter(
            ctx,
            iters,
            relres,
            pkt.norms,
            &scalar.alpha,
            scalar.b.data(),
            f64::NAN,
        );
        if relres * bnorm < threshold {
            stop = StopReason::Converged;
            break;
        }
        if iters >= opts.max_iters {
            stop = StopReason::MaxIterations;
            break;
        }
        if !relres.is_finite() || relres > 1e8 || pkt.norms[2] < 0.0 {
            // The recurrences have left the basin of useful arithmetic
            // (non-finite/diverged residual, or a negative (r, u) scalar on
            // an SPD system); report breakdown instead of iterating on.
            resil.rollback(ctx, &mut x);
            stop = StopReason::Breakdown;
            break;
        }
        match resil.on_check(ctx, b, &x, relres) {
            crate::resilience::CheckVerdict::Continue => {}
            verdict => {
                resil.rollback(ctx, &mut x);
                stop = verdict.stop();
                break;
            }
        }
        // Line 12: Scalar Work.
        if scalar.step(ctx, &pkt).is_err() {
            resil.rollback(ctx, &mut x);
            stop = StopReason::Breakdown;
            break;
        }

        // Lines 14–20: conjugate the direction block and every AQm[j]
        // against the previous family with the same β-matrix. AQm[j]'s
        // fresh window is {A^{j+1}r, …, A^{j+s}r} = pow[j+1 .. j+s].
        conjugate_window(ctx, &mut dirs_next, &pow, 0, &dirs, &scalar.b);
        for j in 0..=s {
            conjugate_window(ctx, &mut apow_next[j], &pow, j + 1, &apow[j], &scalar.b);
        }
        std::mem::swap(&mut dirs, &mut dirs_next);
        std::mem::swap(&mut apow, &mut apow_next);

        // Line 21: x += Q (σα) — the directions live in the σ-scaled
        // basis; the AQm blocks carry the σ factor, so the basis
        // recurrences below consume the raw α.
        let alpha_x: Vec<f64> = scalar.alpha.iter().map(|a| a * sigma).collect();
        ctx.block_gemv_acc(&dirs, &alpha_x, &mut x);

        // Lines 22–25: the new basis by recurrence only —
        // A^j r_{i+1} = A^j r_i − AQm[j]·α for j = 0..=s, each column as
        // one fused copy-and-subtract sweep. No SPMV.
        for j in 0..=s {
            ctx.block_gemv_sub_into(&apow[j], &scalar.alpha, pow.col(j), pow_next.col_mut(j));
        }

        // Line 26–27: dot products of the new basis, posted non-blocking.
        let pkt = GramPacket::assemble(ctx, s, &pow_next, &pow_next, &dirs);
        posted = pkt.pack();
        handle = ctx.iallreduce(&posted);

        // Line 28: the s deep powers, overlapped with the allreduce.
        if use_mpk {
            ctx.mpk(&mut pow_next, s, 2 * s, sigma);
        } else {
            extend_scaled_powers(ctx, &mut pow_next, s, 2 * s, sigma);
        }

        std::mem::swap(&mut pow, &mut pow_next);
        iters += s;
    }

    SolveResult {
        x,
        iterations: iters,
        stop,
        final_relres: history.last().copied().unwrap_or(f64::NAN),
        history,
        counters: *ctx.counters(),
        method: if use_mpk { "PIPE-sCG+MPK" } else { "PIPE-sCG" },
    }
}

/// Deliberately mis-scheduled PIPE-sCG variants.
///
/// Each reproduces a real bug class of pipelined-CG implementations while
/// keeping the *serial* numerics bit-identical to the correct method — which
/// is exactly why such bugs ship: every single-rank test passes. They exist
/// so the `pscg-analysis` schedule analyzer can prove it detects them from
/// the trace alone. Gated out of production builds; the `broken-variants`
/// feature exists so other crates' test suites can reach them.
#[cfg(any(test, feature = "broken-variants"))]
pub mod broken {
    use super::*;
    use pscg_sim::ReduceHandle;

    /// Which scheduling mistake to inject.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum BrokenMode {
        /// The wait is hoisted directly after the post: the deep powers no
        /// longer overlap the allreduce, so the pipeline silently serializes
        /// (the Table I overlap window is empty).
        WaitHoisted,
        /// The reduction result is consumed via `peek_pending` before the
        /// wait: on one rank the values coincide with the reduced ones, on
        /// `P > 1` every rank computes with different partial sums.
        ReadBeforeWait,
        /// A buffer that fed the pending reduction's dot products is
        /// written inside the overlap window (a "redundant" normalization
        /// of the basis head — numerically a no-op at factor 1.0).
        WritesDotInput,
    }

    enum PendingRed {
        InFlight(ReduceHandle),
        Done(Vec<f64>),
    }

    /// PIPE-sCG with the scheduling bug selected by `mode`. Converges to the
    /// same solution as [`super::solve`] on one rank.
    pub fn solve<C: Context>(
        ctx: &mut C,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
        mode: BrokenMode,
    ) -> SolveResult {
        let s = opts.s.min(ctx.nrows().max(1));
        assert!(s >= 1, "PIPE-sCG requires s >= 1");
        let bnorm = global_ref_norm(ctx, b, opts);
        let threshold = opts.threshold(bnorm);
        let (mut x, r) = init_residual(ctx, b, x0);

        let mut pow = ctx.alloc_multi(2 * s + 1);
        let mut pow_next = ctx.alloc_multi(2 * s + 1);
        pow.col_mut(0).copy_from_slice(&r);
        {
            let (src, dst) = pow.col_pair_mut(0, 1);
            ctx.spmv(src, dst);
        }
        let sigma = estimate_sigma(ctx, pow.col(0), pow.col(1));
        ctx.scale_v(sigma, pow.col_mut(1));
        extend_scaled_powers(ctx, &mut pow, 1, s, sigma);

        let dirs0 = ctx.alloc_multi(s);
        let pkt = GramPacket::assemble(ctx, s, &pow, &pow, &dirs0);
        let mut pending = post(ctx, &pkt.pack(), mode);
        if mode == BrokenMode::WritesDotInput {
            ctx.scale_v(1.0, pow.col_mut(0));
        }
        extend_scaled_powers(ctx, &mut pow, s, 2 * s, sigma);

        let mut dirs = dirs0;
        let mut dirs_next = ctx.alloc_multi(s);
        let mut apow: Vec<MultiVector> = (0..=s).map(|_| ctx.alloc_multi(s)).collect();
        let mut apow_next: Vec<MultiVector> = (0..=s).map(|_| ctx.alloc_multi(s)).collect();

        let mut scalar = ScalarWork::new(s);
        let mut history: Vec<f64> = Vec::new();
        let mut iters = 0usize;
        let stop;

        loop {
            let red = match pending {
                PendingRed::Done(v) => v,
                PendingRed::InFlight(h) => {
                    if mode == BrokenMode::ReadBeforeWait {
                        let v = ctx.peek_pending(&h);
                        ctx.wait(h);
                        v
                    } else {
                        ctx.wait(h)
                    }
                }
            };
            let pkt = GramPacket::unpack(s, &red);

            let relres = crate::methods::relres_from_sq(
                opts.norm.pick_sq(pkt.norms[0], pkt.norms[1], pkt.norms[2]),
                bnorm,
            );
            history.push(relres);
            ctx.note_residual(relres);
            if relres * bnorm < threshold {
                stop = StopReason::Converged;
                break;
            }
            if iters >= opts.max_iters {
                stop = StopReason::MaxIterations;
                break;
            }
            if !relres.is_finite() || relres > 1e8 {
                stop = StopReason::Breakdown;
                break;
            }
            if scalar.step(ctx, &pkt).is_err() {
                stop = StopReason::Breakdown;
                break;
            }

            conjugate_window(ctx, &mut dirs_next, &pow, 0, &dirs, &scalar.b);
            for j in 0..=s {
                conjugate_window(ctx, &mut apow_next[j], &pow, j + 1, &apow[j], &scalar.b);
            }
            std::mem::swap(&mut dirs, &mut dirs_next);
            std::mem::swap(&mut apow, &mut apow_next);

            let alpha_x: Vec<f64> = scalar.alpha.iter().map(|a| a * sigma).collect();
            ctx.block_gemv_acc(&dirs, &alpha_x, &mut x);

            for j in 0..=s {
                ctx.block_gemv_sub_into(&apow[j], &scalar.alpha, pow.col(j), pow_next.col_mut(j));
            }

            let pkt = GramPacket::assemble(ctx, s, &pow_next, &pow_next, &dirs);
            pending = post(ctx, &pkt.pack(), mode);
            if mode == BrokenMode::WritesDotInput {
                ctx.scale_v(1.0, pow_next.col_mut(0));
            }
            extend_scaled_powers(ctx, &mut pow_next, s, 2 * s, sigma);

            std::mem::swap(&mut pow, &mut pow_next);
            iters += s;
        }

        SolveResult {
            x,
            iterations: iters,
            stop,
            final_relres: history.last().copied().unwrap_or(f64::NAN),
            history,
            counters: *ctx.counters(),
            method: "PIPE-sCG(broken)",
        }
    }

    fn post<C: Context>(ctx: &mut C, vals: &[f64], mode: BrokenMode) -> PendingRed {
        let h = ctx.iallreduce(vals);
        if mode == BrokenMode::WaitHoisted {
            // The bug: completing the reduction before doing the overlap
            // work it was supposed to hide behind.
            PendingRed::Done(ctx.wait(h))
        } else {
            PendingRed::InFlight(h)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use pscg_sim::SimCtx;
        use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
        use pscg_sparse::IdentityOp;

        #[test]
        fn broken_variants_still_converge_on_one_rank() {
            // The whole point: serial numerics cannot tell the bugs apart.
            let g = Grid3::cube(6);
            let a = poisson3d_7pt(g, None);
            let b = a.mul_vec(&vec![1.0; a.nrows()]);
            let opts = SolveOptions {
                rtol: 1e-7,
                s: 3,
                ..Default::default()
            };
            let mut c0 = SimCtx::serial(&a, Box::new(IdentityOp::new(a.nrows())));
            let good = super::super::solve(&mut c0, &b, None, &opts);
            for mode in [
                BrokenMode::WaitHoisted,
                BrokenMode::ReadBeforeWait,
                BrokenMode::WritesDotInput,
            ] {
                let mut ctx = SimCtx::serial(&a, Box::new(IdentityOp::new(a.nrows())));
                let res = solve(&mut ctx, &b, None, &opts, mode);
                assert!(res.converged(), "{mode:?}");
                assert_eq!(res.iterations, good.iterations, "{mode:?}");
                assert_eq!(res.x, good.x, "{mode:?}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{scg, scg_sspmv};
    use pscg_sim::SimCtx;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
    use pscg_sparse::IdentityOp;

    fn problem() -> (pscg_sparse::CsrMatrix, Vec<f64>) {
        let g = Grid3::cube(6);
        let a = poisson3d_7pt(g, None);
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n).map(|i| (0.11 * i as f64).cos()).collect();
        let b = a.mul_vec(&xstar);
        (a, b)
    }

    fn serial_ctx(a: &pscg_sparse::CsrMatrix) -> SimCtx<'_> {
        SimCtx::serial(a, Box::new(IdentityOp::new(a.nrows())))
    }

    #[test]
    fn pipe_scg_converges_for_various_s() {
        let (a, b) = problem();
        for s in [1usize, 2, 3, 4] {
            let mut ctx = serial_ctx(&a);
            let opts = SolveOptions {
                rtol: 1e-7,
                s,
                ..Default::default()
            };
            let res = solve(&mut ctx, &b, None, &opts);
            assert!(res.converged(), "s={s}: {:?}", res.stop);
            assert!(res.true_relres(&a, &b) < 1e-5, "s={s}");
        }
    }

    #[test]
    fn pipe_scg_tracks_the_blocking_variants() {
        let (a, b) = problem();
        let opts = SolveOptions {
            rtol: 1e-7,
            s: 3,
            ..Default::default()
        };
        let mut c1 = serial_ctx(&a);
        let r1 = scg::solve(&mut c1, &b, None, &opts);
        let mut c2 = serial_ctx(&a);
        let r2 = scg_sspmv::solve(&mut c2, &b, None, &opts);
        let mut c3 = serial_ctx(&a);
        let r3 = solve(&mut c3, &b, None, &opts);
        assert!(r3.converged());
        // All three realise the same s-step Krylov process.
        assert_eq!(r1.iterations, r3.iterations);
        assert_eq!(r2.iterations, r3.iterations);
    }

    #[test]
    fn pipe_scg_has_s_spmvs_and_one_nonblocking_allreduce_per_iteration() {
        let (a, b) = problem();
        let s = 3;
        let mut ctx = serial_ctx(&a);
        let opts = SolveOptions {
            rtol: 1e-6,
            s,
            ..Default::default()
        };
        let res = solve(&mut ctx, &b, None, &opts);
        assert!(res.converged());
        let su = s as u64;
        // Loop passes = history length; each pass waits one allreduce that
        // was posted the pass before (or at setup).
        let passes = res.history.len() as u64;
        assert_eq!(res.counters.nonblocking_allreduce, passes);
        assert_eq!(
            res.counters.blocking_allreduce, 2,
            "only the bnorm and the basis-scale estimate are blocking"
        );
        // Setup: 1 + 2s SPMVs; each *completed* iteration: exactly s.
        let outer = (res.iterations / s) as u64;
        assert_eq!(res.counters.spmv, 1 + 2 * su + outer * su);
        // The reference-norm computation applies M^-1 once (identity here).
        assert_eq!(res.counters.pc, 1);
    }

    #[test]
    fn pipe_scg_posts_allreduce_before_deep_spmvs() {
        // Structural check on the recorded trace: between an ArPost and its
        // ArWait there must be exactly s SPMVs (the overlap window).
        use pscg_sim::{Layout, MatrixProfile, Op};
        let (a, b) = problem();
        let s = 3;
        let prof = MatrixProfile::stencil3d(6, 6, 6, 1, a.nnz(), Layout::Box);
        let mut ctx = SimCtx::traced(&a, Box::new(IdentityOp::new(a.nrows())), prof);
        let opts = SolveOptions {
            rtol: 1e-6,
            s,
            ..Default::default()
        };
        let res = solve(&mut ctx, &b, None, &opts);
        assert!(res.converged());
        let trace = ctx.take_trace().expect("SimCtx::traced records a trace");
        let mut in_window = false;
        let mut spmvs_in_window = 0;
        let mut windows = 0;
        for op in &trace.ops {
            match op {
                Op::ArPost { .. } => {
                    in_window = true;
                    spmvs_in_window = 0;
                }
                Op::ArWait { .. } => {
                    assert_eq!(spmvs_in_window, s, "overlap window must hold s SPMVs");
                    in_window = false;
                    windows += 1;
                }
                Op::Spmv { .. } if in_window => spmvs_in_window += 1,
                _ => {}
            }
        }
        assert!(windows > 1);
    }
}

#[cfg(test)]
mod mpk_tests {
    use super::*;
    use pscg_sim::SimCtx;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
    use pscg_sparse::IdentityOp;

    #[test]
    fn mpk_variant_matches_plain_pipe_scg_numerically() {
        let g = Grid3::cube(6);
        let a = poisson3d_7pt(g, None);
        let b = a.mul_vec(&vec![1.0; a.nrows()]);
        let opts = SolveOptions {
            rtol: 1e-7,
            s: 3,
            ..Default::default()
        };
        let mut c1 = SimCtx::serial(&a, Box::new(IdentityOp::new(a.nrows())));
        let r1 = solve(&mut c1, &b, None, &opts);
        let mut c2 = SimCtx::serial(&a, Box::new(IdentityOp::new(a.nrows())));
        let r2 = solve_mpk(&mut c2, &b, None, &opts);
        assert!(r1.converged() && r2.converged());
        // Identical arithmetic, different communication schedule.
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.x, r2.x);
        assert_eq!(r2.method, "PIPE-sCG+MPK");
        // The MPK variant batches its SPMVs into powers-kernel calls while
        // still accounting the constituent products.
        assert!(r2.counters.mpk > 0);
        assert_eq!(r2.counters.spmv, r1.counters.spmv);
    }

    #[test]
    fn mpk_trace_replays_with_fewer_exposed_halo_messages() {
        use pscg_sim::{replay, Layout, Machine, MatrixProfile};
        let g = Grid3::cube(8);
        let a = poisson3d_7pt(g, None);
        let b = a.mul_vec(&vec![1.0; a.nrows()]);
        let prof = MatrixProfile::stencil3d(8, 8, 8, 1, a.nnz(), Layout::Box);
        let opts = SolveOptions {
            rtol: 1e-6,
            s: 3,
            ..Default::default()
        };
        let mut c1 = SimCtx::traced(&a, Box::new(IdentityOp::new(a.nrows())), prof.clone());
        let r1 = solve(&mut c1, &b, None, &opts);
        let mut c2 = SimCtx::traced(&a, Box::new(IdentityOp::new(a.nrows())), prof);
        let r2 = solve_mpk(&mut c2, &b, None, &opts);
        assert!(r1.converged() && r2.converged());
        let t1 = c1.take_trace().expect("SimCtx::traced records a trace");
        let t2 = c2.take_trace().expect("SimCtx::traced records a trace");
        // Same logical SPMV count either way.
        assert_eq!(t1.comm_counts().0, t2.comm_counts().0);
        // At high rank counts the batched halo (fewer message latencies)
        // reduces the halo share of the replayed time.
        let m = Machine::sahasrat();
        let h1 = replay(&t1, &m, 64).halo_time;
        let h2 = replay(&t2, &m, 64).halo_time;
        assert!(h2 < h1, "MPK halo {h2} should undercut per-SpMV halo {h1}");
    }
}

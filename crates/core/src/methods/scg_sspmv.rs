//! sCG with s SPMVs — the paper's Algorithm 4 (§IV-A, first contribution).
//!
//! Removes the extra (s+1)-th SPMV of Algorithm 2 by carrying the block
//! `AQ = A·P` with a recurrence linear combination and updating the residual
//! as `r ← r − AQ·α` instead of recomputing `b − A x`. Still one *blocking*
//! allreduce per iteration — this is the stepping stone to PIPE-sCG, and the
//! ablation point that isolates "fewer SPMVs" from "overlap".

use pscg_sim::Context;

use crate::methods::{global_ref_norm, init_residual};
use crate::solver::{SolveOptions, SolveResult, StopReason};
use crate::sstep::{
    conjugate_window, estimate_sigma, extend_scaled_powers, GramPacket, ScalarWork,
};

/// Solves `A x = b` with sCG-sSPMV. `x0` defaults to zero.
pub fn solve<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    let s = opts.s.min(ctx.nrows().max(1));
    assert!(s >= 1, "sCG-sSPMV requires s >= 1");
    let bnorm = global_ref_norm(ctx, b, opts);
    let threshold = opts.threshold(bnorm);
    let mut resil = crate::resilience::ResilienceState::new(opts, bnorm);
    let (mut x, r) = init_residual(ctx, b, x0);

    // pow[j] = (σA)^j r, j = 0..=s (line 3–4); σ-scaled basis, see sstep.
    let mut pow = ctx.alloc_multi(s + 1);
    pow.col_mut(0).copy_from_slice(&r);
    {
        let (src, dst) = pow.col_pair_mut(0, 1);
        ctx.spmv(src, dst);
    }
    let sigma = estimate_sigma(ctx, pow.col(0), pow.col(1));
    ctx.scale_v(sigma, pow.col_mut(1));
    extend_scaled_powers(ctx, &mut pow, 1, s, sigma);

    // Direction block P and its image AP (line 2: P = 0, AP = 0).
    let mut dirs = ctx.alloc_multi(s);
    let mut dirs_next = ctx.alloc_multi(s);
    let mut adirs = ctx.alloc_multi(s);
    let mut adirs_next = ctx.alloc_multi(s);
    let mut scalar = ScalarWork::new(s);
    let mut history: Vec<f64> = Vec::new();
    let mut iters = 0usize;
    let stop;

    loop {
        let pkt = GramPacket::assemble(ctx, s, &pow, &pow, &dirs);
        let red = ctx.allreduce(&pkt.pack());
        let pkt = GramPacket::unpack(s, &red);
        // A dead peer poisons the reduction: the check must precede the
        // relres computation, whose `.max(0.0)` would clamp a NaN norm
        // into a fake zero-residual convergence. The supervisor owns the
        // buddy rebuild.
        if ctx.rank_failure().is_some() {
            resil.rollback(ctx, &mut x);
            stop = StopReason::RankFailed;
            break;
        }

        let relres = crate::methods::relres_from_sq(
            opts.norm.pick_sq(pkt.norms[0], pkt.norms[1], pkt.norms[2]),
            bnorm,
        );
        history.push(relres);
        ctx.note_residual(relres);
        crate::telemetry::note_iter(
            ctx,
            iters,
            relres,
            pkt.norms,
            &scalar.alpha,
            scalar.b.data(),
            f64::NAN,
        );
        if relres * bnorm < threshold {
            stop = StopReason::Converged;
            break;
        }
        if iters >= opts.max_iters {
            stop = StopReason::MaxIterations;
            break;
        }
        if !relres.is_finite() || relres > 1e8 || pkt.norms[2] < 0.0 {
            // The recurrences have left the basin of useful arithmetic
            // (non-finite/diverged residual, or a negative (r, u) scalar on
            // an SPD system); report breakdown instead of iterating on.
            resil.rollback(ctx, &mut x);
            stop = StopReason::Breakdown;
            break;
        }
        match resil.on_check(ctx, b, &x, relres) {
            crate::resilience::CheckVerdict::Continue => {}
            verdict => {
                resil.rollback(ctx, &mut x);
                stop = verdict.stop();
                break;
            }
        }
        if scalar.step(ctx, &pkt).is_err() {
            resil.rollback(ctx, &mut x);
            stop = StopReason::Breakdown;
            break;
        }

        // Lines 9–11 / 18–20: conjugate P and AP with the same β-matrix.
        // AP's fresh window is {Ar, …, Aˢr} = pow[1..=s].
        conjugate_window(ctx, &mut dirs_next, &pow, 0, &dirs, &scalar.b);
        conjugate_window(ctx, &mut adirs_next, &pow, 1, &adirs, &scalar.b);
        std::mem::swap(&mut dirs, &mut dirs_next);
        std::mem::swap(&mut adirs, &mut adirs_next);

        // Lines 12–13 / 21–22: x += P(σα) and the recurrence residual
        // r ← r − AP·α (this replaces the extra SPMV of Algorithm 2; the
        // AP block carries the σ factor, so it consumes the raw α).
        let alpha_x: Vec<f64> = scalar.alpha.iter().map(|a| a * sigma).collect();
        ctx.block_gemv_acc(&dirs, &alpha_x, &mut x);
        ctx.block_gemv_sub(&adirs, &scalar.alpha, pow.col_mut(0));

        // Lines 14–15 / 23–24: rebuild the powers with exactly s SPMVs.
        extend_scaled_powers(ctx, &mut pow, 0, s, sigma);
        iters += s;
    }

    SolveResult {
        x,
        iterations: iters,
        stop,
        final_relres: history.last().copied().unwrap_or(f64::NAN),
        history,
        counters: *ctx.counters(),
        method: "sCG-sSPMV",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::scg;
    use pscg_sim::SimCtx;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
    use pscg_sparse::IdentityOp;

    fn problem() -> (pscg_sparse::CsrMatrix, Vec<f64>) {
        let g = Grid3::cube(6);
        let a = poisson3d_7pt(g, None);
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n).map(|i| (0.37 * i as f64).sin()).collect();
        let b = a.mul_vec(&xstar);
        (a, b)
    }

    fn serial_ctx(a: &pscg_sparse::CsrMatrix) -> SimCtx<'_> {
        SimCtx::serial(a, Box::new(IdentityOp::new(a.nrows())))
    }

    #[test]
    fn sspmv_converges_for_various_s() {
        let (a, b) = problem();
        for s in [1usize, 2, 3, 4] {
            let mut ctx = serial_ctx(&a);
            let opts = SolveOptions {
                rtol: 1e-7,
                s,
                ..Default::default()
            };
            let res = solve(&mut ctx, &b, None, &opts);
            assert!(res.converged(), "s={s}: {:?}", res.stop);
            assert!(res.true_relres(&a, &b) < 1e-5, "s={s}");
        }
    }

    #[test]
    fn sspmv_has_exactly_s_spmvs_per_iteration() {
        let (a, b) = problem();
        let s = 3;
        let mut ctx = serial_ctx(&a);
        let opts = SolveOptions {
            rtol: 1e-6,
            s,
            ..Default::default()
        };
        let res = solve(&mut ctx, &b, None, &opts);
        assert!(res.converged());
        let outer = (res.iterations / s) as u64;
        // Setup: 1 + s; per iteration: exactly s (the paper's headline).
        assert_eq!(res.counters.spmv, 1 + s as u64 + outer * s as u64);
        assert_eq!(res.counters.blocking_allreduce, outer + 3);
    }

    #[test]
    fn sspmv_tracks_scg_trajectory() {
        // Algorithms 2 and 4 are algebraically identical; the recurrence
        // residual tracks the recomputed one closely at these scales.
        let (a, b) = problem();
        let opts = SolveOptions {
            rtol: 1e-7,
            s: 3,
            ..Default::default()
        };
        let mut c1 = serial_ctx(&a);
        let r1 = scg::solve(&mut c1, &b, None, &opts);
        let mut c2 = serial_ctx(&a);
        let r2 = solve(&mut c2, &b, None, &opts);
        assert!(r1.converged() && r2.converged());
        assert_eq!(r1.iterations, r2.iterations);
        for (h1, h2) in r1.history.iter().zip(&r2.history) {
            assert!((h1 - h2).abs() <= 1e-6 * h1.max(1e-30), "{h1} vs {h2}");
        }
    }

    #[test]
    fn sspmv_saves_one_spmv_per_iteration_vs_scg() {
        let (a, b) = problem();
        let opts = SolveOptions {
            rtol: 1e-7,
            s: 3,
            ..Default::default()
        };
        let mut c1 = serial_ctx(&a);
        let r1 = scg::solve(&mut c1, &b, None, &opts);
        let mut c2 = serial_ctx(&a);
        let r2 = solve(&mut c2, &b, None, &opts);
        let outer = (r2.iterations / 3) as u64;
        assert_eq!(r1.counters.spmv - r2.counters.spmv, outer);
    }
}

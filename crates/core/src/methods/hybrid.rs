//! The Hybrid-pipelined method (paper §VI-B).
//!
//! s-step recurrences stagnate at higher relative residuals than PCG (the
//! rounding-error discussion of §V); the paper's remedy is a hybrid: run
//! PIPE-PsCG until the residual stagnates, hand the iterate `x*` to
//! PIPECG-OATI as its initial guess, and let it finish to the tight
//! tolerance. Table II shows this winning on every SuiteSparse matrix.

use pscg_sim::Context;

use crate::methods::pipe_pscg::{self, PipeConfig, StagnationCheck};
use crate::methods::pipecg_oati;
use crate::solver::{SolveOptions, SolveResult, StopReason};

/// Stagnation detector used for the switch-over. The ratio is deliberately
/// close to 1: the hybrid must only abandon PIPE-PsCG when the residual has
/// genuinely flattened (slow-but-steady convergence should stay in phase 1,
/// otherwise the time spent there is wasted).
pub const STAGNATION: StagnationCheck = StagnationCheck {
    window: 6,
    min_ratio: 0.98,
};

/// Solves `M⁻¹A x = M⁻¹b` with the Hybrid-pipelined method.
pub fn solve<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    let cfg = PipeConfig {
        method: "PIPE-PsCG",
        s: opts.s,
        replace_every: None,
        stagnation: Some(STAGNATION),
        extra_flops_per_row: 0.0,
    };
    let phase1 = pipe_pscg::solve_with(ctx, b, x0, opts, cfg);

    match phase1.stop {
        // A CommFault, stall or rank death passes through: reduction
        // retries are already exhausted, and phase 2 is pipelined too —
        // recovery belongs to the resilient supervisor, not the
        // stagnation handoff.
        StopReason::Converged
        | StopReason::MaxIterations
        | StopReason::CommFault
        | StopReason::Stalled
        | StopReason::RankFailed => SolveResult {
            method: "Hybrid-pipelined",
            ..phase1
        },
        StopReason::Stagnated | StopReason::Breakdown => {
            // Switch: x* from PIPE-PsCG seeds PIPECG-OATI.
            let mut opts2 = *opts;
            opts2.max_iters = opts.max_iters.saturating_sub(phase1.iterations);
            let phase2 = pipecg_oati::solve(ctx, b, Some(&phase1.x), &opts2);
            let mut history = phase1.history;
            history.extend_from_slice(&phase2.history);
            SolveResult {
                x: phase2.x,
                iterations: phase1.iterations + phase2.iterations,
                stop: phase2.stop,
                final_relres: phase2.final_relres,
                history,
                // The context accumulated across both phases.
                counters: *ctx.counters(),
                method: "Hybrid-pipelined",
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::pipe_pscg;
    use pscg_precond::Jacobi;
    use pscg_sim::SimCtx;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
    use pscg_sparse::suitesparse;

    #[test]
    fn hybrid_reaches_tolerances_where_pipe_pscg_alone_may_not() {
        // A harder, anisotropic 2-D problem at tight tolerance; s-step
        // recurrences with a monomial basis drift here.
        let a = suitesparse::ecology2_like(40, 41);
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n).map(|i| (0.05 * i as f64).sin()).collect();
        let b = a.mul_vec(&xstar);
        let opts = SolveOptions {
            rtol: 1e-9,
            s: 3,
            max_iters: 20_000,
            ..Default::default()
        };
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let res = solve(&mut ctx, &b, None, &opts);
        assert!(res.converged(), "{:?} at {}", res.stop, res.final_relres);
        assert_eq!(res.method, "Hybrid-pipelined");
        assert!(res.true_relres(&a, &b) < 1e-7);
    }

    #[test]
    fn hybrid_without_stagnation_is_pure_pipe_pscg() {
        // On an easy problem PIPE-PsCG converges before stagnation, so the
        // hybrid must not switch (same iteration count).
        let g = Grid3::cube(6);
        let a = poisson3d_7pt(g, None);
        let b = vec![1.0; a.nrows()];
        let opts = SolveOptions::with_rtol(1e-6);
        let mut c1 = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let r1 = solve(&mut c1, &b, None, &opts);
        let mut c2 = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let r2 = pipe_pscg::solve(&mut c2, &b, None, &opts);
        assert!(r1.converged() && r2.converged());
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.method, "Hybrid-pipelined");
    }
}

//! Pipelined CG of Ghysels & Vanroose \[9\].
//!
//! One *non-blocking* allreduce per iteration, overlapped with exactly one
//! preconditioner application and one SPMV. The price is four extra
//! recurrence vectors (`z, q, s, p` alongside `r, u, w, m, n`) updated by
//! VMAs — the 22s FLOPs row of Table I — and the usual pipelined-CG rounding
//! drift in the recurrence residual.

use pscg_sim::Context;

use crate::methods::{global_ref_norm, init_residual};
use crate::solver::{SolveOptions, SolveResult, StopReason};

/// Solves `A x = b` with PIPECG. `x0` defaults to zero.
pub fn solve<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    let bnorm = global_ref_norm(ctx, b, opts);
    let threshold = opts.threshold(bnorm);
    let mut resil = crate::resilience::ResilienceState::new(opts, bnorm);
    let (mut x, mut r) = init_residual(ctx, b, x0);

    // u = M⁻¹ r, w = A u.
    let mut u = ctx.alloc_vec();
    ctx.pc_apply(&r, &mut u);
    let mut w = ctx.alloc_vec();
    ctx.spmv(&u, &mut w);

    let mut m = ctx.alloc_vec();
    let mut n = ctx.alloc_vec();
    let mut z = ctx.alloc_vec();
    let mut q = ctx.alloc_vec();
    let mut s = ctx.alloc_vec();
    let mut p = ctx.alloc_vec();

    let mut history: Vec<f64> = Vec::new();
    let mut gamma_old = 0.0;
    let mut alpha_old = 0.0;
    let mut iters = 0usize;
    let stop;

    loop {
        // γ = (r, u), δ = (w, u), plus both residual norms — one payload,
        // posted non-blocking.
        let lg = ctx.local_dot(&r, &u);
        let ld = ctx.local_dot(&w, &u);
        let lrr = ctx.local_dot(&r, &r);
        let luu = ctx.local_dot(&u, &u);
        let posted = [lg, ld, lrr, luu];
        let h = ctx.iallreduce(&posted);
        // Overlapped work: m = M⁻¹ w, n = A m.
        ctx.pc_apply(&w, &mut m);
        ctx.spmv(&m, &mut n);
        let red = match crate::resilience::wait_reduction(
            ctx,
            h,
            &posted,
            opts.resilience.reduce_retries,
        ) {
            Ok(v) => v,
            Err(e) => {
                // Timeout -> CommFault; rank death -> RankFailed (the
                // handle is already retired; the supervisor owns the
                // buddy rebuild).
                resil.rollback(ctx, &mut x);
                stop = crate::resilience::comm_stop(&e);
                break;
            }
        };
        let (gamma, delta, rr, uu) = (red[0], red[1], red[2], red[3]);

        let relres = crate::methods::relres_from_sq(opts.norm.pick_sq(rr, uu, gamma), bnorm);
        history.push(relres);
        ctx.note_residual(relres);
        crate::telemetry::note_iter(ctx, iters, relres, [rr, uu, gamma], &[], &[], gamma);
        if relres * bnorm < threshold {
            stop = StopReason::Converged;
            break;
        }
        if iters >= opts.max_iters {
            stop = StopReason::MaxIterations;
            break;
        }
        // γ = (r, u) must stay finite and non-negative on an SPD system.
        if !relres.is_finite() || crate::resilience::gamma_breakdown(gamma) || !delta.is_finite() {
            resil.rollback(ctx, &mut x);
            stop = StopReason::Breakdown;
            break;
        }
        match resil.on_check(ctx, b, &x, relres) {
            crate::resilience::CheckVerdict::Continue => {}
            verdict => {
                resil.rollback(ctx, &mut x);
                stop = verdict.stop();
                break;
            }
        }

        let (beta, alpha) = if iters == 0 {
            if delta <= 0.0 {
                resil.rollback(ctx, &mut x);
                stop = StopReason::Breakdown;
                break;
            }
            (0.0, gamma / delta)
        } else {
            let beta = gamma / gamma_old;
            let denom = delta - beta * gamma / alpha_old;
            // pscg-lint: allow(float-eq, exact-zero division guard; any nonzero denom is usable)
            if denom == 0.0 || !denom.is_finite() {
                resil.rollback(ctx, &mut x);
                stop = StopReason::Breakdown;
                break;
            }
            (beta, gamma / denom)
        };

        // Recurrence updates (8 VMAs — the pipelining overhead).
        ctx.aypx(beta, &n, &mut z);
        ctx.aypx(beta, &m, &mut q);
        ctx.aypx(beta, &w, &mut s);
        ctx.aypx(beta, &u, &mut p);
        ctx.axpy(alpha, &p, &mut x);
        ctx.axpy(-alpha, &s, &mut r);
        ctx.axpy(-alpha, &q, &mut u);
        ctx.axpy(-alpha, &z, &mut w);

        gamma_old = gamma;
        alpha_old = alpha;
        iters += 1;
    }

    SolveResult {
        x,
        iterations: iters,
        stop,
        final_relres: history.last().copied().unwrap_or(f64::NAN),
        history,
        counters: *ctx.counters(),
        method: "PIPECG",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::pcg;
    use pscg_precond::Jacobi;
    use pscg_sim::SimCtx;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

    fn problem() -> (pscg_sparse::CsrMatrix, Vec<f64>) {
        let g = Grid3::cube(6);
        let a = poisson3d_7pt(g, None);
        let n = a.nrows();
        let xstar: Vec<f64> = (0..n).map(|i| ((i % 7) as f64 - 3.0) / 3.0).collect();
        let b = a.mul_vec(&xstar);
        (a, b)
    }

    #[test]
    fn pipecg_converges_and_matches_pcg_iterations() {
        let (a, b) = problem();
        let opts = SolveOptions::with_rtol(1e-8);
        let mut c1 = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let r1 = pcg::solve(&mut c1, &b, None, &opts);
        let mut c2 = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let r2 = solve(&mut c2, &b, None, &opts);
        assert!(r2.converged());
        assert!(r2.true_relres(&a, &b) < 1e-6);
        // Same Krylov process: iteration counts agree to within a couple.
        let diff = (r1.iterations as i64 - r2.iterations as i64).abs();
        assert!(
            diff <= 2,
            "PCG {} vs PIPECG {}",
            r1.iterations,
            r2.iterations
        );
    }

    #[test]
    fn pipecg_uses_one_nonblocking_allreduce_per_iteration() {
        let (a, b) = problem();
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let res = solve(&mut ctx, &b, None, &SolveOptions::with_rtol(1e-6));
        // One iallreduce per loop pass (iterations + the final check pass);
        // only the initial bnorm is blocking.
        let passes = res.history.len() as u64;
        assert_eq!(res.counters.nonblocking_allreduce, passes);
        assert_eq!(res.counters.blocking_allreduce, 1);
        // 1 SPMV + 1 PC per pass, + setup (r, u, w).
        assert_eq!(res.counters.spmv, passes + 2);
        // +1 for u0 and +1 for the reference-norm M^-1 b.
        assert_eq!(res.counters.pc, passes + 2);
    }

    #[test]
    fn pipecg_history_is_monotonically_decreasing_overall() {
        let (a, b) = problem();
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let res = solve(&mut ctx, &b, None, &SolveOptions::with_rtol(1e-8));
        let first = res
            .history
            .first()
            .expect("history starts with the initial residual");
        let last = res
            .history
            .last()
            .expect("history starts with the initial residual");
        assert!(last < &(first * 1e-6));
    }
}

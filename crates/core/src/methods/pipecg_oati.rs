//! PIPECG-OATI — "One Allreduce per Two Iterations", Tiwari & Vadhiyar,
//! HiPC 2020 \[11\].
//!
//! The authors' previous method: two PCG iterations are combined so that a
//! single non-blocking allreduce is overlapped with **two** PCs and **two**
//! SPMVs, using "iteration combination and non-recurrence computations".
//!
//! Reproduction note (see DESIGN.md §3): the defining paper is not part of
//! the supplied text, so OATI is realised as the depth-2 instance of the
//! pipelined preconditioned s-step core — which gives exactly the
//! communication cadence and overlap structure the present paper ascribes to
//! it — with periodic *non-recurrence* (explicitly recomputed) bases, which
//! is what keeps its attainable accuracy close to PCG's and makes it the
//! finishing method of the Hybrid-pipelined scheme.

use pscg_sim::Context;

use crate::methods::pipe_pscg::{self, PipeConfig};
use crate::solver::{SolveOptions, SolveResult};

/// How often (in outer = 2-step iterations) OATI recomputes its basis
/// explicitly instead of by recurrence. The replacement kernels are not
/// overlapped, so the period trades attainable accuracy against the few
/// percent of extra time they cost at scale.
pub const REPLACE_EVERY: usize = 24;

/// Solves `M⁻¹A x = M⁻¹b` with PIPECG-OATI. `x0` defaults to zero.
pub fn solve<C: Context>(
    ctx: &mut C,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    let cfg = PipeConfig {
        method: "PIPECG-OATI",
        s: 2,
        replace_every: Some(REPLACE_EVERY),
        stagnation: None,
        extra_flops_per_row: 0.0,
    };
    pipe_pscg::solve_with(ctx, b, x0, opts, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscg_precond::Jacobi;
    use pscg_sim::SimCtx;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

    fn problem() -> (pscg_sparse::CsrMatrix, Vec<f64>) {
        let g = Grid3::cube(6);
        let a = poisson3d_7pt(g, None);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 3) as f64).collect();
        (a, b)
    }

    #[test]
    fn oati_converges_to_tight_tolerance() {
        let (a, b) = problem();
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let res = solve(&mut ctx, &b, None, &SolveOptions::with_rtol(1e-9));
        assert!(res.converged(), "{:?}", res.stop);
        assert_eq!(res.method, "PIPECG-OATI");
        assert!(res.true_relres(&a, &b) < 1e-7);
    }

    #[test]
    fn oati_reduces_allreduce_count_vs_two_per_two_steps() {
        let (a, b) = problem();
        let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
        let res = solve(&mut ctx, &b, None, &SolveOptions::with_rtol(1e-6));
        assert!(res.converged());
        // One non-blocking allreduce per 2 CG steps (plus the pipeline's
        // lead-in), versus 3 per step for PCG.
        let steps = res.iterations as u64;
        assert!(res.counters.nonblocking_allreduce <= steps / 2 + 2);
        assert_eq!(res.counters.blocking_allreduce, 2);
    }
}

//! # pipescg — Pipelined Preconditioned s-step Conjugate Gradient Methods
//!
//! A from-scratch reproduction of Tiwari & Vadhiyar, *"Pipelined
//! Preconditioned s-step Conjugate Gradient Methods for Distributed Memory
//! Systems"* (IEEE CLUSTER 2021): the PIPE-sCG / PIPE-PsCG methods, every
//! baseline they are evaluated against, the hybrid scheme, and the Table I
//! cost model.
//!
//! ## Quick start
//!
//! ```
//! use pipescg::methods::MethodKind;
//! use pipescg::solver::SolveOptions;
//! use pscg_precond::Jacobi;
//! use pscg_sim::SimCtx;
//! use pscg_sparse::stencil::{poisson3d_125pt, Grid3};
//!
//! // The paper's operator class: 3-D Poisson, 125-point stencil.
//! let a = poisson3d_125pt(Grid3::cube(10));
//! let b = vec![1.0; a.nrows()];
//! let mut ctx = SimCtx::serial(&a, Box::new(Jacobi::new(&a)));
//! let res = MethodKind::PipePscg.solve(&mut ctx, &b, None, &SolveOptions::default());
//! assert!(res.converged());
//! ```
//!
//! ## Architecture
//!
//! Solvers are written once against [`pscg_sim::Context`] and run on three
//! engines: a serial one, a tracing one whose recorded operation stream is
//! replayed against a machine model to produce the paper's scaling figures,
//! and a thread-backed message-passing engine that executes them as genuine
//! SPMD programs. See DESIGN.md for the full system inventory and the
//! per-experiment index.

// Indexed loops over block families mirror the paper's AQm[j] notation.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod autotune;
pub mod costmodel;
pub mod methods;
pub mod resilience;
pub mod solver;
pub mod sstep;
pub(crate) mod telemetry;

pub use methods::MethodKind;
pub use solver::{
    NormType, RefNorm, Resilience, SolveError, SolveOptions, SolveResult, StopReason,
};

//! Automatic selection of the s parameter — the paper's §VII future work.
//!
//! > *"In the future, we plan to automate the process of choosing the s
//! > parameter for the PIPE-PsCG method. We plan to devise a model which
//! > would give the optimum s value when the linear system dimensions, the
//! > number of cores on which we want to solve the linear system and the
//! > desired accuracy are given to it as input."*
//!
//! This module implements exactly that model on top of the machine model
//! and the Table I cost expressions. Per CG step, PIPE-PsCG costs
//!
//! ```text
//! T(s) = max(G(P), s·(PC + SPMV)) / s          (kernel critical path)
//!      + flops(s)/s · N/P / F                  (recurrence-LC overhead)
//! ```
//!
//! where `G` grows with the core count and `flops(s) = 4s³ + 12s² + 2s + 5`
//! (Table I). Small s wastes allreduce latency; large s wastes cubic VMA
//! work — [`best_s`] evaluates the trade-off and returns the minimiser,
//! which is what Figure 3 sweeps manually (s = 3 best at low node counts,
//! s = 4, 5 taking over as `G` grows).

use pscg_sim::{Machine, MatrixProfile};

use crate::costmodel;
use crate::sstep::GramPacket;

/// Modelled PIPE-PsCG cost per CG step at block size `s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SCost {
    /// The evaluated s.
    pub s: usize,
    /// Kernel critical path per step (allreduce vs overlap window).
    pub kernel_time: f64,
    /// Recurrence-LC (VMA) overhead per step.
    pub vma_time: f64,
}

impl SCost {
    /// Total modelled time per CG step.
    pub fn total(&self) -> f64 {
        self.kernel_time + self.vma_time
    }
}

/// Evaluates the per-step cost model for one `s`.
pub fn s_cost(
    machine: &Machine,
    profile: &MatrixProfile,
    p: usize,
    s: usize,
    pc_flops_per_row: f64,
    pc_bytes_per_row: f64,
) -> SCost {
    let (g, pc, spmv) = costmodel::kernel_times(
        machine,
        profile,
        p,
        GramPacket::len(s),
        pc_flops_per_row,
        pc_bytes_per_row,
    );
    let sf = s as f64;
    let kernel_time = f64::max(g, sf * (pc + spmv)) / sf;
    // Table I FLOPs (×N) per s steps, charged at the local share.
    let flops_xn = 4.0 * sf * sf * sf + 12.0 * sf * sf + 2.0 * sf + 5.0;
    let local_rows = profile.nrows().div_ceil(p) as f64;
    let flops = flops_xn * local_rows / sf;
    // The recurrence LCs are memory-streaming (≈8 B/flop).
    let vma_time = machine.compute_time(flops, 8.0 * flops);
    SCost {
        s,
        kernel_time,
        vma_time,
    }
}

/// Chooses the s in `candidates` minimising the modelled time per CG step
/// for PIPE-PsCG on the given problem, machine and core count.
pub fn best_s(
    machine: &Machine,
    profile: &MatrixProfile,
    p: usize,
    pc_flops_per_row: f64,
    pc_bytes_per_row: f64,
    candidates: &[usize],
) -> SCost {
    assert!(
        !candidates.is_empty(),
        "best_s needs at least one candidate"
    );
    candidates
        .iter()
        .map(|&s| s_cost(machine, profile, p, s, pc_flops_per_row, pc_bytes_per_row))
        .min_by(|a, b| a.total().partial_cmp(&b.total()).expect("finite costs")) // pscg-lint: allow(panic-in-hot-path, setup-time autotune; costs are finite closed forms)
        .unwrap() // pscg-lint: allow(panic-in-hot-path, setup-time autotune over the nonempty candidate set asserted above)
}

/// Convenience: `best_s` over s ∈ 1..=8 with a Jacobi-cost preconditioner.
pub fn best_s_jacobi(machine: &Machine, profile: &MatrixProfile, p: usize) -> SCost {
    best_s(machine, profile, p, 1.0, 24.0, &[1, 2, 3, 4, 5, 6, 7, 8])
}

/// Tuning of the shared-memory kernel engine (`pscg_par`): thread count and
/// the fixed chunk sizes of the determinism contract.
///
/// The model is deliberately simple. Threads come from the host (or
/// `PSCG_THREADS`). The SpMV chunk target splits the matrix into at least
/// `4 × threads` chunks — enough slack for dynamic claiming to absorb nnz
/// imbalance — but never below a floor that keeps per-chunk pool overhead
/// (~1 µs) under ~1 % of chunk work. The Gram chunk keeps an `s`-column
/// block of both operands resident in half of a typical 1 MiB-per-core L2.
/// `crates/bench`'s `kernelbench tune` sweeps both knobs empirically around
/// these defaults; [`KernelTuning::apply`] installs a choice process-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelTuning {
    /// Execution lanes for the global pool.
    pub threads: usize,
    /// Non-zeros per SpMV row chunk.
    pub spmv_chunk_nnz: usize,
    /// Rows per Gram/update chunk.
    pub gram_chunk_rows: usize,
    /// SpMV storage format / kernel variant (DESIGN.md §12). Every value
    /// is bitwise-deterministic across thread counts; they differ only in
    /// memory traffic and instruction-level parallelism, so the tune sweep
    /// (`kernelbench tune`) picks the winner empirically per matrix.
    pub format: pscg_sparse::SpmvFormat,
}

impl KernelTuning {
    /// Floor on the SpMV chunk so pool dispatch stays negligible.
    const MIN_SPMV_CHUNK_NNZ: usize = 1 << 14;

    /// Model-based tuning for a problem of `nnz` non-zeros at Gram width
    /// `s`, using the environment's thread count.
    pub fn for_problem(nnz: usize, s: usize) -> KernelTuning {
        let threads = pscg_par::default_threads();
        let target_chunks = 4 * threads;
        let spmv_chunk_nnz = (nnz / target_chunks.max(1)).clamp(
            Self::MIN_SPMV_CHUNK_NNZ,
            pscg_par::knobs::DEFAULT_SPMV_CHUNK_NNZ,
        );
        // Two operands of s columns each in half an L2: 2·s·rows·8 B ≤ 512 KiB.
        let gram_chunk_rows =
            (512 * 1024 / (16 * s.max(1))).clamp(1024, pscg_par::knobs::DEFAULT_GRAM_CHUNK_ROWS);
        KernelTuning {
            threads,
            spmv_chunk_nnz,
            gram_chunk_rows,
            // Format choice is empirical, not modelled: honour the
            // environment (`PSCG_SPMV_FORMAT`) / tune-sweep selection.
            format: pscg_sparse::spmv_format(),
        }
    }

    /// The engine's current (or default) settings.
    pub fn current() -> KernelTuning {
        KernelTuning {
            threads: pscg_par::global_threads(),
            spmv_chunk_nnz: pscg_par::knobs::spmv_chunk_nnz(),
            gram_chunk_rows: pscg_par::knobs::gram_chunk_rows(),
            format: pscg_sparse::spmv_format(),
        }
    }

    /// Installs this tuning process-wide. Chunk-size changes only affect
    /// matrices whose row partition has not been cached yet, so apply
    /// before building operators.
    pub fn apply(&self) {
        pscg_par::set_global_threads(self.threads);
        pscg_par::knobs::set_spmv_chunk_nnz(self.spmv_chunk_nnz);
        pscg_par::knobs::set_gram_chunk_rows(self.gram_chunk_rows);
        pscg_sparse::set_spmv_format(self.format);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscg_sim::Layout;

    fn paper_profile() -> MatrixProfile {
        MatrixProfile::stencil3d(100, 100, 100, 2, 124_000_000, Layout::Box)
    }

    #[test]
    fn best_s_grows_with_core_count() {
        // The paper's Figure 3 observation: higher core counts favour
        // higher s (more allreduce latency to hide).
        let m = Machine::sahasrat();
        let prof = paper_profile();
        let s_small = best_s_jacobi(&m, &prof, 24).s;
        let s_large = best_s_jacobi(&m, &prof, 240 * 24).s;
        assert!(
            s_large >= s_small,
            "best s should not shrink with scale: {s_small} -> {s_large}"
        );
        assert!(s_large >= 2, "at 240 nodes some pipelining must pay off");
    }

    #[test]
    fn one_node_prefers_small_s() {
        // At one node the allreduce is cheap; cubic VMA work dominates.
        let m = Machine::sahasrat();
        let prof = paper_profile();
        let best = best_s_jacobi(&m, &prof, 24);
        assert!(best.s <= 2, "one node picked s = {}", best.s);
    }

    #[test]
    fn cost_components_are_positive_and_finite() {
        let m = Machine::sahasrat();
        let prof = paper_profile();
        for p in [24, 960, 2880] {
            for s in 1..=6 {
                let c = s_cost(&m, &prof, p, s, 1.0, 24.0);
                assert!(c.kernel_time > 0.0 && c.kernel_time.is_finite());
                assert!(c.vma_time > 0.0 && c.vma_time.is_finite());
                assert!(c.total() > 0.0);
            }
        }
    }

    #[test]
    fn vma_overhead_grows_cubically_in_s() {
        let m = Machine::sahasrat();
        let prof = paper_profile();
        let c2 = s_cost(&m, &prof, 24, 2, 1.0, 24.0);
        let c8 = s_cost(&m, &prof, 24, 8, 1.0, 24.0);
        // flops(s)/s at s=2 is 44.5, at s=8 it is 354.6 — an 8x growth
        // (the 12s^2 term moderates the asymptotic 16x of 4s^2).
        let ratio = c8.vma_time / c2.vma_time;
        assert!(ratio > 6.0 && ratio < 12.0, "ratio = {ratio}");
    }

    #[test]
    fn ideal_machine_always_prefers_s1() {
        // Free communication leaves only the FLOP overhead: s = 1 wins.
        let m = Machine::ideal(24);
        let prof = paper_profile();
        assert_eq!(best_s_jacobi(&m, &prof, 2880).s, 1);
    }

    #[test]
    fn kernel_tuning_respects_bounds() {
        for (nnz, s) in [(1000, 1), (7 * 16_777_216, 4), (124_000_000, 8)] {
            let t = KernelTuning::for_problem(nnz, s);
            assert!(t.threads >= 1);
            assert!(t.spmv_chunk_nnz >= KernelTuning::MIN_SPMV_CHUNK_NNZ);
            assert!(t.spmv_chunk_nnz <= pscg_par::knobs::DEFAULT_SPMV_CHUNK_NNZ);
            assert!((1024..=pscg_par::knobs::DEFAULT_GRAM_CHUNK_ROWS).contains(&t.gram_chunk_rows));
        }
        // A tiny problem maxes out the chunk floor (stays serial-ish); the
        // paper-size problem saturates the default target.
        assert_eq!(
            KernelTuning::for_problem(1000, 1).spmv_chunk_nnz,
            KernelTuning::MIN_SPMV_CHUNK_NNZ
        );
    }
}

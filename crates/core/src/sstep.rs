//! Shared s-step machinery: the Gram packet and the "Scalar Work".
//!
//! Every s-step method (Algorithms 2–7 of the paper) performs, per s-step
//! iteration, a small amount of rank-replicated scalar work: solve two
//! `s × s` systems to obtain the conjugation matrix `B` ("the β's") and the
//! step coefficients `α`. The paper computes the required inner products
//! from 2s monomial moments with cross-iteration scalar recurrences; we use
//! the equivalent **block Gram formulation** (see DESIGN.md §2): one
//! reduction per s-step iteration carrying
//!
//! * `N = RᵀA R`        (`s × s`, fresh-basis moments),
//! * `C = P_prevᵀ A R`  (`s × s`, cross-conjugation terms),
//! * `g1 = Rᵀ r`, `g2 = P_prevᵀ r` (`s` each),
//! * the three residual norms `(r·r, u·u, r·u)`,
//!
//! a total of `2s² + 2s + 3` doubles — like the paper's `vm`, everything in
//! the packet is available *before* the deep SPMVs that the non-blocking
//! allreduce is overlapped with.
//!
//! Scalar work per iteration (LU, as the paper specifies):
//!
//! * `B = −W_prev⁻¹ C` (A-conjugation of the new basis to the previous
//!   directions),
//! * `W = N + CᵀB + BᵀC + BᵀW_prev B`  (`= PᵀA P` of the new directions),
//! * `α = W⁻¹ (g1 + Bᵀ g2)`  (error-functional minimisation over the space).

use pscg_sim::Context;
use pscg_sparse::dense::DenseMatrix;
use pscg_sparse::MultiVector;

/// The per-iteration reduction payload of the s-step methods.
#[derive(Debug, Clone)]
pub struct GramPacket {
    /// `s`.
    pub s: usize,
    /// `RᵀA R`.
    pub n: DenseMatrix,
    /// `P_prevᵀ A R`.
    pub c: DenseMatrix,
    /// `Rᵀ r`.
    pub g1: Vec<f64>,
    /// `P_prevᵀ r`.
    pub g2: Vec<f64>,
    /// `(r·r, u·u, r·u)` — all three norms travel in every packet, which is
    /// what lets PIPE-PsCG test any norm without extra kernels.
    pub norms: [f64; 3],
}

impl GramPacket {
    /// Number of doubles in the flat encoding.
    pub fn len(s: usize) -> usize {
        2 * s * s + 2 * s + 3
    }

    /// Flattens for the allreduce.
    pub fn pack(&self) -> Vec<f64> {
        let s = self.s;
        let mut out = Vec::with_capacity(Self::len(s));
        out.extend_from_slice(self.n.data());
        out.extend_from_slice(self.c.data());
        out.extend_from_slice(&self.g1);
        out.extend_from_slice(&self.g2);
        out.extend_from_slice(&self.norms);
        out
    }

    /// Rebuilds from the reduced flat vector.
    pub fn unpack(s: usize, flat: &[f64]) -> GramPacket {
        assert_eq!(flat.len(), Self::len(s), "gram packet length mismatch");
        let mut n = DenseMatrix::zeros(s, s);
        n.data_mut().copy_from_slice(&flat[0..s * s]);
        let mut c = DenseMatrix::zeros(s, s);
        c.data_mut().copy_from_slice(&flat[s * s..2 * s * s]);
        let g1 = flat[2 * s * s..2 * s * s + s].to_vec();
        let g2 = flat[2 * s * s + s..2 * s * s + 2 * s].to_vec();
        let t = 2 * s * s + 2 * s;
        GramPacket {
            s,
            n,
            c,
            g1,
            g2,
            norms: [flat[t], flat[t + 1], flat[t + 2]],
        }
    }

    /// Assembles the local packet from the fresh power lists and previous
    /// directions. `upow`/`rpow` are the u-type and r-type power lists with
    /// at least `s+1` valid leading columns (`rpow[j] = A·upow[j−1]` when
    /// preconditioned; pass the same block twice when `M = I`). `udirs` is
    /// the previous direction block (zero on the first call).
    pub fn assemble<C: Context>(
        ctx: &mut C,
        s: usize,
        upow: &MultiVector,
        rpow: &MultiVector,
        udirs: &MultiVector,
    ) -> GramPacket {
        // N_{jk} = (upow_j, A upow_k) = (upow_j, rpow_{k+1})
        let n = ctx.local_gram_range(upow, 0..s, rpow, 1..s + 1);
        // C_{mk} = (udirs_m, A upow_k) = (udirs_m, rpow_{k+1})
        let c = ctx.local_gram_range(udirs, 0..s, rpow, 1..s + 1);
        // g1_j = (upow_j, r), g2_m = (udirs_m, r) — first s columns only
        // (the power lists carry extra columns beyond the basis).
        let g1: Vec<f64> = (0..s)
            .map(|j| ctx.local_dot(upow.col(j), rpow.col(0)))
            .collect();
        let g2: Vec<f64> = (0..s)
            .map(|m| ctx.local_dot(udirs.col(m), rpow.col(0)))
            .collect();
        let rr = ctx.local_dot(rpow.col(0), rpow.col(0));
        let uu = ctx.local_dot(upow.col(0), upow.col(0));
        let ru = ctx.local_dot(rpow.col(0), upow.col(0));
        GramPacket {
            s,
            n,
            c,
            g1,
            g2,
            norms: [rr, uu, ru],
        }
    }
}

/// Estimates the basis scale `σ ≈ 1/ρ(op)` from one operator application
/// (`den = op·num`): `σ = ‖num‖/‖den‖`, reduced globally (one blocking
/// allreduce at setup).
///
/// All s-step methods here generate their monomial bases with the *scaled*
/// operator `Ã = σA` (or `σAM⁻¹` / `σM⁻¹A`), which spans the same Krylov
/// space while keeping the power columns O(‖r‖) — without this, an
/// unpreconditioned basis on a badly scaled operator (‖A‖ ~ 10⁴ for the
/// thermal surrogate) overflows within a few iterations. The consequence for
/// the scalar work is a single factor: the solution update uses `σ·α` while
/// the basis recurrences use `α` as solved (see the method bodies).
pub fn estimate_sigma<C: Context>(ctx: &mut C, num: &[f64], den: &[f64]) -> f64 {
    let nn = ctx.local_dot(num, num);
    let dd = ctx.local_dot(den, den);
    let red = ctx.allreduce(&[nn, dd]);
    if red[0] > 0.0 && red[1] > 0.0 && red[0].is_finite() && red[1].is_finite() {
        (red[0] / red[1]).sqrt()
    } else {
        1.0
    }
}

/// Extends a single (unpreconditioned) power list with the scaled operator:
/// `pow[j] = σ·A·pow[j−1]` for `j = from+1 ..= to`.
pub fn extend_scaled_powers<C: Context>(
    ctx: &mut C,
    pow: &mut MultiVector,
    from: usize,
    to: usize,
    sigma: f64,
) {
    for j in from + 1..=to {
        {
            let (src, dst) = pow.col_pair_mut(j - 1, j);
            ctx.spmv(src, dst);
        }
        // pscg-lint: allow(float-eq, exact identity-scaling skip; sigma is a set parameter, not computed)
        if sigma != 1.0 {
            ctx.scale_v(sigma, pow.col_mut(j));
        }
    }
}

/// Copies `count` columns of `src` starting at `src_off` into the leading
/// columns of `dst` (charged as vector moves).
pub fn copy_cols<C: Context>(
    ctx: &mut C,
    dst: &mut MultiVector,
    src: &MultiVector,
    src_off: usize,
    count: usize,
) {
    for j in 0..count {
        ctx.copy_v(src.col(src_off + j), dst.col_mut(j));
    }
}

/// The recurrence linear combination of the paper: builds
/// `dst = src[:, off..off+s] + prev · B` (e.g. `Q = Q + P[β¹…βˢ]`,
/// Algorithm 5 lines 17/19) — as a single fused sweep over the rows.
pub fn conjugate_window<C: Context>(
    ctx: &mut C,
    dst: &mut MultiVector,
    src: &MultiVector,
    off: usize,
    prev: &MultiVector,
    b: &DenseMatrix,
) {
    ctx.block_combine(dst, src, off, prev, b);
}

/// Cross-iteration scalar state of an s-step method.
#[derive(Debug, Clone)]
pub struct ScalarWork {
    s: usize,
    /// `W = PᵀA P` of the current directions (None before the first step).
    w: Option<DenseMatrix>,
    /// Conjugation matrix for the upcoming basis update.
    pub b: DenseMatrix,
    /// Step coefficients for the upcoming solution update.
    pub alpha: Vec<f64>,
}

/// Scalar-work failure: the `s × s` system was singular or produced
/// non-finite coefficients (basis collapse — the monomial basis ran out of
/// precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Breakdown;

impl ScalarWork {
    /// Fresh state for a given `s`.
    pub fn new(s: usize) -> Self {
        ScalarWork {
            s,
            w: None,
            b: DenseMatrix::zeros(s, s),
            alpha: vec![0.0; s],
        }
    }

    /// Consumes one (globally reduced) packet; on success `self.b` and
    /// `self.alpha` hold the coefficients for the next basis update.
    pub fn step<C: Context>(&mut self, ctx: &mut C, pkt: &GramPacket) -> Result<(), Breakdown> {
        assert_eq!(pkt.s, self.s);
        let s = self.s;
        let (b, mut w) = match &self.w {
            None => (DenseMatrix::zeros(s, s), pkt.n.clone()),
            Some(w_prev) => {
                // B = -W_prev^{-1} C
                let mut b = solve_mat_regularized(w_prev, &pkt.c).ok_or(Breakdown)?;
                b.scale(-1.0);
                // W = N + Cᵀ B + Bᵀ C + Bᵀ W_prev B
                let ctb = pkt.c.transpose().matmul(&b);
                let btwb = b.transpose().matmul(&w_prev.matmul(&b));
                let w = pkt.n.add_mat(&ctb).add_mat(&ctb.transpose()).add_mat(&btwb);
                (b, w)
            }
        };
        w.symmetrize();
        // g = g1 + Bᵀ g2
        let mut g = pkt.g1.clone();
        let btg2 = b.transpose().matvec(&pkt.g2);
        for (gi, v) in g.iter_mut().zip(&btg2) {
            *gi += v;
        }
        let alpha = solve_regularized(&w, &g).ok_or(Breakdown)?;
        if alpha.iter().any(|a| !a.is_finite()) || b.data().iter().any(|v| !v.is_finite()) {
            return Err(Breakdown);
        }
        // Two s×s LU solves plus the small matrix products.
        let sf = s as f64;
        ctx.charge_scalar(4.0 * sf * sf * sf + 8.0 * sf * sf);
        self.b = b;
        self.w = Some(w);
        self.alpha = alpha;
        Ok(())
    }
}

/// Relative eigenvalue cutoff of the rank-revealing scalar solves.
const PINV_RELATIVE_CUTOFF: f64 = 1e-13;

/// Solves `W x = g` through a truncated eigendecomposition (`W` is an
/// A-Gram matrix, symmetric positive semidefinite up to roundoff). When the
/// Krylov basis is rank deficient — legitimately so for `dim K < s`, e.g.
/// `M⁻¹A ≈ I` or the final block before convergence — the LU the paper
/// prescribes would amplify null-space noise; the pseudo-inverse instead
/// *drops* the directions the basis cannot resolve, so the block still
/// takes the correct step in the well-determined ones. Returns `None` only
/// when the spectrum is unusable (non-finite or non-positive).
fn solve_regularized(w: &DenseMatrix, g: &[f64]) -> Option<Vec<f64>> {
    let eig = EquilibratedEig::factor(w)?;
    eig.solve(g)
}

/// Matrix right-hand-side variant of [`solve_regularized`]; factors `W`
/// once and reuses the decomposition for every column.
fn solve_mat_regularized(w: &DenseMatrix, c: &DenseMatrix) -> Option<DenseMatrix> {
    let eig = EquilibratedEig::factor(w)?;
    let s = w.nrows();
    let mut out = DenseMatrix::zeros(s, c.ncols());
    let mut col = vec![0.0; s];
    for j in 0..c.ncols() {
        for i in 0..s {
            col[i] = c.get(i, j);
        }
        let x = eig.solve(&col)?;
        for i in 0..s {
            out.set(i, j, x[i]);
        }
    }
    Some(out)
}

/// Equilibrated, rank-truncated eigendecomposition of an s-step Gram matrix.
///
/// Symmetric Jacobi equilibration first: the σ-scaled monomial columns
/// still decay/grow as (λ/ρ)^j, so W's diagonal spans many orders of
/// magnitude at larger s. Solving D⁻¹WD⁻¹ (D x) = D⁻¹ g removes that
/// artificial conditioning exactly (it is a diagonal change of basis) and
/// is what keeps s = 5 usable on the paper's 1M-unknown problem. Eigenvalues
/// below the relative cutoff are truncated (pseudo-inverse): when the Krylov
/// basis is rank deficient — legitimately so for `dim K < s`, e.g.
/// `M⁻¹A ≈ I` or the final block before convergence — the LU the paper
/// prescribes would amplify null-space noise; the pseudo-inverse instead
/// *drops* the directions the basis cannot resolve, so the block still takes
/// the correct step in the well-determined ones. `factor` returns `None`
/// only when the spectrum is unusable (non-finite or non-positive).
struct EquilibratedEig {
    d: Vec<f64>,
    lam: Vec<f64>,
    v: DenseMatrix,
    cutoff: f64,
}

impl EquilibratedEig {
    fn factor(w: &DenseMatrix) -> Option<EquilibratedEig> {
        let s = w.nrows();
        let d: Vec<f64> = (0..s)
            .map(|i| {
                let wii = w.get(i, i);
                if wii > 0.0 && wii.is_finite() {
                    wii.sqrt()
                } else {
                    1.0
                }
            })
            .collect();
        let mut wbar = w.clone();
        for i in 0..s {
            for j in 0..s {
                wbar.set(i, j, w.get(i, j) / (d[i] * d[j]));
            }
        }
        let (lam, v) = wbar.sym_eig();
        let lmax = lam.iter().copied().fold(0.0f64, f64::max);
        if lmax <= 0.0 || !lmax.is_finite() {
            return None;
        }
        Some(EquilibratedEig {
            d,
            lam,
            v,
            cutoff: PINV_RELATIVE_CUTOFF * lmax,
        })
    }

    fn solve(&self, g: &[f64]) -> Option<Vec<f64>> {
        let s = self.d.len();
        let gbar: Vec<f64> = (0..s).map(|i| g[i] / self.d[i]).collect();
        let mut xbar = vec![0.0; s];
        for (k, &l) in self.lam.iter().enumerate() {
            if l <= self.cutoff {
                continue;
            }
            let mut proj = 0.0;
            for i in 0..s {
                proj += self.v.get(i, k) * gbar[i];
            }
            let coef = proj / l;
            for i in 0..s {
                xbar[i] += coef * self.v.get(i, k);
            }
        }
        let x: Vec<f64> = (0..s).map(|i| xbar[i] / self.d[i]).collect();
        x.iter().all(|v| v.is_finite()).then_some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscg_sim::SimCtx;
    use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
    use pscg_sparse::{CsrMatrix, IdentityOp};

    fn ctx_for(a: &CsrMatrix) -> SimCtx<'_> {
        SimCtx::serial(a, Box::new(IdentityOp::new(a.nrows())))
    }

    #[test]
    fn packet_roundtrips_through_flat_encoding() {
        let s = 3;
        let mut n = DenseMatrix::zeros(s, s);
        let mut c = DenseMatrix::zeros(s, s);
        for i in 0..s {
            for j in 0..s {
                n.set(i, j, (i * s + j) as f64);
                c.set(i, j, -((i + j) as f64));
            }
        }
        let pkt = GramPacket {
            s,
            n,
            c,
            g1: vec![1.0, 2.0, 3.0],
            g2: vec![-1.0, -2.0, -3.0],
            norms: [9.0, 4.0, 6.0],
        };
        let flat = pkt.pack();
        assert_eq!(flat.len(), GramPacket::len(s));
        let back = GramPacket::unpack(s, &flat);
        assert_eq!(back.n, pkt.n);
        assert_eq!(back.c, pkt.c);
        assert_eq!(back.g1, pkt.g1);
        assert_eq!(back.g2, pkt.g2);
        assert_eq!(back.norms, pkt.norms);
    }

    #[test]
    fn first_scalar_step_reproduces_steepest_descent_for_s1() {
        // With s = 1 and no previous directions, alpha = (r·r)/(r·Ar): the
        // classic first CG step.
        let g = Grid3::cube(4);
        let a = poisson3d_7pt(g, None);
        let n = a.nrows();
        let mut ctx = ctx_for(&a);
        let r: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let ar = a.mul_vec(&r);
        let upow = MultiVector::from_columns(&[&r]);
        let rpow = MultiVector::from_columns(&[&r, &ar]);
        let dirs = MultiVector::zeros(n, 1);
        let pkt = GramPacket::assemble(&mut ctx, 1, &upow, &rpow, &dirs);
        let mut sw = ScalarWork::new(1);
        sw.step(&mut ctx, &pkt).unwrap();
        let rr = pscg_sparse::kernels::dot(&r, &r);
        let rar = pscg_sparse::kernels::dot(&r, &ar);
        assert!((sw.alpha[0] - rr / rar).abs() < 1e-14);
        // First step has B = 0.
        assert_eq!(sw.b.get(0, 0), 0.0);
    }

    #[test]
    fn scalar_step_detects_singular_gram() {
        let g = Grid3::cube(3);
        let a = poisson3d_7pt(g, None);
        let mut ctx = ctx_for(&a);
        let pkt = GramPacket {
            s: 2,
            n: DenseMatrix::zeros(2, 2), // singular
            c: DenseMatrix::zeros(2, 2),
            g1: vec![1.0, 1.0],
            g2: vec![0.0, 0.0],
            norms: [1.0, 1.0, 1.0],
        };
        let mut sw = ScalarWork::new(2);
        assert_eq!(sw.step(&mut ctx, &pkt), Err(Breakdown));
    }

    #[test]
    fn assemble_collects_all_three_norms() {
        let g = Grid3::cube(3);
        let a = poisson3d_7pt(g, None);
        let n = a.nrows();
        let mut ctx = ctx_for(&a);
        let r = vec![2.0; n];
        let u = vec![0.5; n];
        let ar = a.mul_vec(&r); // stand-in for A·u column
        let upow = MultiVector::from_columns(&[&u]);
        let rpow = MultiVector::from_columns(&[&r, &ar]);
        let dirs = MultiVector::zeros(n, 1);
        let pkt = GramPacket::assemble(&mut ctx, 1, &upow, &rpow, &dirs);
        let nf = n as f64;
        assert!((pkt.norms[0] - 4.0 * nf).abs() < 1e-12); // r·r
        assert!((pkt.norms[1] - 0.25 * nf).abs() < 1e-12); // u·u
        assert!((pkt.norms[2] - 1.0 * nf).abs() < 1e-12); // r·u
    }
}

//! Negative controls for the model checker: with the `broken-par` feature
//! the transition system grows two seeded protocol bugs, and the checker
//! must flag both. A checker that passes the real protocol but cannot see
//! these would be vacuous. Gated exactly like `pipescg`'s
//! `broken-variants`: `cargo test -p pscg-check --features broken-par`.

#![cfg(feature = "broken-par")]

use pscg_check::{check_all, Finding, Variant};

/// Notifying `done_cv` without the state lock loses the wakeup that fires
/// between the submitter's `done` check and its park: the checker must
/// reach the deadlocked state.
#[test]
fn no_lock_notify_deadlocks() {
    let reports = check_all(Variant::NoLockNotify);
    assert!(
        reports
            .iter()
            .flat_map(|r| &r.findings)
            .any(|f| matches!(f, Finding::Deadlock { .. })),
        "lost-wakeup deadlock not found: {:?}",
        reports
            .iter()
            .map(|r| (r.scenario, r.findings.clone()))
            .collect::<Vec<_>>()
    );
    assert!(
        reports
            .iter()
            .all(|f| !f.findings.contains(&Finding::StateCap)),
        "state cap must not mask the verdict"
    );
}

/// Without the epoch check a stale worker claims an index of the *new*
/// claim word and runs its old closure on it: the old index executes
/// twice and the stolen new index never runs.
#[test]
fn stale_epoch_claim_duplicates_and_loses_indices() {
    let reports = check_all(Variant::StaleEpochClaim);
    let findings: Vec<&Finding> = reports.iter().flat_map(|r| &r.findings).collect();
    assert!(
        findings
            .iter()
            .any(|f| matches!(f, Finding::DuplicateExecution { .. })),
        "duplicate execution not found: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| matches!(f, Finding::LostIndex { .. })),
        "lost index not found: {findings:?}"
    );
}

/// The seeded bugs must not make the *correct* variant flaky: the same
/// binary still verifies the real protocol.
#[test]
fn correct_variant_still_verifies_with_feature_enabled() {
    for r in check_all(Variant::Correct) {
        assert!(r.ok(), "{}: {:?}", r.scenario, r.findings);
    }
}

//! Vector-clock happens-before race detection over [`pscg_par::sync_trace`]
//! recordings.
//!
//! The detector never trusts cross-thread *log order* — two threads may
//! append their records in the opposite order of their CASes. Instead it
//! derives the happens-before relation from what the protocol events
//! *say*:
//!
//! * **program order** — each thread's own records, in log order;
//! * `EpochPublish(pool, e)` → every `ClaimAcquire(pool, e, _)` (the claim
//!   CAS acquire-reads the word the publish release-stored);
//! * `ClaimAcquire(pool, e, i)` → `ClaimAcquire(pool, e, i+1)` (each CAS
//!   in the word's release sequence reads the previous one);
//! * `FinishIndex(pool, e, k)` → `FinishIndex(pool, e, k+1)` (the AcqRel
//!   `fetch_add` chain on `done`);
//! * the last `FinishIndex(pool, e, _)` → `PoolJoin(pool, e)` (the
//!   submitter's acquire-load of `done == njobs`);
//! * `ReducePost(id)` → `ReduceComplete(id)`.
//!
//! Note what is *absent*: claiming index `i` orders the claim **events**,
//! not the closure bodies that follow them — chunk bodies of one job are
//! genuinely concurrent, which is exactly why overlapping `DisjointMut`
//! writes inside one job are races. Cross-job ordering flows through
//! finish → join → (program order) → next publish → claim.
//!
//! Events get vector clocks by a Kahn topological pass over this DAG;
//! two buffer accesses race when they touch overlapping ranges of the
//! same buffer from different threads, at least one writes, and neither
//! clock orders the other. Like any dynamic detector, a verdict holds for
//! the *observed* schedule only (a potential race masked by this run's
//! interleaving is not reported); exhaustiveness over schedules is the
//! model checker's job ([`crate::model`]). The pair scan is `O(n²)` per
//! buffer — keep observation windows to a few solver iterations.

use std::collections::HashMap;
use std::fmt;

use pscg_par::sync_trace::{SyncEvent, SyncTrace};

/// One side of a racing pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Recording thread's ordinal.
    pub thread: u64,
    /// First element touched.
    pub lo: usize,
    /// One past the last element touched.
    pub hi: usize,
    /// True for a write.
    pub write: bool,
}

/// Two unordered conflicting accesses to one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Race {
    /// Storage address of the buffer (the kernel engine's `BufId`
    /// identity).
    pub buf: u64,
    /// One access.
    pub first: Access,
    /// The other.
    pub second: Access,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.first.write && self.second.write {
            "write/write"
        } else {
            "read/write"
        };
        write!(
            f,
            "{kind} race on buf {:#x}: thread {} [{}, {}) vs thread {} [{}, {})",
            self.buf,
            self.first.thread,
            self.first.lo,
            self.first.hi,
            self.second.thread,
            self.second.lo,
            self.second.hi
        )
    }
}

/// Outcome of one detection pass.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Records analyzed.
    pub events: usize,
    /// Distinct recording threads seen.
    pub threads: usize,
    /// Unordered conflicting pairs (capped at [`RACE_CAP`]).
    pub races: Vec<Race>,
    /// True when the derived graph had a cycle — a malformed or
    /// hand-tampered trace; ordering is then unreliable and `races` empty.
    pub cyclic: bool,
}

impl RaceReport {
    /// True when the trace is well formed and race-free.
    pub fn ok(&self) -> bool {
        !self.cyclic && self.races.is_empty()
    }
}

/// At most this many races are reported (one unsynchronized buffer can
/// otherwise produce quadratically many pairs).
pub const RACE_CAP: usize = 64;

/// Runs the detector over one drained trace.
pub fn detect_races(trace: &SyncTrace) -> RaceReport {
    let n = trace.records.len();

    // Dense thread ids and per-thread program-order sequence numbers.
    let mut tmap: HashMap<u64, usize> = HashMap::new();
    let mut tix = vec![0usize; n];
    let mut seq = vec![0u32; n];
    let mut next_seq: Vec<u32> = Vec::new();
    for (i, r) in trace.records.iter().enumerate() {
        let nt = tmap.len();
        let t = *tmap.entry(r.thread).or_insert(nt);
        if t == next_seq.len() {
            next_seq.push(0);
        }
        tix[i] = t;
        seq[i] = next_seq[t];
        next_seq[t] += 1;
    }
    let nthreads = tmap.len();

    // Happens-before edges, derived from event data (module docs).
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut last_of_thread: Vec<Option<usize>> = vec![None; nthreads];
    let mut publishes: HashMap<(u64, u32), usize> = HashMap::new();
    let mut claims: HashMap<(u64, u32), Vec<(usize, usize)>> = HashMap::new();
    let mut finishes: HashMap<(u64, u32), Vec<(usize, usize)>> = HashMap::new();
    let mut joins: HashMap<(u64, u32), Vec<usize>> = HashMap::new();
    let mut posts: HashMap<u64, usize> = HashMap::new();
    for (i, r) in trace.records.iter().enumerate() {
        if let Some(p) = last_of_thread[tix[i]] {
            edges.push((p, i));
        }
        last_of_thread[tix[i]] = Some(i);
        match r.event {
            SyncEvent::EpochPublish { pool, epoch, .. } => {
                publishes.insert((pool, epoch), i);
            }
            SyncEvent::ClaimAcquire { pool, epoch, index } => {
                claims.entry((pool, epoch)).or_default().push((index, i));
            }
            SyncEvent::FinishIndex {
                pool,
                epoch,
                done_after,
            } => {
                finishes
                    .entry((pool, epoch))
                    .or_default()
                    .push((done_after, i));
            }
            SyncEvent::PoolJoin { pool, epoch } => {
                joins.entry((pool, epoch)).or_default().push(i);
            }
            SyncEvent::ReducePost { id } => {
                posts.insert(id, i);
            }
            SyncEvent::ReduceComplete { id } => {
                if let Some(&p) = posts.get(&id) {
                    edges.push((p, i));
                }
            }
            SyncEvent::BufRead { .. } | SyncEvent::BufWrite { .. } => {}
        }
    }
    for (key, list) in &mut claims {
        list.sort_unstable();
        if let Some(&p) = publishes.get(key) {
            if let Some(&(_, first)) = list.first() {
                edges.push((p, first));
            }
        }
        for w in list.windows(2) {
            edges.push((w[0].1, w[1].1));
        }
    }
    for (key, list) in &mut finishes {
        list.sort_unstable();
        for w in list.windows(2) {
            edges.push((w[0].1, w[1].1));
        }
        if let Some(&(_, last)) = list.last() {
            for &j in joins.get(key).into_iter().flatten() {
                edges.push((last, j));
            }
        }
    }

    // Kahn topological pass assigning vector clocks: vc[e][t] = the number
    // of thread-t events that happen-before-or-equal e.
    let mut indeg = vec![0usize; n];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &edges {
        succ[a].push(b);
        indeg[b] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut vc: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut done = 0usize;
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        done += 1;
        order.push(i);
        let mut clock = std::mem::take(&mut vc[i]);
        if clock.is_empty() {
            clock = vec![0; nthreads];
        }
        clock[tix[i]] = clock[tix[i]].max(seq[i] + 1);
        for &s in &succ[i] {
            if vc[s].is_empty() {
                vc[s] = vec![0; nthreads];
            }
            for (a, b) in vc[s].iter_mut().zip(&clock) {
                *a = (*a).max(*b);
            }
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
        vc[i] = clock;
    }
    if done < n {
        return RaceReport {
            events: n,
            threads: nthreads,
            races: Vec::new(),
            cyclic: true,
        };
    }

    // Pairwise scan per buffer. `a` happens-before `b` iff b's clock has
    // seen a's own-thread position.
    let hb = |a: usize, b: usize| vc[b][tix[a]] > seq[a];
    let mut by_buf: HashMap<u64, Vec<(usize, Access)>> = HashMap::new();
    for &i in &order {
        let (buf, lo, hi, write) = match trace.records[i].event {
            SyncEvent::BufRead { buf, lo, hi } => (buf, lo, hi, false),
            SyncEvent::BufWrite { buf, lo, hi } => (buf, lo, hi, true),
            _ => continue,
        };
        by_buf.entry(buf).or_default().push((
            i,
            Access {
                thread: trace.records[i].thread,
                lo,
                hi,
                write,
            },
        ));
    }
    let mut races = Vec::new();
    'scan: for (&buf, accs) in &by_buf {
        for (x, &(i, a)) in accs.iter().enumerate() {
            for &(j, b) in &accs[x + 1..] {
                let conflict =
                    (a.write || b.write) && a.thread != b.thread && a.lo < b.hi && b.lo < a.hi;
                if conflict && !hb(i, j) && !hb(j, i) {
                    races.push(Race {
                        buf,
                        first: a,
                        second: b,
                    });
                    if races.len() >= RACE_CAP {
                        break 'scan;
                    }
                }
            }
        }
    }
    RaceReport {
        events: n,
        threads: nthreads,
        races,
        cyclic: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscg_par::sync_trace::{SyncRecord, SyncTrace};

    fn rec(thread: u64, event: SyncEvent) -> SyncRecord {
        SyncRecord { thread, event }
    }

    /// A faithful two-thread pool job: publish, two claims, disjoint
    /// writes, finishes, join. The protocol orders everything that must be
    /// ordered and the writes are disjoint: clean.
    fn protocol_trace(lo_hi_a: (usize, usize), lo_hi_b: (usize, usize)) -> SyncTrace {
        SyncTrace {
            records: vec![
                rec(
                    0,
                    SyncEvent::EpochPublish {
                        pool: 7,
                        epoch: 1,
                        njobs: 2,
                    },
                ),
                rec(
                    0,
                    SyncEvent::ClaimAcquire {
                        pool: 7,
                        epoch: 1,
                        index: 0,
                    },
                ),
                rec(
                    0,
                    SyncEvent::BufWrite {
                        buf: 0x1000,
                        lo: lo_hi_a.0,
                        hi: lo_hi_a.1,
                    },
                ),
                rec(
                    0,
                    SyncEvent::FinishIndex {
                        pool: 7,
                        epoch: 1,
                        done_after: 1,
                    },
                ),
                rec(
                    1,
                    SyncEvent::ClaimAcquire {
                        pool: 7,
                        epoch: 1,
                        index: 1,
                    },
                ),
                rec(
                    1,
                    SyncEvent::BufWrite {
                        buf: 0x1000,
                        lo: lo_hi_b.0,
                        hi: lo_hi_b.1,
                    },
                ),
                rec(
                    1,
                    SyncEvent::FinishIndex {
                        pool: 7,
                        epoch: 1,
                        done_after: 2,
                    },
                ),
                rec(0, SyncEvent::PoolJoin { pool: 7, epoch: 1 }),
            ],
        }
    }

    #[test]
    fn disjoint_chunk_writes_are_clean() {
        let r = detect_races(&protocol_trace((0, 8), (8, 16)));
        assert!(r.ok(), "{:?}", r.races);
        assert_eq!(r.threads, 2);
    }

    #[test]
    fn overlapping_chunk_writes_of_one_job_race() {
        // Claiming orders the claim events, not the closure bodies:
        // overlapping DisjointMut ranges violate the caller contract and
        // must be reported even inside one properly-dispatched job.
        let r = detect_races(&protocol_trace((0, 9), (8, 16)));
        assert_eq!(r.races.len(), 1);
        assert!(r.races[0].first.write && r.races[0].second.write);
    }

    #[test]
    fn unsynchronized_cross_thread_writes_race() {
        let t = SyncTrace {
            records: vec![
                rec(
                    0,
                    SyncEvent::BufWrite {
                        buf: 0x2000,
                        lo: 0,
                        hi: 4,
                    },
                ),
                rec(
                    1,
                    SyncEvent::BufWrite {
                        buf: 0x2000,
                        lo: 2,
                        hi: 6,
                    },
                ),
            ],
        };
        let r = detect_races(&t);
        assert_eq!(r.races.len(), 1);
    }

    #[test]
    fn cross_job_accesses_are_ordered_through_join_and_publish() {
        // Job 1: thread 1 writes the buffer. Join on thread 0, then job 2:
        // thread 1 reads it. Ordering flows finish → join → (program
        // order) → publish → claim: no race, though neither access is
        // program-ordered with the other thread's.
        let t = SyncTrace {
            records: vec![
                rec(
                    0,
                    SyncEvent::EpochPublish {
                        pool: 3,
                        epoch: 1,
                        njobs: 1,
                    },
                ),
                rec(
                    1,
                    SyncEvent::ClaimAcquire {
                        pool: 3,
                        epoch: 1,
                        index: 0,
                    },
                ),
                rec(
                    1,
                    SyncEvent::BufWrite {
                        buf: 0x3000,
                        lo: 0,
                        hi: 8,
                    },
                ),
                rec(
                    1,
                    SyncEvent::FinishIndex {
                        pool: 3,
                        epoch: 1,
                        done_after: 1,
                    },
                ),
                rec(0, SyncEvent::PoolJoin { pool: 3, epoch: 1 }),
                rec(
                    0,
                    SyncEvent::EpochPublish {
                        pool: 3,
                        epoch: 2,
                        njobs: 1,
                    },
                ),
                rec(
                    2,
                    SyncEvent::ClaimAcquire {
                        pool: 3,
                        epoch: 2,
                        index: 0,
                    },
                ),
                rec(
                    2,
                    SyncEvent::BufRead {
                        buf: 0x3000,
                        lo: 0,
                        hi: 8,
                    },
                ),
                rec(
                    2,
                    SyncEvent::FinishIndex {
                        pool: 3,
                        epoch: 2,
                        done_after: 1,
                    },
                ),
                rec(0, SyncEvent::PoolJoin { pool: 3, epoch: 2 }),
            ],
        };
        let r = detect_races(&t);
        assert!(r.ok(), "{:?}", r.races);
    }

    #[test]
    fn reduce_post_complete_orders_across_threads() {
        let ordered = SyncTrace {
            records: vec![
                rec(
                    0,
                    SyncEvent::BufWrite {
                        buf: 0x4000,
                        lo: 0,
                        hi: 8,
                    },
                ),
                rec(0, SyncEvent::ReducePost { id: 42 }),
                rec(1, SyncEvent::ReduceComplete { id: 42 }),
                rec(
                    1,
                    SyncEvent::BufRead {
                        buf: 0x4000,
                        lo: 0,
                        hi: 8,
                    },
                ),
            ],
        };
        assert!(detect_races(&ordered).ok());
        let unordered = SyncTrace {
            records: vec![
                rec(
                    0,
                    SyncEvent::BufWrite {
                        buf: 0x4000,
                        lo: 0,
                        hi: 8,
                    },
                ),
                rec(
                    1,
                    SyncEvent::BufRead {
                        buf: 0x4000,
                        lo: 0,
                        hi: 8,
                    },
                ),
            ],
        };
        assert_eq!(detect_races(&unordered).races.len(), 1);
    }

    #[test]
    fn concurrent_reads_never_race() {
        let t = SyncTrace {
            records: vec![
                rec(
                    0,
                    SyncEvent::BufRead {
                        buf: 0x5000,
                        lo: 0,
                        hi: 8,
                    },
                ),
                rec(
                    1,
                    SyncEvent::BufRead {
                        buf: 0x5000,
                        lo: 0,
                        hi: 8,
                    },
                ),
            ],
        };
        assert!(detect_races(&t).ok());
    }

    #[test]
    fn log_order_is_not_trusted_across_threads() {
        // Thread 1's claim is *logged before* the publish (append-order
        // skew), but the data still orders publish → claim → write, and
        // the join → second access. Still clean: the detector read the
        // epochs, not the log positions.
        let t = SyncTrace {
            records: vec![
                rec(
                    1,
                    SyncEvent::ClaimAcquire {
                        pool: 9,
                        epoch: 1,
                        index: 0,
                    },
                ),
                rec(
                    0,
                    SyncEvent::EpochPublish {
                        pool: 9,
                        epoch: 1,
                        njobs: 1,
                    },
                ),
                rec(
                    1,
                    SyncEvent::BufWrite {
                        buf: 0x6000,
                        lo: 0,
                        hi: 4,
                    },
                ),
                rec(
                    1,
                    SyncEvent::FinishIndex {
                        pool: 9,
                        epoch: 1,
                        done_after: 1,
                    },
                ),
                rec(0, SyncEvent::PoolJoin { pool: 9, epoch: 1 }),
                rec(
                    0,
                    SyncEvent::BufRead {
                        buf: 0x6000,
                        lo: 0,
                        hi: 4,
                    },
                ),
            ],
        };
        assert!(detect_races(&t).ok());
    }

    #[test]
    fn tampered_cyclic_trace_is_reported_not_crashed() {
        // Publish program-order-after a claim of its own epoch on the same
        // thread: the derived graph is cyclic.
        let t = SyncTrace {
            records: vec![
                rec(
                    0,
                    SyncEvent::ClaimAcquire {
                        pool: 1,
                        epoch: 1,
                        index: 0,
                    },
                ),
                rec(
                    0,
                    SyncEvent::EpochPublish {
                        pool: 1,
                        epoch: 1,
                        njobs: 1,
                    },
                ),
            ],
        };
        let r = detect_races(&t);
        assert!(r.cyclic);
        assert!(!r.ok());
    }
}

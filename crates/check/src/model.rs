//! Exhaustive-interleaving model checker for the pool dispatch protocol.
//!
//! The model transcribes `pscg_par`'s `Pool::run` / `worker_loop` /
//! `claim_index` / `finish_index` into a finite transition system, one
//! transition per *observable atomic action*: a mutex acquire/release, one
//! atomic load-or-RMW, a condvar park (atomic release-and-wait), or a
//! notify. Lock-protected field updates that no other thread can observe
//! mid-flight are merged into one transition; the three atomics the
//! protocol reads without the lock (`claim`, `done`, and the claim-word
//! CAS) are kept as separate steps, because their interleavings against a
//! concurrent publish are exactly where the protocol can break. The
//! submitter's `while done < njobs { wait }` is split into a check step and
//! a park step so the lost-wakeup window that the lock closes is
//! reachable in the model.
//!
//! A [`Scenario`] bounds the configuration: which threads submit which job
//! sequences (thread 0 owns the pool and models `Drop`'s shutdown+join at
//! the end; a second submitter is a *contender* exercising the
//! `try_lock`-failure inline fallback), plus how many workers the pool
//! spawned. [`check`] then explores every reachable interleaving by DFS
//! with state memoization and reports:
//!
//! * [`Finding::DuplicateExecution`] — some job index ran twice;
//! * [`Finding::LostIndex`] — a `run` call returned with an index unrun;
//! * [`Finding::Deadlock`] — a reachable state with live threads but no
//!   enabled transition;
//! * [`Finding::StateCap`] — exploration hit the state bound (never on the
//!   shipped scenarios; a guard against model regressions, not a verdict).
//!
//! Model fidelity limits, stated rather than hidden: condvar wakeups are
//! never spurious (the code's `while`-loop re-checks make spurious wakeups
//! benign, so omitting them loses no bugs), `compare_exchange_weak`'s
//! spurious failure is not modeled (it only adds retries of a pure load,
//! i.e. cycles with no new observable states), and epochs do not wrap
//! (bounded scenarios stay far below `u32::MAX`).

use std::collections::HashSet;
use std::fmt;

/// Which protocol variant to check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The shipped protocol, transcribed faithfully.
    Correct,
    /// Seeded bug: the last finisher notifies `done_cv` *without* taking
    /// the state lock first. The notify can then fire between the
    /// submitter's `done` check and its park — the classic lost wakeup the
    /// real `finish_index` locks against — and the checker must find the
    /// resulting deadlock.
    #[cfg(feature = "broken-par")]
    NoLockNotify,
    /// Seeded bug: `claim_index` skips the epoch check, so a worker still
    /// draining the previous job's claim loop can claim an index of the
    /// *new* claim word and run its **old** closure on it. The checker
    /// must find the duplicated old index and the lost new one.
    #[cfg(feature = "broken-par")]
    StaleEpochClaim,
}

/// A bounded configuration for the checker.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Name shown in reports.
    pub name: &'static str,
    /// One entry per submitting thread: the `njobs` of each job it submits
    /// in order. Thread 0 owns the pool (its model thread also performs the
    /// shutdown/join of `Drop`); any further submitters are contenders
    /// whose `try_lock` may fail into the inline fallback.
    pub scripts: Vec<Vec<usize>>,
    /// Worker threads the pool spawned (`Pool::new(workers + 1)`).
    pub workers: usize,
}

/// One property violation found during exploration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Finding {
    /// Job index `index` of job `job` executed more than once.
    DuplicateExecution {
        /// Global job number (scenario submission order).
        job: u8,
        /// The duplicated index.
        index: u8,
    },
    /// A `run` call completed while `index` of its job never executed.
    LostIndex {
        /// Global job number (scenario submission order).
        job: u8,
        /// The index that never ran.
        index: u8,
    },
    /// A reachable state has unterminated threads but no enabled
    /// transition.
    Deadlock {
        /// Threads not yet terminated in the stuck state.
        live: usize,
    },
    /// Exploration stopped at the state bound before exhausting the space.
    StateCap,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::DuplicateExecution { job, index } => {
                write!(f, "job {job} index {index} executed more than once")
            }
            Finding::LostIndex { job, index } => {
                write!(f, "job {job} completed with index {index} never executed")
            }
            Finding::Deadlock { live } => {
                write!(f, "deadlock: {live} live thread(s), no enabled transition")
            }
            Finding::StateCap => write!(f, "state bound hit before exhausting the space"),
        }
    }
}

/// Result of checking one scenario.
#[derive(Debug, Clone)]
pub struct Report {
    /// Scenario name.
    pub scenario: &'static str,
    /// Distinct states visited.
    pub states: usize,
    /// Deduplicated property violations (empty = verified at this bound).
    pub findings: Vec<Finding>,
}

impl Report {
    /// True when exploration finished with no violation.
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Per-thread program counter. Names follow the code: `Pub*` is the
/// publish block of `Pool::run`, `Join*` its completion wait, `W*` the
/// worker loop, `Shut*` the owner's `Drop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// Submitter between jobs (next job at `script_pos`, or script done).
    Idle,
    /// `submit.try_lock()` — success dispatches, failure runs inline.
    TrySubmit,
    /// Inline fallback / small-job path: next index to run.
    InlineExec(u8),
    /// Blocked acquiring the state mutex to publish.
    LockPublish,
    /// `st.epoch += 1` (lock held).
    PubEpoch,
    /// `done.store(0)` — atomic, visible without the lock.
    PubDone,
    /// `claim.store(epoch << 32)` — atomic, visible without the lock.
    PubClaim,
    /// `st.job = Some(..); work_cv.notify_all()` (lock held).
    PubJob,
    /// Release the state mutex; fall into the claim loop.
    PubUnlock,
    /// One `claim_index` attempt: epoch check + bounds check + CAS.
    ClaimCas,
    /// Run the claimed index.
    Execute,
    /// `done.fetch_add(1)` of `finish_index`.
    FinishAdd,
    /// Last finisher: blocked acquiring the state mutex before notifying.
    FinishLock,
    /// `done_cv.notify_all()` (+ release, when the lock is held).
    FinishNotify,
    /// Submitter blocked acquiring the state mutex to wait for completion.
    JoinLock,
    /// `done < njobs`? (lock held; atomic load).
    JoinCheck,
    /// About to park on `done_cv` — the check passed but the wait has not
    /// yet atomically released the lock. The lost-wakeup window.
    JoinParkPending,
    /// Parked on `done_cv`.
    JoinParked,
    /// `st.job = None` + release (lock held; nothing observable between).
    ClearJob,
    /// Drop the submit guard.
    ReleaseSubmit,
    /// Owner blocked acquiring the state mutex for shutdown.
    ShutLock,
    /// `st.shutdown = true; work_cv.notify_all()` + release.
    ShutSet,
    /// Owner joining workers (enabled once all have terminated).
    ShutJoin,
    /// Worker blocked acquiring the state mutex.
    WLock,
    /// Worker inner loop: shutdown? new epoch? job? else park.
    WCheck,
    /// Parked on `work_cv`.
    WParked,
    /// Thread exited.
    Terminated,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Thread {
    phase: Phase,
    /// Worker's `seen_epoch`.
    seen_epoch: u32,
    /// Epoch of the job this thread is dispatching/draining.
    cur_epoch: u32,
    /// Global job number of that job.
    cur_job: u8,
    /// Its index space.
    cur_njobs: u8,
    /// Index claimed by the last successful CAS.
    claimed: u8,
    /// Next script entry (submitters).
    script_pos: u8,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    /// `State::epoch` (lock-protected).
    epoch: u32,
    /// `State::job` slot: `(job, njobs)` (lock-protected).
    job: Option<(u8, u8)>,
    /// `State::shutdown` (lock-protected).
    shutdown: bool,
    /// Claim-word epoch tag (atomic).
    claim_epoch: u32,
    /// Claim-word next index (atomic).
    claim_next: u8,
    /// `done` counter (atomic).
    done: u8,
    /// State-mutex holder.
    state_lock: Option<u8>,
    /// Submit-mutex holder.
    submit_lock: Option<u8>,
    threads: Vec<Thread>,
    /// Execution count per `(job, index)`, saturating at 3.
    exec: Vec<u8>,
}

/// Exploration stops (with [`Finding::StateCap`]) past this many states.
const STATE_CAP: usize = 4_000_000;

struct System {
    scripts: Vec<Vec<usize>>,
    workers: usize,
    nthreads: usize,
    /// Global job number of each submitter's first job.
    job_base: Vec<u8>,
    /// Widest index space in the scenario (exec-table stride).
    maxn: usize,
    variant: Variant,
}

impl System {
    fn new(scenario: &Scenario, variant: Variant) -> System {
        let mut job_base = Vec::with_capacity(scenario.scripts.len());
        let mut next = 0u8;
        for script in &scenario.scripts {
            job_base.push(next);
            next += script.len() as u8;
        }
        let maxn = scenario
            .scripts
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(0)
            .max(1);
        System {
            scripts: scenario.scripts.clone(),
            workers: scenario.workers,
            nthreads: scenario.scripts.len() + scenario.workers,
            job_base,
            maxn,
            variant,
        }
    }

    fn initial(&self) -> State {
        let total_jobs: usize = self.scripts.iter().map(Vec::len).sum();
        let threads = (0..self.nthreads)
            .map(|tid| Thread {
                phase: if tid < self.scripts.len() {
                    Phase::Idle
                } else {
                    Phase::WLock
                },
                seen_epoch: 0,
                cur_epoch: 0,
                cur_job: 0,
                cur_njobs: 0,
                claimed: 0,
                script_pos: 0,
            })
            .collect();
        State {
            epoch: 0,
            job: None,
            shutdown: false,
            claim_epoch: 0,
            claim_next: 0,
            done: 0,
            state_lock: None,
            submit_lock: None,
            threads,
            exec: vec![0; total_jobs * self.maxn],
        }
    }

    fn is_worker(&self, tid: usize) -> bool {
        tid >= self.scripts.len()
    }

    fn all_terminated(&self, st: &State) -> bool {
        st.threads.iter().all(|t| t.phase == Phase::Terminated)
    }

    /// Bump the execution count of `(job, index)`; a second execution is a
    /// violation.
    fn exec_index(&self, st: &mut State, job: u8, index: u8) -> Option<Finding> {
        let slot = &mut st.exec[job as usize * self.maxn + index as usize];
        *slot = (*slot + 1).min(3);
        (*slot == 2).then_some(Finding::DuplicateExecution { job, index })
    }

    /// `run` returned for `job`: every index must have executed.
    fn complete_job(&self, st: &State, job: u8, njobs: u8) -> Option<Finding> {
        (0..njobs)
            .find(|&i| st.exec[job as usize * self.maxn + i as usize] == 0)
            .map(|index| Finding::LostIndex { job, index })
    }

    /// Blocked-mutex acquire: enabled only when the lock is free.
    fn acquire_state(
        &self,
        st: &State,
        tid: usize,
        next: Phase,
    ) -> Option<(State, Option<Finding>)> {
        if st.state_lock.is_some() {
            return None;
        }
        let mut s = st.clone();
        s.state_lock = Some(tid as u8);
        s.threads[tid].phase = next;
        Some((s, None))
    }

    fn wake(st: &mut State, parked: Phase, to: Phase) {
        for t in &mut st.threads {
            if t.phase == parked {
                t.phase = to;
            }
        }
    }

    /// The (at most one) enabled transition of thread `tid`, or `None` if
    /// it is blocked or terminated.
    fn step(&self, st: &State, tid: usize) -> Option<(State, Option<Finding>)> {
        let t = &st.threads[tid];
        match t.phase {
            Phase::Terminated | Phase::JoinParked | Phase::WParked => None,

            Phase::Idle => {
                let script = &self.scripts[tid];
                if (t.script_pos as usize) < script.len() {
                    let njobs = script[t.script_pos as usize];
                    let mut s = st.clone();
                    let th = &mut s.threads[tid];
                    th.cur_job = self.job_base[tid] + t.script_pos;
                    th.cur_njobs = njobs as u8;
                    th.script_pos += 1;
                    // `njobs <= 1 || self.workers.is_empty()` short-circuit.
                    th.phase = if njobs <= 1 || self.workers == 0 {
                        Phase::InlineExec(0)
                    } else {
                        Phase::TrySubmit
                    };
                    Some((s, None))
                } else if tid != 0 {
                    // A contender's scope ends; the owner's join below
                    // models the borrow of the pool outliving it.
                    let mut s = st.clone();
                    s.threads[tid].phase = Phase::Terminated;
                    Some((s, None))
                } else if (1..self.scripts.len()).all(|i| st.threads[i].phase == Phase::Terminated)
                {
                    // `Drop` runs only after every borrower is gone.
                    let mut s = st.clone();
                    s.threads[tid].phase = Phase::ShutLock;
                    Some((s, None))
                } else {
                    None
                }
            }

            Phase::TrySubmit => {
                let mut s = st.clone();
                if st.submit_lock.is_none() {
                    s.submit_lock = Some(tid as u8);
                    s.threads[tid].phase = Phase::LockPublish;
                } else {
                    // Nested/concurrent submission: inline fallback.
                    s.threads[tid].phase = Phase::InlineExec(0);
                }
                Some((s, None))
            }

            Phase::InlineExec(i) => {
                let mut s = st.clone();
                if i < t.cur_njobs {
                    let f = self.exec_index(&mut s, t.cur_job, i);
                    s.threads[tid].phase = Phase::InlineExec(i + 1);
                    Some((s, f))
                } else {
                    let f = self.complete_job(&s, t.cur_job, t.cur_njobs);
                    s.threads[tid].phase = Phase::Idle;
                    Some((s, f))
                }
            }

            Phase::LockPublish => self.acquire_state(st, tid, Phase::PubEpoch),

            Phase::PubEpoch => {
                let mut s = st.clone();
                s.epoch += 1;
                s.threads[tid].cur_epoch = s.epoch;
                s.threads[tid].phase = Phase::PubDone;
                Some((s, None))
            }

            Phase::PubDone => {
                let mut s = st.clone();
                s.done = 0;
                s.threads[tid].phase = Phase::PubClaim;
                Some((s, None))
            }

            Phase::PubClaim => {
                let mut s = st.clone();
                s.claim_epoch = t.cur_epoch;
                s.claim_next = 0;
                s.threads[tid].phase = Phase::PubJob;
                Some((s, None))
            }

            Phase::PubJob => {
                let mut s = st.clone();
                s.job = Some((t.cur_job, t.cur_njobs));
                Self::wake(&mut s, Phase::WParked, Phase::WLock);
                s.threads[tid].phase = Phase::PubUnlock;
                Some((s, None))
            }

            Phase::PubUnlock => {
                let mut s = st.clone();
                s.state_lock = None;
                s.threads[tid].phase = Phase::ClaimCas;
                Some((s, None))
            }

            Phase::ClaimCas => {
                let mut s = st.clone();
                let stale_ok = match self.variant {
                    #[cfg(feature = "broken-par")]
                    Variant::StaleEpochClaim => true,
                    _ => false,
                };
                let epoch_match = stale_ok || st.claim_epoch == t.cur_epoch;
                if epoch_match && st.claim_next < t.cur_njobs {
                    s.threads[tid].claimed = st.claim_next;
                    // `cur + 1` keeps the word's epoch bits as-is.
                    s.claim_next += 1;
                    s.threads[tid].phase = Phase::Execute;
                } else {
                    s.threads[tid].phase = if self.is_worker(tid) {
                        Phase::WLock
                    } else {
                        Phase::JoinLock
                    };
                }
                Some((s, None))
            }

            Phase::Execute => {
                let mut s = st.clone();
                let f = self.exec_index(&mut s, t.cur_job, t.claimed);
                s.threads[tid].phase = Phase::FinishAdd;
                Some((s, f))
            }

            Phase::FinishAdd => {
                let mut s = st.clone();
                s.done += 1;
                s.threads[tid].phase = if s.done == t.cur_njobs {
                    match self.variant {
                        #[cfg(feature = "broken-par")]
                        Variant::NoLockNotify => Phase::FinishNotify,
                        _ => Phase::FinishLock,
                    }
                } else {
                    Phase::ClaimCas
                };
                Some((s, None))
            }

            Phase::FinishLock => self.acquire_state(st, tid, Phase::FinishNotify),

            Phase::FinishNotify => {
                let mut s = st.clone();
                Self::wake(&mut s, Phase::JoinParked, Phase::JoinLock);
                if st.state_lock == Some(tid as u8) {
                    s.state_lock = None;
                }
                s.threads[tid].phase = Phase::ClaimCas;
                Some((s, None))
            }

            Phase::JoinLock => self.acquire_state(st, tid, Phase::JoinCheck),

            Phase::JoinCheck => {
                let mut s = st.clone();
                s.threads[tid].phase = if st.done < t.cur_njobs {
                    Phase::JoinParkPending
                } else {
                    Phase::ClearJob
                };
                Some((s, None))
            }

            Phase::JoinParkPending => {
                // `Condvar::wait` releases the lock and parks atomically.
                let mut s = st.clone();
                s.state_lock = None;
                s.threads[tid].phase = Phase::JoinParked;
                Some((s, None))
            }

            Phase::ClearJob => {
                let mut s = st.clone();
                s.job = None;
                s.state_lock = None;
                let f = self.complete_job(&s, t.cur_job, t.cur_njobs);
                s.threads[tid].phase = Phase::ReleaseSubmit;
                Some((s, f))
            }

            Phase::ReleaseSubmit => {
                let mut s = st.clone();
                s.submit_lock = None;
                s.threads[tid].phase = Phase::Idle;
                Some((s, None))
            }

            Phase::ShutLock => self.acquire_state(st, tid, Phase::ShutSet),

            Phase::ShutSet => {
                let mut s = st.clone();
                s.shutdown = true;
                Self::wake(&mut s, Phase::WParked, Phase::WLock);
                s.state_lock = None;
                s.threads[tid].phase = Phase::ShutJoin;
                Some((s, None))
            }

            Phase::ShutJoin => {
                if (0..self.nthreads)
                    .filter(|&i| self.is_worker(i))
                    .all(|i| st.threads[i].phase == Phase::Terminated)
                {
                    let mut s = st.clone();
                    s.threads[tid].phase = Phase::Terminated;
                    Some((s, None))
                } else {
                    None
                }
            }

            Phase::WLock => self.acquire_state(st, tid, Phase::WCheck),

            Phase::WCheck => {
                let mut s = st.clone();
                s.state_lock = None;
                let th = &mut s.threads[tid];
                if st.shutdown {
                    th.phase = Phase::Terminated;
                } else if st.epoch != t.seen_epoch {
                    th.seen_epoch = st.epoch;
                    if let Some((job, njobs)) = st.job {
                        th.cur_job = job;
                        th.cur_njobs = njobs;
                        th.cur_epoch = st.epoch;
                        th.phase = Phase::ClaimCas;
                    } else {
                        // Saw the epoch tick but the slot is already
                        // cleared: back to sleep (next loop iteration finds
                        // `epoch == seen_epoch` and waits).
                        th.phase = Phase::WParked;
                    }
                } else {
                    th.phase = Phase::WParked;
                }
                Some((s, None))
            }
        }
    }
}

/// Explores every reachable interleaving of `scenario` under `variant`.
pub fn check(scenario: &Scenario, variant: Variant) -> Report {
    let sys = System::new(scenario, variant);
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack = vec![sys.initial()];
    let mut findings = Vec::new();
    let mut seen = HashSet::new();
    let mut record = |f: Finding, findings: &mut Vec<Finding>| {
        if seen.insert(f.clone()) {
            findings.push(f);
        }
    };
    while let Some(st) = stack.pop() {
        if visited.len() >= STATE_CAP {
            record(Finding::StateCap, &mut findings);
            break;
        }
        if !visited.insert(st.clone()) {
            continue;
        }
        let mut any = false;
        for tid in 0..sys.nthreads {
            if let Some((next, finding)) = sys.step(&st, tid) {
                any = true;
                if let Some(f) = finding {
                    record(f, &mut findings);
                }
                if !visited.contains(&next) {
                    stack.push(next);
                }
            }
        }
        if !any && !sys.all_terminated(&st) {
            let live = st
                .threads
                .iter()
                .filter(|t| t.phase != Phase::Terminated)
                .count();
            record(Finding::Deadlock { live }, &mut findings);
        }
    }
    Report {
        scenario: scenario.name,
        states: visited.len(),
        findings,
    }
}

/// The bounded configurations the protocol is verified at. Together they
/// cover: single-job dispatch, sequential epochs (stale-worker claims),
/// three-lane claiming, the contender inline fallback (and the
/// both-parallel sequentialization when `try_lock` succeeds), the
/// small-job inline path, and the workerless pool.
pub fn standard_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "1sub+1worker, one 2-index job",
            scripts: vec![vec![2]],
            workers: 1,
        },
        Scenario {
            name: "1sub+1worker, two 2-index jobs (epoch reuse)",
            scripts: vec![vec![2, 2]],
            workers: 1,
        },
        Scenario {
            name: "1sub+2workers, one 3-index job",
            scripts: vec![vec![3]],
            workers: 2,
        },
        Scenario {
            name: "1sub+1worker, 1-index then 2-index job (small-inline)",
            scripts: vec![vec![1, 2]],
            workers: 1,
        },
        Scenario {
            name: "2 submitters+1worker (contender fallback)",
            scripts: vec![vec![2], vec![2]],
            workers: 1,
        },
        Scenario {
            name: "2 submitters, no workers (workerless inline)",
            scripts: vec![vec![2], vec![2]],
            workers: 0,
        },
    ]
}

/// Runs [`check`] on every standard scenario.
pub fn check_all(variant: Variant) -> Vec<Report> {
    standard_scenarios()
        .iter()
        .map(|s| check(s, variant))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_protocol_verifies_at_every_bounded_config() {
        for report in check_all(Variant::Correct) {
            assert!(
                report.ok(),
                "{}: {:?} ({} states)",
                report.scenario,
                report.findings,
                report.states
            );
            // The workerless scenario is nearly sequential; the rest must
            // branch into real interleavings.
            let floor = if report.scenario.contains("no workers") {
                10
            } else {
                200
            };
            assert!(
                report.states > floor,
                "{}: suspiciously small ({} states)",
                report.scenario,
                report.states
            );
        }
    }

    #[test]
    fn exploration_is_deterministic() {
        let s = &standard_scenarios()[0];
        let a = check(s, Variant::Correct);
        let b = check(s, Variant::Correct);
        assert_eq!(a.states, b.states);
    }

    #[test]
    fn epoch_reuse_scenario_reaches_a_nontrivial_space() {
        // The two-job scenario must actually exercise stale-worker claim
        // attempts: it explores strictly more states than the one-job one.
        let one = check(&standard_scenarios()[0], Variant::Correct);
        let two = check(&standard_scenarios()[1], Variant::Correct);
        assert!(two.states > one.states);
    }
}

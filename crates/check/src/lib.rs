//! Concurrency verification for the par engine (DESIGN.md §9).
//!
//! Two complementary tools, both std-only and offline:
//!
//! * [`model`] — an exhaustive-interleaving model checker for the
//!   epoch-tagged claim-word dispatch protocol of `pscg_par::Pool`. The
//!   protocol is transcribed into a finite transition system at atomic-step
//!   granularity and every reachable interleaving of bounded configurations
//!   (≤3 threads, ≤4 jobs) is explored, checking exactly-once execution,
//!   absence of deadlock, and termination. The `broken-par` feature seeds
//!   two protocol bugs the checker must flag — the negative control that
//!   keeps the model honest, mirroring the `broken-variants` feature of
//!   `pipescg`.
//! * [`race`] — a vector-clock happens-before race detector over
//!   [`pscg_par::sync_trace`] recordings of real executions: it derives the
//!   protocol's ordering edges from event *data* (epochs, claim indices,
//!   done counts), assigns vector clocks in topological order, and reports
//!   unordered conflicting accesses to shared kernel buffers.
//!
//! The division of labor is deliberate: the race detector sees real code
//! but only one schedule per run; the model checker sees every schedule
//! but only a model. A protocol change must keep both green.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod model;
pub mod race;

pub use model::{check, check_all, standard_scenarios, Finding, Report, Scenario, Variant};
pub use race::{detect_races, Access, Race, RaceReport};

//! Prints the explored state count and findings of every standard
//! scenario — a quick way to eyeball the model's reach after editing it:
//!
//! ```text
//! cargo run -p pscg-check --example states
//! cargo run -p pscg-check --example states --features broken-par
//! ```

fn main() {
    for r in pscg_check::check_all(pscg_check::Variant::Correct) {
        println!(
            "{:60} {:8} states, findings {:?}",
            r.scenario, r.states, r.findings
        );
    }
}

//! Debug-mode numerical probes over the recorded residual history.
//!
//! These complement the live probes in `SimCtx::enable_probes` (which panic
//! at the moment of corruption): here the same conditions are checked
//! after the fact, over a finished trace, so the analyzer can report them
//! alongside schedule hazards instead of aborting the run.

use pscg_sim::{Op, OpTrace};

/// A numerical red flag in the residual history.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeFinding {
    /// A convergence check saw a NaN or infinite relative residual.
    NonFiniteResidual {
        /// Trace index of the offending `ResCheck`.
        at: usize,
        /// The recorded value.
        relres: f64,
    },
    /// The best residual seen did not improve for `window` consecutive
    /// convergence checks — the monotone-stagnation signature of a
    /// corrupted recurrence (or of a genuinely stalled Krylov process;
    /// the probe cannot tell these apart, which is why findings are
    /// reported, not treated as hazards).
    Stagnation {
        /// Trace index of the check that completed the stagnant window.
        at: usize,
        /// Number of consecutive non-improving checks.
        window: usize,
        /// Best relative residual at that point.
        best: f64,
    },
}

impl std::fmt::Display for ProbeFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeFinding::NonFiniteResidual { at, relres } => {
                write!(f, "op {at}: non-finite relative residual {relres}")
            }
            ProbeFinding::Stagnation { at, window, best } => write!(
                f,
                "op {at}: best residual {best:.3e} unimproved for {window} checks"
            ),
        }
    }
}

/// Scans the `ResCheck` stream of a trace. `stagnation_window` is the
/// number of consecutive non-improving checks that counts as stagnation;
/// after a finding the counter resets, so a long stall yields one finding
/// per full window rather than one per check.
pub fn scan(trace: &OpTrace, stagnation_window: usize) -> Vec<ProbeFinding> {
    assert!(stagnation_window > 0, "stagnation window must be positive");
    let mut out = Vec::new();
    let mut best = f64::INFINITY;
    let mut stale = 0usize;
    for (i, op) in trace.ops.iter().enumerate() {
        let relres = match *op {
            Op::ResCheck { relres } => relres,
            _ => continue,
        };
        if !relres.is_finite() {
            out.push(ProbeFinding::NonFiniteResidual { at: i, relres });
            continue;
        }
        if relres < best {
            best = relres;
            stale = 0;
        } else {
            stale += 1;
            if stale >= stagnation_window {
                out.push(ProbeFinding::Stagnation {
                    at: i,
                    window: stale,
                    best,
                });
                stale = 0;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(residuals: &[f64]) -> OpTrace {
        let mut t = OpTrace::new(8);
        for &r in residuals {
            t.push(Op::ResCheck { relres: r });
        }
        t
    }

    #[test]
    fn converging_history_is_clean() {
        let t = trace_of(&[1.0, 0.5, 0.6, 0.4, 0.1]);
        assert!(scan(&t, 3).is_empty());
    }

    #[test]
    fn nan_and_inf_are_reported() {
        let t = trace_of(&[1.0, f64::NAN, f64::INFINITY, 0.5]);
        let f = scan(&t, 10);
        assert_eq!(f.len(), 2);
        assert!(matches!(
            f[0],
            ProbeFinding::NonFiniteResidual { at: 1, .. }
        ));
        assert!(matches!(
            f[1],
            ProbeFinding::NonFiniteResidual { at: 2, .. }
        ));
    }

    #[test]
    fn stagnation_fires_once_per_window() {
        // 1 improving check, then 6 flat ones: windows of 3 fire at the
        // 3rd and 6th flat check.
        let t = trace_of(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let f = scan(&t, 3);
        assert_eq!(f.len(), 2);
        assert!(matches!(
            f[0],
            ProbeFinding::Stagnation {
                at: 3,
                window: 3,
                ..
            }
        ));
        assert!(matches!(
            f[1],
            ProbeFinding::Stagnation {
                at: 6,
                window: 3,
                ..
            }
        ));
    }
}

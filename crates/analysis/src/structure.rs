//! Structural Table I verification: does a trace have the communication
//! *shape* the paper claims for its method?
//!
//! Table I's claims are timing-free: how many allreduces per `s` steps,
//! whether they block, and which kernels overlap a pending reduction
//! (PIPE-sCG hides `s` SPMVs, PIPE-PsCG hides `s` PCs + `s` SPMVs, PCG's
//! dots serialize the pipeline entirely). Each [`MethodShape`] encodes one
//! row; [`verify`] checks a recorded trace against it.
//!
//! The shapes are cross-checked against `pipescg::costmodel::table1()` in
//! this module's tests, so the analyzer and the cost model cannot drift
//! apart silently.

use crate::dag::ScheduleDag;
use pipescg::methods::MethodKind;
use pscg_sim::{Op, OpTrace};

/// Allreduce discipline of a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pipeline {
    /// Every reduction blocks; no overlap window may appear. `per_pass` is
    /// the number of blocking allreduces per loop pass (PCG: 3 — its dots
    /// serialize the pipeline; the s-step methods: 1 fused reduction).
    Blocking {
        /// Blocking allreduces per loop pass.
        per_pass: usize,
    },
    /// One non-blocking reduction per pass, overlapped with exactly this
    /// kernel mix.
    Overlapped {
        /// SPMV applications inside every overlap window.
        window_spmvs: usize,
        /// Preconditioner applications inside every overlap window.
        window_pcs: usize,
    },
    /// Phased mixture (the hybrid driver): windows must still hide real
    /// work, but the cadence switches mid-solve and is not checked.
    Mixed,
}

/// The Table I shape of one method at a given `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodShape {
    /// Matching row name in `costmodel::table1()`, when the paper's table
    /// has one (it omits sCG, sCG-sSPMV, PIPE-sCG, CG3 and the hybrid).
    pub table_row: Option<&'static str>,
    /// CG steps advanced per loop pass (per convergence check).
    pub steps_per_pass: usize,
    /// Reduction discipline.
    pub pipeline: Pipeline,
}

impl MethodShape {
    /// The shape of `kind` at s-step parameter `s` (ignored by the classic
    /// and depth-2 methods, exactly as their solvers ignore `opts.s`).
    pub fn of(kind: MethodKind, s: usize) -> MethodShape {
        use MethodKind::*;
        let (table_row, steps_per_pass, pipeline) = match kind {
            Pcg => (Some("PCG"), 1, Pipeline::Blocking { per_pass: 3 }),
            Cg3 => (None, 1, Pipeline::Blocking { per_pass: 1 }),
            Pipecg => (
                Some("PIPECG"),
                1,
                Pipeline::Overlapped {
                    window_spmvs: 1,
                    window_pcs: 1,
                },
            ),
            Pipecg3 => (
                Some("PIPECG3"),
                2,
                Pipeline::Overlapped {
                    window_spmvs: 2,
                    window_pcs: 2,
                },
            ),
            PipecgOati => (
                Some("PIPECG-OATI"),
                2,
                Pipeline::Overlapped {
                    window_spmvs: 2,
                    window_pcs: 2,
                },
            ),
            Scg => (None, s, Pipeline::Blocking { per_pass: 1 }),
            ScgSspmv => (None, s, Pipeline::Blocking { per_pass: 1 }),
            Pscg => (Some("PsCG"), s, Pipeline::Blocking { per_pass: 1 }),
            PipeScg => (
                None,
                s,
                Pipeline::Overlapped {
                    window_spmvs: s,
                    window_pcs: 0,
                },
            ),
            PipePscg => (
                Some("PIPE-PsCG"),
                s,
                Pipeline::Overlapped {
                    window_spmvs: s,
                    window_pcs: s,
                },
            ),
            Hybrid => (None, s, Pipeline::Mixed),
        };
        MethodShape {
            table_row,
            steps_per_pass,
            pipeline,
        }
    }

    /// Closed-form allreduces per `s` CG steps implied by this shape —
    /// the quantity Table I tabulates.
    pub fn allreduces_per_s_steps(&self, s: usize) -> usize {
        let passes = s.div_ceil(self.steps_per_pass);
        match self.pipeline {
            Pipeline::Blocking { per_pass } => per_pass * passes,
            Pipeline::Overlapped { .. } => passes,
            Pipeline::Mixed => passes,
        }
    }
}

/// One way a trace deviates from its method's Table I shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureViolation {
    /// A blocking-only method posted a non-blocking reduction.
    UnexpectedNonblocking {
        /// Trace index of the post.
        at: usize,
    },
    /// An overlap window hid the wrong kernel mix (e.g. a hoisted wait
    /// leaves the window empty — the pipeline exists in name only).
    WindowShape {
        /// Index of the window in post order.
        window: usize,
        /// Expected `(spmvs, pcs)` inside the window.
        expected: (usize, usize),
        /// Observed `(spmvs, pcs)`.
        got: (usize, usize),
    },
    /// The reduction count disagrees with the Table I cadence beyond the
    /// setup allowance.
    CadenceMismatch {
        /// Reductions the shape predicts for the observed pass count.
        expected: usize,
        /// Reductions observed.
        got: usize,
        /// Convergence-check passes observed.
        passes: usize,
    },
    /// A pipelined method fell back to blocking reductions mid-loop.
    ExcessBlocking {
        /// Blocking allreduces observed.
        got: usize,
        /// Setup allowance.
        allowed: usize,
    },
}

impl std::fmt::Display for StructureViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructureViolation::UnexpectedNonblocking { at } => {
                write!(
                    f,
                    "op {at}: non-blocking reduction in a blocking-only method"
                )
            }
            StructureViolation::WindowShape {
                window,
                expected,
                got,
            } => write!(
                f,
                "window {window}: expected {}+{} SPMVs+PCs overlapped, got {}+{}",
                expected.0, expected.1, got.0, got.1
            ),
            StructureViolation::CadenceMismatch {
                expected,
                got,
                passes,
            } => write!(
                f,
                "cadence: expected ~{expected} reductions over {passes} passes, got {got}"
            ),
            StructureViolation::ExcessBlocking { got, allowed } => write!(
                f,
                "{got} blocking allreduces in a pipelined method (setup allowance {allowed})"
            ),
        }
    }
}

/// Reductions outside the iteration loop that every solver is allowed:
/// reference-norm of `b`, `estimate_sigma`, and initial-residual setup.
const SETUP_ALLOWANCE: usize = 4;

/// Checks a recorded trace against the Table I shape of `kind` at
/// parameter `s`. An empty result means the schedule is structurally
/// exactly what the paper's table claims.
pub fn verify(trace: &OpTrace, kind: MethodKind, s: usize) -> Vec<StructureViolation> {
    let shape = MethodShape::of(kind, s);
    let dag = ScheduleDag::build(trace);
    let mut out = Vec::new();

    let mut passes = 0usize;
    let mut blocking = 0usize;
    let mut posts = 0usize;
    let mut first_post = None;
    for (i, op) in trace.ops.iter().enumerate() {
        match op {
            Op::ResCheck { .. } => passes += 1,
            Op::ArBlocking { .. } => blocking += 1,
            Op::ArPost { .. } => {
                posts += 1;
                first_post.get_or_insert(i);
            }
            _ => {}
        }
    }

    match shape.pipeline {
        Pipeline::Blocking { per_pass } => {
            if let Some(at) = first_post {
                out.push(StructureViolation::UnexpectedNonblocking { at });
            }
            if passes > 0 {
                let expected = per_pass * passes;
                if blocking.abs_diff(expected) > SETUP_ALLOWANCE {
                    out.push(StructureViolation::CadenceMismatch {
                        expected,
                        got: blocking,
                        passes,
                    });
                }
            }
        }
        Pipeline::Overlapped {
            window_spmvs,
            window_pcs,
        } => {
            for (w, window) in dag.windows.iter().enumerate() {
                let k = dag.kernels(trace, window);
                if (k.spmvs, k.pcs) != (window_spmvs, window_pcs) {
                    out.push(StructureViolation::WindowShape {
                        window: w,
                        expected: (window_spmvs, window_pcs),
                        got: (k.spmvs, k.pcs),
                    });
                }
            }
            if passes > 0 && posts.abs_diff(passes) > SETUP_ALLOWANCE {
                out.push(StructureViolation::CadenceMismatch {
                    expected: passes,
                    got: posts,
                    passes,
                });
            }
            if blocking > SETUP_ALLOWANCE {
                out.push(StructureViolation::ExcessBlocking {
                    got: blocking,
                    allowed: SETUP_ALLOWANCE,
                });
            }
        }
        Pipeline::Mixed => {
            // Phase boundaries move, so only the invariant part is checked:
            // every window must hide at least one SPMV.
            for (w, window) in dag.windows.iter().enumerate() {
                let k = dag.kernels(trace, window);
                if k.spmvs == 0 {
                    out.push(StructureViolation::WindowShape {
                        window: w,
                        expected: (1, 0),
                        got: (k.spmvs, k.pcs),
                    });
                }
            }
        }
    }
    out
}

/// [`verify`] for a fault-perturbed trace (one recorded under an active
/// `crates/fault` plan).
///
/// *Delayed* completions (retriable [`Op::ArTimeout`]s) are
/// shape-transparent — the overlap window simply extends to the successful
/// retry and the kernel mix inside it is unchanged — so a delay-only trace
/// is held to the full Table I shape. A *dropped* completion
/// (non-retriable timeout) is different: from that point on the solver is
/// in recovery by design — re-posting reductions, restarting, possibly
/// falling back to a blocking method — so Table I stops being the
/// specification. This function therefore verifies the strict shape on the
/// prefix up to the first drop and leaves the recovery suffix to the
/// hazard analysis ([`crate::analyze`]), which still applies in full.
pub fn verify_faulted(trace: &OpTrace, kind: MethodKind, s: usize) -> Vec<StructureViolation> {
    let first_drop = trace.ops.iter().position(|op| {
        matches!(
            op,
            Op::ArTimeout {
                retriable: false,
                ..
            }
        )
    });
    match first_drop {
        None => verify(trace, kind, s),
        Some(cut) => {
            let prefix = OpTrace {
                nrows: trace.nrows,
                profiles: trace.profiles.clone(),
                ops: trace.ops[..cut].to_vec(),
            };
            verify(&prefix, kind, s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipescg::costmodel::table1;

    /// The analyzer's shapes and the cost model's Table I must agree on
    /// the allreduce cadence for every method the paper tabulates.
    #[test]
    fn shapes_agree_with_cost_model_table1() {
        let rows = table1();
        let kinds = [
            MethodKind::Pcg,
            MethodKind::Pipecg,
            MethodKind::Pipecg3,
            MethodKind::PipecgOati,
            MethodKind::Pscg,
            MethodKind::PipePscg,
        ];
        for s in 1..=8 {
            for kind in kinds {
                let shape = MethodShape::of(kind, s);
                let name = shape.table_row.expect("kind has a table row");
                let row = rows
                    .iter()
                    .find(|r| r.method == name)
                    .unwrap_or_else(|| panic!("no table1 row named {name}"));
                assert_eq!(
                    shape.allreduces_per_s_steps(s),
                    (row.allreduces)(s),
                    "{name} at s={s}"
                );
            }
        }
    }

    /// Every table1 row except PIPELCG (which the repo does not implement;
    /// see ROADMAP.md) must be claimed by some method shape.
    #[test]
    fn every_implemented_table1_row_is_claimed() {
        let claimed: Vec<&str> = [
            MethodKind::Pcg,
            MethodKind::Pipecg,
            MethodKind::Pipecg3,
            MethodKind::PipecgOati,
            MethodKind::Pscg,
            MethodKind::PipePscg,
        ]
        .iter()
        .filter_map(|&k| MethodShape::of(k, 4).table_row)
        .collect();
        for row in table1() {
            if row.method == "PIPELCG" {
                continue;
            }
            assert!(
                claimed.contains(&row.method),
                "unclaimed row {}",
                row.method
            );
        }
    }

    #[test]
    fn empty_window_is_a_shape_violation() {
        use pscg_sim::Op;
        let mut t = OpTrace::new(8);
        t.push(Op::post(0, 2));
        t.push(Op::wait(0));
        t.push(Op::ResCheck { relres: 0.5 });
        let v = verify(&t, MethodKind::Pipecg, 1);
        assert!(v
            .iter()
            .any(|v| matches!(v, StructureViolation::WindowShape { got: (0, 0), .. })));
    }

    #[test]
    fn blocking_method_rejects_posts() {
        use pscg_sim::Op;
        let mut t = OpTrace::new(8);
        t.push(Op::post(0, 2));
        t.push(Op::wait(0));
        let v = verify(&t, MethodKind::Pcg, 1);
        assert_eq!(v, vec![StructureViolation::UnexpectedNonblocking { at: 0 }]);
    }

    /// A delayed completion (retriable timeout inside the window, then the
    /// successful wait) leaves the Table I shape intact, so a delay-only
    /// trace is verified in full and comes back clean.
    #[test]
    fn retriable_timeouts_are_shape_transparent() {
        use pscg_sim::Op;
        let mut t = OpTrace::new(64);
        t.push(Op::post(0, 2));
        t.push(Op::pc(0, 1.0, 8.0, 0));
        t.push(Op::timeout(0, true));
        t.push(Op::spmv(0));
        t.push(Op::wait(0));
        t.push(Op::ResCheck { relres: 0.5 });
        assert!(verify_faulted(&t, MethodKind::Pipecg, 1).is_empty());
    }

    /// After a dropped completion the solver is in recovery, which is not
    /// Table I's specification: `verify_faulted` holds only the prefix up
    /// to the drop to the strict shape, while plain `verify` on the same
    /// trace flags the recovery suffix.
    #[test]
    fn drop_truncates_verification_to_the_prefix() {
        use pscg_sim::Op;
        let mut t = OpTrace::new(64);
        // One clean PIPECG pass.
        t.push(Op::post(0, 2));
        t.push(Op::pc(0, 1.0, 8.0, 0));
        t.push(Op::spmv(0));
        t.push(Op::wait(0));
        t.push(Op::ResCheck { relres: 0.5 });
        // The drop, then a recovery suffix that no longer looks like
        // PIPECG: an empty window and a blocking fallback.
        t.push(Op::post(1, 2));
        t.push(Op::timeout(1, false));
        t.push(Op::post(2, 2));
        t.push(Op::wait(2));
        for _ in 0..SETUP_ALLOWANCE + 1 {
            t.push(Op::blocking(2));
        }
        assert!(verify_faulted(&t, MethodKind::Pipecg, 1).is_empty());
        assert!(!verify(&t, MethodKind::Pipecg, 1).is_empty());
    }
}

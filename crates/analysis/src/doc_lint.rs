//! Lint: the human-written method table in `pipescg::methods`' module docs
//! must agree with `costmodel::table1()`.
//!
//! The doc table (`crates/core/src/methods/mod.rs`) is what a reader sees
//! first; Table I's closed forms are what the cost model computes with. A
//! drift between them — someone edits one and forgets the other — is a
//! documentation bug no test would otherwise catch. This lint parses the
//! markdown table out of the source file, converts each "allreduces per s
//! steps" cell back into a closed form, and evaluates both sides at
//! several `s`.
//!
//! Exposed as a unit test here and as the `lint-table` binary so CI can
//! fail the build on disagreement.
//!
//! The same binary also keeps the *reserved exit-code* doc table in
//! [`crate::exit_codes`] honest ([`check_exit_codes`]): every
//! [`crate::FindingClass`] must appear in that table with its actual code,
//! and the table must not reserve codes the enum does not have.

use pipescg::costmodel::table1;
use std::path::Path;

use crate::FindingClass;

/// The doc table lives in the sibling `pipescg` crate; resolved relative
/// to this crate's manifest so the lint works from any working directory.
const DOC_TABLE_SOURCE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../core/src/methods/mod.rs");

/// One parsed row of the doc table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocRow {
    /// Method name (column 2 of the table, paper spelling).
    pub method: String,
    /// The raw "allreduces per s steps" cell.
    pub cadence: String,
}

/// Parses the markdown table out of the `methods` module docs.
pub fn parse_doc_table(source: &str) -> Vec<DocRow> {
    let mut rows = Vec::new();
    for line in source.lines() {
        let line = line.trim_start();
        let Some(rest) = line.strip_prefix("//! |") else {
            continue;
        };
        let cols: Vec<&str> = rest.split('|').map(str::trim).collect();
        // module | method | paper | allreduces per s steps | overlap
        if cols.len() < 5 || cols[1] == "method" || cols[0].starts_with("---") {
            continue;
        }
        rows.push(DocRow {
            method: cols[1].to_string(),
            cadence: cols[3].to_string(),
        });
    }
    rows
}

/// A cadence closed form in `s`.
pub type Cadence = fn(usize) -> usize;

/// Converts a cadence cell ("3s, blocking", "⌈s/2⌉", "1, non-blocking",
/// "—") into a closed form. `None` means "no claim" (the hybrid's dash);
/// `Err` means the cell is unparseable and the lint must fail.
pub fn cadence_closed_form(cell: &str) -> Result<Option<Cadence>, String> {
    let token = cell.split(',').next().unwrap_or("").trim();
    match token {
        "—" | "-" => Ok(None),
        "3s" => Ok(Some(|s| 3 * s)),
        "s" => Ok(Some(|s| s)),
        "⌈s/2⌉" => Ok(Some(|s| s.div_ceil(2))),
        "1" => Ok(Some(|_| 1)),
        other => Err(format!("unrecognised cadence {other:?} in cell {cell:?}")),
    }
}

/// Runs the lint. `Ok` carries a one-line summary; `Err` carries every
/// disagreement found.
pub fn check() -> Result<String, Vec<String>> {
    let source = std::fs::read_to_string(Path::new(DOC_TABLE_SOURCE))
        .map_err(|e| vec![format!("cannot read {DOC_TABLE_SOURCE}: {e}")])?;
    check_source(&source)
}

/// The lint body, separated from file I/O for testability.
pub fn check_source(source: &str) -> Result<String, Vec<String>> {
    let doc = parse_doc_table(source);
    let rows = table1();
    let mut errors = Vec::new();
    if doc.is_empty() {
        errors.push("no doc table found in methods/mod.rs".to_string());
    }
    let mut compared = 0usize;
    for d in &doc {
        let form = match cadence_closed_form(&d.cadence) {
            Ok(f) => f,
            Err(e) => {
                errors.push(format!("{}: {e}", d.method));
                continue;
            }
        };
        let Some(row) = rows.iter().find(|r| r.method == d.method) else {
            // sCG, sCG-sSPMV, PIPE-sCG, CG3, Hybrid: the paper's Table I
            // omits them; the doc cell only needs to parse.
            continue;
        };
        let Some(form) = form else {
            errors.push(format!(
                "{}: doc table claims no cadence but table1() has a closed form",
                d.method
            ));
            continue;
        };
        compared += 1;
        for s in 1..=8 {
            let doc_val = form(s);
            let model_val = (row.allreduces)(s);
            if doc_val != model_val {
                errors.push(format!(
                    "{}: doc table says {} allreduces per {s} steps, table1() says {}",
                    d.method, doc_val, model_val
                ));
                break;
            }
        }
    }
    // Every Table I row the repo implements must appear in the doc table.
    // PIPELCG is tabulated by the paper but not implemented here.
    for row in &rows {
        if row.method == "PIPELCG" {
            continue;
        }
        if !doc.iter().any(|d| d.method == row.method) {
            errors.push(format!(
                "table1() row {} missing from doc table",
                row.method
            ));
        }
    }
    if errors.is_empty() {
        Ok(format!(
            "doc table OK: {} rows parsed, {compared} checked against table1()",
            doc.len()
        ))
    } else {
        Err(errors)
    }
}

/// The exit-code doc table lives in this crate's own source; resolved
/// relative to the manifest like [`DOC_TABLE_SOURCE`].
const EXIT_CODES_SOURCE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/src/exit_codes.rs");

/// Parses the reserved-code table out of `exit_codes.rs`' module docs:
/// `(code, variant)` pairs from rows like
/// ``//! | 16 | [`FindingClass::Ir`] | … |``.
pub fn parse_exit_code_table(source: &str) -> Vec<(i32, String)> {
    let mut rows = Vec::new();
    for line in source.lines() {
        let line = line.trim_start();
        let Some(rest) = line.strip_prefix("//! |") else {
            continue;
        };
        let cols: Vec<&str> = rest.split('|').map(str::trim).collect();
        let (Some(code), Some(class)) = (cols.first(), cols.get(1)) else {
            continue;
        };
        let Ok(code) = code.parse::<i32>() else {
            continue;
        };
        let Some(variant) = class
            .split("FindingClass::")
            .nth(1)
            .and_then(|r| r.split(['`', ']']).next())
        else {
            continue;
        };
        rows.push((code, variant.to_string()));
    }
    rows
}

/// Lints the reserved exit-code doc table against [`FindingClass`] itself:
/// every class must be documented with its actual code, and the table must
/// not reserve codes the enum no longer has.
pub fn check_exit_codes() -> Result<String, Vec<String>> {
    let source = std::fs::read_to_string(Path::new(EXIT_CODES_SOURCE))
        .map_err(|e| vec![format!("cannot read {EXIT_CODES_SOURCE}: {e}")])?;
    check_exit_codes_source(&source)
}

/// The exit-code lint body, separated from file I/O for testability.
pub fn check_exit_codes_source(source: &str) -> Result<String, Vec<String>> {
    let table = parse_exit_code_table(source);
    let mut errors = Vec::new();
    if table.is_empty() {
        errors.push("no reserved-code table found in exit_codes.rs".to_string());
    }
    for class in FindingClass::ALL {
        let variant = format!("{class:?}");
        match table.iter().find(|(_, v)| *v == variant) {
            None => errors.push(format!(
                "FindingClass::{variant} (code {}) missing from the reserved-code doc table",
                class.exit_code()
            )),
            Some((code, _)) if *code != class.exit_code() => errors.push(format!(
                "doc table reserves code {code} for FindingClass::{variant}, exit_code() says {}",
                class.exit_code()
            )),
            Some(_) => {}
        }
    }
    for (code, variant) in &table {
        if !FindingClass::ALL
            .iter()
            .any(|c| format!("{c:?}") == *variant)
        {
            errors.push(format!(
                "doc table reserves code {code} for unknown class FindingClass::{variant}"
            ));
        }
    }
    // A code reserved twice is drift even when both rows name real
    // classes; gaps (17, the perf-report binary) are legal.
    let mut seen = Vec::new();
    for (code, variant) in &table {
        if seen.contains(code) {
            errors.push(format!(
                "doc table reserves code {code} twice (second time for FindingClass::{variant})"
            ));
        }
        seen.push(*code);
    }
    if errors.is_empty() {
        Ok(format!(
            "exit-code table OK: {} classes documented",
            table.len()
        ))
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shipped doc table must pass its own lint.
    #[test]
    fn shipped_doc_table_matches_cost_model() {
        match check() {
            Ok(summary) => assert!(summary.contains("6 checked"), "{summary}"),
            Err(errors) => panic!("doc-table lint failed:\n{}", errors.join("\n")),
        }
    }

    #[test]
    fn drifted_cadence_is_caught() {
        // PCG's true cadence is 3s; a doc claiming s must fail.
        let source = "\
//! | module | method | paper | allreduces per s steps | overlap |
//! |---|---|---|---|---|
//! | [`pcg`] | PCG | Alg. 1 | s, blocking | none |
//! | [`pipecg`] | PIPECG | [9] | s, non-blocking | 1 PC + 1 SPMV |
//! | [`pipecg3`] | PIPECG3 | [10] | ⌈s/2⌉ | 2 PCs + 2 SPMVs |
//! | [`pipecg_oati`] | PIPECG-OATI | [11] | ⌈s/2⌉ | 2 PCs + 2 SPMVs |
//! | [`pscg`] | PsCG | Alg. 3 | 1, blocking | none |
//! | [`pipe_pscg`] | PIPE-PsCG | Alg. 6-7 | 1, non-blocking | s PCs + s SPMVs |
";
        let errors = check_source(source).unwrap_err();
        assert!(errors.iter().any(|e| e.starts_with("PCG:")), "{errors:?}");
    }

    #[test]
    fn missing_row_is_caught() {
        let source = "\
//! | module | method | paper | allreduces per s steps | overlap |
//! |---|---|---|---|---|
//! | [`pcg`] | PCG | Alg. 1 | 3s, blocking | none |
";
        let errors = check_source(source).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("PIPECG") && e.contains("missing")),
            "{errors:?}"
        );
    }

    #[test]
    fn unparseable_cadence_is_an_error() {
        assert!(cadence_closed_form("2s, blocking").is_err());
        assert!(cadence_closed_form("—").unwrap().is_none());
    }
}

#[cfg(test)]
mod exit_code_table_tests {
    use super::*;

    /// The shipped reserved-code table must pass its own lint.
    #[test]
    fn shipped_exit_code_table_matches_the_enum() {
        match check_exit_codes() {
            Ok(summary) => assert!(summary.contains("9 classes"), "{summary}"),
            Err(errors) => panic!("exit-code lint failed:\n{}", errors.join("\n")),
        }
    }

    /// Rows the parser cannot interpret (non-integer code, no
    /// `FindingClass::` reference, separator rows) are skipped, not
    /// misread as reservations.
    #[test]
    fn malformed_rows_are_skipped() {
        let source = "\
//! | code | class | meaning |
//! |---|---|---|
//! | ten | [`FindingClass::Hazard`] | word, not number |
//! | 12 | a bare description | no class reference |
//! | 13 | [`FindingClass::DocTable`] | well-formed |
";
        assert_eq!(
            parse_exit_code_table(source),
            vec![(13, "DocTable".to_string())]
        );
    }

    /// The same code reserved for two classes is drift even when both
    /// rows are individually well-formed.
    #[test]
    fn duplicate_reserved_code_is_caught() {
        let mut source = String::from("//! | code | class | meaning |\n//! |---|---|---|\n");
        for class in FindingClass::ALL {
            source.push_str(&format!(
                "//! | {} | [`FindingClass::{class:?}`] | x |\n",
                class.exit_code()
            ));
        }
        source.push_str("//! | 18 | [`FindingClass::Hazard`] | duplicate |\n");
        let errors = check_exit_codes_source(&source).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("reserves code 18 twice")),
            "{errors:?}"
        );
    }

    /// Gaps in the code sequence are legal: 17 belongs to the perf-report
    /// binary, so a table that is complete-but-gapped must pass.
    #[test]
    fn gap_at_17_is_legal() {
        let mut source = String::from("//! | code | class | meaning |\n//! |---|---|---|\n");
        for class in FindingClass::ALL {
            source.push_str(&format!(
                "//! | {} | [`FindingClass::{class:?}`] | x |\n",
                class.exit_code()
            ));
        }
        let summary = check_exit_codes_source(&source).expect("gapped table must pass");
        assert!(summary.contains("9 classes"), "{summary}");
    }

    #[test]
    fn drifted_or_missing_codes_are_caught() {
        // Ir documented with the wrong code, Race missing entirely.
        let source = "\
//! | code | class | meaning |
//! |---|---|---|
//! | 10 | [`FindingClass::Hazard`]    | hazard |
//! | 11 | [`FindingClass::Structure`] | structure |
//! | 12 | [`FindingClass::Probe`]     | probe |
//! | 13 | [`FindingClass::DocTable`]  | doc table |
//! | 14 | [`FindingClass::Model`]     | model |
//! | 15 | [`FindingClass::Ir`]        | ir |
";
        let errors = check_exit_codes_source(source).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("Ir")), "{errors:?}");
        assert!(
            errors
                .iter()
                .any(|e| e.contains("Race") && e.contains("missing")),
            "{errors:?}"
        );
    }

    #[test]
    fn unknown_reserved_class_is_caught() {
        let source = "//! | 42 | [`FindingClass::Mystery`] | ? |\n";
        let errors = check_exit_codes_source(source).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("Mystery")), "{errors:?}");
    }
}

//! The operation-dependency view of a trace: overlap windows and the work
//! scheduled inside them.
//!
//! A single-rank trace is totally ordered by program order; the only
//! *concurrency* in the schedule is between an in-flight `MPI_Iallreduce`
//! and the local operations issued between its post and its wait. The DAG
//! is therefore fully described by the program order plus one completion
//! edge per collective ([`pscg_sim::OpTrace::completion_edges`]); a
//! [`Window`] names the span of operations that run concurrently with one
//! collective.

use pscg_sim::{Op, OpTrace};

/// One `MPI_Iallreduce` overlap window: the operations at indices
/// `post+1 .. wait` run concurrently with the collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Handle of the collective (the `id` of the `ArPost`/`ArWait` pair).
    pub id: u64,
    /// Trace index of the `ArPost`.
    pub post: usize,
    /// Trace index of the matching `ArWait` — or, in a fault-perturbed
    /// trace, of the non-retriable `ArTimeout` that retired the handle.
    pub wait: usize,
}

impl Window {
    /// Indices of the operations overlapped with the collective.
    pub fn ops(&self) -> std::ops::Range<usize> {
        self.post + 1..self.wait
    }
}

/// Kernel counts inside one window — the work actually hidden behind the
/// pending reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowKernels {
    /// SPMV applications (an `Mpk` of depth `k` counts `k`).
    pub spmvs: usize,
    /// Preconditioner applications.
    pub pcs: usize,
    /// Everything else (local vector work, scalar work, reads).
    pub other: usize,
}

/// The schedule lifted out of a trace.
#[derive(Debug, Clone)]
pub struct ScheduleDag {
    /// Number of operations in the trace.
    pub len: usize,
    /// Overlap windows in post order. Posts without a matching wait (a
    /// hazard in their own right — see [`crate::hazards`]) produce no
    /// window.
    pub windows: Vec<Window>,
}

impl ScheduleDag {
    /// Lifts a trace into its schedule view.
    pub fn build(trace: &OpTrace) -> Self {
        let windows = trace
            .completion_edges()
            .into_iter()
            .map(|(post, wait)| {
                let id = match trace.ops[post] {
                    Op::ArPost { id, .. } => id,
                    _ => unreachable!("completion edge must start at an ArPost"),
                };
                Window { id, post, wait }
            })
            .collect();
        ScheduleDag {
            len: trace.ops.len(),
            windows,
        }
    }

    /// Counts the kernels overlapped with the given window's collective.
    pub fn kernels(&self, trace: &OpTrace, w: &Window) -> WindowKernels {
        let mut k = WindowKernels::default();
        for op in &trace.ops[w.ops()] {
            match op {
                Op::Spmv { .. } => k.spmvs += 1,
                Op::Mpk { depth, .. } => k.spmvs += depth,
                Op::Pc { .. } => k.pcs += 1,
                _ => k.other += 1,
            }
        }
        k
    }

    /// The window (if any) whose collective is still in flight at trace
    /// index `i`.
    pub fn window_over(&self, i: usize) -> Option<&Window> {
        self.windows.iter().find(|w| w.ops().contains(&i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscg_sim::{LocalKind, Op};

    fn trace(ops: Vec<Op>) -> OpTrace {
        let mut t = OpTrace::new(64);
        for op in ops {
            t.push(op);
        }
        t
    }

    #[test]
    fn windows_and_kernel_counts() {
        let t = trace(vec![
            Op::local(LocalKind::Dot, 2.0, 16.0),
            Op::post(0, 4),
            Op::pc(0, 1.0, 8.0, 0),
            Op::spmv(0),
            Op::wait(0),
            Op::post(1, 4),
            Op::mpk(0, 3),
            Op::wait(1),
        ]);
        let dag = ScheduleDag::build(&t);
        assert_eq!(dag.len, 8);
        assert_eq!(
            dag.windows,
            vec![
                Window {
                    id: 0,
                    post: 1,
                    wait: 4
                },
                Window {
                    id: 1,
                    post: 5,
                    wait: 7
                }
            ]
        );
        let k0 = dag.kernels(&t, &dag.windows[0]);
        assert_eq!((k0.spmvs, k0.pcs, k0.other), (1, 1, 0));
        // Mpk depth counts toward spmvs.
        let k1 = dag.kernels(&t, &dag.windows[1]);
        assert_eq!((k1.spmvs, k1.pcs), (3, 0));
        assert_eq!(dag.window_over(2).unwrap().id, 0);
        assert_eq!(dag.window_over(0), None);
        assert_eq!(dag.window_over(4), None);
    }

    #[test]
    fn unmatched_post_produces_no_window() {
        let t = trace(vec![Op::post(0, 2), Op::spmv(0)]);
        assert!(ScheduleDag::build(&t).windows.is_empty());
    }

    #[test]
    fn empty_trace_yields_empty_dag() {
        let t = trace(vec![]);
        let dag = ScheduleDag::build(&t);
        assert_eq!(dag.len, 0);
        assert!(dag.windows.is_empty());
        assert_eq!(dag.window_over(0), None);
    }

    /// A post as the very last op (solver aborted mid-window): the earlier
    /// completed window must survive, the dangling post must not produce a
    /// window, and no index is "covered" past the trace end.
    #[test]
    fn post_without_wait_at_trace_end() {
        let t = trace(vec![
            Op::post(0, 4),
            Op::spmv(0),
            Op::wait(0),
            Op::post(1, 4),
        ]);
        let dag = ScheduleDag::build(&t);
        assert_eq!(
            dag.windows,
            vec![Window {
                id: 0,
                post: 0,
                wait: 2
            }]
        );
        assert_eq!(dag.window_over(3), None);
        assert_eq!(dag.window_over(4), None);
    }

    /// Solvers reuse a small set of collective handles across iterations;
    /// each wait must pair with the earliest still-open post of its id, so
    /// reuse yields one window per iteration, not crossed or merged spans.
    #[test]
    fn duplicate_id_reuse_across_iterations_pairs_in_order() {
        let t = trace(vec![
            Op::post(7, 4), // iteration 0
            Op::spmv(0),
            Op::wait(7),
            Op::post(7, 4), // iteration 1, same handle id
            Op::pc(0, 1.0, 8.0, 0),
            Op::spmv(0),
            Op::wait(7),
        ]);
        let dag = ScheduleDag::build(&t);
        assert_eq!(
            dag.windows,
            vec![
                Window {
                    id: 7,
                    post: 0,
                    wait: 2
                },
                Window {
                    id: 7,
                    post: 3,
                    wait: 6
                }
            ]
        );
        // Each occurrence is its own window with its own kernel census.
        let k0 = dag.kernels(&t, &dag.windows[0]);
        let k1 = dag.kernels(&t, &dag.windows[1]);
        assert_eq!((k0.spmvs, k0.pcs), (1, 0));
        assert_eq!((k1.spmvs, k1.pcs), (1, 1));
        // window_over resolves an index inside the second span to the
        // second window even though the ids collide.
        assert_eq!(dag.window_over(4).unwrap().post, 3);
    }
}

//! Overlap-hazard detection: the bug classes that make a pipelined schedule
//! silently wrong on a real MPI machine.
//!
//! Cools & Vanroose observed that pipelined CG variants are easy to break in
//! ways a single-rank run cannot see: reading the result buffer of an
//! `MPI_Iallreduce` before its `MPI_Wait` returns the *rank-local partial
//! sum* — identical to the true sum on one rank, garbage on `P > 1`; and
//! overwriting a send buffer while the reduction is in flight corrupts the
//! sum on some MPI implementations and not others. Both are pure schedule
//! properties, so they are detected here statically from the trace, with no
//! timing model involved.
//!
//! Ownership model for write-after-post: the buffers a pending reduction
//! still owns are exactly the inputs of the dot products computed since the
//! previous reduction event (those partial sums are what was handed to
//! `MPI_Iallreduce`). Writes to an owned buffer between the post and its
//! wait are hazards. [`pscg_sim::Op::Mpk`] writes are exempt: the matrix-powers
//! kernel records one whole-block buffer id, too coarse to distinguish the
//! basis columns it extends (`s+1..2s`, legal in the window) from the columns
//! the Gram dots read (`0..s`). The per-column `Spmv`/`Local` path used by
//! every shipped pipelined method has exact column identities and is checked
//! in full.

use pscg_sim::{BufId, InflightTracker, LocalKind, Op, OpTrace, ScheduleViolation};

/// One schedule hazard found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hazard {
    /// The result of reduction `id` was read before its wait — on `P > 1`
    /// ranks the reader sees a rank-local partial sum.
    ReadBeforeWait {
        /// Handle of the in-flight reduction.
        id: u64,
        /// Trace index of the premature read.
        at: usize,
    },
    /// A buffer feeding the in-flight reduction `id` was overwritten
    /// before the wait.
    WriteAfterPost {
        /// Handle of the in-flight reduction.
        id: u64,
        /// The buffer that was overwritten.
        buf: BufId,
        /// Trace index of the post that took ownership.
        posted_at: usize,
        /// Trace index of the offending write.
        write_at: usize,
    },
    /// Collective-discipline violation (double post, leaked handle,
    /// blocking over in-flight, concurrent collectives on one
    /// communicator).
    Collective(ScheduleViolation),
}

impl std::fmt::Display for Hazard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Hazard::ReadBeforeWait { id, at } => write!(
                f,
                "op {at}: reduction {id} read before its wait (rank-local partial sum on P > 1)"
            ),
            Hazard::WriteAfterPost {
                id,
                buf,
                posted_at,
                write_at,
            } => write!(
                f,
                "op {write_at}: buffer {buf:?} overwritten while reduction {id} \
                 (posted at op {posted_at}) is in flight"
            ),
            Hazard::Collective(v) => write!(f, "{v}"),
        }
    }
}

/// Scans a trace for every hazard class.
pub fn detect(trace: &OpTrace) -> Vec<Hazard> {
    let mut out = Vec::new();
    let mut tracker = InflightTracker::new();
    // Inputs of the dot products accumulated since the last reduction
    // event; the next post takes ownership of them.
    let mut dot_inputs: Vec<BufId> = Vec::new();
    // (handle, posted_at, owned buffers) per in-flight reduction.
    let mut owned: Vec<(u64, usize, Vec<BufId>)> = Vec::new();

    for (i, op) in trace.ops.iter().enumerate() {
        // Check writes against in-flight ownership before this op can
        // change the in-flight set (an op never races its own post).
        if !matches!(op, Op::Mpk { .. }) {
            for w in op.writes() {
                for (id, posted_at, bufs) in &owned {
                    if bufs.contains(&w) {
                        out.push(Hazard::WriteAfterPost {
                            id: *id,
                            buf: w,
                            posted_at: *posted_at,
                            write_at: i,
                        });
                    }
                }
            }
        }
        match *op {
            Op::Local {
                kind: LocalKind::Dot,
                reads,
                ..
            } => {
                dot_inputs.extend(reads.iter().copied().filter(|b| b.is_tracked()));
            }
            Op::ArPost { id, comm, .. } => {
                out.extend(
                    tracker
                        .post(id, comm, i)
                        .into_iter()
                        .map(Hazard::Collective),
                );
                owned.push((id, i, std::mem::take(&mut dot_inputs)));
            }
            Op::ArWait { id } => {
                out.extend(tracker.wait(id, i).into_iter().map(Hazard::Collective));
                owned.retain(|(oid, _, _)| *oid != id);
            }
            Op::RedRead { id } => {
                out.push(Hazard::ReadBeforeWait { id, at: i });
            }
            Op::ArBlocking { comm, .. } => {
                out.extend(
                    tracker
                        .blocking(comm, i)
                        .into_iter()
                        .map(Hazard::Collective),
                );
                // A blocking reduction consumes the pending dot inputs.
                dot_inputs.clear();
            }
            _ => {}
        }
    }
    out.extend(tracker.finish().into_iter().map(Hazard::Collective));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(ops: Vec<Op>) -> OpTrace {
        let mut t = OpTrace::new(16);
        for op in ops {
            t.push(op);
        }
        t
    }

    fn dot(a: u64, b: u64) -> Op {
        Op::Local {
            kind: LocalKind::Dot,
            flops_per_row: 2.0,
            bytes_per_row: 16.0,
            reads: [BufId(a), BufId(b)],
            write: BufId::ANON,
        }
    }

    fn write_to(b: u64) -> Op {
        Op::Local {
            kind: LocalKind::Vma,
            flops_per_row: 2.0,
            bytes_per_row: 24.0,
            reads: [BufId::ANON, BufId::ANON],
            write: BufId(b),
        }
    }

    #[test]
    fn clean_pipelined_window_passes() {
        // Dots on 1,2 → post → window writes buffer 3 → wait.
        let t = trace(vec![
            dot(1, 2),
            Op::post(0, 2),
            write_to(3),
            Op::wait(0),
            write_to(1), // after the wait: fine
        ]);
        assert!(detect(&t).is_empty());
    }

    #[test]
    fn write_after_post_is_flagged() {
        let t = trace(vec![dot(1, 2), Op::post(0, 2), write_to(2), Op::wait(0)]);
        let h = detect(&t);
        assert_eq!(
            h,
            vec![Hazard::WriteAfterPost {
                id: 0,
                buf: BufId(2),
                posted_at: 1,
                write_at: 2,
            }]
        );
    }

    #[test]
    fn red_read_is_flagged() {
        let t = trace(vec![Op::post(0, 2), Op::RedRead { id: 0 }, Op::wait(0)]);
        assert_eq!(detect(&t), vec![Hazard::ReadBeforeWait { id: 0, at: 1 }]);
    }

    #[test]
    fn mpk_block_writes_are_exempt() {
        // The MPK records the whole basis block as both read and write;
        // flagging it would false-positive every s-step deep-power window.
        let t = trace(vec![dot(1, 2), Op::post(0, 2), Op::mpk(0, 3), Op::wait(0)]);
        assert!(detect(&t).is_empty());
    }

    #[test]
    fn leaked_post_and_blocking_over_inflight_are_flagged() {
        let t = trace(vec![Op::post(0, 2), Op::blocking(1)]);
        let h = detect(&t);
        assert!(h.iter().any(|h| matches!(
            h,
            Hazard::Collective(ScheduleViolation::BlockingOverInflight { .. })
        )));
        assert!(h.iter().any(|h| matches!(
            h,
            Hazard::Collective(ScheduleViolation::NeverWaited { id: 0, .. })
        )));
    }

    #[test]
    fn blocking_reduction_consumes_dot_inputs() {
        // Dots reduced by a *blocking* allreduce leave nothing for a later
        // post to own: the write to buffer 1 is legal.
        let t = trace(vec![
            dot(1, 2),
            Op::blocking(2),
            Op::post(0, 1),
            write_to(1),
            Op::wait(0),
        ]);
        assert!(detect(&t).is_empty());
    }
}

//! Overlap-hazard detection: the bug classes that make a pipelined schedule
//! silently wrong on a real MPI machine.
//!
//! Cools & Vanroose observed that pipelined CG variants are easy to break in
//! ways a single-rank run cannot see: reading the result buffer of an
//! `MPI_Iallreduce` before its `MPI_Wait` returns the *rank-local partial
//! sum* — identical to the true sum on one rank, garbage on `P > 1`; and
//! overwriting a send buffer while the reduction is in flight corrupts the
//! sum on some MPI implementations and not others. Both are pure schedule
//! properties, so they are detected here statically from the trace, with no
//! timing model involved.
//!
//! Ownership model for write-after-post: the buffers a pending reduction
//! still owns are exactly the inputs of the dot products computed since the
//! previous reduction event (those partial sums are what was handed to
//! `MPI_Iallreduce`). Writes to an owned buffer between the post and its
//! wait are hazards. [`pscg_sim::Op::Mpk`] writes are exempt: the matrix-powers
//! kernel records one whole-block buffer id, too coarse to distinguish the
//! basis columns it extends (`s+1..2s`, legal in the window) from the columns
//! the Gram dots read (`0..s`). The per-column `Spmv`/`Local` path used by
//! every shipped pipelined method has exact column identities and is checked
//! in full.

use pscg_sim::{BufId, InflightTracker, LocalKind, Op, OpTrace, ScheduleViolation};

/// One schedule hazard found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hazard {
    /// The result of reduction `id` was read before its wait — on `P > 1`
    /// ranks the reader sees a rank-local partial sum.
    ReadBeforeWait {
        /// Handle of the in-flight reduction.
        id: u64,
        /// Trace index of the premature read.
        at: usize,
    },
    /// A buffer feeding the in-flight reduction `id` was overwritten
    /// before the wait.
    WriteAfterPost {
        /// Handle of the in-flight reduction.
        id: u64,
        /// The buffer that was overwritten.
        buf: BufId,
        /// Trace index of the post that took ownership.
        posted_at: usize,
        /// Trace index of the offending write.
        write_at: usize,
    },
    /// Collective-discipline violation (double post, leaked handle,
    /// blocking over in-flight, concurrent collectives on one
    /// communicator).
    Collective(ScheduleViolation),
    /// Use-after-wait on a *dropped* completion: a wait, retry, or result
    /// read on a handle whose completion was lost (non-retriable
    /// [`pscg_sim::Op::ArTimeout`]). On a real machine this is a wait on a
    /// freed `MPI_Request` — anything from an error to silent garbage.
    WaitAfterDrop {
        /// The retired handle.
        id: u64,
        /// Trace index of the dropped-completion timeout.
        dropped_at: usize,
        /// Trace index of the offending wait/read.
        at: usize,
    },
    /// Two completions consumed for one post: the second wait on a handle
    /// that already completed. Duplicated completions from the fault
    /// injector (or a solver retrying the wrong handle) create exactly
    /// this shape.
    DoubleWait {
        /// The doubly-completed handle.
        id: u64,
        /// Trace index of the first completion.
        first_at: usize,
        /// Trace index of the second wait.
        at: usize,
    },
    /// A delayed completion that was timed out on (retriably) but never
    /// completed before the trace ended: the solver abandoned a handle the
    /// engine still considers live — a leaked request *and* a lost
    /// reduction result.
    AbandonedTimeout {
        /// The abandoned handle.
        id: u64,
        /// Trace index of the post.
        posted_at: usize,
        /// Trace index of the last retriable timeout observed.
        last_timeout_at: usize,
    },
}

impl std::fmt::Display for Hazard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Hazard::ReadBeforeWait { id, at } => write!(
                f,
                "op {at}: reduction {id} read before its wait (rank-local partial sum on P > 1)"
            ),
            Hazard::WriteAfterPost {
                id,
                buf,
                posted_at,
                write_at,
            } => write!(
                f,
                "op {write_at}: buffer {buf:?} overwritten while reduction {id} \
                 (posted at op {posted_at}) is in flight"
            ),
            Hazard::Collective(v) => write!(f, "{v}"),
            Hazard::WaitAfterDrop { id, dropped_at, at } => write!(
                f,
                "op {at}: use of reduction {id} whose completion was dropped at op {dropped_at}"
            ),
            Hazard::DoubleWait { id, first_at, at } => write!(
                f,
                "op {at}: second wait on reduction {id} (first completed at op {first_at})"
            ),
            Hazard::AbandonedTimeout {
                id,
                posted_at,
                last_timeout_at,
            } => write!(
                f,
                "reduction {id} (posted at op {posted_at}) timed out at op \
                 {last_timeout_at} and was never completed"
            ),
        }
    }
}

/// Scans a trace for every hazard class.
///
/// Fault-perturbed schedules (traces recorded under an active
/// `crates/fault` plan) carry [`pscg_sim::Op::ArTimeout`] ops; those add
/// the fault-induced hazard classes ([`Hazard::WaitAfterDrop`],
/// [`Hazard::DoubleWait`], [`Hazard::AbandonedTimeout`]) on top of the
/// clean-schedule ones. A well-behaved resilient solver produces *none* of
/// them: it retries delayed handles to completion and re-posts (never
/// re-waits) dropped ones.
pub fn detect(trace: &OpTrace) -> Vec<Hazard> {
    use std::collections::HashMap;
    let mut out = Vec::new();
    let mut tracker = InflightTracker::new();
    // Inputs of the dot products accumulated since the last reduction
    // event; the next post takes ownership of them.
    let mut dot_inputs: Vec<BufId> = Vec::new();
    // (handle, posted_at, owned buffers) per in-flight reduction.
    let mut owned: Vec<(u64, usize, Vec<BufId>)> = Vec::new();
    // Completion-fault bookkeeping: where each handle's completion was
    // consumed, dropped, or last retriably timed out. A re-post of a
    // recycled id starts a new lifetime and clears all three.
    let mut completed: HashMap<u64, usize> = HashMap::new();
    let mut dropped: HashMap<u64, usize> = HashMap::new();
    let mut last_timeout: HashMap<u64, usize> = HashMap::new();

    for (i, op) in trace.ops.iter().enumerate() {
        // Check writes against in-flight ownership before this op can
        // change the in-flight set (an op never races its own post).
        if !matches!(op, Op::Mpk { .. }) {
            for w in op.writes() {
                for (id, posted_at, bufs) in &owned {
                    if bufs.contains(&w) {
                        out.push(Hazard::WriteAfterPost {
                            id: *id,
                            buf: w,
                            posted_at: *posted_at,
                            write_at: i,
                        });
                    }
                }
            }
        }
        match *op {
            Op::Local {
                kind: LocalKind::Dot,
                reads,
                ..
            } => {
                dot_inputs.extend(reads.iter().copied().filter(|b| b.is_tracked()));
            }
            Op::ArPost { id, comm, .. } => {
                out.extend(
                    tracker
                        .post(id, comm, i)
                        .into_iter()
                        .map(Hazard::Collective),
                );
                owned.push((id, i, std::mem::take(&mut dot_inputs)));
                completed.remove(&id);
                dropped.remove(&id);
                last_timeout.remove(&id);
            }
            Op::ArWait { id } => {
                if let Some(&dropped_at) = dropped.get(&id) {
                    // The tracker already retired the handle at the drop;
                    // report the sharper fault-aware class instead of the
                    // WaitWithoutPost it would emit.
                    out.push(Hazard::WaitAfterDrop {
                        id,
                        dropped_at,
                        at: i,
                    });
                } else if let Some(&first_at) = completed.get(&id) {
                    out.push(Hazard::DoubleWait {
                        id,
                        first_at,
                        at: i,
                    });
                } else {
                    out.extend(tracker.wait(id, i).into_iter().map(Hazard::Collective));
                    completed.insert(id, i);
                }
                owned.retain(|(oid, _, _)| *oid != id);
                last_timeout.remove(&id);
            }
            Op::ArTimeout { id, retriable } => {
                if let Some(&dropped_at) = dropped.get(&id) {
                    out.push(Hazard::WaitAfterDrop {
                        id,
                        dropped_at,
                        at: i,
                    });
                } else if let Some(&first_at) = completed.get(&id) {
                    out.push(Hazard::DoubleWait {
                        id,
                        first_at,
                        at: i,
                    });
                } else if retriable {
                    // Delayed: the handle stays live (and keeps owning its
                    // input buffers) until the successful retry.
                    last_timeout.insert(id, i);
                } else {
                    // Dropped: the completion is lost and the handle is
                    // retired here — it releases its buffers, and any later
                    // use of it is a WaitAfterDrop.
                    out.extend(tracker.wait(id, i).into_iter().map(Hazard::Collective));
                    owned.retain(|(oid, _, _)| *oid != id);
                    dropped.insert(id, i);
                    last_timeout.remove(&id);
                }
            }
            Op::RedRead { id } => {
                if let Some(&dropped_at) = dropped.get(&id) {
                    out.push(Hazard::WaitAfterDrop {
                        id,
                        dropped_at,
                        at: i,
                    });
                } else {
                    out.push(Hazard::ReadBeforeWait { id, at: i });
                }
            }
            Op::ArBlocking { comm, .. } => {
                out.extend(
                    tracker
                        .blocking(comm, i)
                        .into_iter()
                        .map(Hazard::Collective),
                );
                // A blocking reduction consumes the pending dot inputs.
                dot_inputs.clear();
            }
            _ => {}
        }
    }
    // A leaked handle that was retriably timed out on is the sharper
    // abandoned-timeout class; other leaks stay plain NeverWaited.
    for v in tracker.finish() {
        match v {
            ScheduleViolation::NeverWaited { id, posted_at } if last_timeout.contains_key(&id) => {
                out.push(Hazard::AbandonedTimeout {
                    id,
                    posted_at,
                    last_timeout_at: last_timeout[&id],
                });
            }
            other => out.push(Hazard::Collective(other)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(ops: Vec<Op>) -> OpTrace {
        let mut t = OpTrace::new(16);
        for op in ops {
            t.push(op);
        }
        t
    }

    fn dot(a: u64, b: u64) -> Op {
        Op::Local {
            kind: LocalKind::Dot,
            flops_per_row: 2.0,
            bytes_per_row: 16.0,
            reads: [BufId(a), BufId(b)],
            write: BufId::ANON,
        }
    }

    fn write_to(b: u64) -> Op {
        Op::Local {
            kind: LocalKind::Vma,
            flops_per_row: 2.0,
            bytes_per_row: 24.0,
            reads: [BufId::ANON, BufId::ANON],
            write: BufId(b),
        }
    }

    #[test]
    fn clean_pipelined_window_passes() {
        // Dots on 1,2 → post → window writes buffer 3 → wait.
        let t = trace(vec![
            dot(1, 2),
            Op::post(0, 2),
            write_to(3),
            Op::wait(0),
            write_to(1), // after the wait: fine
        ]);
        assert!(detect(&t).is_empty());
    }

    #[test]
    fn write_after_post_is_flagged() {
        let t = trace(vec![dot(1, 2), Op::post(0, 2), write_to(2), Op::wait(0)]);
        let h = detect(&t);
        assert_eq!(
            h,
            vec![Hazard::WriteAfterPost {
                id: 0,
                buf: BufId(2),
                posted_at: 1,
                write_at: 2,
            }]
        );
    }

    #[test]
    fn red_read_is_flagged() {
        let t = trace(vec![Op::post(0, 2), Op::RedRead { id: 0 }, Op::wait(0)]);
        assert_eq!(detect(&t), vec![Hazard::ReadBeforeWait { id: 0, at: 1 }]);
    }

    #[test]
    fn mpk_block_writes_are_exempt() {
        // The MPK records the whole basis block as both read and write;
        // flagging it would false-positive every s-step deep-power window.
        let t = trace(vec![dot(1, 2), Op::post(0, 2), Op::mpk(0, 3), Op::wait(0)]);
        assert!(detect(&t).is_empty());
    }

    #[test]
    fn leaked_post_and_blocking_over_inflight_are_flagged() {
        let t = trace(vec![Op::post(0, 2), Op::blocking(1)]);
        let h = detect(&t);
        assert!(h.iter().any(|h| matches!(
            h,
            Hazard::Collective(ScheduleViolation::BlockingOverInflight { .. })
        )));
        assert!(h.iter().any(|h| matches!(
            h,
            Hazard::Collective(ScheduleViolation::NeverWaited { id: 0, .. })
        )));
    }

    #[test]
    fn well_behaved_fault_recovery_is_clean() {
        // Delayed completion retried to success, then a dropped completion
        // re-posted under a fresh handle: exactly what the resilient
        // solvers do, and none of it is a hazard.
        let t = trace(vec![
            dot(1, 2),
            Op::post(0, 2),
            Op::timeout(0, true), // delay tick 1
            Op::timeout(0, true), // delay tick 2
            Op::wait(0),          // delivery
            dot(1, 2),
            Op::post(1, 2),
            Op::timeout(1, false), // dropped — handle retired
            dot(1, 2),
            Op::post(2, 2), // recovery re-post
            Op::wait(2),
        ]);
        assert_eq!(detect(&t), vec![]);
    }

    #[test]
    fn wait_after_drop_is_flagged() {
        let t = trace(vec![Op::post(0, 2), Op::timeout(0, false), Op::wait(0)]);
        assert_eq!(
            detect(&t),
            vec![Hazard::WaitAfterDrop {
                id: 0,
                dropped_at: 1,
                at: 2,
            }]
        );
    }

    #[test]
    fn read_after_drop_is_flagged_as_use_after_drop() {
        let t = trace(vec![
            Op::post(0, 2),
            Op::timeout(0, false),
            Op::RedRead { id: 0 },
        ]);
        assert_eq!(
            detect(&t),
            vec![Hazard::WaitAfterDrop {
                id: 0,
                dropped_at: 1,
                at: 2,
            }]
        );
    }

    #[test]
    fn double_wait_is_flagged() {
        let t = trace(vec![Op::post(0, 2), Op::wait(0), Op::wait(0)]);
        assert_eq!(
            detect(&t),
            vec![Hazard::DoubleWait {
                id: 0,
                first_at: 1,
                at: 2,
            }]
        );
    }

    #[test]
    fn abandoned_delayed_handle_is_flagged() {
        let t = trace(vec![Op::post(0, 2), Op::timeout(0, true)]);
        assert_eq!(
            detect(&t),
            vec![Hazard::AbandonedTimeout {
                id: 0,
                posted_at: 0,
                last_timeout_at: 1,
            }]
        );
    }

    #[test]
    fn delayed_handle_keeps_owning_its_inputs() {
        // Writing a dot input while the delayed reduction is still live is
        // the same write-after-post hazard as in the clean schedule.
        let t = trace(vec![
            dot(1, 2),
            Op::post(0, 2),
            Op::timeout(0, true),
            write_to(1),
            Op::wait(0),
        ]);
        assert_eq!(
            detect(&t),
            vec![Hazard::WriteAfterPost {
                id: 0,
                buf: BufId(1),
                posted_at: 1,
                write_at: 3,
            }]
        );
    }

    #[test]
    fn dropped_handle_releases_its_inputs() {
        // After the drop the reduction is gone; writing its former input
        // is legal (the recovery path recomputes and re-posts).
        let t = trace(vec![
            dot(1, 2),
            Op::post(0, 2),
            Op::timeout(0, false),
            write_to(1),
        ]);
        assert_eq!(detect(&t), vec![]);
    }

    #[test]
    fn blocking_reduction_consumes_dot_inputs() {
        // Dots reduced by a *blocking* allreduce leave nothing for a later
        // post to own: the write to buffer 1 is legal.
        let t = trace(vec![
            dot(1, 2),
            Op::blocking(2),
            Op::post(0, 1),
            write_to(1),
            Op::wait(0),
        ]);
        assert!(detect(&t).is_empty());
    }
}

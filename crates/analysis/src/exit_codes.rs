//! Process exit codes of the verification binaries, one per finding
//! class, so CI and scripts can tell *what kind* of check failed without
//! parsing output.
//!
//! The analyzer/checker binaries (`lint-table`, `repro
//! --verify-schedule`, `repro --verify-concurrency`, `repro --verify-ir`)
//! reserve:
//!
//! | code | class | meaning |
//! |---|---|---|
//! | 10 | [`FindingClass::Hazard`]    | overlap/collective hazard in a schedule |
//! | 11 | [`FindingClass::Structure`] | Table I structure violation |
//! | 12 | [`FindingClass::Probe`]     | numerical probe finding (strict mode only) |
//! | 13 | [`FindingClass::DocTable`]  | doc method-table / cost-model disagreement |
//! | 14 | [`FindingClass::Model`]     | model checker found a protocol violation |
//! | 15 | [`FindingClass::Race`]      | race detector found unordered accesses |
//! | 16 | [`FindingClass::Ir`]        | method IR failed static verification or trace conformance |
//! | 18 | [`FindingClass::Chaos`]     | chaos campaign violation (hang or silent-wrong answer) |
//! | 19 | [`FindingClass::Lint`]      | source lint finding (`lint-source`, `repro --lint-source`) |
//!
//! Codes 1 (generic failure) and 2 (usage error) keep their conventional
//! meanings. When a run produces several classes, the process exits with
//! the numerically smallest one — the classes are ordered most-fundamental
//! first, and a schedule with a hazard makes its other findings moot.

use std::fmt;

/// What kind of verification finding occurred (ordered most severe first;
/// the discriminant order fixes [`most_severe`]'s preference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FindingClass {
    /// An overlap or collective-discipline hazard ([`crate::hazards`]).
    Hazard,
    /// A Table I structure violation ([`crate::structure`]).
    Structure,
    /// A numerical probe finding ([`crate::probes`]) — advisory unless the
    /// caller opted into strict probes.
    Probe,
    /// The documented method table disagrees with the cost model
    /// ([`crate::doc_lint`]).
    DocTable,
    /// The `pscg-check` model checker found a protocol violation.
    Model,
    /// The `pscg-check` race detector found unordered conflicting accesses.
    Race,
    /// A method's declarative IR failed static verification (dataflow,
    /// structure derivation) or trace conformance (`pscg-ir`).
    Ir,
    /// The chaos campaign (`repro --chaos`) observed a resilience-contract
    /// violation: a hung method or a silently wrong accepted answer.
    Chaos,
    /// The `pscg-lint` source scanner (`lint-source`, `repro
    /// --lint-source`) found an unsuppressed violation of a numeric-safety
    /// or registry-sync invariant.
    Lint,
}

impl FindingClass {
    /// Every finding class, in severity order (matching the doc table
    /// above; `doc_lint::check_exit_codes` keeps the two in sync).
    pub const ALL: [FindingClass; 9] = [
        FindingClass::Hazard,
        FindingClass::Structure,
        FindingClass::Probe,
        FindingClass::DocTable,
        FindingClass::Model,
        FindingClass::Race,
        FindingClass::Ir,
        FindingClass::Chaos,
        FindingClass::Lint,
    ];

    /// The reserved process exit code of this class.
    pub fn exit_code(self) -> i32 {
        match self {
            FindingClass::Hazard => 10,
            FindingClass::Structure => 11,
            FindingClass::Probe => 12,
            FindingClass::DocTable => 13,
            FindingClass::Model => 14,
            FindingClass::Race => 15,
            FindingClass::Ir => 16,
            // 17 is reserved by the perf-report analyzer binary.
            FindingClass::Chaos => 18,
            FindingClass::Lint => 19,
        }
    }
}

impl fmt::Display for FindingClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FindingClass::Hazard => "hazard",
            FindingClass::Structure => "structure",
            FindingClass::Probe => "probe",
            FindingClass::DocTable => "doc-table",
            FindingClass::Model => "model",
            FindingClass::Race => "race",
            FindingClass::Ir => "ir",
            FindingClass::Chaos => "chaos",
            FindingClass::Lint => "lint",
        };
        write!(f, "{name}")
    }
}

/// The class a multi-finding run should exit with: the most severe
/// (numerically smallest code) present, or `None` for a clean run.
pub fn most_severe(classes: &[FindingClass]) -> Option<FindingClass> {
    classes.iter().copied().min()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_reserved() {
        let all = FindingClass::ALL;
        let codes: Vec<i32> = all.iter().map(|c| c.exit_code()).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "codes collide: {codes:?}");
        // Stay clear of the conventional 0/1/2 and of the shell's 126+.
        assert!(codes.iter().all(|&c| (10..=19).contains(&c)));
        // 17 belongs to the perf-report binary, not a finding class.
        assert!(!codes.contains(&17));
    }

    #[test]
    fn severity_follows_code_order() {
        assert_eq!(
            most_severe(&[FindingClass::Race, FindingClass::Hazard]),
            Some(FindingClass::Hazard)
        );
        assert_eq!(
            most_severe(&[FindingClass::Model, FindingClass::Structure]),
            Some(FindingClass::Structure)
        );
        assert_eq!(most_severe(&[]), None);
    }
}

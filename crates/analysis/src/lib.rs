//! Static communication-schedule analyzer for the PIPE-PsCG reproduction.
//!
//! The simulator ([`pscg_sim`]) answers "how long does this schedule take?";
//! this crate answers "is this schedule *correct and shaped as Table I
//! claims*?" — with zero reliance on the machine model or simulated timing.
//! It consumes the same logical [`OpTrace`] the replay engine uses, lifted
//! into an operation-dependency view:
//!
//! * [`dag`] — overlap windows (post → wait spans of each `MPI_Iallreduce`)
//!   and the kernels scheduled inside them.
//! * [`hazards`] — the silent-corruption bug classes of Cools & Vanroose:
//!   reading a reduction result before its wait, overwriting a buffer the
//!   in-flight reduction still owns, and collective-discipline violations
//!   (double posts, leaked handles, concurrent collectives on one
//!   communicator).
//! * [`structure`] — per-method verification that the trace realises the
//!   Table I shape: allreduce cadence, blocking vs non-blocking discipline,
//!   and exactly which kernels hide behind each pending reduction.
//! * [`probes`] — debug-mode numerical probes over the recorded residual
//!   history (NaN/Inf, monotone stagnation).
//! * [`doc_lint`] — cross-checks the human-written method table in
//!   `pipescg::methods` module docs against `costmodel::table1()`, exposed
//!   both as a unit test and as the `lint-table` binary for CI.
//!
//! The entry point is [`analyze`]; method-aware checks are
//! [`structure::verify`].

#![warn(missing_docs)]

pub mod dag;
pub mod doc_lint;
pub mod exit_codes;
pub mod hazards;
pub mod probes;
pub mod structure;

pub use dag::{ScheduleDag, Window, WindowKernels};
pub use exit_codes::FindingClass;
pub use hazards::Hazard;
pub use probes::ProbeFinding;
pub use structure::{verify, verify_faulted, MethodShape, Pipeline, StructureViolation};

use pscg_sim::OpTrace;

/// Default stagnation window for [`probes::scan`]: a healthy CG run on the
/// test problems improves its best residual at least once every ~50
/// convergence checks.
pub const DEFAULT_STAGNATION_WINDOW: usize = 50;

/// Everything the analyzer can say about a trace without knowing which
/// method produced it.
#[derive(Debug, Clone)]
pub struct Report {
    /// Overlap hazards (read-before-wait, write-after-post, collective
    /// discipline violations). Any entry means the schedule is wrong on a
    /// real MPI machine, even if it happens to produce correct numbers on
    /// one rank.
    pub hazards: Vec<Hazard>,
    /// Numerical probe findings over the residual history.
    pub probes: Vec<ProbeFinding>,
    /// The overlap windows of the schedule (post → wait spans), for
    /// inspection and for [`structure::verify`].
    pub windows: Vec<Window>,
}

impl Report {
    /// True when no hazard was found. Probe findings do *not* make a trace
    /// unclean — a stagnating run can still have a correct schedule.
    pub fn is_clean(&self) -> bool {
        self.hazards.is_empty()
    }
}

/// Runs every method-agnostic check over a trace.
pub fn analyze(trace: &OpTrace) -> Report {
    Report {
        hazards: hazards::detect(trace),
        probes: probes::scan(trace, DEFAULT_STAGNATION_WINDOW),
        windows: ScheduleDag::build(trace).windows,
    }
}

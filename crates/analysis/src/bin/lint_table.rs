//! CI lint: fail the build when the method table in
//! `crates/core/src/methods/mod.rs` disagrees with
//! `costmodel::table1()`. Exits with the doc-table finding code
//! (see [`pscg_analysis::exit_codes`]) on disagreement.

use pscg_analysis::FindingClass;

fn main() {
    match pscg_analysis::doc_lint::check() {
        Ok(summary) => println!("lint-table: {summary}"),
        Err(errors) => {
            eprintln!("lint-table: doc table disagrees with costmodel::table1():");
            for e in errors {
                eprintln!("  - {e}");
            }
            std::process::exit(FindingClass::DocTable.exit_code());
        }
    }
}

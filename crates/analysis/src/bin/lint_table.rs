//! CI lint: fail the build when a human-written doc table drifts from the
//! code it documents — the method table in `crates/core/src/methods/mod.rs`
//! vs `costmodel::table1()`, and the reserved exit-code table in
//! `pscg_analysis::exit_codes` vs `FindingClass` itself. Exits with the
//! doc-table finding code (see [`pscg_analysis::exit_codes`]) on
//! disagreement.

use pscg_analysis::FindingClass;

fn main() {
    let mut failed = false;
    match pscg_analysis::doc_lint::check() {
        Ok(summary) => println!("lint-table: {summary}"),
        Err(errors) => {
            failed = true;
            eprintln!("lint-table: doc table disagrees with costmodel::table1():");
            for e in errors {
                eprintln!("  - {e}");
            }
        }
    }
    match pscg_analysis::doc_lint::check_exit_codes() {
        Ok(summary) => println!("lint-table: {summary}"),
        Err(errors) => {
            failed = true;
            eprintln!("lint-table: exit-code doc table disagrees with FindingClass:");
            for e in errors {
                eprintln!("  - {e}");
            }
        }
    }
    if failed {
        std::process::exit(FindingClass::DocTable.exit_code());
    }
}

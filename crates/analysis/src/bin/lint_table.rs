//! CI lint: fail the build when the method table in
//! `crates/core/src/methods/mod.rs` disagrees with
//! `costmodel::table1()`.

fn main() {
    match pscg_analysis::doc_lint::check() {
        Ok(summary) => println!("lint-table: {summary}"),
        Err(errors) => {
            eprintln!("lint-table: doc table disagrees with costmodel::table1():");
            for e in errors {
                eprintln!("  - {e}");
            }
            std::process::exit(1);
        }
    }
}

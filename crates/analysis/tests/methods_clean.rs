//! Tier-1 acceptance: every shipped method, under each of the three
//! paper preconditioners, must produce a hazard-free schedule whose
//! structure matches its Table I row.

use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_analysis::{analyze, verify};
use pscg_precond::{BlockJacobi, Ic0, Jacobi};
use pscg_sim::{Layout, MatrixProfile, SimCtx};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};
use pscg_sparse::{CsrMatrix, Operator};

const S: usize = 4;

fn problem() -> (CsrMatrix, Vec<f64>, MatrixProfile) {
    let g = Grid3::cube(8);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let prof = MatrixProfile::stencil3d(8, 8, 8, 1, a.nnz(), Layout::Box);
    (a, b, prof)
}

fn precond(name: &str, a: &CsrMatrix) -> Box<dyn Operator> {
    match name {
        "Jacobi" => Box::new(Jacobi::new(a)),
        "BlockJacobi" => Box::new(BlockJacobi::new(a, 16)),
        "IC(0)" => Box::new(Ic0::new(a).expect("Poisson matrix admits IC(0)")),
        _ => unreachable!(),
    }
}

fn all_methods() -> [MethodKind; 11] {
    [
        MethodKind::Pcg,
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
        MethodKind::Cg3,
    ]
}

#[test]
fn every_method_is_hazard_free_under_every_preconditioner() {
    let (a, b, prof) = problem();
    for pc_name in ["Jacobi", "BlockJacobi", "IC(0)"] {
        for method in all_methods() {
            let pc = precond(pc_name, &a);
            let mut ctx = SimCtx::traced(&a, pc, prof.clone());
            let opts = SolveOptions::with_rtol(1e-6).with_s(S);
            let res = method.solve(&mut ctx, &b, None, &opts);
            assert!(
                res.converged(),
                "{} + {pc_name} did not converge",
                method.name()
            );
            let trace = ctx.take_trace().unwrap();
            let report = analyze(&trace);
            assert!(
                report.is_clean(),
                "{} + {pc_name} schedule hazards: {:?}",
                method.name(),
                report.hazards
            );
            let violations = verify(&trace, method, S);
            assert!(
                violations.is_empty(),
                "{} + {pc_name} structure violations: {:?}",
                method.name(),
                violations
            );
        }
    }
}

#[test]
fn pipelined_methods_actually_open_windows() {
    // A trace with zero overlap windows would pass the hazard checks
    // vacuously; pin down that the pipelined methods really overlap.
    let (a, b, prof) = problem();
    for method in [
        MethodKind::Pipecg,
        MethodKind::Pipecg3,
        MethodKind::PipecgOati,
        MethodKind::PipeScg,
        MethodKind::PipePscg,
        MethodKind::Hybrid,
    ] {
        let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), prof.clone());
        let opts = SolveOptions::with_rtol(1e-6).with_s(S);
        let res = method.solve(&mut ctx, &b, None, &opts);
        assert!(res.converged());
        let trace = ctx.take_trace().unwrap();
        let report = analyze(&trace);
        assert!(
            !report.windows.is_empty(),
            "{} opened no overlap windows",
            method.name()
        );
    }
}

#[test]
fn blocking_methods_open_no_windows() {
    let (a, b, prof) = problem();
    for method in [
        MethodKind::Pcg,
        MethodKind::Scg,
        MethodKind::ScgSspmv,
        MethodKind::Pscg,
        MethodKind::Cg3,
    ] {
        let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), prof.clone());
        let opts = SolveOptions::with_rtol(1e-6).with_s(S);
        method.solve(&mut ctx, &b, None, &opts);
        let trace = ctx.take_trace().unwrap();
        assert!(
            analyze(&trace).windows.is_empty(),
            "{} unexpectedly posted a non-blocking reduction",
            method.name()
        );
    }
}

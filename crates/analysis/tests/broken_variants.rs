//! Tier-1 acceptance: the analyzer must flag each deliberately broken
//! PIPE-sCG variant — every one of which converges bit-identically to the
//! correct solver on a single rank, so no numerical test can catch it.

use pipescg::methods::pipe_scg::broken::{self, BrokenMode};
use pipescg::methods::MethodKind;
use pipescg::solver::SolveOptions;
use pscg_analysis::{analyze, verify, Hazard, StructureViolation};
use pscg_precond::Jacobi;
use pscg_sim::{Layout, MatrixProfile, OpTrace, SimCtx};
use pscg_sparse::stencil::{poisson3d_7pt, Grid3};

const S: usize = 4;

fn traced_broken_run(mode: BrokenMode) -> OpTrace {
    let g = Grid3::cube(8);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let prof = MatrixProfile::stencil3d(8, 8, 8, 1, a.nnz(), Layout::Box);
    let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), prof);
    let opts = SolveOptions::with_rtol(1e-6).with_s(S);
    let res = broken::solve(&mut ctx, &b, None, &opts, mode);
    // The whole point: the broken schedule still converges on one rank.
    assert!(res.converged(), "{mode:?} run failed to converge");
    ctx.take_trace().unwrap()
}

#[test]
fn read_before_wait_is_flagged_as_hazard() {
    let trace = traced_broken_run(BrokenMode::ReadBeforeWait);
    let report = analyze(&trace);
    assert!(
        report
            .hazards
            .iter()
            .any(|h| matches!(h, Hazard::ReadBeforeWait { .. })),
        "expected a read-before-wait hazard, got {:?}",
        report.hazards
    );
}

#[test]
fn write_into_posted_dot_input_is_flagged_as_hazard() {
    let trace = traced_broken_run(BrokenMode::WritesDotInput);
    let report = analyze(&trace);
    assert!(
        report
            .hazards
            .iter()
            .any(|h| matches!(h, Hazard::WriteAfterPost { .. })),
        "expected a write-after-post hazard, got {:?}",
        report.hazards
    );
}

#[test]
fn hoisted_wait_is_flagged_as_empty_window() {
    // Hoisting the wait is not a correctness hazard — it is a structure
    // violation: the Table I overlap window exists in name only.
    let trace = traced_broken_run(BrokenMode::WaitHoisted);
    assert!(analyze(&trace).is_clean(), "hoisted wait is not a hazard");
    let violations = verify(&trace, MethodKind::PipeScg, S);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, StructureViolation::WindowShape { got: (0, 0), .. })),
        "expected empty-window violations, got {violations:?}"
    );
}

#[test]
fn correct_variant_passes_the_same_checks() {
    // Control: the real PIPE-sCG solver, same problem and options, is
    // clean under both the hazard and the structure pass.
    let g = Grid3::cube(8);
    let a = poisson3d_7pt(g, None);
    let b = a.mul_vec(&vec![1.0; a.nrows()]);
    let prof = MatrixProfile::stencil3d(8, 8, 8, 1, a.nnz(), Layout::Box);
    let mut ctx = SimCtx::traced(&a, Box::new(Jacobi::new(&a)), prof);
    let opts = SolveOptions::with_rtol(1e-6).with_s(S);
    let res = pipescg::methods::pipe_scg::solve(&mut ctx, &b, None, &opts);
    assert!(res.converged());
    let trace = ctx.take_trace().unwrap();
    assert!(analyze(&trace).is_clean());
    assert!(verify(&trace, MethodKind::PipeScg, S).is_empty());
}

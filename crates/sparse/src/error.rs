//! Error type shared by the sparse-matrix substrate.

use std::fmt;

/// Errors raised while constructing, validating or reading matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A coordinate entry lies outside the declared matrix shape.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Declared number of rows.
        nrows: usize,
        /// Declared number of columns.
        ncols: usize,
    },
    /// A CSR invariant is violated (non-monotone `row_ptr`, unsorted or
    /// duplicate column indices within a row, length mismatches, …).
    InvalidCsr(String),
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        nrows: usize,
        /// Number of columns.
        ncols: usize,
    },
    /// Dimension mismatch between operands.
    DimensionMismatch(String),
    /// A dense factorisation hit a (numerically) singular pivot.
    SingularMatrix {
        /// Index of the zero pivot.
        pivot: usize,
    },
    /// The operation requires an exactly (bitwise) symmetric matrix.
    NotSymmetric {
        /// Row of the first entry without a bitwise-equal mirror.
        row: usize,
        /// Column of the first entry without a bitwise-equal mirror.
        col: usize,
    },
    /// A caller-supplied argument is outside its valid range.
    InvalidArgument(String),
    /// Matrix Market parsing failed.
    ParseError(String),
    /// Underlying I/O failure (message only, to keep the error `Clone`).
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(f, "entry ({row}, {col}) outside {nrows}x{ncols} matrix"),
            SparseError::InvalidCsr(msg) => write!(f, "invalid CSR structure: {msg}"),
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "operation requires a square matrix, got {nrows}x{ncols}")
            }
            SparseError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            SparseError::SingularMatrix { pivot } => {
                write!(f, "singular matrix: zero pivot at index {pivot}")
            }
            SparseError::NotSymmetric { row, col } => {
                write!(
                    f,
                    "matrix is not symmetric: entry ({row}, {col}) has no bitwise-equal mirror"
                )
            }
            SparseError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            SparseError::ParseError(msg) => write!(f, "matrix market parse error: {msg}"),
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

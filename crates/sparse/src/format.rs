//! SpMV kernel/format selection: the process-wide format knob.
//!
//! Every method in the repo reaches the matrix through [`crate::CsrMatrix`];
//! the format knob chooses *which kernel body* serves `spmv` without
//! changing the interface, the chunk partition contract, or the per-row
//! accumulation order. All formats are bitwise identical to the scalar CSR
//! kernel at every thread count (each row still sums its entries in
//! ascending-column order from an initial `0.0`), so the knob is a pure
//! performance dial: traces, the IR conformance checker and the analyzer
//! see the same logical `Spmv` nodes whichever format executes them.
//!
//! The knob follows the same pattern as [`pscg_par::knobs`]: a process
//! global with a one-shot `PSCG_SPMV_FORMAT` environment override, set
//! programmatically by the tuner ([`set_spmv_format`]).

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel body serves `CsrMatrix::spmv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpmvFormat {
    /// Scalar CSR: one accumulator per row, entries in ascending-column
    /// order. The bitwise reference all other formats must reproduce.
    #[default]
    Csr,
    /// Register-blocked CSR, 4 rows per block: four independent accumulator
    /// chains walk their rows in lockstep (scalar tail rows), hiding the
    /// ~4-cycle add latency that bounds the scalar kernel.
    CsrUnrolled4,
    /// Register-blocked CSR, 8 rows per block.
    CsrUnrolled8,
    /// SELL-C-σ (sliced ELLPACK, C = 8): σ-window row sorting, column-major
    /// chunks, `u32` column indices (12 B/nnz instead of 16 B/nnz).
    SellCSigma,
    /// Symmetric CSR: strictly-upper + diagonal storage (≈6 B per logical
    /// nnz), deterministic scatter-slot reduction. Falls back to scalar CSR
    /// when the matrix is not exactly symmetric.
    SymCsr,
}

impl SpmvFormat {
    /// All formats, in benchmark/report order.
    pub const ALL: [SpmvFormat; 5] = [
        SpmvFormat::Csr,
        SpmvFormat::CsrUnrolled4,
        SpmvFormat::CsrUnrolled8,
        SpmvFormat::SellCSigma,
        SpmvFormat::SymCsr,
    ];

    /// Stable identifier used in CLI flags, env values and JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SpmvFormat::Csr => "csr",
            SpmvFormat::CsrUnrolled4 => "csr-unrolled4",
            SpmvFormat::CsrUnrolled8 => "csr-unrolled8",
            SpmvFormat::SellCSigma => "sell-c-sigma",
            SpmvFormat::SymCsr => "sym-csr",
        }
    }

    /// Parses the identifiers produced by [`SpmvFormat::as_str`] (plus the
    /// `csr-unrolled` alias for the 4-row variant).
    pub fn parse(s: &str) -> Option<SpmvFormat> {
        match s.trim() {
            "csr" => Some(SpmvFormat::Csr),
            "csr-unrolled" | "csr-unrolled4" => Some(SpmvFormat::CsrUnrolled4),
            "csr-unrolled8" => Some(SpmvFormat::CsrUnrolled8),
            "sell" | "sell-c-sigma" => Some(SpmvFormat::SellCSigma),
            "sym" | "sym-csr" => Some(SpmvFormat::SymCsr),
            _ => None,
        }
    }

    /// Stable numeric code (1-based), carried as the `arg` of SpMV/MPK
    /// telemetry spans so traces are self-describing about which kernel
    /// body ran.
    pub fn to_code(self) -> u8 {
        match self {
            SpmvFormat::Csr => 1,
            SpmvFormat::CsrUnrolled4 => 2,
            SpmvFormat::CsrUnrolled8 => 3,
            SpmvFormat::SellCSigma => 4,
            SpmvFormat::SymCsr => 5,
        }
    }

    /// Inverse of [`SpmvFormat::to_code`].
    pub fn from_code(code: u8) -> Option<SpmvFormat> {
        match code {
            1 => Some(SpmvFormat::Csr),
            2 => Some(SpmvFormat::CsrUnrolled4),
            3 => Some(SpmvFormat::CsrUnrolled8),
            4 => Some(SpmvFormat::SellCSigma),
            5 => Some(SpmvFormat::SymCsr),
            _ => None,
        }
    }
}

impl std::fmt::Display for SpmvFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// 0 = unset (read `PSCG_SPMV_FORMAT` once, default CSR).
static FORMAT: AtomicU8 = AtomicU8::new(0);

/// The active SpMV format (`PSCG_SPMV_FORMAT` override read once; an
/// unrecognised value falls back to plain CSR).
pub fn spmv_format() -> SpmvFormat {
    let code = FORMAT.load(Ordering::Relaxed);
    if let Some(f) = SpmvFormat::from_code(code) {
        return f;
    }
    let init = std::env::var("PSCG_SPMV_FORMAT")
        .ok()
        .and_then(|s| SpmvFormat::parse(&s))
        .unwrap_or(SpmvFormat::Csr);
    FORMAT.store(init.to_code(), Ordering::Relaxed);
    init
}

/// Overrides the active SpMV format (the tuner and benches do). The SELL /
/// symmetric representations are cached per matrix on first use; they key
/// off the matrix structure, not this knob, so switching formats is cheap
/// after the first apply in each format.
pub fn set_spmv_format(fmt: SpmvFormat) {
    FORMAT.store(fmt.to_code(), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_format() {
        for f in SpmvFormat::ALL {
            assert_eq!(SpmvFormat::parse(f.as_str()), Some(f));
        }
        assert_eq!(SpmvFormat::parse("sell"), Some(SpmvFormat::SellCSigma));
        assert_eq!(SpmvFormat::parse("nope"), None);
    }

    #[test]
    fn set_and_get_knob() {
        let before = spmv_format();
        set_spmv_format(SpmvFormat::CsrUnrolled4);
        assert_eq!(spmv_format(), SpmvFormat::CsrUnrolled4);
        set_spmv_format(before);
    }
}
